"""Wall-clock microbenchmarks of the library's sequential kernels.

Unlike the figure benchmarks (whose speedups come from the machine
model), these measure real host time with pytest-benchmark's statistics:
the from-scratch FFT, the vectorised merge, the skyline sweep, and the
closest-pair recursion — the kernels every archetype application leans
on.
"""

import numpy as np
import pytest

from repro.apps.fftlib import fft
from repro.apps.nearest import closest_pair
from repro.apps.skyline import sequential_skyline
from repro.apps.sorting import merge_two_sorted, sequential_mergesort


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(99)


def test_fft_pow2_kernel(benchmark, rng):
    x = rng.normal(size=(64, 1024)) + 1j * rng.normal(size=(64, 1024))
    out = benchmark(fft, x)
    assert out.shape == x.shape


def test_fft_bluestein_kernel(benchmark, rng):
    x = rng.normal(size=(16, 1000)) + 1j * rng.normal(size=(16, 1000))
    out = benchmark(fft, x)
    assert out.shape == x.shape


def test_merge_kernel(benchmark, rng):
    a = np.sort(rng.integers(0, 2**40, size=1 << 18))
    b = np.sort(rng.integers(0, 2**40, size=1 << 18))
    merged = benchmark(merge_two_sorted, a, b)
    assert merged.size == a.size + b.size


def test_mergesort_kernel(benchmark, rng):
    data = rng.integers(0, 2**40, size=1 << 15)
    out = benchmark(sequential_mergesort, data)
    assert out[0] <= out[-1]


def test_skyline_kernel(benchmark, rng):
    n = 2000
    left = rng.uniform(0, 1000, n)
    blds = np.column_stack([left, rng.uniform(1, 60, n), left + rng.uniform(1, 40, n)])
    sky = benchmark(sequential_skyline, blds)
    assert sky.shape[1] == 2


def test_closest_pair_kernel(benchmark, rng):
    pts = rng.uniform(0, 1000, size=(4000, 2))
    d, _, _ = benchmark(closest_pair, pts)
    assert d > 0
