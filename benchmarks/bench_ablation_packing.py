"""Ablation: packed vs per-field boundary exchange in the CFD code.

Production stencil codes pack all state components into one boundary
message per neighbour; the naive version sends one message per field.
On a latency-bound machine the difference is the message count (4x here).
"""

from repro.apps.cfd import cfd_archetype
from repro.machines.catalog import ETHERNET_SUNS, IBM_SP


def _time(machine, packed: bool, p=16, n=128, steps=4) -> float:
    return (
        cfd_archetype()
        .run(
            p,
            n,
            n,
            steps,
            ic="smooth",
            machine=machine,
            gather=False,
            packed_exchange=packed,
            cfl_interval=steps,
        )
        .elapsed
    )


def test_message_packing(benchmark):
    def experiment():
        return {
            m.name: {"packed": _time(m, True), "per-field": _time(m, False)}
            for m in (IBM_SP, ETHERNET_SUNS)
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nAblation — CFD boundary exchange, 128^2, 16 ranks, 4 steps")
    for name, times in results.items():
        ratio = times["per-field"] / times["packed"]
        print(
            f"  {name:>15}: packed {times['packed'] * 1e3:8.2f} ms, "
            f"per-field {times['per-field'] * 1e3:8.2f} ms  ({ratio:.2f}x)"
        )
    # Packing always wins, and wins big where latency dominates.
    for times in results.values():
        assert times["packed"] < times["per-field"]
    eth = results["ethernet-suns"]
    assert eth["per-field"] / eth["packed"] > 1.5
