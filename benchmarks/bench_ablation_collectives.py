"""Ablation: collective algorithms.

DESIGN.md calls out the choice of building collectives from classical
p2p algorithms.  This benchmark compares the recursive-doubling
allreduce (the paper's Figure 8 pattern) against the naive
gather-to-root + compute + broadcast alternative, on the modelled
Ethernet workstation network where latency dominates.
"""

import numpy as np
import pytest

from repro import spmd_run
from repro.comm.reductions import SUM
from repro.machines.catalog import ETHERNET_SUNS


def _recursive_doubling(p: int) -> float:
    def body(comm):
        for _ in range(5):
            comm.allreduce(float(comm.rank), SUM)

    return spmd_run(p, body, machine=ETHERNET_SUNS).elapsed


def _gather_then_bcast(p: int) -> float:
    def body(comm):
        for _ in range(5):
            values = comm.gather(float(comm.rank), root=0)
            total = sum(values) if comm.rank == 0 else None
            comm.bcast(total, root=0)

    return spmd_run(p, body, machine=ETHERNET_SUNS).elapsed


def test_allreduce_algorithms(benchmark):
    results = benchmark.pedantic(
        lambda: {
            p: (_recursive_doubling(p), _gather_then_bcast(p)) for p in (4, 16, 32)
        },
        rounds=1,
        iterations=1,
    )
    print("\nAblation — allreduce algorithm (5 reductions, Ethernet Suns)")
    print(f"{'P':>4} {'recursive-doubling':>20} {'gather+bcast':>14} {'ratio':>7}")
    for p, (rd, gb) in results.items():
        print(f"{p:>4} {rd:>20.4f} {gb:>14.4f} {gb / rd:>7.2f}")
    # The critical path of gather+bcast is O(P) messages at the root;
    # recursive doubling is O(log P): the gap widens with P.
    assert results[32][1] / results[32][0] > results[4][1] / results[4][0]
    assert results[32][1] > results[32][0]


def test_correctness_identical(benchmark):
    """Both strategies compute the same reduction (sanity for the ablation)."""

    def both(p=8):
        def rd(comm):
            return comm.allreduce(comm.rank + 1.0, SUM)

        def gb(comm):
            vals = comm.gather(comm.rank + 1.0, root=0)
            return comm.bcast(sum(vals) if comm.rank == 0 else None, root=0)

        a = spmd_run(p, rd).values
        b = spmd_run(p, gb).values
        return a, b

    a, b = benchmark.pedantic(both, rounds=1, iterations=1)
    assert np.allclose(a, b)
