"""Figure 16: speedup of the 2-D compressible-flow code on the (modelled)
Intel Delta — close to perfect speedup through ~100 processors.
"""

from conftest import run_figure

from repro.bench.figures import FIG16_PROCS, figure16_cfd


def test_fig16_cfd_speedup(benchmark):
    (curve,) = run_figure(
        benchmark,
        lambda: figure16_cfd(nx=512, ny=512, steps=3, procs=FIG16_PROCS),
        "Figure 16 — 2-D CFD speedup on the Intel Delta (512x512)",
    )

    assert curve.is_monotonic()
    # Near-perfect through 100 processors.
    assert curve.at(100).efficiency > 0.85
    assert curve.at(49).efficiency > 0.9
    assert 0.95 < curve.at(1).speedup < 1.1
