"""Figure 6: speedups of traditional and one-deep mergesort vs sequential
mergesort on the (modelled) Intel Delta.

Paper: "As anticipated, the one-deep version performs significantly
better" — traditional mergesort flattens almost immediately while the
one-deep version scales close to linearly through 64 processors.
"""

from conftest import run_figure

from repro.bench.figures import FIG06_PROCS, figure06_mergesort


def test_fig06_mergesort_speedups(benchmark):
    onedeep, traditional = run_figure(
        benchmark,
        lambda: figure06_mergesort(n=1 << 20, procs=FIG06_PROCS),
        "Figure 6 — mergesort speedups on the Intel Delta (1M keys)",
    )

    # Shape claims from the paper's figure:
    # 1. the one-deep version wins decisively at scale;
    assert onedeep.at(64).speedup > 4 * traditional.at(64).speedup
    # 2. one-deep keeps scaling through 64 processors;
    assert onedeep.is_monotonic()
    assert onedeep.at(64).speedup > 20
    # 3. traditional saturates at a small constant speedup;
    assert traditional.at(64).speedup < 6
    assert traditional.at(64).speedup - traditional.at(16).speedup < 1.0
    # 4. at a single processor neither pays much overhead.
    assert 0.5 < onedeep.at(1).speedup <= 1.05
