"""Extension study: branch-and-bound scaling (the nondeterministic
archetype of paper §6).

Parallel best-first branch and bound only pays off when the live
frontier is wide and node evaluation is expensive relative to message
latency; with the tight Dantzig bound the knapsack search is nearly a
chain and no machine parallelises it.  This benchmark runs the wide-
frontier regime (a loosened-but-admissible bound, LP-strength bound
cost) and reports speedup and node counts, plus the work-grain (chunk)
trade-off.
"""

from repro.apps.knapsack import dp_reference, knapsack_bnb, random_instance
from repro.machines.catalog import IBM_SP

#: a loosened (still admissible) bound -> wide frontier
SLACK = 0.03
#: analytic cost of one bound evaluation (models an LP-strength bound)
BOUND_FLOPS = 1e5


def test_bnb_scaling(benchmark):
    inst = random_instance(22, seed=21)
    exact = dp_reference(inst)

    def experiment():
        out = {}
        t1 = None
        for p in (1, 2, 4, 8, 16):
            res = knapsack_bnb(
                inst, chunk=4, bound_flops=BOUND_FLOPS, bound_slack=SLACK
            ).run(p, machine=IBM_SP)
            best = res.values[0]
            assert abs(-best.value - exact) < 1e-9
            if t1 is None:
                t1 = res.elapsed
            out[p] = (t1 / res.elapsed, best.expanded)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nExtension — knapsack branch and bound (22 items, loose bound, IBM SP)")
    print("   P  speedup  nodes expanded")
    for p, (speedup, nodes) in results.items():
        print(f"{p:>4}  {speedup:>7.2f}  {nodes:>10}")

    # One rank is the manager, so P=2 has a single worker (speedup ~1)...
    assert 0.8 < results[2][0] < 1.3
    # ...and real speedup appears once multiple workers share the frontier.
    assert results[8][0] > 3
    assert results[16][0] > results[8][0]
    # Search overhead stays bounded: timely incumbent broadcasts keep the
    # node count within a small factor of the sequential search.
    assert results[16][1] < 1.5 * results[1][1]


def test_bnb_chunk_tradeoff(benchmark):
    """With *cheap* node evaluation, manager round-trips dominate and the
    work-grain decides everything: per-node dispatch drowns in latency."""
    inst = random_instance(22, seed=8)

    def experiment():
        out = {}
        for chunk in (1, 8, 64):
            res = knapsack_bnb(inst, chunk=chunk).run(8, machine=IBM_SP)
            out[chunk] = (res.elapsed, res.values[0].expanded)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nExtension — work-grain (chunk) trade-off, 8 ranks, cheap bound")
    print("  chunk  modelled time  nodes expanded")
    for chunk, (t, nodes) in results.items():
        print(f"  {chunk:>5}  {t * 1e3:>10.2f} ms  {nodes:>10}")
    assert results[8][0] < results[1][0]
    assert results[64][0] < results[1][0]