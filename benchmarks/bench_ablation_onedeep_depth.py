"""Ablation: why *one* level of splitting (paper §2.1).

The paper motivates one-deep divide and conquer by two inefficiencies of
the traditional deep tree: serialized top-of-tree data movement and poor
average concurrency.  This benchmark decomposes the comparison: the
traditional tree's virtual time vs the one-deep pipeline at matched key
counts, plus the message/byte totals that explain it.
"""

import numpy as np

from repro.apps.sorting import (
    one_deep_mergesort,
    sequential_sort_time,
    traditional_mergesort,
)
from repro.machines.catalog import INTEL_DELTA
from repro.trace.analysis import summarize


def test_onedeep_vs_tree_decomposition(benchmark):
    rng = np.random.default_rng(11)
    data = rng.integers(0, 2**40, size=1 << 17)
    p = 32

    def experiment():
        onedeep = one_deep_mergesort().run(p, data, machine=INTEL_DELTA, trace=True)
        tree = traditional_mergesort().run(p, data, machine=INTEL_DELTA, trace=True)
        return onedeep, tree

    onedeep, tree = benchmark.pedantic(experiment, rounds=1, iterations=1)
    s_od, s_tr = summarize(onedeep.tracer), summarize(tree.tracer)
    t_seq = sequential_sort_time(data.size, INTEL_DELTA)

    print("\nAblation — one-deep vs traditional tree, 128k keys, 32 ranks")
    print(f"  {'':>14} {'virtual time':>14} {'speedup':>8} {'messages':>9} {'bytes':>12}")
    for name, run, s in (("one-deep", onedeep, s_od), ("traditional", tree, s_tr)):
        print(
            f"  {name:>14} {run.elapsed * 1e3:>11.1f} ms "
            f"{t_seq / run.elapsed:>8.1f} {s.total_messages:>9} {s.total_bytes:>12}"
        )

    # The tree moves far more bytes (every key travels ~log P hops down
    # and up); one-deep moves each key approximately once.
    assert s_tr.total_bytes > 2 * s_od.total_bytes
    # And the tree's virtual time is much worse despite fewer messages.
    assert tree.elapsed > 3 * onedeep.elapsed
