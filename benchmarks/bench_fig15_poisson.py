"""Figure 15: speedup of the parallel Poisson solver on the (modelled)
IBM SP — good, steadily sub-linear scaling through 40 processors.
"""

from conftest import run_figure

from repro.bench.figures import FIG15_PROCS, figure15_poisson


def test_fig15_poisson_speedup(benchmark):
    (curve,) = run_figure(
        benchmark,
        lambda: figure15_poisson(nx=512, ny=512, iters=20, procs=FIG15_PROCS),
        "Figure 15 — Poisson solver speedup on the IBM SP (512x512, 20 sweeps)",
    )

    assert curve.is_monotonic()
    assert curve.at(1).speedup > 0.95
    assert curve.at(8).speedup > 6
    # Good but clearly sub-linear by 40 processors.
    assert 12 < curve.at(40).speedup < 36
    assert curve.at(40).efficiency < 0.85
