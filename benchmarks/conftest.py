"""Shared helpers for the figure benchmarks.

Each benchmark regenerates one figure of the paper: it runs the figure's
experiment once under pytest-benchmark (wall-clock of the simulation),
prints the speedup rows the paper plots, and asserts the *shape* claims
the paper states in prose.  Absolute speedups come from the machine
model, not the host, so they are reproducible.
"""

from __future__ import annotations

from repro.bench.harness import SpeedupCurve
from repro.bench.report import format_curves, render_ascii_plot


def run_figure(benchmark, experiment, title: str) -> list[SpeedupCurve]:
    """Execute *experiment* once under the benchmark fixture and print
    the figure's table and ASCII plot."""
    curves = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(format_curves(title, curves))
    print()
    print(render_ascii_plot(curves))
    return curves
