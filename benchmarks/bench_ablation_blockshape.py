"""Ablation: process-grid shape for the mesh archetype (paper §4.4.3).

"We can later adjust the dimensions of this process grid to optimize
performance" — this benchmark runs the Jacobi sweep with 1-D strip and
2-D block decompositions of the same 16 processors.  Blocks halve the
boundary *bytes* (better surface-to-volume) at the price of twice the
*messages*; strips win on high-latency networks, blocks on low-latency
ones.  Compared on communication time (stencil codes of the era are
compute-dominated overall, so total time hides the effect).
"""

from repro import spmd_run
from repro.core.meshspectral import MeshContext
from repro.machines.catalog import CRAY_T3D, ETHERNET_SUNS
from repro.trace.analysis import summarize


def _comm_profile(machine, proc_grid, p=16, n=128, iters=10):
    def body(comm):
        return _poisson_fixed_dist(MeshContext(comm), n, n, proc_grid, iters)

    run = spmd_run(p, body, machine=machine, trace=True)
    s = summarize(run.tracer)
    return {
        "comm_time": s.max_comm_time,
        "messages": s.total_messages,
        "bytes": s.total_bytes,
        "elapsed": run.elapsed,
    }


def _poisson_fixed_dist(mesh, nx, ny, proc_grid, iters):
    import numpy as np
    from repro.comm.reductions import MAX

    h2 = (1.0 / (nx - 1)) ** 2
    uk = mesh.grid((nx, ny), dist=proc_grid, ghost=1)
    ukp = mesh.grid((nx, ny), dist=proc_grid, ghost=1)
    ii, jj = uk.coord_arrays()
    on_edge = (ii == 0) | (ii == nx - 1) | (jj == 0) | (jj == ny - 1)
    uk.interior[...] = np.where(on_edge, 1.0, 0.0)
    ukp.interior[...] = uk.interior

    def jacobi(out, u):
        out[...] = 0.25 * (u[-1, 0] + u[1, 0] + u[0, -1] + u[0, 1])

    for _ in range(iters):
        mesh.stencil_op(jacobi, ukp, uk, margin=1, flops_per_point=8.0)
        region = uk.interior_intersection(1)
        a, b = ukp.interior[region], uk.interior[region]
        local = float(np.max(np.abs(a - b))) if a.size else float("-inf")
        mesh.charge(2.0 * a.size)
        mesh.reduce(local, MAX)
        uk.interior[region] = ukp.interior[region]
    del h2
    return True


def test_block_shape(benchmark):
    def experiment():
        out = {}
        for machine in (CRAY_T3D, ETHERNET_SUNS):
            out[machine.name] = {
                "strips (16,1)": _comm_profile(machine, (16, 1)),
                "blocks (4,4)": _comm_profile(machine, (4, 4)),
            }
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nAblation — Poisson 128^2, 16 ranks, strips vs 2-D blocks")
    for name, shapes in results.items():
        print(f"  {name}:")
        for shape, prof in shapes.items():
            print(
                f"    {shape:>14}: comm {prof['comm_time'] * 1e3:8.3f} ms, "
                f"{prof['messages']:>5} msgs, {prof['bytes']:>8} bytes"
            )

    for shapes in results.values():
        strips, blocks = shapes["strips (16,1)"], shapes["blocks (4,4)"]
        # The structural trade: blocks halve the bytes, strips halve the
        # messages (boundary exchange only; reductions identical).
        assert blocks["bytes"] < strips["bytes"]
        assert blocks["messages"] > strips["messages"]

    # Low-latency T3D favours square blocks; the high-latency Ethernet
    # network favours strips.
    t3d, eth = results["cray-t3d"], results["ethernet-suns"]
    assert t3d["blocks (4,4)"]["comm_time"] < t3d["strips (16,1)"]["comm_time"]
    assert (
        eth["strips (16,1)"]["comm_time"] < eth["blocks (4,4)"]["comm_time"]
    )
