"""Figure 12: speedup of the parallel 2-D FFT on the (modelled) IBM SP.

Paper caption: "Disappointing performance is a result of too small a
ratio of computation to communication.  This parallelization of 2-D FFT
might nevertheless be sensible as part of a larger computation or for
problems exceeding the memory requirements of a single processor."
"""

from conftest import run_figure

from repro.bench.figures import FIG12_PROCS, figure12_fft2d


def test_fig12_fft2d_speedup(benchmark):
    (curve,) = run_figure(
        benchmark,
        lambda: figure12_fft2d(shape=(128, 128), repeats=5, procs=FIG12_PROCS),
        "Figure 12 — 2-D FFT speedup on the IBM SP (128x128, 5 repeats)",
    )

    # Disappointing: nowhere near perfect speedup anywhere on the curve.
    assert curve.peak().speedup < 8
    assert curve.at(32).efficiency < 0.25
    # Still better than sequential for small P.
    assert curve.at(4).speedup > 1.5
    # Single-rank overhead is negligible.
    assert 0.9 < curve.at(1).speedup <= 1.05
