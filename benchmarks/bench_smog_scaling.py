"""Extension study: airshed smog model scaling (paper §4.5.4).

The paper describes the CIT airshed code qualitatively (no speedup
figure survives in the scan), so this benchmark is labelled an
extension: strong scaling of the full transport + chemistry model on the
modelled Intel Paragon (one of the platforms §4.5.4 names).
"""

from repro.apps.smog import sequential_smog_time, smog_archetype
from repro.machines.catalog import INTEL_PARAGON


def test_smog_strong_scaling(benchmark):
    n, steps = 192, 4
    procs = (1, 2, 4, 8, 16, 32)

    def experiment():
        t_seq = sequential_smog_time(n, n, steps, INTEL_PARAGON)
        out = {}
        for p in procs:
            t = (
                smog_archetype()
                .run(p, n, n, steps=steps, machine=INTEL_PARAGON, gather=False)
                .elapsed
            )
            out[p] = t_seq / t
        return out

    speedups = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nExtension — airshed smog model strong scaling (Paragon, 192^2)")
    print("   P  speedup  efficiency")
    for p, s in speedups.items():
        print(f"{p:>4}  {s:>7.2f}  {s / p:>10.2f}")

    assert speedups[1] > 0.9
    assert speedups[16] > 8
    assert all(b >= a for a, b in zip(list(speedups.values()), list(speedups.values())[1:]))
