"""Ablation: splitter-computation strategy (paper §2.2).

The one-deep merge parameters can be computed by a single master (gather
samples, compute, broadcast) or replicated on every rank (allgather
samples, identical computation everywhere).  The paper presents both;
this benchmark quantifies the trade on two machines with very different
latency/compute balances.
"""

import numpy as np

from repro.apps.sorting import one_deep_mergesort, sequential_sort_time
from repro.machines.catalog import ETHERNET_SUNS, INTEL_DELTA


def _speedup(strategy, machine, data, p):
    arch = one_deep_mergesort(strategy=strategy)
    t = arch.run(p, data, machine=machine).elapsed
    return sequential_sort_time(data.size, machine) / t


def test_splitter_strategies(benchmark):
    rng = np.random.default_rng(3)
    data = rng.integers(0, 2**40, size=1 << 17)

    def experiment():
        out = {}
        for machine in (INTEL_DELTA, ETHERNET_SUNS):
            for p in (8, 32):
                out[(machine.name, p)] = (
                    _speedup("master", machine, data, p),
                    _speedup("replicated", machine, data, p),
                )
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nAblation — splitter strategy (one-deep mergesort, 128k keys)")
    print(f"{'machine':>15} {'P':>4} {'master':>9} {'replicated':>11}")
    for (name, p), (master, replicated) in results.items():
        print(f"{name:>15} {p:>4} {master:>9.2f} {replicated:>11.2f}")
    # Both strategies stay within a modest factor of one another; the
    # sample traffic is tiny compared with the data redistribution.
    for master, replicated in results.values():
        assert 0.5 < master / replicated < 2.0
