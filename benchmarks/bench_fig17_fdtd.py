"""Figure 17: speedup of the 3-D FDTD electromagnetics code on the
(modelled) IBM SP.

Paper caption: "The decrease in performance for more than ~16 processors
results from the ratio of computation to communication dropping too low
for efficiency."
"""

from conftest import run_figure

from repro.bench.figures import FIG17_PROCS, figure17_fdtd


def test_fig17_fdtd_speedup(benchmark):
    (curve,) = run_figure(
        benchmark,
        lambda: figure17_fdtd(n=32, steps=4, procs=FIG17_PROCS),
        "Figure 17 — 3-D FDTD speedup on the IBM SP (32^3 grid)",
    )

    peak = curve.peak()
    # The curve rises to a mid-teens peak...
    assert 8 <= peak.procs <= 16
    assert peak.speedup > 4
    # ...and decreases beyond it (the paper's claim).
    assert curve.at(18).speedup < peak.speedup
    assert 0.9 < curve.at(1).speedup <= 1.05
