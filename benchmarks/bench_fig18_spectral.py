"""Figure 18: speedup of the spectral incompressible-flow code on the
(modelled) IBM SP, relative to a 5-processor base.

Paper caption: "Because single-processor execution was not feasible due
to memory requirements, a minimum of 5 processors was used ...
Inefficiencies in executing the code on the base number of processors
(e.g. paging) probably explain the better-than-ideal speedup for small
numbers of processors."
"""

from conftest import run_figure

from repro.bench.figures import FIG18_PROCS, figure18_spectral


def test_fig18_spectral_speedup(benchmark):
    (curve,) = run_figure(
        benchmark,
        lambda: figure18_spectral(nr=256, nz=512, steps=2, procs=FIG18_PROCS),
        "Figure 18 — spectral flow speedup on the IBM SP (vs 5-processor base)",
    )

    ideal = {p: p / 5 for p in curve.procs}
    # Better than ideal at small processor counts (paging at the base)...
    assert curve.at(10).speedup > ideal[10]
    assert curve.at(15).speedup > ideal[15]
    # ...but below ideal at the largest configurations.
    assert curve.at(40).speedup < ideal[40]
    # The curve keeps rising through 40 processors, as in the figure.
    assert curve.is_monotonic()
