"""Payload size estimation."""

import numpy as np

from repro.util.nbytes import nbytes_of


class TestNbytesOf:
    def test_none_has_envelope_only(self):
        assert nbytes_of(None) == 16

    def test_ndarray_exact(self):
        arr = np.zeros(100, dtype=np.float64)
        assert nbytes_of(arr) == 16 + 800

    def test_ndarray_2d(self):
        arr = np.zeros((10, 10), dtype=np.int32)
        assert nbytes_of(arr) == 16 + 400

    def test_scalars(self):
        assert nbytes_of(3) == 16 + 8
        assert nbytes_of(2.5) == 16 + 8
        assert nbytes_of(1 + 2j) == 16 + 8
        assert nbytes_of(True) == 16 + 8

    def test_numpy_scalar(self):
        assert nbytes_of(np.float32(1.5)) == 16 + 4

    def test_bytes_and_str(self):
        assert nbytes_of(b"abcd") == 16 + 4
        assert nbytes_of("abcd") == 16 + 4

    def test_containers_recursive(self):
        inner = np.zeros(10)
        assert nbytes_of([inner, inner]) == 16 + 2 * (80 + 2)

    def test_dict(self):
        size = nbytes_of({"k": np.zeros(4)})
        assert size == 16 + (1 + 32 + 2)

    def test_tuple_nesting(self):
        assert nbytes_of(((1, 2), 3)) > nbytes_of((1, 2))

    def test_unknown_object_fixed_cost(self):
        class Blob:
            pass

        assert nbytes_of(Blob()) == 16 + 64

    def test_larger_array_larger_estimate(self):
        assert nbytes_of(np.zeros(1000)) > nbytes_of(np.zeros(10))
