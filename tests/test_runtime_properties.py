"""Property-based hardening of the runtime: randomized traffic patterns.

Hypothesis generates arbitrary (deadlock-free) communication patterns;
both backends must deliver exactly the same multisets of messages, and
virtual clocks must agree.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import spmd_run
from repro.comm.reductions import SUM
from repro.machines.model import MachineModel

TOY = MachineModel("toy", alpha=1e-4, beta=1e-7, flop_time=1e-7)


@st.composite
def traffic_patterns(draw):
    """A random all-send-then-all-receive pattern: every rank sends a
    drawn number of messages to drawn destinations, then receives
    exactly what it was sent (counts derived from the pattern)."""
    nprocs = draw(st.integers(2, 6))
    sends = []
    for src in range(nprocs):
        n = draw(st.integers(0, 6))
        dests = [draw(st.integers(0, nprocs - 1)) for _ in range(n)]
        sends.append(dests)
    return nprocs, sends


class TestRandomTraffic:
    @given(pattern=traffic_patterns())
    @settings(max_examples=40, deadline=None)
    def test_delivery_multisets_match(self, pattern):
        nprocs, sends = pattern
        expected = [[] for _ in range(nprocs)]
        for src, dests in enumerate(sends):
            for k, dest in enumerate(dests):
                expected[dest].append((src, k))

        def body(comm):
            for k, dest in enumerate(sends[comm.rank]):
                comm.send(dest, (comm.rank, k), tag=1)
            received = [comm.recv(tag=1) for _ in range(len(expected[comm.rank]))]
            return sorted(received)

        det = spmd_run(nprocs, body, machine=TOY, backend="deterministic")
        thr = spmd_run(nprocs, body, machine=TOY, backend="threads")
        for rank in range(nprocs):
            assert det.values[rank] == sorted(expected[rank])
            assert thr.values[rank] == sorted(expected[rank])

    @given(pattern=traffic_patterns(), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_clocks_backend_invariant_with_specific_sources(self, pattern, data):
        """When receives name their sources (deterministic program), the
        virtual clocks must be identical across backends."""
        nprocs, sends = pattern
        per_dest: list[list[tuple[int, int]]] = [[] for _ in range(nprocs)]
        for src, dests in enumerate(sends):
            for k, dest in enumerate(dests):
                per_dest[dest].append((src, k))
        work = [data.draw(st.integers(0, 10_000)) for _ in range(nprocs)]

        def body(comm):
            comm.charge(float(work[comm.rank]))
            for k, dest in enumerate(sends[comm.rank]):
                comm.send(dest, k, tag=10 + k)
            got = [
                comm.recv(source=src, tag=10 + k) for src, k in per_dest[comm.rank]
            ]
            return got

        det = spmd_run(nprocs, body, machine=TOY, backend="deterministic")
        thr = spmd_run(nprocs, body, machine=TOY, backend="threads")
        assert det.times == thr.times
        assert det.values == thr.values

    @given(
        nprocs=st.integers(2, 8),
        rounds=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_collective_sequences(self, nprocs, rounds, seed):
        """Random interleavings of collectives stay consistent."""
        rng = np.random.default_rng(seed)
        script = rng.integers(0, 4, size=rounds).tolist()

        def body(comm):
            out = []
            for op in script:
                if op == 0:
                    out.append(comm.allreduce(comm.rank + 1, SUM))
                elif op == 1:
                    out.append(tuple(comm.allgather(comm.rank)))
                elif op == 2:
                    out.append(comm.bcast(comm.rank if comm.rank == 0 else None))
                else:
                    out.append(comm.scan(1, SUM))
            return out

        res = spmd_run(nprocs, body, machine=TOY)
        for op_index, op in enumerate(script):
            column = [v[op_index] for v in res.values]
            if op == 0:
                assert column == [nprocs * (nprocs + 1) // 2] * nprocs
            elif op == 1:
                assert column == [tuple(range(nprocs))] * nprocs
            elif op == 2:
                assert column == [0] * nprocs
            else:
                assert column == list(range(1, nprocs + 1))


class TestFaultInjectionDuringCollectives:
    @pytest.mark.parametrize("backend", ["deterministic", "threads"])
    @pytest.mark.parametrize("faulty_rank", [0, 2])
    def test_failure_mid_allreduce(self, backend, faulty_rank):
        from repro.errors import RankFailedError

        def body(comm):
            if comm.rank == faulty_rank:
                raise RuntimeError("injected")
            comm.allreduce(1.0, SUM)

        kwargs = {"deadlock_timeout": 5.0} if backend == "threads" else {}
        with pytest.raises(RankFailedError) as info:
            spmd_run(4, body, backend=backend, **kwargs)
        assert info.value.rank == faulty_rank

    def test_failure_inside_group(self):
        from repro.errors import RankFailedError

        def body(comm):
            sub = comm.split(comm.rank % 2)
            if comm.rank == 3:
                raise RuntimeError("group fault")
            sub.barrier()
            comm.barrier()

        with pytest.raises(RankFailedError) as info:
            spmd_run(4, body)
        assert info.value.rank == 3

    def test_failure_during_redistribution(self):
        from repro.errors import RankFailedError
        from repro.comm import col_layout, redistribute, row_layout

        def body(comm):
            if comm.rank == 1:
                raise ValueError("mid-redistribution fault")
            old = row_layout((6, 6), comm.size)
            new = col_layout((6, 6), comm.size)
            redistribute(comm, np.zeros(old.shape(comm.rank)), old, new)

        with pytest.raises(RankFailedError):
            spmd_run(3, body)
