"""The shared app registry: one source of truth for named workloads."""

import pytest

from repro.apps import registry
from repro.apps.registry import AppSpec
from repro.errors import ReproError
from repro.verify.digest import value_digest

EXPECTED_APPS = {"mergesort", "poisson", "fft2d", "imagepipe", "knapfarm"}


def _digest(result):
    return value_digest([result.times, result.values])


class TestRegistryContents:
    def test_standard_apps_registered(self):
        assert EXPECTED_APPS <= set(registry.names())

    def test_specs_cover_names(self):
        assert tuple(s.name for s in registry.specs()) == registry.names()

    def test_unknown_app_raises_with_choices(self):
        with pytest.raises(ReproError, match="unknown app"):
            registry.get("no-such-app")

    def test_defaults_are_jsonable_scalars(self):
        # The serve wire protocol sends params as JSON; every default
        # must round-trip as a plain scalar.
        for spec in registry.specs():
            for key, value in spec.defaults.items():
                assert isinstance(value, (int, float, bool, str)), (
                    spec.name,
                    key,
                )

    def test_verify_overrides_are_known_params(self):
        for spec in registry.specs():
            assert set(spec.verify_overrides) <= set(spec.defaults), spec.name


class TestParams:
    def test_params_with_merges_over_defaults(self):
        spec = registry.get("mergesort")
        params = spec.params_with({"n": 128})
        assert params["n"] == 128
        assert params["nprocs"] == spec.defaults["nprocs"]

    def test_params_with_rejects_unknown_keys(self):
        with pytest.raises(ReproError, match="no parameter"):
            registry.get("poisson").params_with({"bogus": 1})

    def test_params_with_none_is_defaults(self):
        spec = registry.get("fft2d")
        assert spec.params_with(None) == dict(spec.defaults)


class TestRuns:
    def test_run_accepts_machine_name(self):
        a = registry.get("mergesort").run({"n": 256}, machine="ibm-sp")
        b = registry.get("mergesort").run({"n": 256}, machine="ibm-sp")
        assert _digest(a) == _digest(b)

    def test_equal_params_equal_digests(self):
        # The determinism contract the serve cache keys on: explicit
        # defaults and omitted defaults are the same run.
        spec = registry.get("knapfarm")
        explicit = spec.run(dict(spec.defaults), machine="ibm-sp")
        implicit = spec.run(machine="ibm-sp")
        assert _digest(explicit) == _digest(implicit)

    def test_seed_changes_data(self):
        spec = registry.get("mergesort")
        a = spec.run({"n": 256, "seed": 0})
        b = spec.run({"n": 256, "seed": 1})
        assert _digest(a) != _digest(b)

    def test_pipeline_apps_derive_nprocs(self):
        run = registry.get("imagepipe").run(machine="ibm-sp")
        assert len(run.times) > 1


class TestRegistration:
    def test_reregister_identical_is_idempotent(self):
        spec = registry.get("mergesort")
        assert registry.register(spec) is spec

    def test_conflicting_register_raises(self):
        spec = registry.get("mergesort")
        clone = AppSpec(
            name=spec.name,
            archetype=spec.archetype,
            description="different",
            runner=spec.runner,
            defaults=spec.defaults,
        )
        with pytest.raises(ReproError, match="already registered"):
            registry.register(clone)

    def test_register_unregister_roundtrip(self):
        spec = AppSpec(
            name="throwaway-test-app",
            archetype="test",
            description="",
            runner=lambda params, *, machine, mode, trace: None,
            defaults={},
        )
        registry.register(spec)
        try:
            assert registry.get("throwaway-test-app") is spec
        finally:
            registry.unregister("throwaway-test-app")
        with pytest.raises(ReproError):
            registry.get("throwaway-test-app")


class TestSharedConsumers:
    def test_conformance_programs_resolve_registry_apps(self):
        from repro.verify.conformance import PROGRAMS

        for program in PROGRAMS.values():
            assert program.archetype in {
                registry.get(n).archetype for n in registry.names()
            }

    def test_wallclock_descriptions_come_from_registry(self):
        from repro.bench.wallclock import WORKLOADS

        for name, (_, description) in WORKLOADS.items():
            assert description == registry.get(name).description
