"""Branch-and-bound archetype and the knapsack application."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.branchbound import BnBProblem, BnBResult, BranchAndBound
from repro.errors import ArchetypeError
from repro.apps.knapsack import (
    KnapsackInstance,
    dp_reference,
    fractional_bound,
    knapsack_bnb,
    random_instance,
)


def interval_problem(depth: int, target: int) -> BnBProblem:
    """Toy search: find the integer *target* in [0, 2^depth) by interval
    bisection; value of a leaf n is |n - target| and the bound of an
    interval is its minimum achievable |n - target|."""

    def root():
        return (0, 2**depth)

    def is_complete(node):
        lo, hi = node
        return hi - lo == 1

    def branch(node):
        lo, hi = node
        mid = (lo + hi) // 2
        return [(lo, mid), (mid, hi)]

    def bound(node):
        lo, hi = node
        if lo <= target < hi:
            return 0.0
        return float(min(abs(lo - target), abs(hi - 1 - target)))

    return BnBProblem(
        root=root,
        branch=branch,
        bound=bound,
        is_complete=is_complete,
        value=lambda node: float(abs(node[0] - target)),
    )


class TestArchetypeMechanics:
    def test_invalid_chunk(self):
        with pytest.raises(ArchetypeError):
            BranchAndBound(interval_problem(3, 1), chunk=0)

    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_finds_target(self, p):
        arch = BranchAndBound(interval_problem(6, 37), chunk=4)
        res = arch.run(p)
        for v in res.values:
            assert isinstance(v, BnBResult)
            assert v.value == 0.0
            assert v.solution == (37, 38)

    def test_result_on_every_rank(self):
        res = BranchAndBound(interval_problem(5, 9)).run(4)
        assert len({v.value for v in res.values}) == 1
        assert all(v.solution == res.values[0].solution for v in res.values)

    def test_pruning_reduces_expansion(self):
        """Best-first with an exact bound expands only the target path."""
        res = BranchAndBound(interval_problem(10, 512), chunk=1).run(1)
        # depth-10 bisection: ~10 expansions on the exact-bound path, far
        # fewer than the 2^10 leaves.
        assert res.values[0].expanded <= 25

    def test_root_already_complete(self):
        problem = interval_problem(0, 0)  # root (0,1) is a leaf
        for p in (1, 3):
            res = BranchAndBound(problem).run(p)
            assert res.values[0].value == 0.0

    def test_infeasible_search(self):
        """A search whose every branch dead-ends reports +inf."""
        problem = BnBProblem(
            root=lambda: 3,
            branch=lambda n: [n - 1] if n > 0 else [],
            bound=lambda n: 0.0,
            is_complete=lambda n: False,
            value=lambda n: 0.0,
        )
        for p in (1, 2):
            res = BranchAndBound(problem).run(p)
            assert res.values[0].value == float("inf")
            assert res.values[0].solution is None

    def test_work_charged(self):
        from repro.machines.model import MachineModel

        toy = MachineModel("toy", alpha=1e-5, beta=0, flop_time=1e-6)
        problem = interval_problem(6, 3)
        problem.branch_cost = 100.0
        res = BranchAndBound(problem).run(1, machine=toy)
        assert res.times[0] > 0


class TestKnapsack:
    def test_instance_validation(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            KnapsackInstance.create([1], [1, 2], 5)
        with pytest.raises(ReproError):
            KnapsackInstance.create([1], [0], 5)
        with pytest.raises(ReproError):
            KnapsackInstance.create([-1], [1], 5)

    def test_density_ordering(self):
        inst = KnapsackInstance.create([10, 100], [10, 10], 10)
        assert inst.values[0] == 100.0

    def test_fractional_bound_admissible(self):
        inst = random_instance(12, seed=5)
        root = (0, inst.capacity, 0.0, ())
        assert -fractional_bound(inst, root) >= dp_reference(inst) - 1e-9

    def test_dp_reference_known_case(self):
        inst = KnapsackInstance.create([60, 100, 120], [10, 20, 30], 50)
        assert dp_reference(inst) == 220.0

    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_matches_dp(self, p):
        inst = random_instance(16, seed=2)
        res = knapsack_bnb(inst).run(p)
        assert -res.values[0].value == pytest.approx(dp_reference(inst))

    @given(n=st.integers(4, 14), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_dp(self, n, seed):
        inst = random_instance(n, seed=seed)
        res = knapsack_bnb(inst, chunk=8).run(3)
        assert -res.values[0].value == pytest.approx(dp_reference(inst))

    def test_solution_is_feasible_and_optimal(self):
        inst = random_instance(14, seed=9)
        res = knapsack_bnb(inst).run(2)
        best = res.values[0]
        chosen = best.solution[3]
        weight = sum(inst.weights[i] for i in chosen)
        value = sum(inst.values[i] for i in chosen)
        assert weight <= inst.capacity + 1e-9
        assert value == pytest.approx(-best.value)

    def test_nondeterministic_schedule_same_optimum(self):
        """The archetype's guarantee: exploration may differ, the optimum
        may not."""
        inst = random_instance(18, seed=4)
        seq = knapsack_bnb(inst).run(4, mode="sequential")
        thr = knapsack_bnb(inst).run(4, mode="threads")
        assert seq.values[0].value == thr.values[0].value

    def test_chunk_tradeoff_runs(self):
        inst = random_instance(15, seed=6)
        small = knapsack_bnb(inst, chunk=1).run(3).values[0]
        large = knapsack_bnb(inst, chunk=64).run(3).values[0]
        assert small.value == large.value
