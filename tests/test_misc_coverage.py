"""Coverage of corners the focused suites don't reach."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import spmd_run
from repro.comm import SUM, block_layout, redistribute
from repro.machines.model import MachineModel

TOY = MachineModel("toy", alpha=1e-4, beta=1e-7, flop_time=1e-7)


class TestDtypeFidelity:
    @pytest.mark.parametrize(
        "dtype", [np.int8, np.uint16, np.float32, np.complex64, np.complex128]
    )
    def test_collectives_preserve_dtype(self, dtype):
        def body(comm):
            v = np.ones(4, dtype=dtype) * (comm.rank + 1)
            total = comm.allreduce(v, SUM)
            gathered = comm.bcast(total if comm.rank == 0 else None)
            return gathered.dtype == dtype

        assert all(spmd_run(3, body).values)

    @given(
        dims=st.sampled_from([(2, 1, 2), (1, 4, 1), (2, 2, 1)]),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=10, deadline=None)
    def test_redistribute_3d_random_contents(self, dims, seed):
        rng = np.random.default_rng(seed)
        full = rng.normal(size=(4, 6, 4)) + 1j * rng.normal(size=(4, 6, 4))
        p = int(np.prod(dims))

        def body(comm):
            old = block_layout(full.shape, dims)
            new = block_layout(full.shape, (p, 1, 1))
            moved = redistribute(comm, full[old.slices(comm.rank)].copy(), old, new)
            return np.array_equal(moved, full[new.slices(comm.rank)])

        assert all(spmd_run(p, body).values)


class TestMessageOrdering:
    def test_same_source_same_tag_fifo(self):
        """Non-overtaking: two messages with identical (source, tag)
        arrive in send order even with arrival-order matching."""

        def body(comm):
            if comm.rank == 0:
                for k in range(10):
                    comm.send(1, k, tag=1)
                return None
            return [comm.recv(source=0, tag=1) for _ in range(10)]

        res = spmd_run(2, body, machine=TOY)
        assert res.values[1] == list(range(10))

    def test_wildcard_prefers_earliest_arrival(self):
        """With distinct senders, the wildcard receive takes the message
        that arrived first in virtual time, not delivery order."""

        def body(comm):
            if comm.rank == 2:
                # Rank 1's send happens later in virtual time because it
                # computes first.
                first = comm.recv()
                second = comm.recv()
                return (first, second)
            if comm.rank == 1:
                comm.charge(10**6)  # 0.1 s on TOY
                comm.send(2, "late")
            else:
                comm.send(2, "early")
            return None

        res = spmd_run(3, body, machine=TOY)
        assert res.values[2] == ("early", "late")

    def test_seq_monotonic_per_sender(self):
        from repro.runtime.message import Message

        def body(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1)
                comm.send(1, "b", tag=2)
                return None
            m1 = comm.recv_msg(source=0, tag=1)
            m2 = comm.recv_msg(source=0, tag=2)
            assert isinstance(m1, Message)
            return m2.seq > m1.seq

        assert spmd_run(2, body).values[1] is True


class TestGridDtypes:
    def test_complex_grid_roundtrip(self):
        from repro.core.grid import DistGrid

        full = (np.arange(16.0) + 1j * np.arange(16.0)).reshape(4, 4)

        def body(comm):
            g = DistGrid.from_global(comm, full if comm.rank == 0 else None)
            back = g.gather(root=0)
            return back is None or np.array_equal(back, full)

        assert all(spmd_run(4, body).values)

    def test_ghost_two_stencil(self):
        """A 5-wide stencil (ghost=2) across rank boundaries."""
        from repro.core import MeshProgram

        full = np.arange(64.0).reshape(8, 8)

        def prog(mesh):
            from repro.core.grid import DistGrid

            u = DistGrid.from_global(
                mesh.comm, full if mesh.comm.rank == 0 else None, dist="rows", ghost=2
            )
            out = u.like()
            mesh.stencil_op(
                lambda o, s: o.__setitem__(..., s[-2, 0] + s[2, 0]),
                out,
                u,
                margin=2,
            )
            return out.gather(root=0)

        a = MeshProgram(prog).run(1).values[0]
        b = MeshProgram(prog).run(4).values[0]
        assert np.array_equal(a, b)
        assert a[3, 3] == full[1, 3] + full[5, 3]


class TestRunResultSurface:
    def test_repr_and_fields(self):
        res = spmd_run(2, lambda comm: comm.rank, machine=TOY)
        assert res.nprocs == 2
        assert res.machine is TOY
        assert res.elapsed >= 0.0

    def test_elapsed_empty_times(self):
        from repro.runtime.spmd import RunResult

        empty = RunResult(values=[], times=[], machine=TOY)
        assert empty.elapsed == 0.0

    def test_speedup_over_zero_elapsed(self):
        from repro.errors import ReproError
        from repro.runtime.spmd import RunResult

        res = RunResult(values=[None], times=[0.0], machine=TOY)
        with pytest.raises(ReproError):
            res.speedup_over(1.0)


class TestVersion1PoissonWithSource:
    def test_source_variant_matches_reference(self):
        from repro.apps.poisson import reference_poisson
        from repro.apps.version1 import poisson_v1

        f = lambda i, j: np.full(np.broadcast(i, j).shape, 2.0)  # noqa: E731
        u1, it1 = poisson_v1(8, 8, f=f, tolerance=1e-3)
        u2, it2 = reference_poisson(8, 8, f=f, tolerance=1e-3)
        assert it1 == it2
        assert np.allclose(u1, u2, atol=1e-12)


class TestPayloadVariety:
    @given(
        payload=st.recursive(
            st.one_of(
                st.integers(-1000, 1000),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.text(max_size=10),
                st.none(),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=4), children, max_size=3),
                st.tuples(children, children),
            ),
            max_leaves=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_payloads_roundtrip(self, payload):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, payload, tag=1)
                return None
            return comm.recv(source=0, tag=1)

        res = spmd_run(2, body)
        assert res.values[1] == payload

    @given(
        shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_array_broadcast_exact(self, shape, seed):
        arr = np.random.default_rng(seed).normal(size=shape)

        def body(comm):
            got = comm.bcast(arr if comm.rank == 0 else None)
            return np.array_equal(got, arr)

        assert all(spmd_run(3, body).values)


class TestDocstringQuickstart:
    def test_package_docstring_example_works(self, rng):
        """The quickstart in repro/__init__ must actually run."""
        from repro import INTEL_DELTA
        from repro.apps.sorting import one_deep_mergesort

        data = rng.integers(0, 10**6, size=2_000)
        result = one_deep_mergesort().run(8, data, machine=INTEL_DELTA)
        assert np.array_equal(np.concatenate(result.values), np.sort(data))
