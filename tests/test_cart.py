"""Cartesian process grids."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import DistributionError
from repro.comm.cart import CartGrid, choose_proc_grid


class TestCartGrid:
    def test_coords_row_major(self):
        g = CartGrid((2, 3))
        assert [g.coords(r) for r in range(6)] == [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 0),
            (1, 1),
            (1, 2),
        ]

    @given(
        dims=st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 4)),
        data=st.data(),
    )
    def test_roundtrip(self, dims, data):
        g = CartGrid(dims)
        rank = data.draw(st.integers(0, g.nranks - 1))
        assert g.rank_of(g.coords(rank)) == rank

    def test_shift_interior(self):
        g = CartGrid((3, 3))
        centre = g.rank_of((1, 1))
        assert g.shift(centre, 0, -1) == g.rank_of((0, 1))
        assert g.shift(centre, 1, +1) == g.rank_of((1, 2))

    def test_shift_off_edge(self):
        g = CartGrid((3, 3))
        corner = g.rank_of((0, 0))
        assert g.shift(corner, 0, -1) is None
        assert g.shift(corner, 1, -1) is None

    def test_shift_periodic(self):
        g = CartGrid((3, 2))
        corner = g.rank_of((0, 0))
        assert g.shift(corner, 0, -1, periodic=True) == g.rank_of((2, 0))
        assert g.shift(corner, 1, -1, periodic=True) == g.rank_of((0, 1))

    def test_invalid_dims(self):
        with pytest.raises(DistributionError):
            CartGrid((0, 2))
        with pytest.raises(DistributionError):
            CartGrid(())

    def test_bad_rank(self):
        with pytest.raises(DistributionError):
            CartGrid((2, 2)).coords(4)

    def test_bad_coords(self):
        with pytest.raises(DistributionError):
            CartGrid((2, 2)).rank_of((2, 0))

    def test_bad_axis(self):
        with pytest.raises(DistributionError):
            CartGrid((2, 2)).shift(0, 2, 1)


class TestChooseProcGrid:
    @pytest.mark.parametrize(
        "p,ndim,expected",
        [
            (4, 2, (2, 2)),
            (8, 3, (2, 2, 2)),
            (12, 2, (4, 3)),
            (1, 2, (1, 1)),
            (7, 2, (7, 1)),
            (100, 2, (10, 10)),
        ],
    )
    def test_known_factorisations(self, p, ndim, expected):
        assert choose_proc_grid(p, ndim) == expected

    @given(p=st.integers(1, 512), ndim=st.integers(1, 4))
    def test_product_is_p(self, p, ndim):
        dims = choose_proc_grid(p, ndim)
        assert len(dims) == ndim
        assert math.prod(dims) == p
        assert tuple(sorted(dims, reverse=True)) == dims

    @given(p=st.integers(1, 256))
    def test_near_square_2d(self, p):
        a, b = choose_proc_grid(p, 2)
        # No dimension pairing can be more balanced for this p.
        best = min(
            max(d, p // d) for d in range(1, int(math.isqrt(p)) + 1) if p % d == 0
        )
        assert max(a, b) == best

    def test_invalid(self):
        with pytest.raises(DistributionError):
            choose_proc_grid(0, 2)
        with pytest.raises(DistributionError):
            choose_proc_grid(4, 0)
