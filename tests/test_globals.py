"""Copy-consistent global variables."""

import numpy as np
import pytest

from repro import spmd_run
from repro.comm.reductions import MAX, SUM
from repro.core.globals import GlobalVar
from repro.errors import ArchetypeError, RankFailedError


class TestGlobalVar:
    def test_synced_initialisation(self):
        def body(comm):
            gv = GlobalVar(comm, value=comm.rank * 100, sync=True)
            return gv.value

        res = spmd_run(4, body)
        assert res.values == [0, 0, 0, 0]

    def test_unsynced_initialisation_keeps_local(self):
        def body(comm):
            return GlobalVar(comm, value=comm.rank).value

        res = spmd_run(3, body)
        assert res.values == [0, 1, 2]

    def test_set_from_root(self):
        def body(comm):
            gv = GlobalVar(comm, value=None)
            gv.set_from_root("payload" if comm.rank == 1 else None, root=1)
            return gv.value

        res = spmd_run(3, body)
        assert res.values == ["payload"] * 3

    def test_set_from_reduction(self):
        def body(comm):
            gv = GlobalVar(comm, value=0.0)
            gv.set_from_reduction(float(comm.rank + 1), SUM)
            return gv.value

        res = spmd_run(4, body)
        assert res.values == [10.0] * 4

    def test_reduction_establishes_consistency(self):
        def body(comm):
            gv = GlobalVar(comm, value=float(comm.rank))
            gv.set_from_reduction(float(comm.rank), MAX)
            gv.check_consistent()
            return True

        assert all(spmd_run(5, body).values)

    def test_check_consistent_detects_divergence(self):
        def body(comm):
            gv = GlobalVar(comm, value=0.0)
            gv.assign(float(comm.rank))  # violates the discipline
            gv.check_consistent()

        with pytest.raises(RankFailedError) as info:
            spmd_run(3, body)
        assert isinstance(info.value.original, ArchetypeError)

    def test_check_consistent_arrays(self):
        def body(comm):
            gv = GlobalVar(comm, value=np.arange(5))
            gv.check_consistent()
            return True

        assert all(spmd_run(3, body).values)

    def test_check_consistent_array_divergence(self):
        def body(comm):
            arr = np.arange(5.0)
            arr[0] = comm.rank
            GlobalVar(comm, value=arr).check_consistent()

        with pytest.raises(RankFailedError):
            spmd_run(2, body)

    def test_assign_pure_function_of_consistent_state(self):
        def body(comm):
            gv = GlobalVar(comm, value=2.0)
            gv.assign(gv.value * 3)  # deterministic, consistent
            gv.check_consistent()
            return gv.value

        res = spmd_run(4, body)
        assert res.values == [6.0] * 4
