"""Property-based Mailbox tests (seeded stdlib ``random``).

Each property generates a randomized stream of messages and receive
patterns from ``random.Random(seed)`` and checks the matching invariants
the runtime's correctness rests on:

- match order is by earliest virtual arrival (ties by source, then seq),
  independent of delivery order;
- wildcard source/tag patterns match exactly the envelope predicate;
- FIFO per (source, tag): same-channel messages are always taken in send
  order, under any receive pattern that matches them;
- ``has_match``/``take_match``/``match_indices`` agree with each other.
"""

import random

import pytest

from repro.runtime.mailbox import Mailbox
from repro.runtime.message import ANY_SOURCE, ANY_TAG, Message

SEEDS = range(20)


def _random_messages(rng: random.Random, n: int) -> list[Message]:
    """A legal message population: per-source seq strictly increasing and
    arrival nondecreasing in seq (clocks are monotonic)."""
    seq_of: dict[int, int] = {}
    clock_of: dict[int, float] = {}
    out = []
    for _ in range(n):
        source = rng.randrange(4)
        seq_of[source] = seq_of.get(source, 0) + 1
        clock_of[source] = clock_of.get(source, 0.0) + rng.random()
        out.append(
            Message(
                source=source,
                dest=0,
                tag=rng.randrange(3),
                payload=None,
                nbytes=8,
                arrival=clock_of[source],
                seq=seq_of[source],
            )
        )
    return out


def _drain(mailbox: Mailbox, source: int, tag: int) -> list[Message]:
    out = []
    while True:
        msg = mailbox.take_match(source, tag)
        if msg is None:
            return out
        out.append(msg)


@pytest.mark.parametrize("seed", SEEDS)
def test_match_order_is_arrival_order_regardless_of_delivery_order(seed):
    rng = random.Random(seed)
    msgs = _random_messages(rng, 30)
    delivery = msgs[:]
    rng.shuffle(delivery)  # delivery order ≠ send order
    mailbox = Mailbox()
    for m in delivery:
        mailbox.put(m)
    drained = _drain(mailbox, ANY_SOURCE, ANY_TAG)
    keys = [(m.arrival, m.source, m.seq) for m in drained]
    assert keys == sorted(keys), "wildcard drain not in (arrival, source, seq) order"
    assert len(drained) == len(msgs)


@pytest.mark.parametrize("seed", SEEDS)
def test_wildcard_patterns_match_exactly_the_predicate(seed):
    rng = random.Random(seed)
    msgs = _random_messages(rng, 25)
    for pattern_source in (ANY_SOURCE, 0, 1, 2, 3):
        for pattern_tag in (ANY_TAG, 0, 1, 2):
            mailbox = Mailbox()
            for m in msgs:
                mailbox.put(m)
            expected = [
                m
                for m in msgs
                if (pattern_source in (ANY_SOURCE, m.source))
                and (pattern_tag in (ANY_TAG, m.tag))
            ]
            assert mailbox.has_match(pattern_source, pattern_tag) == bool(expected)
            assert len(mailbox.match_indices(pattern_source, pattern_tag)) == len(
                expected
            )
            drained = _drain(mailbox, pattern_source, pattern_tag)
            assert sorted((m.source, m.seq) for m in drained) == sorted(
                (m.source, m.seq) for m in expected
            )
            # Non-matching messages must all still be pending.
            assert len(mailbox) == len(msgs) - len(expected)


@pytest.mark.parametrize("seed", SEEDS)
def test_fifo_per_source_and_tag(seed):
    """Under a random interleaving of receives (random legal patterns),
    messages on one (source, tag) channel come out in send order."""
    rng = random.Random(seed)
    msgs = _random_messages(rng, 40)
    mailbox = Mailbox()
    for m in msgs:
        mailbox.put(m)
    taken: list[Message] = []
    while len(mailbox):
        source = rng.choice([ANY_SOURCE, 0, 1, 2, 3])
        tag = rng.choice([ANY_TAG, 0, 1, 2])
        msg = mailbox.take_match(source, tag)
        if msg is not None:
            taken.append(msg)
    per_channel: dict[tuple[int, int], list[int]] = {}
    for m in taken:
        per_channel.setdefault((m.source, m.tag), []).append(m.seq)
    for channel, seqs in per_channel.items():
        assert seqs == sorted(seqs), f"channel {channel} violated FIFO: {seqs}"
    assert len(taken) == len(msgs)


@pytest.mark.parametrize("seed", SEEDS)
def test_take_match_agrees_with_match_indices(seed):
    rng = random.Random(seed)
    msgs = _random_messages(rng, 20)
    mailbox = Mailbox()
    for m in msgs:
        mailbox.put(m)
    for _ in range(60):
        source = rng.choice([ANY_SOURCE, 0, 1, 2, 3])
        tag = rng.choice([ANY_TAG, 0, 1, 2])
        indices = mailbox.match_indices(source, tag)
        assert mailbox.has_match(source, tag) == bool(indices)
        if indices:
            # take_match must return one of the enumerated candidates —
            # specifically the earliest-arriving one.
            candidates = [mailbox.peek_at(i) for i in indices]
            best = min(candidates, key=lambda m: (m.arrival, m.source, m.seq))
            msg = mailbox.take_match(source, tag)
            assert msg is best
        if not len(mailbox):
            break


@pytest.mark.parametrize("seed", SEEDS)
def test_ctx_isolation(seed):
    """Messages of one communication context are invisible to another's
    receives, wildcards included."""
    rng = random.Random(seed)
    mailbox = Mailbox()
    counts = {0: 0, 1: 0}
    for i in range(20):
        ctx = rng.randrange(2)
        counts[ctx] += 1
        mailbox.put(
            Message(
                source=rng.randrange(3),
                dest=0,
                tag=0,
                payload=None,
                nbytes=8,
                arrival=float(i),
                seq=i,
                ctx=ctx,
            )
        )
    for ctx, expected in counts.items():
        got = 0
        while mailbox.take_match(ANY_SOURCE, ANY_TAG, ctx) is not None:
            got += 1
        assert got == expected
