"""Property-based Mailbox tests (seeded stdlib ``random``).

Each property generates a randomized stream of messages and receive
patterns from ``random.Random(seed)`` and checks the matching invariants
the runtime's correctness rests on:

- match order is by earliest virtual arrival (ties by source, then seq),
  independent of delivery order;
- wildcard source/tag patterns match exactly the envelope predicate;
- FIFO per (source, tag): same-channel messages are always taken in send
  order, under any receive pattern that matches them;
- ``has_match``/``take_match``/``match_indices`` agree with each other.
"""

import random
import time

import pytest

from repro import fastpath
from repro.runtime.mailbox import Mailbox, _LinearMailbox
from repro.runtime.message import ANY_SOURCE, ANY_TAG, Message

SEEDS = range(20)


def _random_messages(rng: random.Random, n: int) -> list[Message]:
    """A legal message population: per-source seq strictly increasing and
    arrival nondecreasing in seq (clocks are monotonic)."""
    seq_of: dict[int, int] = {}
    clock_of: dict[int, float] = {}
    out = []
    for _ in range(n):
        source = rng.randrange(4)
        seq_of[source] = seq_of.get(source, 0) + 1
        clock_of[source] = clock_of.get(source, 0.0) + rng.random()
        out.append(
            Message(
                source=source,
                dest=0,
                tag=rng.randrange(3),
                payload=None,
                nbytes=8,
                arrival=clock_of[source],
                seq=seq_of[source],
            )
        )
    return out


def _drain(mailbox: Mailbox, source: int, tag: int) -> list[Message]:
    out = []
    while True:
        msg = mailbox.take_match(source, tag)
        if msg is None:
            return out
        out.append(msg)


@pytest.mark.parametrize("seed", SEEDS)
def test_match_order_is_arrival_order_regardless_of_delivery_order(seed):
    rng = random.Random(seed)
    msgs = _random_messages(rng, 30)
    delivery = msgs[:]
    rng.shuffle(delivery)  # delivery order ≠ send order
    mailbox = Mailbox()
    for m in delivery:
        mailbox.put(m)
    drained = _drain(mailbox, ANY_SOURCE, ANY_TAG)
    keys = [(m.arrival, m.source, m.seq) for m in drained]
    assert keys == sorted(keys), "wildcard drain not in (arrival, source, seq) order"
    assert len(drained) == len(msgs)


@pytest.mark.parametrize("seed", SEEDS)
def test_wildcard_patterns_match_exactly_the_predicate(seed):
    rng = random.Random(seed)
    msgs = _random_messages(rng, 25)
    for pattern_source in (ANY_SOURCE, 0, 1, 2, 3):
        for pattern_tag in (ANY_TAG, 0, 1, 2):
            mailbox = Mailbox()
            for m in msgs:
                mailbox.put(m)
            expected = [
                m
                for m in msgs
                if (pattern_source in (ANY_SOURCE, m.source))
                and (pattern_tag in (ANY_TAG, m.tag))
            ]
            assert mailbox.has_match(pattern_source, pattern_tag) == bool(expected)
            assert len(mailbox.match_indices(pattern_source, pattern_tag)) == len(
                expected
            )
            drained = _drain(mailbox, pattern_source, pattern_tag)
            assert sorted((m.source, m.seq) for m in drained) == sorted(
                (m.source, m.seq) for m in expected
            )
            # Non-matching messages must all still be pending.
            assert len(mailbox) == len(msgs) - len(expected)


@pytest.mark.parametrize("seed", SEEDS)
def test_fifo_per_source_and_tag(seed):
    """Under a random interleaving of receives (random legal patterns),
    messages on one (source, tag) channel come out in send order."""
    rng = random.Random(seed)
    msgs = _random_messages(rng, 40)
    mailbox = Mailbox()
    for m in msgs:
        mailbox.put(m)
    taken: list[Message] = []
    while len(mailbox):
        source = rng.choice([ANY_SOURCE, 0, 1, 2, 3])
        tag = rng.choice([ANY_TAG, 0, 1, 2])
        msg = mailbox.take_match(source, tag)
        if msg is not None:
            taken.append(msg)
    per_channel: dict[tuple[int, int], list[int]] = {}
    for m in taken:
        per_channel.setdefault((m.source, m.tag), []).append(m.seq)
    for channel, seqs in per_channel.items():
        assert seqs == sorted(seqs), f"channel {channel} violated FIFO: {seqs}"
    assert len(taken) == len(msgs)


@pytest.mark.parametrize("seed", SEEDS)
def test_take_match_agrees_with_match_indices(seed):
    rng = random.Random(seed)
    msgs = _random_messages(rng, 20)
    mailbox = Mailbox()
    for m in msgs:
        mailbox.put(m)
    for _ in range(60):
        source = rng.choice([ANY_SOURCE, 0, 1, 2, 3])
        tag = rng.choice([ANY_TAG, 0, 1, 2])
        indices = mailbox.match_indices(source, tag)
        assert mailbox.has_match(source, tag) == bool(indices)
        if indices:
            # take_match must return one of the enumerated candidates —
            # specifically the earliest-arriving one.
            candidates = [mailbox.peek_at(i) for i in indices]
            best = min(candidates, key=lambda m: (m.arrival, m.source, m.seq))
            msg = mailbox.take_match(source, tag)
            assert msg is best
        if not len(mailbox):
            break


@pytest.mark.parametrize("seed", SEEDS)
def test_ctx_isolation(seed):
    """Messages of one communication context are invisible to another's
    receives, wildcards included."""
    rng = random.Random(seed)
    mailbox = Mailbox()
    counts = {0: 0, 1: 0}
    for i in range(20):
        ctx = rng.randrange(2)
        counts[ctx] += 1
        mailbox.put(
            Message(
                source=rng.randrange(3),
                dest=0,
                tag=0,
                payload=None,
                nbytes=8,
                arrival=float(i),
                seq=i,
                ctx=ctx,
            )
        )
    for ctx, expected in counts.items():
        got = 0
        while mailbox.take_match(ANY_SOURCE, ANY_TAG, ctx) is not None:
            got += 1
        assert got == expected


def _indexed_mailbox() -> Mailbox:
    """An indexed (fast-path) mailbox regardless of the suite's mode."""
    with fastpath.forced(True):
        box = Mailbox()
    assert type(box) is Mailbox
    return box


@pytest.mark.parametrize("seed", SEEDS)
def test_indexed_mailbox_equals_linear_reference(seed):
    """Drive the channel-indexed mailbox and the historical linear-scan
    implementation with one randomized stream of deliveries, blocking
    takes, indexed takes (the fuzzer's path), and posted receives; every
    observable — selected messages, membership, post fulfilment, queue
    length — must agree at every step."""
    rng = random.Random(1000 + seed)
    fast = _indexed_mailbox()
    ref = _LinearMailbox()
    feed = iter(_random_messages(rng, 80))
    live_posts: list[tuple[int, int]] = []  # (fast post_id, ref post_id)
    for _ in range(400):
        action = rng.random()
        source = rng.choice([ANY_SOURCE, 0, 1, 2, 3])
        tag = rng.choice([ANY_TAG, 0, 1, 2])
        if action < 0.35:
            msg = next(feed, None)
            if msg is not None:
                fast.put(msg)
                ref.put(msg)
        elif action < 0.55:
            a, b = fast.take_match(source, tag), ref.take_match(source, tag)
            assert a is b, f"take_match({source}, {tag}) diverged"
        elif action < 0.70:
            # The fuzzed backend's arbitrary-candidate path: enumerate the
            # legal choices, take the same (kth) candidate from each.
            # Index values differ between implementations (tombstoned
            # slots vs a dense deque), so compare the *messages*.
            ia, ib = fast.match_indices(source, tag), ref.match_indices(source, tag)
            assert [fast.peek_at(i) for i in ia] == [ref.peek_at(i) for i in ib]
            if ia:
                k = rng.randrange(len(ia))
                assert fast.take_at(ia[k]) is ref.take_at(ib[k])
        elif action < 0.80:
            pa, pb = fast.post(source, tag), ref.post(source, tag)
            live_posts.append((pa, pb))
        elif action < 0.90 and live_posts:
            pa, pb = rng.choice(live_posts)
            assert fast.post_ready(pa) == ref.post_ready(pb)
            if fast.post_ready(pa):
                assert fast.peek_post(pa) is ref.peek_post(pb)
                assert fast.take_post(pa) is ref.take_post(pb)
                live_posts.remove((pa, pb))
        else:
            assert fast.has_match(source, tag) == ref.has_match(source, tag)
        assert len(fast) == len(ref)
        assert fast.posts_pending() == ref.posts_pending()
    assert sorted((m.source, m.seq) for m in fast.snapshot()) == sorted(
        (m.source, m.seq) for m in ref.snapshot()
    )


def _deep_queue(box: Mailbox, depth: int) -> None:
    """Fill *box* with *depth* same-channel messages (worst case for the
    linear scan: every exact take re-walks the whole queue)."""
    for i in range(depth):
        box.put(
            Message(
                source=0, dest=0, tag=0, payload=None,
                nbytes=8, arrival=float(i), seq=i + 1,
            )
        )


def _drain_exact(box: Mailbox, n: int) -> float:
    start = time.perf_counter()
    for _ in range(n):
        assert box.take_match(0, 0) is not None
    return time.perf_counter() - start


def test_exact_match_is_constant_time_at_depth_1000():
    """The PR-4 microbenchmark: draining 1000 exact matches from a
    depth-1000 queue is O(n) total on the indexed mailbox but O(n^2) on
    the historical one (full scan per take plus ``del deque[i]``).  The
    asymptotic gap at this depth is ~100x, so asserting a modest 3x
    keeps the test meaningful yet immune to CI noise."""
    depth = 1000
    best_fast, best_ref = float("inf"), float("inf")
    for _ in range(3):
        fast = _indexed_mailbox()
        _deep_queue(fast, depth)
        best_fast = min(best_fast, _drain_exact(fast, depth))
        ref = _LinearMailbox()
        _deep_queue(ref, depth)
        best_ref = min(best_ref, _drain_exact(ref, depth))
    assert best_fast < best_ref / 3, (
        f"indexed drain {best_fast * 1e3:.2f}ms not clearly faster than "
        f"linear reference {best_ref * 1e3:.2f}ms at depth {depth}"
    )
