"""General data redistribution between layouts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import spmd_run
from repro.errors import DistributionError, RankFailedError
from repro.comm import (
    block_layout,
    col_layout,
    redistribute,
    row_layout,
)
from repro.comm.redistribute import gather_to_root, scatter_from_root


def _global(shape, dtype=np.float64):
    return np.arange(np.prod(shape), dtype=dtype).reshape(shape)


def _check_redistribution(nprocs, shape, make_old, make_new):
    """Every rank's new section must match the global array's slices."""
    full = _global(shape)

    def body(comm):
        old = make_old(shape, comm.size)
        new = make_new(shape, comm.size)
        local = full[old.slices(comm.rank)].copy()
        moved = redistribute(comm, local, old, new)
        assert np.array_equal(moved, full[new.slices(comm.rank)])
        # Round-trip back to the original layout.
        back = redistribute(comm, moved, new, old)
        assert np.array_equal(back, local)
        return True

    assert all(spmd_run(nprocs, body).values)


class TestRowsColumns:
    @pytest.mark.chaos(seeds=8)
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6])
    def test_rows_to_cols(self, p):
        _check_redistribution(p, (6, 8), row_layout, col_layout)

    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_uneven_extents(self, p):
        _check_redistribution(p, (7, 11), row_layout, col_layout)

    def test_rows_to_blocks(self):
        _check_redistribution(
            4, (8, 8), row_layout, lambda s, p: block_layout(s, (2, 2))
        )

    def test_blocks_to_blocks_reshaped(self):
        _check_redistribution(
            6,
            (12, 6),
            lambda s, p: block_layout(s, (6, 1)),
            lambda s, p: block_layout(s, (2, 3)),
        )

    def test_3d(self):
        _check_redistribution(
            4,
            (4, 6, 5),
            lambda s, p: block_layout(s, (4, 1, 1)),
            lambda s, p: block_layout(s, (1, 2, 2)),
        )

    @given(
        rows=st.integers(1, 12),
        cols=st.integers(1, 12),
        p=st.integers(1, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_rows_to_cols(self, rows, cols, p):
        _check_redistribution(p, (rows, cols), row_layout, col_layout)


class TestDtypePreservation:
    @pytest.mark.parametrize("dtype", [np.int32, np.float32, np.complex128])
    def test_dtypes(self, dtype):
        full = _global((6, 6), dtype=dtype)

        def body(comm):
            old = row_layout(full.shape, comm.size)
            new = col_layout(full.shape, comm.size)
            moved = redistribute(comm, full[old.slices(comm.rank)].copy(), old, new)
            assert moved.dtype == dtype
            return np.array_equal(moved, full[new.slices(comm.rank)])

        assert all(spmd_run(3, body).values)


class TestGatherScatterRoot:
    @pytest.mark.parametrize("p", [1, 2, 4, 5])
    def test_gather_to_root(self, p):
        full = _global((9, 4))

        def body(comm):
            lay = row_layout(full.shape, comm.size)
            got = gather_to_root(comm, full[lay.slices(comm.rank)].copy(), lay)
            if comm.rank == 0:
                return np.array_equal(got, full)
            return got is None

        assert all(spmd_run(p, body).values)

    @pytest.mark.parametrize("p", [1, 3, 4])
    def test_scatter_from_root(self, p):
        full = _global((8, 5))

        def body(comm):
            lay = row_layout(full.shape, comm.size)
            local = scatter_from_root(comm, full if comm.rank == 0 else None, lay)
            return np.array_equal(local, full[lay.slices(comm.rank)])

        assert all(spmd_run(p, body).values)

    def test_scatter_gather_roundtrip(self):
        full = _global((10, 10))

        def body(comm):
            lay = block_layout(full.shape, (2, 2))
            local = scatter_from_root(comm, full if comm.rank == 0 else None, lay)
            back = gather_to_root(comm, local, lay)
            return back is None or np.array_equal(back, full)

        assert all(spmd_run(4, body).values)

    def test_scatter_missing_root_array(self):
        def body(comm):
            lay = row_layout((4, 4), comm.size)
            return scatter_from_root(comm, None, lay)

        with pytest.raises(RankFailedError) as info:
            spmd_run(2, body)
        assert isinstance(info.value.original, DistributionError)


class TestErrors:
    def test_shape_mismatch(self):
        def body(comm):
            old = row_layout((4, 4), comm.size)
            new = row_layout((5, 4), comm.size)
            redistribute(comm, np.zeros(old.shape(comm.rank)), old, new)

        with pytest.raises(RankFailedError) as info:
            spmd_run(2, body)
        assert isinstance(info.value.original, DistributionError)

    def test_wrong_local_shape(self):
        def body(comm):
            old = row_layout((4, 4), comm.size)
            new = col_layout((4, 4), comm.size)
            redistribute(comm, np.zeros((1, 1)), old, new)

        with pytest.raises(RankFailedError) as info:
            spmd_run(2, body)
        assert isinstance(info.value.original, DistributionError)

    def test_layout_rank_mismatch(self):
        def body(comm):
            old = row_layout((4, 4), comm.size + 1)
            new = col_layout((4, 4), comm.size + 1)
            redistribute(comm, np.zeros(old.shape(comm.rank)), old, new)

        with pytest.raises(RankFailedError) as info:
            spmd_run(2, body)
        assert isinstance(info.value.original, DistributionError)
