"""Execution tracing and analysis."""

import pytest

from repro import spmd_run
from repro.comm.reductions import SUM
from repro.machines.model import MachineModel
from repro.trace.analysis import summarize
from repro.trace.events import CommEvent, ComputeEvent

TOY = MachineModel("toy", alpha=1e-3, beta=1e-6, flop_time=1e-6)


class TestTracer:
    def test_no_tracer_by_default(self):
        res = spmd_run(2, lambda comm: comm.barrier())
        assert res.tracer is None

    def test_events_recorded(self):
        def body(comm):
            comm.charge(100, label="warmup")
            if comm.rank == 0:
                comm.send(1, "x", tag=1)
            else:
                comm.recv(source=0, tag=1)

        res = spmd_run(2, body, machine=TOY, trace=True)
        ev0 = res.tracer.events_for(0)
        kinds = [type(e).__name__ for e in ev0]
        assert kinds == ["ComputeEvent", "CommEvent"]
        assert isinstance(ev0[0], ComputeEvent) and ev0[0].label == "warmup"
        send = ev0[1]
        assert isinstance(send, CommEvent)
        assert send.kind == "send" and send.peer == 1 and send.tag == 1

    def test_recv_duration_includes_wait(self):
        def body(comm):
            if comm.rank == 0:
                comm.charge(5000)  # sender is late
                comm.send(1, "x", tag=1)
            else:
                comm.recv(source=0, tag=1)

        res = spmd_run(2, body, machine=TOY, trace=True)
        recv = res.tracer.events_for(1)[0]
        assert recv.kind == "recv"
        assert recv.duration >= 5e-3

    def test_all_events_sorted(self):
        def body(comm):
            comm.charge(100 * (comm.rank + 1))
            comm.barrier()

        res = spmd_run(3, body, machine=TOY, trace=True)
        events = res.tracer.all_events()
        starts = [e.start for e in events]
        assert starts == sorted(starts)


class TestSummary:
    def test_message_accounting(self):
        def body(comm):
            comm.send((comm.rank + 1) % comm.size, b"1234", tag=1)
            comm.recv(tag=1)

        res = spmd_run(4, body, machine=TOY, trace=True)
        s = summarize(res.tracer)
        assert s.total_messages == 4
        assert s.total_bytes == 4 * (16 + 4)
        for r in s.ranks:
            assert r.messages_sent == r.messages_received == 1
            assert r.bytes_sent == r.bytes_received == 20

    def test_flop_accounting(self):
        def body(comm):
            comm.charge(123.0)
            comm.charge(77.0)

        res = spmd_run(2, body, machine=TOY, trace=True)
        s = summarize(res.tracer)
        assert s.total_flops == pytest.approx(400.0)
        assert s.ranks[0].flops == pytest.approx(200.0)

    def test_comm_fraction(self):
        def compute_heavy(comm):
            comm.charge(10**6)
            comm.allreduce(1.0, SUM)

        def comm_heavy(comm):
            comm.charge(10)
            for _ in range(20):
                comm.allreduce(1.0, SUM)

        a = summarize(spmd_run(4, compute_heavy, machine=TOY, trace=True).tracer)
        b = summarize(spmd_run(4, comm_heavy, machine=TOY, trace=True).tracer)
        assert a.comm_fraction() < b.comm_fraction()

    def test_empty_trace(self):
        res = spmd_run(2, lambda comm: None, trace=True)
        s = summarize(res.tracer)
        assert s.total_messages == 0
        assert s.comm_fraction() == 0.0

    def test_collective_message_counts(self):
        """Binomial broadcast sends exactly P-1 messages in total."""

        def body(comm):
            comm.bcast("x" if comm.rank == 0 else None, root=0)

        for p in (2, 3, 4, 7, 8):
            res = spmd_run(p, body, machine=TOY, trace=True)
            assert summarize(res.tracer).total_messages == p - 1

    def test_alltoall_message_count(self):
        def body(comm):
            comm.alltoall([comm.rank] * comm.size)

        for p in (2, 4, 5):
            res = spmd_run(p, body, machine=TOY, trace=True)
            assert summarize(res.tracer).total_messages == p * (p - 1)


class TestPhaseBreakdown:
    def test_labels_accumulated(self):
        from repro.trace.analysis import phase_breakdown

        def body(comm):
            comm.charge(100, label="solve")
            comm.charge(50, label="merge")
            comm.charge(25, label="solve")

        res = spmd_run(3, body, machine=TOY, trace=True)
        breakdown = phase_breakdown(res.tracer)
        assert breakdown["solve"] == pytest.approx(3 * 125e-6)
        assert breakdown["merge"] == pytest.approx(3 * 50e-6)

    def test_unlabelled_bucket(self):
        from repro.trace.analysis import phase_breakdown

        res = spmd_run(1, lambda comm: comm.charge(10), machine=TOY, trace=True)
        assert "(unlabelled)" in phase_breakdown(res.tracer)


class TestGantt:
    def test_renders_rows_per_rank(self):
        from repro.trace.analysis import render_gantt

        def body(comm):
            comm.charge(1000 * (comm.rank + 1), label="w")
            comm.barrier()

        res = spmd_run(3, body, machine=TOY, trace=True)
        art = render_gantt(res.tracer, width=40)
        lines = art.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("rank   0")
        assert "#" in lines[1] and "." in lines[1]

    def test_empty_trace(self):
        from repro.trace.analysis import render_gantt

        res = spmd_run(2, lambda comm: None, trace=True)
        assert render_gantt(res.tracer) == "(empty trace)"

    def test_longer_work_longer_bar(self):
        from repro.trace.analysis import render_gantt

        def body(comm):
            comm.charge(100 if comm.rank == 0 else 10_000, label="w")

        res = spmd_run(2, body, machine=TOY, trace=True)
        lines = render_gantt(res.tracer, width=60).splitlines()
        assert lines[2].count("#") > lines[1].count("#")


class TestIdleAndReceivedAggregation:
    """PR 2 satellite: bytes_received aggregation and gap-derived idle time."""

    def test_total_bytes_received_matches_sent(self):
        def body(comm):
            comm.send((comm.rank + 1) % comm.size, b"12345678", tag=1)
            comm.recv(tag=1)

        s = summarize(spmd_run(4, body, machine=TOY, trace=True).tracer)
        assert s.total_bytes_received == s.total_bytes
        assert s.total_bytes_received == 4 * (16 + 8)

    def test_idle_time_covers_tail_to_makespan(self):
        def body(comm):
            # Rank 1 works 10x longer; rank 0 then idles to the makespan.
            comm.charge(1000.0 if comm.rank == 0 else 10_000.0)

        s = summarize(spmd_run(2, body, machine=TOY, trace=True).tracer)
        assert s.ranks[1].idle_time == pytest.approx(0.0)
        assert s.ranks[0].idle_time == pytest.approx(9000.0 * 1e-6)
        assert s.total_idle_time == pytest.approx(9000.0 * 1e-6)

    def test_idle_time_covers_gaps_between_events(self):
        def body(comm):
            comm.charge(100.0)
            # advance() passes virtual time without recording an event, so
            # it must show up as an idle gap between the two compute events.
            comm.advance(5e-3)
            comm.charge(100.0)

        s = summarize(spmd_run(1, body, machine=TOY, trace=True).tracer)
        assert s.ranks[0].idle_time == pytest.approx(5e-3)

    def test_busy_plus_idle_tiles_makespan(self):
        def body(comm):
            if comm.rank == 0:
                comm.charge(5000.0)
                comm.send(1, b"x" * 64, tag=1)
            else:
                comm.recv(source=0, tag=1)

        res = spmd_run(2, body, machine=TOY, trace=True)
        s = summarize(res.tracer)
        for r in s.ranks:
            assert r.compute_time + r.comm_time + r.idle_time == pytest.approx(
                res.elapsed
            )

    def test_empty_trace_idle_zero(self):
        s = summarize(spmd_run(2, lambda comm: None, trace=True).tracer)
        assert s.total_idle_time == 0.0
        assert s.total_bytes_received == 0
