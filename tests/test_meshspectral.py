"""The mesh-spectral archetype context and its operation classes."""

import numpy as np
import pytest

from repro.comm.reductions import MAX, SUM
from repro.core import MeshProgram
from repro.errors import ArchetypeError, RankFailedError


def run_mesh(nprocs, program, *args, **kwargs):
    return MeshProgram(program).run(nprocs, *args, **kwargs)


class TestPointOp:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_elementwise(self, p):
        def prog(mesh):
            a = mesh.grid((6, 6))
            b = mesh.grid((6, 6))
            a.fill_from(lambda i, j: i * 1.0)
            b.fill_from(lambda i, j: j * 1.0)
            out = mesh.grid((6, 6))
            mesh.point_op(lambda o, x, y: o.__setitem__(..., x + 2 * y), out, a, b)
            return out.gather(root=0)

        res = run_mesh(p, prog)
        expected = np.add.outer(np.arange(6.0), 2.0 * np.arange(6))
        assert np.array_equal(res.values[0], expected)

    def test_output_may_alias_input(self):
        def prog(mesh):
            a = mesh.grid((4, 4), fill=1.0)
            mesh.point_op(lambda o, x: o.__setitem__(..., x * 2), a, a)
            return a.gather(root=0)

        res = run_mesh(2, prog)
        assert np.all(res.values[0] == 2.0)

    def test_incompatible_distributions_rejected(self):
        def prog(mesh):
            a = mesh.grid((4, 4), dist="rows")
            b = mesh.grid((4, 4), dist="cols")
            mesh.point_op(lambda o, x: None, a, b)

        with pytest.raises(RankFailedError) as info:
            run_mesh(2, prog)
        assert isinstance(info.value.original, ArchetypeError)

    def test_charges_work(self):
        from repro.machines.model import MachineModel

        toy = MachineModel("toy", alpha=0, beta=0, flop_time=1e-6)

        def prog(mesh):
            a = mesh.grid((10, 10))
            mesh.point_op(lambda o: o.__setitem__(..., 0), a, flops_per_point=3.0)

        res = run_mesh(1, prog, machine=toy)
        assert res.times[0] == pytest.approx(300e-6)


class TestStencilOp:
    @pytest.mark.chaos(seeds=8)
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_five_point_average(self, p):
        full = np.arange(64.0).reshape(8, 8)

        def prog(mesh):
            from repro.core.grid import DistGrid

            u = DistGrid.from_global(mesh.comm, full if mesh.comm.rank == 0 else None, ghost=1)
            out = u.like()
            mesh.stencil_op(
                lambda o, s: o.__setitem__(
                    ..., 0.25 * (s[-1, 0] + s[1, 0] + s[0, -1] + s[0, 1])
                ),
                out,
                u,
            )
            return out.gather(root=0)

        res = run_mesh(p, prog)
        expected = np.zeros_like(full)
        expected[1:-1, 1:-1] = 0.25 * (
            full[:-2, 1:-1] + full[2:, 1:-1] + full[1:-1, :-2] + full[1:-1, 2:]
        )
        assert np.array_equal(res.values[0], expected)

    def test_output_disjointness_enforced(self):
        def prog(mesh):
            u = mesh.grid((4, 4), ghost=1)
            mesh.stencil_op(lambda o, s: None, u, u)

        with pytest.raises(RankFailedError) as info:
            run_mesh(2, prog)
        assert isinstance(info.value.original, ArchetypeError)
        assert "disjoint" in str(info.value.original)

    def test_requires_ghost_layer(self):
        def prog(mesh):
            u = mesh.grid((4, 4), ghost=0)
            out = mesh.grid((4, 4), ghost=0)
            mesh.stencil_op(lambda o, s: None, out, u)

        with pytest.raises(RankFailedError) as info:
            run_mesh(1, prog)
        assert isinstance(info.value.original, ArchetypeError)

    def test_offset_beyond_ghost_rejected(self):
        def prog(mesh):
            u = mesh.grid((6, 6), ghost=1)
            out = u.like()
            mesh.stencil_op(lambda o, s: s[2, 0], out, u)

        with pytest.raises(RankFailedError) as info:
            run_mesh(1, prog)
        assert isinstance(info.value.original, ArchetypeError)

    def test_periodic_stencil(self):
        def prog(mesh):
            u = mesh.grid((4, 4), ghost=1)
            u.fill_from(lambda i, j: i * 4.0 + j)
            out = u.like()
            mesh.stencil_op(
                lambda o, s: o.__setitem__(..., s[-1, 0]),
                out,
                u,
                margin=0,
                periodic=True,
            )
            return out.gather(root=0)

        res = run_mesh(2, prog)
        full = (np.arange(16.0).reshape(4, 4))
        assert np.array_equal(res.values[0], np.roll(full, 1, axis=0))

    def test_per_axis_margin(self):
        def prog(mesh):
            u = mesh.grid((4, 6), ghost=1, fill=0.0)
            u.fill_from(lambda i, j: 1.0 + 0 * i * j)
            out = u.like(fill=-1.0)
            mesh.stencil_op(
                lambda o, s: o.__setitem__(..., s[0, 1]),
                out,
                u,
                margin=(1, 0),
                periodic=(False, True),
            )
            return out.gather(root=0)

        res = run_mesh(2, prog)
        full = res.values[0]
        # rows 0 and 3 (margin along axis 0) untouched; all columns written
        assert np.all(full[0] == -1.0) and np.all(full[3] == -1.0)
        assert np.all(full[1:3] == 1.0)

    def test_mismatched_grids_rejected(self):
        def prog(mesh):
            u = mesh.grid((4, 4), dist="rows", ghost=1)
            out = mesh.grid((4, 4), dist="cols", ghost=1)
            mesh.stencil_op(lambda o, s: None, out, u)

        with pytest.raises(RankFailedError) as info:
            run_mesh(2, prog)
        assert isinstance(info.value.original, ArchetypeError)


class TestRowColOps:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_row_op(self, p):
        def prog(mesh):
            g = mesh.grid((6, 5), dist="rows")
            g.fill_from(lambda i, j: i * 5.0 + j)
            mesh.row_op(lambda block: np.cumsum(block, axis=1), g)
            return g.gather(root=0)

        res = run_mesh(p, prog)
        expected = np.cumsum(np.arange(30.0).reshape(6, 5), axis=1)
        assert np.array_equal(res.values[0], expected)

    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_col_op(self, p):
        def prog(mesh):
            g = mesh.grid((6, 5), dist="cols")
            g.fill_from(lambda i, j: i * 5.0 + j)
            mesh.col_op(lambda cols: np.cumsum(cols, axis=1), g)
            return g.gather(root=0)

        res = run_mesh(p, prog)
        expected = np.cumsum(np.arange(30.0).reshape(6, 5), axis=0)
        assert np.array_equal(res.values[0], expected)

    def test_row_op_requires_rows_distribution(self):
        def prog(mesh):
            g = mesh.grid((4, 4), dist="cols")
            mesh.row_op(lambda b: b, g)

        with pytest.raises(RankFailedError) as info:
            run_mesh(2, prog)
        assert isinstance(info.value.original, ArchetypeError)
        assert "redistribute" in str(info.value.original)

    def test_col_op_requires_cols_distribution(self):
        def prog(mesh):
            g = mesh.grid((4, 4), dist="rows")
            mesh.col_op(lambda b: b, g)

        with pytest.raises(RankFailedError) as info:
            run_mesh(2, prog)
        assert isinstance(info.value.original, ArchetypeError)

    def test_col_op_must_return_block(self):
        def prog(mesh):
            g = mesh.grid((4, 4), dist="cols")
            mesh.col_op(lambda b: None, g)

        with pytest.raises(RankFailedError) as info:
            run_mesh(2, prog)
        assert isinstance(info.value.original, ArchetypeError)

    def test_row_then_col_via_redistribution(self):
        """The paper's Figure 7 composition."""

        def prog(mesh):
            g = mesh.grid((4, 4), dist="rows")
            g.fill_from(lambda i, j: (i + 1.0) * (j + 1.0))
            mesh.row_op(lambda b: b * 2, g)
            g2 = mesh.redistribute(g, "cols")
            mesh.col_op(lambda c: c + 1, g2)
            return g2.gather(root=0)

        res = run_mesh(4, prog)
        expected = 2.0 * np.outer(np.arange(1.0, 5), np.arange(1.0, 5)) + 1
        assert np.array_equal(res.values[0], expected)


class TestReductions:
    @pytest.mark.parametrize("p", [1, 2, 4, 5])
    def test_grid_reduce_sum(self, p):
        def prog(mesh):
            g = mesh.grid((6, 6), fill=1.0)
            return mesh.grid_reduce(g, np.sum, SUM, identity=0.0)

        res = run_mesh(p, prog)
        assert all(v == pytest.approx(36.0) for v in res.values)

    def test_grid_reduce_empty_section_needs_identity(self):
        def prog(mesh):
            g = mesh.grid((1, 4), dist="rows")  # some ranks own nothing
            return mesh.grid_reduce(g, np.max, MAX)

        with pytest.raises(RankFailedError) as info:
            run_mesh(3, prog)
        assert isinstance(info.value.original, ArchetypeError)

    def test_grid_reduce_with_identity(self):
        def prog(mesh):
            g = mesh.grid((1, 4), dist="rows", fill=2.0)
            return mesh.grid_reduce(g, np.max, MAX, identity=float("-inf"))

        res = run_mesh(3, prog)
        assert all(v == 2.0 for v in res.values)

    def test_max_abs_diff(self):
        def prog(mesh):
            a = mesh.grid((4, 4), fill=1.0)
            b = mesh.grid((4, 4), fill=1.0)
            b.interior[...] += 0.25
            return mesh.max_abs_diff(a, b)

        res = run_mesh(4, prog)
        assert all(v == pytest.approx(0.25) for v in res.values)

    def test_reduce_result_on_all_ranks(self):
        """Paper §3.2 postcondition: every rank holds the result."""

        def prog(mesh):
            return mesh.reduce(mesh.comm.rank + 1, SUM)

        res = run_mesh(6, prog)
        assert res.values == [21] * 6


class TestFileIO:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "grid.npy"
        full = np.arange(24.0).reshape(4, 6)

        def writer(mesh):
            from repro.core.grid import DistGrid

            g = DistGrid.from_global(mesh.comm, full if mesh.comm.rank == 0 else None)
            mesh.write_grid(g, path)
            return True

        def reader(mesh):
            g = mesh.read_grid(path)
            return np.array_equal(g.interior, full[g.layout.slices(mesh.comm.rank)])

        assert all(run_mesh(2, writer).values)
        assert all(run_mesh(3, reader).values)


class TestWorkingSet:
    def test_paging_penalty_applies(self):
        from repro.machines.model import MachineModel

        tight = MachineModel(
            "tight", alpha=0, beta=0, flop_time=1e-6, mem_per_node=100, paging_factor=5.0
        )

        def prog(mesh, ws):
            mesh.set_working_set(ws)
            g = mesh.grid((10, 10))
            mesh.point_op(lambda o: o.__setitem__(..., 0.0), g, flops_per_point=1.0)

        fast = run_mesh(1, prog, 50, machine=tight).times[0]
        slow = run_mesh(1, prog, 200, machine=tight).times[0]
        assert slow > fast * 2


class TestPartitionedIO:
    def test_write_read_across_configurations(self, tmp_path):
        """Paper §3.2's concurrent-I/O pattern: per-rank section files,
        readable by any process count and distribution."""
        import numpy as np
        from repro.core.grid import DistGrid

        full = np.arange(60.0).reshape(6, 10)

        def writer(mesh):
            g = DistGrid.from_global(
                mesh.comm, full if mesh.comm.rank == 0 else None, dist="rows"
            )
            mesh.write_grid_partitioned(g, tmp_path / "grid")
            return True

        assert all(run_mesh(3, writer).values)

        def reader(mesh):
            g = mesh.read_grid_partitioned(tmp_path / "grid", dist="cols", ghost=1)
            return np.array_equal(
                g.interior, full[g.layout.slices(mesh.comm.rank)]
            )

        for p in (1, 2, 4, 5):
            assert all(run_mesh(p, reader).values), p

    def test_manifest_records_shape(self, tmp_path):
        import numpy as np

        def writer(mesh):
            g = mesh.grid((4, 6), fill=2.0)
            mesh.write_grid_partitioned(g, tmp_path / "g2")
            return True

        run_mesh(2, writer)
        manifest = np.load(tmp_path / "g2" / "manifest.npy", allow_pickle=True)[0]
        assert tuple(manifest["global_shape"]) == (4, 6)
        assert manifest["nranks"] == 2

    def test_roundtrip_preserves_dtype_values(self, tmp_path):
        import numpy as np

        def writer(mesh):
            g = mesh.grid((5, 5), dtype=np.int64)
            g.fill_from(lambda i, j: i * 5 + j)
            mesh.write_grid_partitioned(g, tmp_path / "g3")
            return True

        def reader(mesh):
            g = mesh.read_grid_partitioned(tmp_path / "g3")
            return (g.dtype == np.float64, g.gather(root=0))

        run_mesh(4, writer)
        res = run_mesh(2, reader)
        got = res.values[0][1]
        assert np.array_equal(got, np.arange(25.0).reshape(5, 5))
