"""The skyline problem."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.skyline import (
    building_skyline,
    concat_region_skylines,
    cut_skyline,
    height_at,
    merge_two_skylines,
    one_deep_skyline,
    sequential_skyline,
    skyline_cost,
)

buildings_strategy = st.lists(
    st.tuples(
        st.floats(0, 100, allow_nan=False),
        st.floats(1, 50, allow_nan=False),
        st.floats(0.5, 20, allow_nan=False),
    ).map(lambda t: (t[0], t[1], t[0] + t[2])),
    min_size=1,
    max_size=60,
).map(lambda lst: np.array(lst))


def brute_force_height(buildings: np.ndarray, x: float) -> float:
    """Max height of any building covering x (reference oracle)."""
    h = 0.0
    for left, height, right in np.asarray(buildings).reshape(-1, 3):
        if left <= x < right:
            h = max(h, height)
    return h


class TestPrimitives:
    def test_single_building(self):
        sky = building_skyline(1.0, 5.0, 3.0)
        assert np.array_equal(sky, [[1.0, 5.0], [3.0, 0.0]])

    def test_invalid_building(self):
        with pytest.raises(ValueError):
            building_skyline(3.0, 5.0, 1.0)
        with pytest.raises(ValueError):
            building_skyline(0.0, -1.0, 1.0)

    def test_height_at(self):
        sky = np.array([[0.0, 3.0], [2.0, 1.0], [4.0, 0.0]])
        assert height_at(sky, -1.0) == 0.0
        assert height_at(sky, 0.0) == 3.0
        assert height_at(sky, 1.9) == 3.0
        assert height_at(sky, 2.0) == 1.0
        assert height_at(sky, 5.0) == 0.0

    def test_merge_two_overlapping(self):
        a = building_skyline(0, 3, 4)
        b = building_skyline(2, 5, 6)
        merged = merge_two_skylines(a, b)
        assert np.array_equal(merged, [[0, 3], [2, 5], [6, 0]])

    def test_merge_disjoint(self):
        a = building_skyline(0, 2, 1)
        b = building_skyline(5, 4, 6)
        merged = merge_two_skylines(a, b)
        assert np.array_equal(merged, [[0, 2], [1, 0], [5, 4], [6, 0]])

    def test_merge_with_empty(self):
        a = building_skyline(0, 2, 1)
        assert np.array_equal(merge_two_skylines(a, np.empty((0, 2))), a)

    def test_cost_model(self):
        assert skyline_cost(0) == 0.0
        assert skyline_cost(100) > skyline_cost(10)


class TestSequentialSkyline:
    def test_classic_example(self):
        buildings = np.array(
            [(2, 10, 9), (3, 15, 7), (5, 12, 12), (15, 10, 20), (19, 8, 24)]
        )
        sky = sequential_skyline(buildings)
        expected = [(2, 10), (3, 15), (7, 12), (12, 0), (15, 10), (20, 8), (24, 0)]
        assert np.allclose(sky, expected)

    @given(buildings=buildings_strategy, data=st.data())
    @settings(max_examples=40)
    def test_against_brute_force(self, buildings, data):
        sky = sequential_skyline(buildings)
        x = data.draw(st.floats(-1, 125, allow_nan=False))
        assert float(height_at(sky, x)) == pytest.approx(
            brute_force_height(buildings, x)
        )

    @given(buildings=buildings_strategy)
    @settings(max_examples=30)
    def test_skyline_invariants(self, buildings):
        sky = sequential_skyline(buildings)
        xs, hs = sky[:, 0], sky[:, 1]
        assert np.all(np.diff(xs) > 0), "x strictly increasing"
        assert np.all(hs[:-1] != hs[1:]) if hs.size > 1 else True
        assert hs[-1] == 0.0, "skyline ends at ground level"


class TestCutSkyline:
    def test_cut_preserves_heights(self):
        sky = sequential_skyline(np.array([(0, 10, 5), (3, 6, 9)]))
        pieces = cut_skyline(sky, np.array([2.0, 6.0]))
        assert len(pieces) == 3
        for xs in (1.0, 4.0, 7.0):
            region = 0 if xs < 2 else (1 if xs < 6 else 2)
            assert float(height_at(pieces[region], xs)) == pytest.approx(
                float(height_at(sky, xs))
            )

    @given(buildings=buildings_strategy, p=st.integers(2, 6), data=st.data())
    @settings(max_examples=30)
    def test_cut_and_reassemble(self, buildings, p, data):
        sky = sequential_skyline(buildings)
        cuts = np.sort(
            np.array([data.draw(st.floats(0, 120, allow_nan=False)) for _ in range(p - 1)])
        )
        pieces = cut_skyline(sky, cuts)
        rebuilt = concat_region_skylines(pieces)
        x = data.draw(st.floats(-1, 125, allow_nan=False))
        assert float(height_at(rebuilt, x)) == pytest.approx(float(height_at(sky, x)))


class TestOneDeepSkyline:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_matches_sequential(self, p, rng):
        n = 200
        left = rng.uniform(0, 100, n)
        blds = np.column_stack([left, rng.uniform(1, 50, n), left + rng.uniform(0.5, 20, n)])
        expected = sequential_skyline(blds)
        res = one_deep_skyline().run(p, blds)
        got = concat_region_skylines(res.values)
        assert np.allclose(got, expected)

    @given(buildings=buildings_strategy, p=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_property(self, buildings, p):
        expected = sequential_skyline(buildings)
        res = one_deep_skyline().run(p, buildings)
        got = concat_region_skylines(res.values)
        assert np.allclose(got, expected)

    def test_master_strategy(self, rng):
        n = 100
        left = rng.uniform(0, 50, n)
        blds = np.column_stack([left, rng.uniform(1, 9, n), left + rng.uniform(1, 5, n)])
        res = one_deep_skyline(strategy="master").run(4, blds)
        assert np.allclose(
            concat_region_skylines(res.values), sequential_skyline(blds)
        )
