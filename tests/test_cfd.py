"""2-D compressible-flow code (paper §4.5.1)."""

import numpy as np
import pytest

from repro.apps.cfd import (
    GAMMA,
    cfd_archetype,
    sequential_cfd_time,
    shock_interface_ic,
    uniform_flow_ic,
)
from repro.machines.catalog import INTEL_DELTA


class TestInitialConditions:
    def test_shock_states_physical(self):
        ii, jj = np.ix_(np.arange(32), np.arange(32))
        rho, mx, my, e = shock_interface_ic(ii, jj, 32, 32, mach=2.0)
        assert np.all(rho > 0)
        p = (GAMMA - 1.0) * (e - 0.5 * (mx**2 + my**2) / rho)
        assert np.all(p > 0)

    def test_rankine_hugoniot_jump(self):
        """Post-shock density for Mach 2 in a gamma=1.4 gas is ~2.667."""
        ii, jj = np.ix_(np.arange(64), np.arange(64))
        rho, _, _, _ = shock_interface_ic(ii, jj, 64, 64, mach=2.0)
        assert rho[0, 0] == pytest.approx((2.4 * 4) / (0.4 * 4 + 2))

    def test_smooth_state(self):
        ii, jj = np.ix_(np.arange(16), np.arange(16))
        rho, _, _, e = uniform_flow_ic(ii, jj, 16, 16)
        assert np.all(rho > 0.5)
        assert np.all(e > 0)


class TestSolver:
    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_p_invariance_shock(self, p):
        ref = cfd_archetype().run(1, 24, 20, 8, ic="shock").values[0]
        res = cfd_archetype().run(p, 24, 20, 8, ic="shock").values[0]
        assert np.array_equal(res.density, ref.density)
        assert res.time == ref.time

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_p_invariance_smooth(self, p):
        ref = cfd_archetype().run(1, 16, 16, 6, ic="smooth").values[0]
        res = cfd_archetype().run(p, 16, 16, 6, ic="smooth").values[0]
        assert np.array_equal(res.density, ref.density)

    def test_packed_equals_unpacked(self):
        a = cfd_archetype().run(4, 20, 20, 6, ic="shock", packed_exchange=True).values[0]
        b = cfd_archetype().run(4, 20, 20, 6, ic="shock", packed_exchange=False).values[0]
        assert np.array_equal(a.density, b.density)

    def test_mass_conserved_periodic(self):
        """Lax-Friedrichs on a periodic domain conserves total mass."""
        res0 = cfd_archetype().run(2, 16, 16, 0, ic="smooth").values[0]
        res = cfd_archetype().run(2, 16, 16, 12, ic="smooth").values[0]
        assert res.density.sum() == pytest.approx(res0.density.sum(), rel=1e-12)

    def test_density_stays_positive(self):
        res = cfd_archetype().run(4, 32, 24, 15, ic="shock").values[0]
        assert np.all(res.density > 0)
        assert np.all(np.isfinite(res.density))

    def test_pressure_positive(self):
        res = cfd_archetype().run(2, 24, 24, 10, ic="shock").values[0]
        assert np.all(res.pressure > 0)

    def test_shock_propagates_right(self):
        """The pressure front must move toward larger x over time."""
        early = cfd_archetype().run(2, 64, 16, 2, ic="shock").values[0]
        late = cfd_archetype().run(2, 64, 16, 40, ic="shock").values[0]
        assert late.time > early.time

        def pressure_front(result):
            # first x index where the mean pressure drops below 1.5
            return int(np.argmin(result.pressure.mean(axis=1) > 1.5))

        assert pressure_front(late) > pressure_front(early)

    def test_cfl_interval(self):
        a = cfd_archetype().run(2, 16, 16, 6, ic="smooth", cfl_interval=1).values[0]
        b = cfd_archetype().run(2, 16, 16, 6, ic="smooth", cfl_interval=3).values[0]
        # Different dt schedules, but both runs remain stable and finite.
        assert np.isfinite(a.density).all() and np.isfinite(b.density).all()

    def test_gather_false(self):
        res = cfd_archetype().run(2, 16, 16, 3, ic="smooth", gather=False).values[0]
        assert res.density is None and res.pressure is None


class TestPerformance:
    def test_sequential_time_model(self):
        assert sequential_cfd_time(128, 128, 10, INTEL_DELTA) > 0

    def test_scales_on_delta(self):
        arch = cfd_archetype()
        t1 = arch.run(
            1, 64, 64, 3, ic="smooth", machine=INTEL_DELTA, gather=False
        ).elapsed
        t16 = arch.run(
            16, 64, 64, 3, ic="smooth", machine=INTEL_DELTA, gather=False
        ).elapsed
        assert t16 < t1 / 6


class TestReactiveVariant:
    """The paper's second CFD code (Figure 20): shock/interface with
    ideal-dissociating-gas chemistry."""

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_p_invariance(self, p):
        ref = cfd_archetype().run(1, 24, 20, 10, ic="shock", reactive=True).values[0]
        res = cfd_archetype().run(p, 24, 20, 10, ic="shock", reactive=True).values[0]
        assert np.array_equal(res.density, ref.density)
        assert np.array_equal(res.progress, ref.progress)

    def test_dissociation_behind_shock_only(self):
        res = cfd_archetype().run(2, 64, 16, 30, ic="shock", reactive=True).values[0]
        lam = res.progress
        assert lam is not None
        # hot post-shock gas (left) dissociates...
        assert lam[:8, :].mean() > 0.05
        # ...while the cold far field stays essentially undissociated.
        assert lam[-8:, :].mean() < 5e-3
        assert np.all((lam >= 0) & (lam <= 1 + 1e-12))

    def test_dissociation_absorbs_energy(self):
        inert = cfd_archetype().run(2, 32, 16, 20, ic="shock").values[0]
        react = cfd_archetype().run(2, 32, 16, 20, ic="shock", reactive=True).values[0]
        # Endothermic chemistry: the reactive run's pressure behind the
        # shock is lower than the inert run's.
        assert react.pressure[:6, :].mean() < inert.pressure[:6, :].mean()

    def test_nonreactive_has_no_progress_field(self):
        res = cfd_archetype().run(2, 16, 16, 3, ic="smooth").values[0]
        assert res.progress is None

    def test_stable_and_positive(self):
        res = cfd_archetype().run(4, 32, 24, 25, ic="shock", reactive=True).values[0]
        assert np.all(res.density > 0)
        assert np.all(np.isfinite(res.pressure))
