"""The wall-clock fast path must be observationally invisible.

Two families of checks:

- **A/B identity** — the messaging-heavy workloads (Jacobi Poisson, 2-D
  FFT, one-deep mergesort) run with the fast path forced off and forced
  on, under the deterministic schedule and under eight fuzzed-schedule
  seeds.  Per-rank virtual clocks must be *bitwise* identical and the
  result digests equal: the fast path may only change host seconds.
- **Copy-on-write contract** — with the fast path on, a received ndarray
  is read-only (``np.asarray(x).copy()`` to mutate) and shares no
  mutable memory with the sender; forwarded frozen payloads are shared
  zero-copy.  With the fast path off, the historical eager-deep-copy
  semantics (writable received arrays) are preserved.
"""

import numpy as np
import pytest

from repro import fastpath, spmd_run
from repro.verify import fuzzed_schedule, value_digest
from repro.bench.wallclock import WORKLOADS

NPROCS = 8
CHAOS_SEEDS = range(8)

APPS = sorted(WORKLOADS)


def _run_ab(app: str):
    """One workload under fast-off then fast-on; returns both RunResults."""
    runner, _ = WORKLOADS[app]
    with fastpath.forced(False):
        off = runner(NPROCS)
    with fastpath.forced(True):
        on = runner(NPROCS)
    return off, on


def _assert_identical(off, on, what: str) -> None:
    # Clocks: exact float equality, not approx — the fast path must not
    # change a single virtual timestamp.
    assert off.times == on.times, f"{what}: virtual clocks differ fast off vs on"
    assert value_digest([off.times, off.values]) == value_digest(
        [on.times, on.values]
    ), f"{what}: results differ fast off vs on"


# -- A/B identity -----------------------------------------------------------
@pytest.mark.parametrize("app", APPS)
def test_ab_identity_deterministic(app):
    off, on = _run_ab(app)
    _assert_identical(off, on, app)


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_ab_identity_fuzzed(app, seed):
    """Under a fuzzed schedule the two modes must still agree: the
    scheduler's rng stream is part of the observable behaviour, so any
    fast-path divergence (an extra draw, a reordered pick) shows up as a
    clock or digest mismatch here."""
    with fuzzed_schedule(seed):
        off, on = _run_ab(app)
    _assert_identical(off, on, f"{app} seed={seed}")


# -- copy-on-write contract --------------------------------------------------
def _send_then_mutate(comm):
    if comm.rank == 0:
        arr = np.arange(8.0)
        comm.send(1, arr)
        arr[0] = 99.0  # must not reach the receiver
        return None
    if comm.rank == 1:
        return comm.recv(0)
    return None


def test_received_array_is_readonly_fast_on():
    with fastpath.forced(True):
        res = spmd_run(2, _send_then_mutate)
    got = res.values[1]
    assert not got.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        got[0] = -1.0
    # The documented mutation idiom always works.
    mine = np.asarray(got).copy()
    mine[0] = -1.0
    assert mine[0] == -1.0


@pytest.mark.parametrize("flag", [False, True])
def test_sender_mutation_after_send_is_isolated(flag):
    with fastpath.forced(flag):
        res = spmd_run(2, _send_then_mutate)
    np.testing.assert_array_equal(res.values[1], np.arange(8.0))


def test_received_array_is_writable_fast_off():
    """Fast off preserves the historical semantics: eager deep copies,
    received arrays freely mutable."""
    with fastpath.forced(False):
        res = spmd_run(2, _send_then_mutate)
    got = res.values[1]
    assert got.flags.writeable
    got[0] = -1.0
    assert got[0] == -1.0


def _bcast_array(comm):
    value = np.arange(16.0) if comm.rank == 0 else None
    return comm.bcast(value, root=0)


def test_forwarded_frozen_payload_is_shared_zero_copy():
    """A non-root bcast hop receives an already-frozen buffer and
    forwards that same object to its children instead of re-copying.
    (In the 4-rank binomial tree rank 2 forwards root's message to
    rank 3.)"""
    with fastpath.forced(True):
        res = spmd_run(4, _bcast_array)
    received = [res.values[r] for r in range(1, 4)]
    for arr in received:
        np.testing.assert_array_equal(arr, np.arange(16.0))
        assert not arr.flags.writeable
    assert res.values[3] is res.values[2]


def test_bcast_payloads_are_distinct_copies_fast_off():
    with fastpath.forced(False):
        res = spmd_run(4, _bcast_array)
    received = [res.values[r] for r in range(1, 4)]
    assert received[0] is not received[1]
    received[0][0] = 123.0  # historical mode: private writable copies
    np.testing.assert_array_equal(received[1], np.arange(16.0))


def _recv_then_forward(comm):
    if comm.rank == 0:
        comm.send(1, np.arange(4.0))
        return None
    if comm.rank == 1:
        got = comm.recv(0)
        comm.send(2, got)  # forwarding a frozen array must not re-copy
        return got
    return comm.recv(1)


def test_forwarding_a_received_array_shares_it():
    with fastpath.forced(True):
        res = spmd_run(3, _recv_then_forward)
    assert res.values[2] is res.values[1]


# -- the switch itself -------------------------------------------------------
def test_set_enabled_returns_previous_and_forced_restores():
    initial = fastpath.enabled()
    try:
        previous = fastpath.set_enabled(True)
        assert previous == initial
        assert fastpath.set_enabled(False) is True
        assert not fastpath.enabled()
        with fastpath.forced(True):
            assert fastpath.enabled()
        assert not fastpath.enabled()
    finally:
        fastpath.set_enabled(initial)
