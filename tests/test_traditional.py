"""Traditional (deep) parallel divide and conquer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.traditional import TraditionalDC
from repro.machines.model import MachineModel

TOY = MachineModel("toy", alpha=1e-4, beta=1e-7, flop_time=1e-7)


def summing_dc() -> TraditionalDC:
    """Sum a list by splitting it in half recursively."""
    return TraditionalDC(
        divide=lambda d: (d[: len(d) // 2], d[len(d) // 2 :]),
        leaf_solve=sum,
        merge2=lambda a, b: a + b,
    )


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 6, 7, 8, 11])
    def test_sum_any_rank_count(self, p):
        data = list(range(100))
        res = summing_dc().run(p, data)
        assert res.values[0] == sum(data)
        assert all(v is None for v in res.values[1:])

    @given(
        p=st.integers(1, 12),
        data=st.lists(st.integers(-100, 100), min_size=1, max_size=60),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_sum(self, p, data):
        res = summing_dc().run(p, data)
        assert res.values[0] == sum(data)

    def test_sorting(self, rng):
        from repro.apps.sorting import traditional_mergesort

        data = rng.integers(0, 1000, size=777)
        res = traditional_mergesort().run(6, data)
        assert np.array_equal(res.values[0], np.sort(data))

    def test_small_input_many_ranks(self):
        res = summing_dc().run(8, [42])
        assert res.values[0] == 42


class TestTreeStructure:
    def test_divide_called_once_per_internal_node(self):
        divides = []
        arch = TraditionalDC(
            divide=lambda d: (divides.append(len(d)), (d[: len(d) // 2], d[len(d) // 2 :]))[1],
            leaf_solve=sum,
            merge2=lambda a, b: a + b,
        )
        arch.run(4, list(range(16)))
        # P=4 -> 3 internal nodes: sizes 16, 8, 8
        assert sorted(divides, reverse=True) == [16, 8, 8]

    def test_root_pays_top_level_costs(self):
        arch = TraditionalDC(
            divide=lambda d: (d[: len(d) // 2], d[len(d) // 2 :]),
            leaf_solve=sum,
            merge2=lambda a, b: a + b,
            divide_cost=lambda d: float(len(d)),
            leaf_cost=lambda d: float(len(d)),
            merge_cost=lambda m: 1.0,
        )
        res = arch.run(4, list(range(64)), machine=TOY)
        # Rank 0 divides at sizes 64 and 32, solves a leaf of 16, merges twice.
        assert res.times[0] >= (64 + 32 + 16 + 2) * TOY.flop_time

    def test_concurrency_limited_at_top(self):
        """The paper's second inefficiency: the top of the tree is serial.

        Total virtual time does not halve when doubling ranks for a
        transfer-dominated problem."""
        data = np.arange(1 << 14)
        arch = TraditionalDC(
            divide=lambda d: (d[: d.size // 2], d[d.size // 2 :]),
            leaf_solve=lambda d: float(d.sum()),
            merge2=lambda a, b: a + b,
        )
        t2 = arch.run(2, data, machine=TOY).elapsed
        t8 = arch.run(8, data, machine=TOY).elapsed
        assert t8 > t2 / 4  # far from linear scaling


class TestModeEquivalence:
    def test_sequential_equals_threads(self):
        data = list(range(50))
        seq = summing_dc().run(6, data, mode="sequential")
        thr = summing_dc().run(6, data, mode="threads")
        assert seq.values == thr.values
        assert seq.times == thr.times
