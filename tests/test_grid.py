"""DistGrid: block-distributed grids with ghost boundaries."""

import numpy as np
import pytest

from repro import spmd_run
from repro.core.grid import DistGrid
from repro.errors import DistributionError, RankFailedError


class TestGeometry:
    def test_local_shape_includes_ghosts(self):
        def body(comm):
            g = DistGrid(comm, (8, 8), dist="rows", ghost=2)
            return (g.local.shape, g.interior.shape, g.owned_shape())

        res = spmd_run(2, body)
        assert res.values[0] == ((8, 12), (4, 8), (4, 8))

    def test_rows_cols_blocks(self):
        def body(comm):
            rows = DistGrid(comm, (8, 6), dist="rows")
            cols = DistGrid(comm, (8, 6), dist="cols")
            blocks = DistGrid(comm, (8, 6), dist=(2, 2))
            return (rows.rect, cols.rect, blocks.rect)

        res = spmd_run(4, body)
        assert res.values[0][0] == ((0, 2), (0, 6))
        assert res.values[0][1] == ((0, 8), (0, 1))  # 6 cols over 4 ranks
        assert res.values[0][2] == ((0, 4), (0, 3))

    def test_explicit_grid_must_match_nprocs(self):
        with pytest.raises(RankFailedError) as info:
            spmd_run(3, lambda comm: DistGrid(comm, (4, 4), dist=(2, 2)))
        assert isinstance(info.value.original, DistributionError)

    def test_negative_ghost(self):
        with pytest.raises(RankFailedError):
            spmd_run(1, lambda comm: DistGrid(comm, (4, 4), ghost=-1))

    def test_unknown_dist(self):
        with pytest.raises(RankFailedError):
            spmd_run(1, lambda comm: DistGrid(comm, (4, 4), dist="diag"))

    def test_coord_arrays(self):
        def body(comm):
            g = DistGrid(comm, (6, 4), dist="rows")
            ii, jj = g.coord_arrays()
            g.interior[...] = ii * 10 + jj
            return g.gather(root=0)

        res = spmd_run(3, body)
        expected = np.add.outer(np.arange(6) * 10, np.arange(4))
        assert np.array_equal(res.values[0], expected)

    def test_axis_coords(self):
        def body(comm):
            g = DistGrid(comm, (9, 3), dist="rows")
            return g.axis_coords(0)

        res = spmd_run(3, body)
        assert np.array_equal(res.values[1], np.arange(3, 6))


class TestInteriorIntersection:
    def test_interior_rank(self):
        def body(comm):
            g = DistGrid(comm, (8, 8), dist="rows", ghost=1)
            return g.interior_intersection(1)

        res = spmd_run(4, body)
        # rank 0 owns rows 0-1; margin trims its first row and no columns? no:
        # columns trimmed on both sides since every rank owns all columns.
        assert res.values[0] == (slice(1, 2), slice(1, 7))
        assert res.values[1] == (slice(0, 2), slice(1, 7))
        assert res.values[3] == (slice(0, 1), slice(1, 7))

    def test_per_axis_margin(self):
        def body(comm):
            g = DistGrid(comm, (8, 8), dist="rows", ghost=1)
            return g.interior_intersection((1, 0))

        res = spmd_run(2, body)
        assert res.values[0] == (slice(1, 4), slice(0, 8))

    def test_rank_with_only_boundary_cells(self):
        def body(comm):
            g = DistGrid(comm, (2, 4), dist="rows", ghost=1)
            sl = g.interior_intersection(1)
            return g.interior[sl].size

        res = spmd_run(2, body)
        assert res.values == [0, 0]

    def test_margin_rank_mismatch(self):
        def body(comm):
            g = DistGrid(comm, (4, 4), ghost=1)
            g.interior_intersection((1, 1, 1))

        with pytest.raises(RankFailedError):
            spmd_run(1, body)


class TestDataMovement:
    def test_from_global_and_gather(self):
        full = np.arange(48.0).reshape(6, 8)

        def body(comm):
            g = DistGrid.from_global(comm, full if comm.rank == 0 else None, dist="rows")
            assert np.array_equal(g.interior, full[g.layout.slices(comm.rank)])
            back = g.gather(root=0)
            return back if comm.rank == 0 else back is None

        res = spmd_run(3, body)
        assert np.array_equal(res.values[0], full)
        assert res.values[1] is True

    def test_allgather(self):
        full = np.arange(12.0).reshape(4, 3)

        def body(comm):
            g = DistGrid.from_global(comm, full if comm.rank == 0 else None)
            return g.allgather()

        res = spmd_run(2, body)
        for v in res.values:
            assert np.array_equal(v, full)

    def test_redistributed(self):
        full = np.arange(36.0).reshape(6, 6)

        def body(comm):
            g = DistGrid.from_global(comm, full if comm.rank == 0 else None, dist="rows")
            g2 = g.redistributed("cols")
            return np.array_equal(g2.interior, full[g2.layout.slices(comm.rank)])

        assert all(spmd_run(3, body).values)

    def test_like(self):
        def body(comm):
            g = DistGrid(comm, (4, 4), ghost=1, dtype=np.float32)
            h = g.like(fill=3.0)
            return (h.local.shape == g.local.shape, h.dtype == g.dtype, float(h.interior[0, 0]))

        res = spmd_run(2, body)
        assert res.values[0] == (True, True, 3.0)

    def test_fill_from(self):
        def body(comm):
            g = DistGrid(comm, (4, 4))
            g.fill_from(lambda i, j: (i + 1.0) * (j + 1.0))
            return g.gather(root=0)

        res = spmd_run(4, body)
        assert np.array_equal(res.values[0], np.outer(np.arange(1.0, 5), np.arange(1.0, 5)))


class TestEdgeGhosts:
    def test_copy_mode(self):
        def body(comm):
            g = DistGrid(comm, (4, 4), dist="rows", ghost=1, fill=0.0)
            g.interior[...] = comm.rank + 1.0
            g.fill_edge_ghosts(mode="copy")
            lo, hi = g.rect[0]
            out = {}
            if lo == 0:
                out["top"] = g.local[0, 1:-1].copy()
            if hi == 4:
                out["bottom"] = g.local[-1, 1:-1].copy()
            out["left"] = g.local[1:-1, 0].copy()
            return out

        res = spmd_run(2, body)
        assert np.all(res.values[0]["top"] == 1.0)
        assert np.all(res.values[1]["bottom"] == 2.0)
        # every rank touches the left physical edge (rows distribution)
        assert np.all(res.values[0]["left"] == 1.0)

    def test_zero_mode(self):
        def body(comm):
            g = DistGrid(comm, (4, 4), ghost=1, fill=5.0)
            g.interior[...] = 1.0
            g.fill_edge_ghosts(mode="zero")
            return float(g.local[0, 1])

        res = spmd_run(1, body)
        assert res.values[0] == 0.0

    def test_requires_ghosts(self):
        def body(comm):
            DistGrid(comm, (4, 4)).fill_edge_ghosts()

        with pytest.raises(RankFailedError) as info:
            spmd_run(1, body)
        assert isinstance(info.value.original, DistributionError)


class TestExchangeIntegration:
    def test_exchange_updates_ghosts(self):
        def body(comm):
            g = DistGrid(comm, (6, 4), dist="rows", ghost=1)
            g.interior[...] = float(comm.rank)
            g.exchange()
            lo, hi = g.rect[0]
            got = {}
            if lo > 0:
                got["above"] = float(g.local[0, 1])
            if hi < 6:
                got["below"] = float(g.local[-1, 1])
            return got

        res = spmd_run(3, body)
        assert res.values[1] == {"above": 0.0, "below": 2.0}

    def test_exchange_requires_ghosts(self):
        with pytest.raises(RankFailedError):
            spmd_run(2, lambda comm: DistGrid(comm, (4, 4)).exchange())
