"""The one-deep divide-and-conquer skeleton."""

import numpy as np
import pytest

from repro.core.onedeep import OneDeepDC, PhaseSpec
from repro.errors import ArchetypeError, RankFailedError
from repro.machines.model import MachineModel

TOY = MachineModel("toy", alpha=1e-4, beta=1e-7, flop_time=1e-7)


def identity_merge_spec() -> PhaseSpec:
    """A merge phase that redistributes nothing: piece j empty except
    j == rank, combine concatenates."""
    return PhaseSpec(
        sample=lambda local: None,
        params=lambda samples, n: samples,
        partition=lambda params, local, n: [
            [local] if j == 0 else [] for j in range(n)
        ],
        combine=lambda pieces: [x for piece in pieces for x in piece],
    )


class TestConstruction:
    def test_requires_a_phase(self):
        with pytest.raises(ArchetypeError):
            OneDeepDC(solve=lambda x: x)

    def test_distribute_must_match_nprocs(self):
        arch = OneDeepDC(
            solve=lambda x: x,
            merge=identity_merge_spec(),
            distribute=lambda problem, n: [problem],  # wrong count
        )
        with pytest.raises(ArchetypeError):
            arch.run(3, [1, 2, 3])


class TestSkeletonMechanics:
    def test_degenerate_split_runs_solve_on_sections(self):
        seen = []

        def solve(local):
            seen.append(list(local))
            return sum(local)

        arch = OneDeepDC(solve=solve, merge=identity_merge_spec())
        res = arch.run(2, [1, 2, 3, 4])
        assert sorted(map(tuple, seen)) == [(1, 2), (3, 4)]
        # identity merge funnels everything to rank 0
        assert res.values[0] == [3, 7]
        assert res.values[1] == []

    def test_phase_partition_count_checked(self):
        bad = PhaseSpec(
            sample=lambda x: None,
            params=lambda s, n: None,
            partition=lambda p, local, n: [local],  # wrong count for n > 1
            combine=lambda pieces: pieces,
        )
        arch = OneDeepDC(solve=lambda x: x, merge=bad)
        with pytest.raises(RankFailedError) as info:
            arch.run(2, [1, 2, 3, 4])
        assert isinstance(info.value.original, ArchetypeError)

    def test_phase_order(self):
        events = []
        spec = lambda name: PhaseSpec(  # noqa: E731
            sample=lambda local: None,
            params=lambda s, n: None,
            partition=lambda p, local, n: (
                events.append(f"{name}-partition"),
                [local if j == 0 else [] for j in range(n)],
            )[1],
            combine=lambda pieces: (
                events.append(f"{name}-combine"),
                [x for piece in pieces for x in piece],
            )[1],
        )

        def solve(local):
            events.append("solve")
            return local

        OneDeepDC(solve=solve, split=spec("split"), merge=spec("merge")).run(1, [1])
        assert events == [
            "split-partition",
            "split-combine",
            "solve",
            "merge-partition",
            "merge-combine",
        ]


class TestStrategies:
    @pytest.mark.chaos(seeds=8)
    @pytest.mark.parametrize("strategy", ["master", "replicated"])
    def test_both_strategies_agree(self, strategy, rng):
        from repro.apps.sorting import one_deep_mergesort

        data = rng.integers(0, 1000, size=500)
        res = one_deep_mergesort(strategy=strategy).run(4, data)
        assert np.array_equal(np.concatenate(res.values), np.sort(data))

    def test_master_computes_params_once(self):
        calls = []

        merge = PhaseSpec(
            sample=lambda local: local,
            params=lambda s, n: calls.append(1) or None,
            partition=lambda p, local, n: [local if j == 0 else [] for j in range(n)],
            combine=lambda pieces: [x for piece in pieces for x in piece],
        )
        OneDeepDC(solve=lambda x: x, merge=merge, strategy="master").run(4, list(range(8)))
        assert len(calls) == 1

    def test_replicated_computes_params_everywhere(self):
        calls = []

        merge = PhaseSpec(
            sample=lambda local: local,
            params=lambda s, n: calls.append(1) or None,
            partition=lambda p, local, n: [local if j == 0 else [] for j in range(n)],
            combine=lambda pieces: [x for piece in pieces for x in piece],
        )
        OneDeepDC(solve=lambda x: x, merge=merge, strategy="replicated").run(
            4, list(range(8))
        )
        assert len(calls) == 4


class TestCostCharging:
    def test_solve_cost_on_clock(self):
        arch = OneDeepDC(
            solve=lambda x: x,
            solve_cost=lambda local: 1000.0,
            merge=identity_merge_spec(),
        )
        res = arch.run(1, [1, 2, 3], machine=TOY)
        assert res.times[0] >= 1000.0 * TOY.flop_time

    def test_phase_costs_on_clock(self):
        spec = identity_merge_spec()
        spec.sample_cost = lambda local: 500.0
        spec.partition_cost = lambda local: 500.0
        spec.combine_cost = lambda combined: 500.0
        arch = OneDeepDC(solve=lambda x: x, merge=spec)
        res = arch.run(1, [1], machine=TOY)
        assert res.times[0] == pytest.approx(1500.0 * TOY.flop_time)


class TestExecutionModes:
    def test_sequential_equals_threads(self, rng):
        from repro.apps.sorting import one_deep_quicksort

        data = rng.integers(0, 10**6, size=2000)
        arch = one_deep_quicksort()
        seq = arch.run(5, data, mode="sequential")
        thr = arch.run(5, data, mode="threads")
        for a, b in zip(seq.values, thr.values):
            assert np.array_equal(a, b)
        assert seq.times == thr.times
