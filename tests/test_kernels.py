"""The par-loop kernel layer: fusion A/B identity and planning units.

The load-bearing invariant: ``REPRO_KERNEL_FUSION`` selects *how group
bodies walk the region* (tile-interleaved vs loop-by-loop) and nothing
else — groups, exchange packs, hoists, charges, and therefore values,
virtual clocks, and traces are identical in both modes, on every
backend.  The A/B classes check exactly that on the three converted
mesh-spectral applications; the unit classes pin the planning rules the
invariant rests on (fusion legality, exchange hoisting, validity
invalidation, tiling).
"""

import numpy as np
import pytest

from repro.apps import registry
from repro.core import MeshProgram
from repro.kernels import (
    READ,
    RW,
    WRITE,
    Arg,
    ExprKernel,
    Kernel,
    ParLoop,
    Ref,
    build_groups,
    fusion_forced,
    jit_forced,
)
from repro.obs.metrics import scoped_registry
from repro.verify import fuzzed_schedule
from repro.verify.digest import value_digest

#: the converted mesh-spectral applications the A/B gate covers
AB_APPS = ("poisson", "smog", "spectralflow")

#: the ISSUE's fuzzed-schedule bar
FUZZ_SEEDS = tuple(range(8))


def run_app(app: str, mode: str | None = None, trace: bool = False):
    """One verification-scale run of *app* from the shared registry."""
    spec = registry.get(app)
    return spec.run(spec.verify_overrides, machine="ibm-sp", mode=mode, trace=trace)


def digest_of(result) -> str:
    return value_digest([result.times, result.values])


def flat_trace(result) -> list[str]:
    return [repr(e) for rank in result.tracer.events for e in rank]


class TestFusionIdentity:
    """Fused and unfused runs are observationally indistinguishable."""

    @pytest.mark.parametrize("app", AB_APPS)
    def test_digest_clock_trace_identity(self, app):
        with fusion_forced(False):
            off = run_app(app, trace=True)
        with fusion_forced(True):
            on = run_app(app, trace=True)
        assert off.times == on.times, f"{app}: virtual clocks diverged"
        assert digest_of(off) == digest_of(on), f"{app}: digests diverged"
        assert flat_trace(off) == flat_trace(on), f"{app}: traces diverged"

    @pytest.mark.parametrize("app", AB_APPS)
    def test_identity_under_fuzzed_schedules(self, app):
        with fusion_forced(False):
            reference = digest_of(run_app(app))
        for seed in FUZZ_SEEDS:
            with fuzzed_schedule(seed), fusion_forced(True):
                fused = digest_of(run_app(app))
            assert fused == reference, (app, seed)

    @pytest.mark.parametrize("app", AB_APPS)
    def test_identity_on_threads_backend(self, app):
        with fusion_forced(False):
            off = run_app(app, mode="threads")
        with fusion_forced(True):
            on = run_app(app, mode="threads")
        assert off.times == on.times
        assert digest_of(off) == digest_of(on)

    def test_identity_on_parallel_backend(self):
        # One app suffices: the switch reaches forked workers through the
        # environment mirror, which is backend-global, not per-app.
        try:
            with fusion_forced(False):
                off = run_app("smog", mode="parallel")
            with fusion_forced(True):
                on = run_app("smog", mode="parallel")
        except Exception as exc:  # pragma: no cover - sandboxed CI hosts
            pytest.skip(f"parallel backend unavailable: {exc}")
        assert off.times == on.times
        assert digest_of(off) == digest_of(on)


def _loops_for_grouping(mesh):
    """a -> b -> a chain over one region: READ a / WRITE a / READ a."""
    a = mesh.grid((8, 8), ghost=1, fill=1.0)
    b = mesh.grid((8, 8), ghost=1)
    c = mesh.grid((8, 8), ghost=1)

    def body(*views):
        pass

    read_a = ParLoop(Kernel(body), [Arg(b, WRITE), Arg(a, READ, halo=1)])
    write_a = ParLoop(Kernel(body), [Arg(a, WRITE), Arg(c, READ)])
    read_a_again = ParLoop(Kernel(body), [Arg(c, WRITE), Arg(a, READ, halo=1)])
    return [read_a, write_a, read_a_again]


class TestFusionLegality:
    def test_write_between_two_reads_breaks_fusion(self):
        """The ISSUE's canonical case: READ a / WRITE a / READ a must
        split into three groups — the middle write both invalidates the
        halo the first loop consumed and feeds the halo the third needs."""

        def prog(mesh):
            groups = build_groups(_loops_for_grouping(mesh))
            return [len(g.loops) for g in groups]

        res = MeshProgram(prog).run(1)
        assert res.values[0] == [1, 1, 1]

    def test_pointwise_chain_fuses(self):
        def prog(mesh):
            a = mesh.grid((8, 8), ghost=1, fill=1.0)
            b = mesh.grid((8, 8), ghost=1)

            def body(*views):
                pass

            loops = [
                ParLoop(Kernel(body), [Arg(b, WRITE), Arg(a, READ)]),
                ParLoop(Kernel(body), [Arg(a, WRITE), Arg(b, READ)]),
                ParLoop(Kernel(body), [Arg(a, RW), Arg(b, RW)]),
            ]
            return [len(g.loops) for g in build_groups(loops)]

        res = MeshProgram(prog).run(1)
        assert res.values[0] == [3]

    def test_region_mismatch_breaks_fusion(self):
        def prog(mesh):
            a = mesh.grid((8, 8), ghost=1, fill=1.0)
            b = mesh.grid((8, 8), ghost=1)

            def body(*views):
                pass

            loops = [
                ParLoop(Kernel(body), [Arg(b, WRITE), Arg(a, READ)], margin=0),
                ParLoop(Kernel(body), [Arg(b, WRITE), Arg(a, READ)], margin=1),
            ]
            return [len(g.loops) for g in build_groups(loops)]

        res = MeshProgram(prog).run(1)
        assert res.values[0] == [1, 1]

    def test_undeclared_write_fuses_with_nothing(self):
        def prog(mesh):
            a = mesh.grid((8, 8), ghost=1, fill=1.0)
            b = mesh.grid((8, 8), ghost=1)

            def body(*views):
                pass

            declared = ParLoop(Kernel(body), [Arg(b, WRITE), Arg(a, READ)])
            legacy = ParLoop(
                Kernel(body), [Arg(b, WRITE), Arg(a, READ)], writes_undeclared=True
            )
            return [len(g.loops) for g in build_groups([declared, legacy, declared])]

        res = MeshProgram(prog).run(1)
        assert res.values[0] == [1, 1, 1]


def _kernel_counters(snapshot: dict) -> dict:
    return {
        k.split(".")[-1]: v["value"]
        for k, v in snapshot.items()
        if k.startswith("core.kernels.")
    }


class TestExchangeHoisting:
    def test_second_read_hoists(self):
        """Two consecutive stencil loops over a clean dat: the first
        exchanges, the second finds the halo still valid."""

        def body(out, a):
            out[...] = a[0, 0]

        def prog(mesh):
            a = mesh.grid((8, 8), ghost=1, fill=1.0)
            b = mesh.grid((8, 8), ghost=1)
            c = mesh.grid((8, 8), ghost=1)
            mesh.parloop(body, Arg(b, WRITE), Arg(a, READ, halo=1), margin=1)
            mesh.parloop(body, Arg(c, WRITE), Arg(a, READ, halo=1), margin=1)

        with scoped_registry() as reg:
            MeshProgram(prog).run(2)
            counters = _kernel_counters(reg.snapshot())
        assert counters["exchanges"] == 2  # one per rank
        assert counters["exchanges_hoisted"] == 2

    def test_kernel_write_invalidates(self):
        """A declared write between the reads forces a re-exchange."""

        def body(out, a):
            out[...] = a[0, 0]

        def touch(a):
            a += 1.0

        def prog(mesh):
            a = mesh.grid((8, 8), ghost=1, fill=1.0)
            b = mesh.grid((8, 8), ghost=1)
            mesh.parloop(body, Arg(b, WRITE), Arg(a, READ, halo=1), margin=1)
            mesh.parloop(touch, Arg(a, RW))
            mesh.parloop(body, Arg(b, WRITE), Arg(a, READ, halo=1), margin=1)

        with scoped_registry() as reg:
            MeshProgram(prog).run(2)
            counters = _kernel_counters(reg.snapshot())
        assert counters["exchanges"] == 4  # both reads exchange, per rank
        assert counters.get("exchanges_hoisted", 0) == 0

    def test_undeclared_write_bumps_epoch(self):
        """A legacy op with an unknown write set invalidates everything."""

        def body(out, a):
            out[...] = a[0, 0]

        def prog(mesh):
            a = mesh.grid((8, 8), ghost=1, fill=1.0)
            b = mesh.grid((8, 8), ghost=1)
            mesh.parloop(body, Arg(b, WRITE), Arg(a, READ, halo=1), margin=1)
            # Legacy region update whose write set is undeclared.
            mesh.overlapped_update(
                [b], lambda region: None, flops_per_point=0.0, label="legacy"
            )
            mesh.parloop(body, Arg(b, WRITE), Arg(a, READ, halo=1), margin=1)

        with scoped_registry() as reg:
            MeshProgram(prog).run(2)
            counters = _kernel_counters(reg.snapshot())
        assert counters.get("exchanges_hoisted", 0) == 0

    def test_hoist_across_fused_groups_matches_values(self):
        """Hoisting never changes values: a two-group fuse block where
        the second group's exchange hoists must equal the blocking
        legacy formulation."""

        def diff(out, a):
            out[...] = a[1, 0] - a[-1, 0]

        def avg(out, a):
            out[...] = 0.5 * (a[0, 1] + a[0, -1])

        def prog(mesh):
            a = mesh.grid((12, 12), ghost=1)
            a.fill_from(lambda i, j: np.sin(i * 1.0) + j)
            d = mesh.grid((12, 12), ghost=1)
            m = mesh.grid((12, 12), ghost=1)
            with mesh.fuse():
                mesh.parloop(diff, Arg(d, WRITE), Arg(a, READ, halo=1), margin=1)
                mesh.parloop(avg, Arg(m, WRITE), Arg(a, READ, halo=1), margin=0)
            return d.gather(root=0), m.gather(root=0)

        one = MeshProgram(prog).run(1).values[0]
        four = MeshProgram(prog).run(4).values[0]
        assert np.array_equal(one[0], four[0])
        assert np.array_equal(one[1], four[1])


class TestTiling:
    def test_tiny_tiles_match_unfused(self, monkeypatch):
        """Forcing many row tiles exercises the fused walk without
        changing a bit of the output."""
        monkeypatch.setenv("REPRO_KERNEL_TILE_BYTES", "128")

        def run():
            return run_app("smog")

        with fusion_forced(True), scoped_registry() as reg:
            fused = run()
            counters = _kernel_counters(reg.snapshot())
        with fusion_forced(False):
            unfused = run()
        assert counters["tiles"] > counters["groups"], "expected multi-tile groups"
        assert digest_of(fused) == digest_of(unfused)


class TestExprKernelJIT:
    def test_missing_engine_falls_back_to_numpy(self):
        """Neither numexpr nor numba ships in this environment: asking
        for them must fall back (counted) and still produce the exact
        numpy-eval result."""
        kernel = ExprKernel("2.0 * x + c", {"x": Ref(1), "c": 3.0}, name="axpc")
        x = np.arange(12.0).reshape(3, 4)
        out = np.empty_like(x)
        with jit_forced("numexpr"), scoped_registry() as reg:
            kernel.execute([out, x])
            snap = reg.snapshot()
        assert np.array_equal(out, 2.0 * x + 3.0)
        assert snap["core.kernels.jit_fallbacks"]["value"] >= 1

    def test_jit_off_by_default_end_to_end(self):
        """The poisson run's jacobi ExprKernel evaluates via numpy when
        the switch is off — no fallback is counted because no engine was
        requested."""
        with scoped_registry() as reg:
            run_app("poisson")
            snap = reg.snapshot()
        assert snap.get("core.kernels.jit_fallbacks", {"value": 0})["value"] == 0

    def test_pointwise_offset_rejected(self):
        from repro.errors import ArchetypeError

        kernel = ExprKernel("x", {"x": Ref(1, (1, 0))}, name="bad")
        x = np.zeros((3, 3))
        with pytest.raises(ArchetypeError):
            kernel.execute([np.empty_like(x), x])


class TestShims:
    """The legacy grid-op API rides the kernel layer unchanged."""

    def test_point_op_is_a_parloop(self):
        def prog(mesh):
            a = mesh.grid((6, 6), fill=2.0)
            out = mesh.grid((6, 6))
            mesh.point_op(lambda o, x: o.__setitem__(..., x * 3), out, a)
            return out.gather(root=0)

        with scoped_registry() as reg:
            res = MeshProgram(prog).run(2)
            counters = _kernel_counters(reg.snapshot())
        assert np.all(res.values[0] == 6.0)
        assert counters["loops"] >= 2  # one per rank

    def test_stencil_op_value_identity_with_parloop(self):
        """A stencil_op and the equivalent declared par-loop produce
        bitwise-identical results at any process count."""

        def legacy(mesh):
            a = mesh.grid((10, 10), ghost=1)
            a.fill_from(lambda i, j: i * 10.0 + j)
            out = mesh.grid((10, 10), ghost=1)
            mesh.stencil_op(
                lambda o, s: o.__setitem__(..., s[1, 0] + s[-1, 0]),
                out,
                a,
                margin=1,
            )
            return out.gather(root=0)

        def declared(mesh):
            a = mesh.grid((10, 10), ghost=1)
            a.fill_from(lambda i, j: i * 10.0 + j)
            out = mesh.grid((10, 10), ghost=1)
            mesh.parloop(
                lambda o, s: o.__setitem__(..., s[1, 0] + s[-1, 0]),
                Arg(out, WRITE),
                Arg(a, READ, halo=1),
                margin=1,
            )
            return out.gather(root=0)

        for p in (1, 2, 4):
            l = MeshProgram(legacy).run(p).values[0]
            d = MeshProgram(declared).run(p).values[0]
            assert np.array_equal(l, d), p
