"""RankContext: point-to-point semantics and the virtual clock."""

import numpy as np
import pytest

from repro import spmd_run
from repro.errors import CommError
from repro.machines.model import MachineModel

#: deterministic machine with easily computed costs: 1 ms per message
#: envelope, 1 us per byte, 1 us per flop
TOY = MachineModel("toy", alpha=1e-3, beta=1e-6, flop_time=1e-6)


class TestSendRecv:
    def test_payload_types(self, backend):
        payloads = [1, 2.5, "s", None, (1, 2), [3, 4], {"k": 5}, np.arange(3)]

        def body(comm):
            if comm.rank == 0:
                for i, p in enumerate(payloads):
                    comm.send(1, p, tag=i)
                return None
            return [comm.recv(source=0, tag=i) for i in range(len(payloads))]

        res = spmd_run(2, body, backend=backend)
        got = res.values[1]
        assert got[:4] == [1, 2.5, "s", None]
        assert got[4] == (1, 2) and got[5] == [3, 4] and got[6] == {"k": 5}
        assert np.array_equal(got[7], np.arange(3))

    def test_send_by_value_protects_receiver(self):
        """A sender mutating its buffer after the send must not affect the
        receiver — the distributed-memory semantics of the modelled machine."""

        def body(comm):
            if comm.rank == 0:
                buf = np.zeros(8)
                comm.send(1, buf, tag=1)
                buf[:] = 99.0  # mutate after "transmission"
                return None
            return comm.recv(source=0, tag=1)

        res = spmd_run(2, body, backend="deterministic")
        assert np.array_equal(res.values[1], np.zeros(8))

    def test_send_by_value_for_views(self):
        """Contiguous views (the np.ascontiguousarray no-copy trap)."""

        def body(comm):
            if comm.rank == 0:
                arr = np.arange(20.0).reshape(4, 5)
                comm.send(1, np.ascontiguousarray(arr[1:2, :]), tag=1)
                arr[:] = -1.0
                return None
            return comm.recv(source=0, tag=1)

        res = spmd_run(2, body, backend="deterministic")
        assert np.array_equal(res.values[1], np.arange(5.0, 10.0).reshape(1, 5))

    def test_receiver_mutation_isolated(self):
        """A receiver working on its payload never reaches the sender.

        Received arrays may be read-only (COW contract), so the receiver
        copies before mutating; the sender's buffer must be untouched.
        """

        def body(comm):
            if comm.rank == 0:
                buf = np.ones(4)
                comm.send(1, [buf], tag=1)
                comm.barrier()
                return buf.copy()
            got = comm.recv(source=0, tag=1)
            mine = np.asarray(got[0]).copy()
            mine[:] = 7.0
            comm.barrier()
            return None

        res = spmd_run(2, body, backend="deterministic")
        assert np.array_equal(res.values[0], np.ones(4))

    def test_nonoverlapping_tags(self, backend):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, "late", tag=2)
                comm.send(1, "early", tag=1)
            else:
                assert comm.recv(source=0, tag=1) == "early"
                assert comm.recv(source=0, tag=2) == "late"
                return True

        res = spmd_run(2, body, backend=backend)
        assert res.values[1] is True

    def test_any_source(self, backend):
        def body(comm):
            if comm.rank == 0:
                got = {comm.recv()[0] for _ in range(comm.size - 1)}
                return got
            comm.send(0, (comm.rank,))
            return None

        res = spmd_run(4, body, backend=backend)
        assert res.values[0] == {1, 2, 3}

    def test_invalid_peer(self):
        with pytest.raises(Exception) as info:
            spmd_run(2, lambda comm: comm.send(5, "x"))
        assert "out of range" in str(info.value)

    def test_negative_tag_rejected(self):
        from repro.errors import RankFailedError

        with pytest.raises(RankFailedError) as info:
            spmd_run(2, lambda comm: comm.send(1 - comm.rank, "x", tag=-3))
        assert isinstance(info.value.original, CommError)

    def test_probe(self):
        def body(comm):
            if comm.rank == 0:
                assert not comm.probe()
                comm.send(0, "self", tag=1)
                assert comm.probe(source=0, tag=1)
                assert not comm.probe(source=0, tag=2)
                return comm.recv()
            return None

        assert spmd_run(1, body).values[0] == "self"

    def test_sendrecv_exchange(self, backend):
        def body(comm):
            partner = comm.size - 1 - comm.rank
            return comm.sendrecv(partner, comm.rank, partner, send_tag=7)

        res = spmd_run(4, body, backend=backend)
        assert res.values == [3, 2, 1, 0]


class TestVirtualClock:
    def test_charge_advances_clock(self):
        res = spmd_run(1, lambda comm: comm.charge(1000), machine=TOY)
        assert res.times[0] == pytest.approx(1e-3)

    def test_send_cost(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(100, dtype=np.float64), tag=1)  # 816 bytes
            else:
                comm.recv(source=0, tag=1)

        res = spmd_run(2, body, machine=TOY)
        expected = 1e-3 + 816e-6
        assert res.times[0] == pytest.approx(expected)
        # Receiver syncs to the arrival time, then pays ingest overhead.
        ingest = TOY.recv_overhead(816)
        assert ingest > 0
        assert res.times[1] == pytest.approx(expected + ingest)

    def test_receiver_serialises_many_senders(self):
        """A gather hot-spot: the root pays per-message ingest overhead."""

        def body(comm):
            if comm.rank == 0:
                for _ in range(comm.size - 1):
                    comm.recv(tag=1)
            else:
                comm.send(0, "x", tag=1)

        t4 = spmd_run(4, body, machine=TOY).times[0]
        t16 = spmd_run(16, body, machine=TOY).times[0]
        assert t16 > t4 + 10 * TOY.recv_overhead(17)

    def test_late_receiver_does_not_wait(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, "x", tag=1)
            else:
                comm.charge(10_000)  # 10 ms of work; message arrives earlier
                comm.recv(source=0, tag=1)

        res = spmd_run(2, body, machine=TOY)
        # No waiting: just the rank's own work plus the ingest overhead.
        assert res.times[1] == pytest.approx(0.01 + TOY.recv_overhead(17))

    def test_clock_independent_of_backend(self):
        def body(comm):
            comm.charge(500 * (comm.rank + 1))
            comm.barrier()
            return comm.allgather(comm.rank)

        a = spmd_run(4, body, machine=TOY, backend="deterministic")
        b = spmd_run(4, body, machine=TOY, backend="threads")
        assert a.times == b.times

    def test_ideal_machine_zero_time(self):
        def body(comm):
            comm.charge(1e9)
            comm.barrier()

        res = spmd_run(4, body)
        # IDEAL charges 1 second per flop but zero comm.
        assert res.times[0] == pytest.approx(1e9)

    def test_advance(self):
        res = spmd_run(1, lambda comm: comm.advance(2.5))
        assert res.times[0] == pytest.approx(2.5)

    def test_advance_negative_rejected(self):
        from repro.errors import RankFailedError

        with pytest.raises(RankFailedError):
            spmd_run(1, lambda comm: comm.advance(-1.0))

    def test_congestion_applies_to_sends(self):
        import dataclasses

        congested = dataclasses.replace(TOY, congestion_per_node=0.5)

        def body(comm):
            if comm.rank == 0:
                comm.send(1, "x", tag=1)
            return None

        small = spmd_run(2, body, machine=congested).times[0]
        big = spmd_run(4, body, machine=congested).times[0]
        assert big == pytest.approx(small * 2.0)
