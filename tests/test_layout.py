"""Data layouts."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DistributionError
from repro.comm.layout import (
    Layout,
    block_layout,
    col_layout,
    replicated_layout,
    row_layout,
    single_owner_layout,
)


class TestRowColLayouts:
    def test_row_layout_shapes(self):
        lay = row_layout((10, 6), 4)
        assert [lay.shape(r) for r in range(4)] == [(2, 6), (3, 6), (2, 6), (3, 6)]
        lay.validate_tiling()

    def test_col_layout_shapes(self):
        lay = col_layout((10, 6), 3)
        assert [lay.shape(r) for r in range(3)] == [(10, 2), (10, 2), (10, 2)]
        lay.validate_tiling()

    def test_col_needs_2d(self):
        with pytest.raises(DistributionError):
            col_layout((10,), 2)

    def test_more_ranks_than_rows(self):
        lay = row_layout((2, 4), 5)
        lay.validate_tiling()
        assert sum(lay.size(r) for r in range(5)) == 8
        assert any(lay.size(r) == 0 for r in range(5))

    @given(
        n=st.integers(1, 60),
        m=st.integers(1, 60),
        p=st.integers(1, 16),
    )
    def test_row_layout_always_tiles(self, n, m, p):
        row_layout((n, m), p).validate_tiling()


class TestBlockLayout:
    def test_2x2(self):
        lay = block_layout((4, 4), (2, 2))
        assert lay.rect(0) == ((0, 2), (0, 2))
        assert lay.rect(3) == ((2, 4), (2, 4))
        lay.validate_tiling()

    def test_row_major_rank_order(self):
        lay = block_layout((4, 6), (2, 3))
        # rank 1 is at grid coords (0, 1)
        assert lay.rect(1) == ((0, 2), (2, 4))

    def test_3d(self):
        lay = block_layout((4, 4, 4), (2, 2, 1))
        lay.validate_tiling()
        assert lay.nranks == 4
        assert lay.shape(0) == (2, 2, 4)

    def test_mismatched_dims(self):
        with pytest.raises(DistributionError):
            block_layout((4, 4), (2, 2, 1))

    @given(
        shape=st.tuples(st.integers(1, 20), st.integers(1, 20)),
        grid=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    )
    def test_always_tiles(self, shape, grid):
        block_layout(shape, grid).validate_tiling()

    @given(
        shape=st.tuples(st.integers(1, 12), st.integers(1, 12)),
        grid=st.tuples(st.integers(1, 3), st.integers(1, 3)),
        data=st.data(),
    )
    def test_owner_of_consistent(self, shape, grid, data):
        lay = block_layout(shape, grid)
        i = data.draw(st.integers(0, shape[0] - 1))
        j = data.draw(st.integers(0, shape[1] - 1))
        owner = lay.owner_of((i, j))
        (lo0, hi0), (lo1, hi1) = lay.rect(owner)
        assert lo0 <= i < hi0 and lo1 <= j < hi1


class TestSpecialLayouts:
    def test_single_owner(self):
        lay = single_owner_layout((5, 5), 4, owner=2)
        assert lay.size(2) == 25
        assert all(lay.size(r) == 0 for r in (0, 1, 3))
        lay.validate_tiling()

    def test_single_owner_bad_owner(self):
        with pytest.raises(DistributionError):
            single_owner_layout((5,), 2, owner=2)

    def test_replicated(self):
        lay = replicated_layout((3, 3), 3)
        assert all(lay.size(r) == 9 for r in range(3))
        lay.validate_tiling()  # skipped for replicated, must not raise

    def test_owner_of_out_of_domain(self):
        lay = row_layout((4, 4), 2)
        with pytest.raises(DistributionError):
            lay.owner_of((9, 0))

    def test_owner_of_wrong_rank(self):
        lay = row_layout((4, 4), 2)
        with pytest.raises(DistributionError):
            lay.owner_of((1,))


class TestValidation:
    def test_overlap_detected(self):
        bad = Layout((4,), (((0, 3),), ((2, 4),)), name="bad")
        with pytest.raises(DistributionError):
            bad.validate_tiling()

    def test_gap_detected(self):
        bad = Layout((4,), (((0, 1),), ((2, 4),)), name="gappy")
        with pytest.raises(DistributionError):
            bad.validate_tiling()

    def test_slices(self):
        lay = row_layout((6, 4), 3)
        assert lay.slices(1) == (slice(2, 4), slice(0, 4))

    def test_negative_extent(self):
        with pytest.raises(DistributionError):
            row_layout((-1, 4), 2)
