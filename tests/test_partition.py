"""Block-partition index arithmetic."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DistributionError
from repro.util.partition import (
    block_bounds,
    block_count,
    block_owner,
    block_slice,
    split_evenly,
)


class TestBlockBounds:
    def test_even_split(self):
        assert [block_bounds(8, 4, i) for i in range(4)] == [
            (0, 2),
            (2, 4),
            (4, 6),
            (6, 8),
        ]

    def test_uneven_split(self):
        bounds = [block_bounds(10, 3, i) for i in range(3)]
        assert bounds == [(0, 3), (3, 6), (6, 10)]

    def test_single_part(self):
        assert block_bounds(7, 1, 0) == (0, 7)

    def test_more_parts_than_items(self):
        counts = [block_count(3, 5, i) for i in range(5)]
        assert sum(counts) == 3
        assert all(c in (0, 1) for c in counts)

    def test_empty(self):
        assert block_bounds(0, 4, 2) == (0, 0)

    def test_bad_part_count(self):
        with pytest.raises(DistributionError):
            block_bounds(10, 0, 0)

    def test_bad_index(self):
        with pytest.raises(DistributionError):
            block_bounds(10, 3, 3)
        with pytest.raises(DistributionError):
            block_bounds(10, 3, -1)

    def test_negative_items(self):
        with pytest.raises(DistributionError):
            block_bounds(-1, 3, 0)

    @given(n=st.integers(0, 10_000), p=st.integers(1, 100))
    def test_tiles_exactly(self, n, p):
        bounds = [block_bounds(n, p, i) for i in range(p)]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (lo_a, hi_a), (lo_b, _hi_b) in zip(bounds, bounds[1:]):
            assert hi_a == lo_b
            assert lo_a <= hi_a

    @given(n=st.integers(1, 10_000), p=st.integers(1, 100))
    def test_sizes_balanced(self, n, p):
        counts = [block_count(n, p, i) for i in range(p)]
        assert max(counts) - min(counts) <= 1
        assert sum(counts) == n


class TestBlockOwner:
    @given(n=st.integers(1, 5_000), p=st.integers(1, 64), data=st.data())
    def test_inverse_of_bounds(self, n, p, data):
        g = data.draw(st.integers(0, n - 1))
        owner = block_owner(n, p, g)
        lo, hi = block_bounds(n, p, owner)
        assert lo <= g < hi

    def test_out_of_range(self):
        with pytest.raises(DistributionError):
            block_owner(10, 3, 10)
        with pytest.raises(DistributionError):
            block_owner(10, 3, -1)


class TestSplitEvenly:
    def test_roundtrip_list(self):
        data = list(range(17))
        parts = split_evenly(data, 5)
        assert [x for part in parts for x in part] == data

    def test_numpy_views(self):
        arr = np.arange(100)
        parts = split_evenly(arr, 7)
        assert sum(p.size for p in parts) == 100
        assert np.array_equal(np.concatenate(parts), arr)

    def test_block_slice_matches(self):
        arr = np.arange(23)
        for i in range(4):
            assert np.array_equal(
                split_evenly(arr, 4)[i], arr[block_slice(23, 4, i)]
            )
