"""The conformance suite: every archetype × every backend × the contract.

Thin pytest parameterization over :mod:`archetype_contract`; the check
bodies live there so they stay importable outside pytest.  A new
archetype joins by registering a program in
:mod:`repro.verify.conformance` — no new test code.
"""

from __future__ import annotations

import pytest

from archetype_contract import (
    BACKENDS,
    CHECKS,
    PROGRAMS,
    check_backend_identity,
    digest_of,
    run_program,
)
from repro.verify.conformance import archetypes

PROGRAM_NAMES = sorted(PROGRAMS)


def test_registry_covers_all_archetypes():
    """The registry must keep covering the three archetype families."""
    assert set(archetypes()) >= {"one-deep-dc", "mesh-spectral", "pipeline-farm"}


@pytest.mark.parametrize("check", sorted(CHECKS), ids=str)
@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_contract(name, check):
    CHECKS[check](name)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_backend_identity(name, backend):
    if backend == "fuzzed":
        pytest.skip("fuzzed identity covered by the 8-seed contract check")
    check_backend_identity(name, backend)


@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_digest_is_stable_across_processes(name):
    """The digest itself must be canonical: comparing digests across OS
    processes (the parallel backend) only means something if the digest
    of equal values is equal.  Guard against id()/repr()-dependent
    encodings sneaking into value_digest."""
    a = digest_of(run_program(name))
    b = digest_of(run_program(name))
    assert a == b and len(a) == 64
