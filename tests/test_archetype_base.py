"""Archetype base driver."""

import pytest

from repro.core.archetype import Archetype, ExecutionMode
from repro.errors import ArchetypeError


class Doubler(Archetype):
    name = "doubler"

    def body(self, comm, x):
        return x * 2 + comm.rank


class Staged(Archetype):
    name = "staged"

    def prepare(self, nprocs, problem):
        return ([problem] * nprocs,), {}

    def body(self, comm, sections):
        return sections[comm.rank]


class TestExecutionMode:
    def test_values(self):
        assert ExecutionMode("sequential") is ExecutionMode.SEQUENTIAL
        assert ExecutionMode("threads") is ExecutionMode.THREADS

    def test_backend_mapping(self):
        assert ExecutionMode.SEQUENTIAL.backend == "deterministic"
        assert ExecutionMode.THREADS.backend == "threads"

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ExecutionMode("mpi")


class TestDriver:
    def test_run_forwards_args(self):
        res = Doubler().run(3, 10)
        assert res.values == [20, 21, 22]

    def test_mode_strings_accepted(self):
        assert Doubler().run(2, 1, mode="threads").values == [2, 3]
        assert Doubler().run(2, 1, mode="sequential").values == [2, 3]

    def test_prepare_stages_input(self):
        res = Staged().run(3, "payload")
        assert res.values == ["payload"] * 3

    def test_invalid_nprocs(self):
        with pytest.raises(ArchetypeError):
            Doubler().run(0, 1)

    def test_body_must_be_overridden(self):
        from repro.errors import RankFailedError

        with pytest.raises(RankFailedError) as info:
            Archetype().run(1)
        assert isinstance(info.value.original, NotImplementedError)

    def test_machine_forwarded(self):
        from repro.machines.catalog import INTEL_DELTA

        class Charger(Archetype):
            def body(self, comm):
                comm.charge(8e6)

        res = Charger().run(1, machine=INTEL_DELTA)
        assert res.times[0] == pytest.approx(1.0)
        assert res.machine is INTEL_DELTA

    def test_trace_forwarded(self):
        res = Doubler().run(2, 1, trace=True)
        assert res.tracer is not None
