"""Deadlock-reporting matrix: the error must name every blocked rank and
what it awaits, under both run-to-block backends and fault injection.

Three canonical shapes:

- head-to-head: two ranks each receive before the matching send is posted;
- cyclic wait: rank i receives from rank i+1 around a 3-cycle;
- recv-from-failed-rank: the awaited peer died, so the run must surface
  the *failure* (naming the dead rank), never a hang or a bare deadlock.
"""

import pytest

from repro import DeadlockError, spmd_run
from repro.errors import RankFailedError

RUN_TO_BLOCK = ["deterministic", "fuzzed"]


def _head_to_head(comm):
    peer = 1 - comm.rank
    comm.recv(peer, tag=4)  # both ranks wait first...
    comm.send(peer, comm.rank, tag=4)  # ...so neither send is ever posted


def _cycle3(comm):
    comm.recv((comm.rank + 1) % comm.size, tag=9)


def _recv_from_failed(comm):
    if comm.rank == 1:
        raise ValueError("boom")
    comm.recv(1, tag=0)


class TestHeadToHead:
    @pytest.mark.parametrize("backend", RUN_TO_BLOCK)
    def test_names_both_ranks_and_their_waits(self, backend):
        with pytest.raises(DeadlockError) as info:
            spmd_run(2, _head_to_head, backend=backend)
        assert set(info.value.waiting) == {0, 1}
        assert "recv(source=1, tag=4" in info.value.waiting[0]
        assert "recv(source=0, tag=4" in info.value.waiting[1]
        # The message itself carries the per-rank diagnostics too.
        assert "rank 0" in str(info.value) and "rank 1" in str(info.value)

    def test_threaded_backend_reports_instead_of_hanging(self):
        with pytest.raises(DeadlockError) as info:
            spmd_run(2, _head_to_head, backend="threads", deadlock_timeout=0.4)
        # Timeout-based detection names at least the rank that gave up.
        assert info.value.waiting
        for rank, describe in info.value.waiting.items():
            assert "recv(" in describe


class TestCyclicWait:
    @pytest.mark.parametrize("backend", RUN_TO_BLOCK)
    def test_names_all_three_ranks(self, backend):
        with pytest.raises(DeadlockError) as info:
            spmd_run(3, _cycle3, backend=backend)
        assert set(info.value.waiting) == {0, 1, 2}
        for rank in range(3):
            assert f"recv(source={(rank + 1) % 3}, tag=9" in info.value.waiting[rank]

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzzed_report_is_seed_independent(self, seed):
        with pytest.raises(DeadlockError) as info:
            spmd_run(3, _cycle3, backend="fuzzed", seed=seed)
        assert set(info.value.waiting) == {0, 1, 2}


class TestRecvFromFailedRank:
    @pytest.mark.parametrize("backend", RUN_TO_BLOCK + ["threads"])
    def test_surfaces_the_failure_naming_the_dead_rank(self, backend):
        kwargs = {"deadlock_timeout": 5.0} if backend == "threads" else {}
        with pytest.raises(RankFailedError) as info:
            spmd_run(3, _recv_from_failed, backend=backend, **kwargs)
        assert info.value.rank == 1
        assert isinstance(info.value.original, ValueError)
        assert "rank 1" in str(info.value)
