"""Runtime core: messages, mailboxes, schedulers, failure handling."""

import numpy as np
import pytest

from repro import DeadlockError, spmd_run
from repro.errors import RankFailedError, ReproError
from repro.runtime.mailbox import Mailbox
from repro.runtime.message import ANY_SOURCE, ANY_TAG, Message
from tests.conftest import run_both_backends


def _msg(source=0, dest=1, tag=0, payload=None, seq=0):
    return Message(
        source=source, dest=dest, tag=tag, payload=payload, nbytes=8, arrival=0.0, seq=seq
    )


class TestMessageMatching:
    def test_exact(self):
        m = _msg(source=2, tag=7)
        assert m.matches(2, 7)
        assert not m.matches(1, 7)
        assert not m.matches(2, 8)

    def test_wildcards(self):
        m = _msg(source=2, tag=7)
        assert m.matches(ANY_SOURCE, 7)
        assert m.matches(2, ANY_TAG)
        assert m.matches(ANY_SOURCE, ANY_TAG)


class TestMailbox:
    def test_fifo_within_match(self):
        mb = Mailbox()
        mb.put(_msg(payload="a", seq=1))
        mb.put(_msg(payload="b", seq=2))
        assert mb.take_match(0, 0).payload == "a"
        assert mb.take_match(0, 0).payload == "b"

    def test_matching_skips_nonmatching(self):
        mb = Mailbox()
        mb.put(_msg(source=1, tag=5, payload="x"))
        mb.put(_msg(source=2, tag=6, payload="y"))
        assert mb.take_match(2, 6).payload == "y"
        assert len(mb) == 1

    def test_no_match(self):
        mb = Mailbox()
        mb.put(_msg(tag=1))
        assert mb.take_match(0, 2) is None
        assert mb.has_match(0, 1)
        assert not mb.has_match(0, 2)

    def test_snapshot_copy(self):
        mb = Mailbox()
        mb.put(_msg())
        snap = mb.snapshot()
        snap.clear()
        assert len(mb) == 1


class TestSpmdRun:
    def test_single_rank(self):
        res = spmd_run(1, lambda comm: comm.rank)
        assert res.values == [0]
        assert res.nprocs == 1

    def test_returns_in_rank_order(self, backend):
        res = spmd_run(5, lambda comm: comm.rank * 10, backend=backend)
        assert res.values == [0, 10, 20, 30, 40]

    def test_args_passed(self):
        res = spmd_run(2, lambda comm, a, b: a + b + comm.rank, args=(1, 2))
        assert res.values == [3, 4]

    def test_kwargs_passed(self):
        res = spmd_run(2, lambda comm, x=0: x, kwargs={"x": 9})
        assert res.values == [9, 9]

    def test_invalid_nprocs(self):
        with pytest.raises(ReproError):
            spmd_run(0, lambda comm: None)

    def test_exceeds_machine(self):
        from repro import INTEL_DELTA

        with pytest.raises(ReproError, match="at most"):
            spmd_run(INTEL_DELTA.max_nodes + 1, lambda c: None, machine=INTEL_DELTA)

    def test_unknown_backend(self):
        with pytest.raises(ReproError, match="backend"):
            spmd_run(1, lambda c: None, backend="mpi")

    def test_elapsed_is_max_rank_time(self):
        def body(comm):
            comm.charge(1e6 * (comm.rank + 1))

        from repro import INTEL_DELTA

        res = spmd_run(3, body, machine=INTEL_DELTA)
        assert res.elapsed == max(res.times) == res.times[2]

    def test_speedup_over(self):
        def body(comm):
            comm.charge(1e6)

        from repro import INTEL_DELTA

        res = spmd_run(4, body, machine=INTEL_DELTA)
        assert res.speedup_over(2 * res.elapsed) == pytest.approx(2.0)


class TestDeterministicScheduling:
    def test_rank_order_interleaving(self):
        """Run-to-block: rank 0 runs to completion before rank 1 starts
        when there is no communication."""
        order = []

        def body(comm):
            order.append(comm.rank)

        spmd_run(4, body, backend="deterministic")
        assert order == [0, 1, 2, 3]

    def test_blocked_rank_yields_to_next(self):
        order = []

        def body(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=1)
                order.append("r0-after-recv")
            else:
                order.append("r1-before-send")
                comm.send(0, "x", tag=1)

        spmd_run(2, body, backend="deterministic")
        assert order == ["r1-before-send", "r0-after-recv"]

    def test_reproducible_results(self):
        def body(comm):
            comm.send((comm.rank + 1) % comm.size, comm.rank, tag=3)
            return comm.recv(tag=3)

        a = spmd_run(5, body, backend="deterministic").values
        b = spmd_run(5, body, backend="deterministic").values
        assert a == b == [4, 0, 1, 2, 3]


class TestDeadlockDetection:
    def test_cycle_detected(self, backend):
        def body(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=5)

        kwargs = {"deadlock_timeout": 1.0} if backend == "threads" else {}
        with pytest.raises(DeadlockError):
            spmd_run(3, body, backend=backend, **kwargs)

    def test_waiting_diagnostics(self):
        def body(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=5)

        with pytest.raises(DeadlockError) as info:
            spmd_run(2, body, backend="deterministic")
        assert 0 in info.value.waiting and 1 in info.value.waiting
        assert "tag=5" in info.value.waiting[0]

    def test_partial_deadlock(self):
        """Some ranks finish; the rest block forever."""

        def body(comm):
            if comm.rank == 0:
                return "done"
            comm.recv(source=comm.rank, tag=9)

        with pytest.raises(DeadlockError):
            spmd_run(3, body, backend="deterministic")

    def test_self_send_satisfies_self_recv(self, backend):
        def body(comm):
            comm.send(comm.rank, "loop", tag=2)
            return comm.recv(source=comm.rank, tag=2)

        res = spmd_run(3, body, backend=backend)
        assert res.values == ["loop"] * 3


class TestFailurePropagation:
    def test_failure_raised(self, backend):
        def body(comm):
            if comm.rank == 2:
                raise ValueError("kaboom")
            comm.barrier()

        with pytest.raises(RankFailedError) as info:
            spmd_run(4, body, backend=backend)
        assert info.value.rank == 2
        assert isinstance(info.value.original, ValueError)

    def test_failure_before_any_comm(self):
        def body(comm):
            raise RuntimeError("early")

        with pytest.raises(RankFailedError) as info:
            spmd_run(3, body, backend="deterministic")
        assert info.value.rank == 0

    def test_lowest_failing_rank_reported(self):
        def body(comm):
            raise RuntimeError(f"r{comm.rank}")

        with pytest.raises(RankFailedError) as info:
            spmd_run(3, body, backend="deterministic")
        assert info.value.rank == 0


class TestBackendEquivalence:
    def test_ring_pipeline(self):
        def body(comm):
            acc = comm.rank
            for _ in range(3):
                comm.send((comm.rank + 1) % comm.size, acc, tag=1)
                acc += comm.recv(source=(comm.rank - 1) % comm.size, tag=1)
            return acc

        run_both_backends(6, body)

    def test_numpy_payload_roundtrip(self):
        def body(comm):
            data = np.arange(50) * comm.rank
            comm.send((comm.rank + 1) % comm.size, data, tag=4)
            return comm.recv(tag=4)

        run_both_backends(4, body)


class TestClockSourceContract:
    """Regression for the set_clock_source contract: the virtual-clock
    accessor drives scheduling only on the run-to-block backends.  The
    threaded backend interleaves in wall-clock order and must never
    consult it (its docstring now documents exactly that)."""

    @staticmethod
    def _ping(backend_obj):
        """Minimal two-rank exchange exercising a scheduling decision."""

        def body0():
            backend_obj.deliver(
                Message(
                    source=0, dest=1, tag=0, payload="x", nbytes=1, arrival=0.0, seq=1
                )
            )

        def body1():
            backend_obj.wait_for_match(1, 0, 0, 0, "recv(source=0, tag=0)")

        return [body0, body1]

    def test_deterministic_consults_accessor(self):
        from repro.runtime.scheduler import DeterministicBackend

        calls = []
        engine = DeterministicBackend(2)
        engine.set_clock_source(lambda rank: calls.append(rank) or 0.0)
        engine.run(self._ping(engine))
        assert calls, "deterministic backend never read the clock source"

    def test_fuzzed_consults_accessor(self):
        from repro.runtime.scheduler import FuzzedBackend

        calls = []
        engine = FuzzedBackend(2, seed=0)
        engine.set_clock_source(lambda rank: calls.append(rank) or 0.0)
        engine.run(self._ping(engine))
        assert calls, "fuzzed backend never read the clock source"

    def test_threaded_ignores_accessor(self):
        from repro.runtime.scheduler import ThreadedBackend

        calls = []
        engine = ThreadedBackend(2, deadlock_timeout=5.0)
        engine.set_clock_source(lambda rank: calls.append(rank) or 0.0)
        engine.run(self._ping(engine))
        assert calls == [], "threaded backend consulted the (ignored) clock source"

    def test_deterministic_schedules_in_virtual_time_order(self):
        """The rank furthest behind in virtual time runs first: with
        rank 0's clock ahead of rank 1's, rank 1's body completes before
        rank 0's even though rank 0 has the lower id."""
        from repro.runtime.scheduler import DeterministicBackend

        order = []
        engine = DeterministicBackend(2)
        engine.set_clock_source(lambda rank: [5.0, 1.0][rank])
        engine.run([lambda: order.append(0), lambda: order.append(1)])
        assert order == [1, 0]
