"""The autotuning loop: spaces, pruning, search, catalog, consultation."""

from __future__ import annotations

import json
import os

import pytest

from repro.apps import registry
from repro.comm.cart import (
    PROC_GRID_ENV,
    choose_proc_grid,
    override_for,
    parse_proc_grid,
    proc_grid_override,
)
from repro.core.meshspectral import MeshProgram
from repro.errors import DistributionError
from repro.machines.catalog import get_machine
from repro.serve.executor import execute
from repro.serve.protocol import JobRequest
from repro.tune import catalog
from repro.tune.catalog import TunedConfig, TunedEntry
from repro.tune.predict import PRUNE_SLACK, predict_candidate, prune
from repro.tune.search import REJECTED, search
from repro.tune.space import build_space, canonical_digest

TINY_POISSON = {"nx": 12, "ny": 12, "max_iters": 2}


def _entry(config: TunedConfig, signature: str = "sig") -> TunedEntry:
    return TunedEntry(
        config=config,
        predicted=1.0,
        measured=1.0,
        default_measured=2.0,
        digest="d",
        space_signature=signature,
    )


class TestProcGridOverride:
    def test_parse(self):
        assert parse_proc_grid("4x2") == (4, 2)
        assert parse_proc_grid("4,2,1") == (4, 2, 1)
        with pytest.raises(DistributionError):
            parse_proc_grid("4x")
        with pytest.raises(DistributionError):
            parse_proc_grid("0x4")

    def test_override_applies_only_when_it_matches(self, monkeypatch):
        monkeypatch.setenv(PROC_GRID_ENV, "4x1")
        assert override_for(4, 2) == (4, 1)
        assert override_for(8, 2) is None  # wrong rank count
        assert override_for(4, 3) is None  # wrong dimensionality

    def test_context_manager_restores(self):
        assert os.environ.get(PROC_GRID_ENV) is None
        with proc_grid_override((2, 2)):
            assert os.environ[PROC_GRID_ENV] == "2x2"
            with proc_grid_override((4, 1)):
                assert os.environ[PROC_GRID_ENV] == "4x1"
            assert os.environ[PROC_GRID_ENV] == "2x2"
        assert os.environ.get(PROC_GRID_ENV) is None

    def test_choose_proc_grid_cache_not_poisoned(self):
        default = choose_proc_grid(4, 2)
        with proc_grid_override((4, 1)):
            # The memoised factorisation is pure; the override lives
            # upstream of it.
            assert choose_proc_grid(4, 2) == default
        assert choose_proc_grid(4, 2) == default

    def test_archetype_run_explicit_grid_wins(self):
        program = MeshProgram(lambda mesh: mesh.grid((8, 8), ghost=1).cart.dims)
        assert program.run(4).values == [(2, 2)] * 4
        assert program.run(4, proc_grid=(4, 1)).values == [(4, 1)] * 4
        # Scope ends with the run: the next default run is untouched.
        assert program.run(4).values == [(2, 2)] * 4

    def test_rows_cols_distributions_unaffected(self):
        program = MeshProgram(
            lambda mesh: mesh.grid((8, 8), dist="rows", ghost=0).cart.dims
        )
        assert program.run(4, proc_grid=(2, 2)).values == [(4, 1)] * 4


class TestCatalogStore:
    def test_roundtrip(self):
        cfg = TunedConfig(proc_grid=(4, 1), tile_bytes=1 << 20, params={"overlap": False})
        catalog.store("poisson", "ibm-sp", 4, _entry(cfg))
        loaded = catalog.lookup("poisson", "ibm-sp", 4)
        assert loaded is not None
        assert loaded.config == cfg
        assert catalog.lookup("poisson", "ibm-sp", 8) is None

    def test_corrupt_file_reads_empty(self):
        path = catalog.entry_path("poisson", "ibm-sp")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert catalog.load("poisson", "ibm-sp") == {}

    def test_schema_mismatch_reads_empty(self):
        catalog.store("poisson", "ibm-sp", 4, _entry(TunedConfig()))
        path = catalog.entry_path("poisson", "ibm-sp")
        doc = json.loads(path.read_text())
        doc["schema"] = catalog.SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        assert catalog.load("poisson", "ibm-sp") == {}

    def test_enabled_env(self, monkeypatch):
        assert catalog.enabled()
        monkeypatch.setenv(catalog.TUNE_ENV, "0")
        assert not catalog.enabled()

    def test_applying_sets_and_restores_env(self):
        cfg = TunedConfig(proc_grid=(4, 1), tile_bytes=123456, shm_threshold=999)
        with catalog.applying(cfg):
            assert os.environ[PROC_GRID_ENV] == "4x1"
            assert os.environ["REPRO_KERNEL_TILE_BYTES"] == "123456"
            assert os.environ["REPRO_SHM_THRESHOLD"] == "999"
            assert catalog.active()
        assert os.environ.get(PROC_GRID_ENV) is None
        assert "REPRO_KERNEL_TILE_BYTES" not in os.environ
        assert not catalog.active()

    def test_consult_suppressed_while_active(self):
        catalog.store("poisson", "ibm-sp", 4, _entry(TunedConfig(proc_grid=(4, 1))))
        assert catalog.consult("poisson", "ibm-sp", 4) is not None
        with catalog.disabled():
            assert catalog.consult("poisson", "ibm-sp", 4) is None


class TestSpace:
    def test_default_first_and_unique(self):
        spec = registry.get("poisson")
        space = build_space(spec, spec.params_with(None))
        assert space[0].is_default()
        assert not any(c.is_default() for c in space[1:])
        dicts = [json.dumps(c.to_dict(), sort_keys=True) for c in space]
        assert len(dicts) == len(set(dicts))

    def test_mesh_space_matches_grid_ndim(self):
        spec = registry.get("fdtd")
        space = build_space(spec, spec.params_with(None))
        grids = {c.proc_grid for c in space if c.proc_grid}
        assert grids and all(len(g) == 3 for g in grids)

    def test_farm_space_varies_width_and_window(self):
        spec = registry.get("knapfarm")
        space = build_space(spec, spec.params_with(None))
        assert space[0].is_default()
        widths = {c.params.get("workers") for c in space[1:]}
        windows = {c.params.get("window") for c in space[1:]}
        assert len(widths) > 1 and len(windows) > 1

    def test_prune_keeps_default_and_unpredicted(self):
        keep = prune([10.0, None, 10.0 * PRUNE_SLACK * 1.01, 10.0])
        assert keep == [True, True, False, True]

    def test_prediction_tracks_measurement(self):
        spec = registry.get("poisson")
        params = spec.params_with(TINY_POISSON)
        machine = get_machine("cloud-25gbe")
        predicted = predict_candidate(spec, params, machine, TunedConfig())
        with catalog.disabled():
            measured = spec.run(params, machine=machine).elapsed
        assert predicted == pytest.approx(measured, rel=0.25)


class TestSearch:
    def test_winner_never_worse_than_default(self):
        outcome = search("poisson", "cloud-25gbe", overrides=TINY_POISSON)
        assert outcome.entry.measured <= outcome.entry.default_measured
        assert not outcome.cache_hit
        assert catalog.entry_path("poisson", "cloud-25gbe").is_file()

    def test_second_search_hits_catalog(self):
        search("poisson", "cloud-25gbe", overrides=TINY_POISSON)
        again = search("poisson", "cloud-25gbe", overrides=TINY_POISSON)
        assert again.cache_hit and again.reports == ()
        forced = search(
            "poisson", "cloud-25gbe", overrides=TINY_POISSON, force=True
        )
        assert not forced.cache_hit

    def test_changed_space_invalidates_hit(self):
        search("poisson", "cloud-25gbe", overrides=TINY_POISSON)
        different = search(
            "poisson", "cloud-25gbe", overrides={"nx": 16, "ny": 8, "max_iters": 2}
        )
        assert not different.cache_hit

    def test_anisotropic_domain_finds_real_win(self):
        # A 4x-wider-than-tall domain wants a 4x1 grid: less traffic and
        # fewer per-axis overheads than the square default factorisation.
        outcome = search(
            "poisson",
            "cloud-25gbe",
            overrides={"nx": 64, "ny": 16, "max_iters": 2},
        )
        assert outcome.entry.config.proc_grid == (4, 1)
        assert outcome.entry.measured < outcome.entry.default_measured

    def test_exhaustive_scores_pruner(self):
        outcome = search(
            "poisson",
            "cloud-25gbe",
            nprocs=8,
            overrides={"nx": 64, "ny": 16, "max_iters": 2},
            exhaustive=True,
        )
        counts = outcome.counts()
        assert counts["pruned"] > 0
        assert outcome.prune_accuracy == 1.0

    def test_fdtd_digest_contract_rejects_partition_sensitive_grids(self):
        # FDTD's energy is a SUM reduction whose partial sums depend on
        # the partition, so proc-grid candidates that change the local
        # summation order are measured, caught, and rejected.
        outcome = search(
            "fdtd", "numa-epyc", overrides={"nx": 8, "ny": 8, "nz": 8, "steps": 2}
        )
        rejected = [r for r in outcome.reports if r.status == REJECTED]
        assert rejected
        assert all(r.config.proc_grid is not None for r in rejected)
        # ... and the winner still reproduces the default digest.
        spec = registry.get("fdtd")
        with catalog.disabled():
            base = spec.run(
                {"nx": 8, "ny": 8, "nz": 8, "steps": 2}, machine="numa-epyc"
            )
        assert outcome.entry.digest == canonical_digest(spec, base)

    def test_parallel_measurement_ranks_identically(self):
        seq = search("poisson", "numa-epyc", overrides=TINY_POISSON)
        cfg_dir = os.environ["REPRO_TUNE_DIR"]
        os.environ["REPRO_TUNE_DIR"] = cfg_dir + "-par"
        try:
            par = search(
                "poisson", "numa-epyc", overrides=TINY_POISSON, mode="threads"
            )
        finally:
            os.environ["REPRO_TUNE_DIR"] = cfg_dir
        assert par.entry == seq.entry  # same winner, makespans, digest


class TestConsultation:
    def _store_grid_entry(self, app="poisson", machine="ibm-sp", grid=(4, 1)):
        spec = registry.get(app)
        params = spec.params_with(TINY_POISSON)
        machine_model = get_machine(machine)
        with catalog.applying(TunedConfig(proc_grid=grid)):
            tuned = spec.run(params, machine=machine_model)
        with catalog.disabled():
            default = spec.run(params, machine=machine_model)
        entry = TunedEntry(
            config=TunedConfig(proc_grid=grid),
            predicted=None,
            measured=tuned.elapsed,
            default_measured=default.elapsed,
            digest=canonical_digest(spec, tuned),
            space_signature="sig",
        )
        catalog.store(app, machine, params["nprocs"], entry)
        return params, tuned, default

    def test_registry_run_applies_tuned_grid(self):
        params, tuned, default = self._store_grid_entry()
        assert tuned.times != default.times  # the knob is observable
        consulted = registry.get("poisson").run(params, machine="ibm-sp")
        assert consulted.times == tuned.times

    def test_archetype_run_applies_tuned_grid(self):
        params, tuned, _ = self._store_grid_entry()
        from repro.apps.poisson import poisson_archetype

        result = poisson_archetype().run(
            params["nprocs"],
            params["nx"],
            params["ny"],
            tolerance=params["tolerance"],
            max_iters=params["max_iters"],
            gather_solution=params["gather_solution"],
            machine=get_machine("ibm-sp"),
        )
        assert result.times == tuned.times

    def test_explicit_proc_grid_beats_catalog(self):
        params, tuned, default = self._store_grid_entry(grid=(4, 1))
        from repro.apps.poisson import poisson_archetype

        result = poisson_archetype().run(
            params["nprocs"],
            params["nx"],
            params["ny"],
            tolerance=params["tolerance"],
            max_iters=params["max_iters"],
            gather_solution=params["gather_solution"],
            machine=get_machine("ibm-sp"),
            proc_grid=(2, 2),
        )
        assert result.times == default.times

    def test_explicit_params_beat_tuned_params(self):
        spec = registry.get("poisson")
        params = spec.params_with(TINY_POISSON)
        machine = get_machine("ibm-sp")
        entry = TunedEntry(
            config=TunedConfig(params={"overlap": False}),
            predicted=None,
            measured=1.0,
            default_measured=1.0,
            digest="d",
            space_signature="sig",
        )
        catalog.store("poisson", "ibm-sp", params["nprocs"], entry)
        with catalog.disabled():
            blocking = spec.run(dict(params, overlap=False), machine=machine)
            overlapped = spec.run(dict(params, overlap=True), machine=machine)
        assert blocking.times != overlapped.times
        # Caller silent on overlap: the tuned value (False) applies.
        implicit = spec.run(TINY_POISSON, machine=machine)
        assert implicit.times == blocking.times
        # Caller explicit: the tuned value must not override it.
        explicit = spec.run(dict(TINY_POISSON, overlap=True), machine=machine)
        assert explicit.times == overlapped.times

    def test_repro_tune_zero_disables(self, monkeypatch):
        params, tuned, default = self._store_grid_entry()
        monkeypatch.setenv(catalog.TUNE_ENV, "0")
        result = registry.get("poisson").run(params, machine="ibm-sp")
        assert result.times == default.times


class TestServeIntegration:
    def test_validated_pins_empty_without_catalog(self):
        req = JobRequest(app="poisson", params=TINY_POISSON).validated()
        assert req.tuned == {}

    def test_validated_pins_catalog_entry_and_cache_key_changes(self):
        base = JobRequest(app="poisson", params=TINY_POISSON, machine="ibm-sp")
        untuned_key = base.validated().cache_key()
        spec = registry.get("poisson")
        nprocs = spec.params_with(TINY_POISSON)["nprocs"]
        catalog.store(
            "poisson", "ibm-sp", nprocs, _entry(TunedConfig(proc_grid=(4, 1)))
        )
        pinned = base.validated()
        assert pinned.tuned["proc_grid"] == [4, 1]
        assert pinned.cache_key() != untuned_key
        # Re-validating an already-pinned request is a no-op.
        assert pinned.validated().tuned == pinned.tuned

    def test_explicitly_untuned_request_ignores_catalog(self):
        spec = registry.get("poisson")
        nprocs = spec.params_with(TINY_POISSON)["nprocs"]
        catalog.store(
            "poisson", "ibm-sp", nprocs, _entry(TunedConfig(proc_grid=(4, 1)))
        )
        req = JobRequest(
            app="poisson", params=TINY_POISSON, machine="ibm-sp", tuned={}
        ).validated()
        assert req.tuned == {}

    def test_executor_applies_exactly_the_pinned_config(self):
        base = JobRequest(app="poisson", params=TINY_POISSON, machine="ibm-sp")
        untuned = execute(base.validated(), trace=False)
        spec = registry.get("poisson")
        nprocs = spec.params_with(TINY_POISSON)["nprocs"]
        catalog.store(
            "poisson", "ibm-sp", nprocs, _entry(TunedConfig(proc_grid=(4, 1)))
        )
        pinned = base.validated()
        tuned = execute(pinned, trace=False)
        assert tuned.times != untuned.times
        # The worker's local catalog must not leak into an untuned-pinned
        # request even when an entry exists.
        repinned = execute(
            JobRequest(
                app="poisson", params=TINY_POISSON, machine="ibm-sp", tuned={}
            ).validated(),
            trace=False,
        )
        assert repinned.times == untuned.times
        assert repinned.digest == untuned.digest
