"""Compute/communication overlap: A/B identity and makespan wins.

The overlapped stencil pipeline (post receives → compute deep cells →
waitall → compute shells) must be *bitwise identical* to the blocking
path for the star-stencil applications — the 5-point/curl/Lax-Friedrichs
stencils never read corner ghosts — while finishing no later in virtual
time.  The chaos-marked tests extend the identity across eight fuzzed
schedules.
"""

import numpy as np
import pytest

from repro.core import MeshProgram
from repro.core.meshspectral import split_deep_shell
from repro.machines.catalog import IBM_SP, INTEL_DELTA


def _run(program, p, *args, machine=IBM_SP, **kwargs):
    return MeshProgram(program).run(p, *args, machine=machine, **kwargs)


class TestDeepShellDecomposition:
    def test_tiles_are_disjoint_and_cover(self):
        region = (slice(0, 7), slice(0, 5))
        deep, shells = split_deep_shell(region, 2, (7, 5))
        mask = np.zeros((7, 5), dtype=int)
        mask[deep] += 1
        for sel in shells:
            mask[sel] += 1
        assert np.all(mask == 1)  # exact disjoint cover of the region
        assert deep == (slice(2, 5), slice(2, 3))

    def test_thin_section_has_empty_deep(self):
        region = (slice(0, 3), slice(0, 8))
        deep, shells = split_deep_shell(region, 2, (3, 8))
        assert deep[0].start == deep[0].stop  # no cell is 2 from both edges
        mask = np.zeros((3, 8), dtype=int)
        for sel in shells:
            mask[sel] += 1
        mask[deep] += 1
        assert np.all(mask == 1)

    def test_empty_region(self):
        region = (slice(0, 0), slice(0, 4))
        deep, shells = split_deep_shell(region, 1, (0, 4))
        mask = np.zeros((0, 4), dtype=int)
        mask[deep] += 1
        for sel in shells:
            mask[sel] += 1
        assert mask.size == 0


class TestStencilOpIdentity:
    @pytest.mark.chaos(seeds=8)
    @pytest.mark.parametrize("p", [2, 4])
    def test_overlap_flag_is_bitwise_invisible(self, p):
        full = np.linspace(0.0, 1.0, 81).reshape(9, 9)

        def prog(mesh, overlap):
            from repro.core.grid import DistGrid

            mesh.overlap = overlap
            u = DistGrid.from_global(
                mesh.comm, full if mesh.comm.rank == 0 else None, ghost=1
            )
            out = u.like()
            for _ in range(3):
                mesh.stencil_op(
                    lambda o, s: o.__setitem__(
                        ..., 0.25 * (s[-1, 0] + s[1, 0] + s[0, -1] + s[0, 1])
                    ),
                    out,
                    u,
                    flops_per_point=4.0,
                )
                u.interior[...] = out.interior
            return out.gather(root=0)

        a = _run(prog, p, True)
        b = _run(prog, p, False)
        assert np.array_equal(a.values[0], b.values[0])
        assert max(a.times) <= max(b.times)


class TestApplicationIdentity:
    @pytest.mark.chaos(seeds=8)
    def test_poisson(self):
        from repro.apps.poisson import poisson_program

        kwargs = dict(tolerance=0.0, max_iters=4)
        a = _run(poisson_program, 4, 32, 32, overlap=True, **kwargs)
        b = _run(poisson_program, 4, 32, 32, overlap=False, **kwargs)
        ra, rb = a.values[0], b.values[0]
        assert ra.iterations == rb.iterations
        assert ra.diffmax == rb.diffmax
        assert np.array_equal(ra.solution, rb.solution)
        assert max(a.times) <= max(b.times)

    @pytest.mark.chaos(seeds=8)
    def test_cfd(self):
        from repro.apps.cfd import cfd_program

        kwargs = dict(ic="smooth", gather=True)
        a = _run(cfd_program, 4, 24, 24, 2, overlap=True, machine=INTEL_DELTA, **kwargs)
        b = _run(cfd_program, 4, 24, 24, 2, overlap=False, machine=INTEL_DELTA, **kwargs)
        ra, rb = a.values[0], b.values[0]
        assert ra.time == rb.time
        assert np.array_equal(ra.density, rb.density)
        assert np.array_equal(ra.pressure, rb.pressure)
        assert max(a.times) <= max(b.times)

    @pytest.mark.chaos(seeds=8)
    def test_fdtd(self):
        from repro.apps.fdtd import fdtd_program

        a = _run(fdtd_program, 4, 8, 8, 8, 2, overlap=True)
        b = _run(fdtd_program, 4, 8, 8, 8, 2, overlap=False)
        ra, rb = a.values[0], b.values[0]
        assert ra.energy == rb.energy
        assert np.array_equal(ra.ez, rb.ez)
        assert max(a.times) <= max(b.times)

    def test_overlap_strictly_faster_on_real_machines(self):
        """On modelled hardware the overlapped makespan is strictly lower
        (the blocking path exposes the full wire time every sweep)."""
        from repro.apps.poisson import poisson_program

        for machine in (IBM_SP, INTEL_DELTA):
            a = _run(
                poisson_program, 4, 64, 64, overlap=True, machine=machine,
                tolerance=0.0, max_iters=3, gather_solution=False,
            )
            b = _run(
                poisson_program, 4, 64, 64, overlap=False, machine=machine,
                tolerance=0.0, max_iters=3, gather_solution=False,
            )
            assert max(a.times) < max(b.times), machine.name
