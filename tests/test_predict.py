"""Analytic predictions vs simulated virtual times.

The closed-form archetype models of :mod:`repro.bench.predict` must
track the simulator (which executes the real message pattern) across
machines and process counts.  The tolerance covers what the closed
forms deliberately ignore: startup skew, wait times, and uneven block
sizes.
"""

import numpy as np
import pytest

from repro.bench.predict import (
    allreduce_time,
    alltoall_time,
    predict_cfd,
    predict_fft2d,
    predict_onedeep_sort,
    predict_poisson,
    predict_smog,
    ring_allgather_time,
)
from repro.machines.catalog import CRAY_T3D, ETHERNET_SUNS, IBM_SP, INTEL_DELTA

TOLERANCE = 0.45  # relative error bound for whole-program predictions


def _agree(predicted: float, simulated: float, tol: float = TOLERANCE) -> bool:
    return abs(predicted - simulated) <= tol * simulated


class TestCollectiveTerms:
    def test_zero_for_single_rank(self):
        assert ring_allgather_time(IBM_SP, 1, 100) == 0.0
        assert alltoall_time(IBM_SP, 1, 100) == 0.0
        assert allreduce_time(IBM_SP, 1) == 0.0

    def test_allreduce_matches_simulation(self):
        from repro import spmd_run
        from repro.comm.reductions import SUM

        for machine in (IBM_SP, ETHERNET_SUNS):
            for p in (2, 4, 8, 13):
                res = spmd_run(p, lambda comm: comm.allreduce(1.0, SUM), machine=machine)
                assert _agree(allreduce_time(machine, p), res.elapsed, tol=0.35), (
                    machine.name,
                    p,
                    allreduce_time(machine, p),
                    res.elapsed,
                )

    def test_alltoall_matches_simulation(self):
        from repro import spmd_run

        nbytes = 1000
        for machine in (INTEL_DELTA, CRAY_T3D):
            for p in (2, 4, 8):
                def body(comm):
                    comm.alltoall([np.zeros(nbytes // 8)] * comm.size)

                res = spmd_run(p, body, machine=machine)
                assert _agree(
                    alltoall_time(machine, p, nbytes + 16), res.elapsed, tol=0.35
                ), (machine.name, p)


class TestProgramPredictions:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    @pytest.mark.parametrize("machine", [INTEL_DELTA, IBM_SP], ids=lambda m: m.name)
    def test_onedeep_sort(self, p, machine, rng):
        from repro.apps.sorting import one_deep_mergesort

        n = 1 << 16
        data = rng.integers(0, 2**40, size=n)
        simulated = one_deep_mergesort().run(p, data, machine=machine).elapsed
        predicted = predict_onedeep_sort(n, p, machine)
        assert _agree(predicted, simulated), (p, machine.name, predicted, simulated)

    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_poisson(self, p):
        from repro.apps.poisson import poisson_archetype

        nx = ny = 128
        iters = 5
        simulated = (
            poisson_archetype()
            .run(
                p,
                nx,
                ny,
                machine=IBM_SP,
                tolerance=0.0,
                max_iters=iters,
                gather_solution=False,
            )
            .elapsed
        )
        predicted = predict_poisson(nx, ny, iters, p, IBM_SP)
        assert _agree(predicted, simulated), (p, predicted, simulated)

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_fft2d(self, p, rng):
        from repro.apps.fft2d import fft2d_archetype

        shape = (64, 64)
        data = rng.normal(size=shape).astype(complex)
        simulated = fft2d_archetype().run(p, data, 2, machine=IBM_SP).elapsed
        predicted = predict_fft2d(shape[0], shape[1], 2, p, IBM_SP)
        assert _agree(predicted, simulated), (p, predicted, simulated)

    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("machine", [INTEL_DELTA, IBM_SP], ids=lambda m: m.name)
    def test_smog(self, p, machine):
        """Fused-op accounting: the model charges the packed 3-species
        slab once per step and the transport/chemistry flops per cell —
        the same plan the kernel layer executes in either fusion mode."""
        from repro.apps import registry

        nx = ny = 48
        steps = 5
        simulated = registry.get("smog").run(
            {"nprocs": p, "nx": nx, "ny": ny, "steps": steps}, machine=machine
        ).elapsed
        predicted = predict_smog(nx, ny, steps, p, machine)
        assert _agree(predicted, simulated), (p, machine.name, predicted, simulated)

    @pytest.mark.parametrize("p", [4, 16])
    def test_cfd(self, p):
        from repro.apps.cfd import cfd_archetype

        n, steps = 96, 3
        simulated = (
            cfd_archetype()
            .run(p, n, n, steps, ic="smooth", machine=INTEL_DELTA, gather=False)
            .elapsed
        )
        predicted = predict_cfd(n, n, steps, p, INTEL_DELTA)
        assert _agree(predicted, simulated), (p, predicted, simulated)

    def test_predictions_reproduce_figure_shapes(self, rng):
        """The analytic model alone reproduces Figure 6's qualitative
        story: near-linear one-deep speedup."""
        n = 1 << 20
        t_seq = predict_onedeep_sort(n, 1, INTEL_DELTA)
        s32 = t_seq / predict_onedeep_sort(n, 32, INTEL_DELTA)
        s4 = t_seq / predict_onedeep_sort(n, 4, INTEL_DELTA)
        assert s32 > 4 * s4 * 0.5
        assert s32 > 15
