"""The verification subsystem: fuzzed backend, explorer, faults, races."""

import numpy as np
import pytest

from repro import spmd_run
from repro.comm import SUM
from repro.errors import DeadlockError, InjectedFaultError, RankFailedError
from repro.runtime.message import ANY_SOURCE
from repro.runtime.scheduler import FaultPlan
from repro.trace.events import MatchEvent
from repro.verify import ScheduleExplorer, fuzzed_schedule, scan_races, value_digest
from repro.verify.demo import (
    race_free_arrival,
    racy_first_arrival,
    racy_float_reduction,
)
from tests.conftest import assert_equal_values


def _allreduce_body(comm):
    return comm.allreduce(comm.rank + 1, SUM)


class TestFuzzedBackend:
    def test_is_a_backend_name(self):
        res = spmd_run(4, _allreduce_body, backend="fuzzed", seed=3)
        assert res.values == [10, 10, 10, 10]

    def test_schedules_differ_across_seeds(self):
        logs = {
            tuple(spmd_run(4, _allreduce_body, backend="fuzzed", seed=s).schedule)
            for s in range(8)
        }
        assert len(logs) > 1, "8 seeds produced a single interleaving"

    def test_same_seed_exactly_reproducible(self):
        """Same seed ⇒ same scheduling decisions, same digests, and a
        byte-identical trace event sequence."""
        runs = [
            spmd_run(5, _allreduce_body, backend="fuzzed", seed=11, trace=True)
            for _ in range(2)
        ]
        a, b = runs
        assert a.schedule == b.schedule
        assert [value_digest(v) for v in a.values] == [
            value_digest(v) for v in b.values
        ]
        assert a.times == b.times
        flat_a = [repr(e) for rank in a.tracer.events for e in rank]
        flat_b = [repr(e) for rank in b.tracer.events for e in rank]
        assert flat_a == flat_b

    def test_results_match_deterministic_for_clean_program(self):
        det = spmd_run(6, _allreduce_body)
        for seed in range(8):
            fz = spmd_run(6, _allreduce_body, backend="fuzzed", seed=seed)
            assert_equal_values(fz.values, det.values)
            assert fz.times == det.times

    def test_deadlock_still_reported_with_all_ranks(self):
        def body(comm):
            comm.recv((comm.rank + 1) % comm.size, tag=0)

        with pytest.raises(DeadlockError) as info:
            spmd_run(3, body, backend="fuzzed", seed=0)
        assert set(info.value.waiting) == {0, 1, 2}

    def test_wildcard_perturbation_respects_fifo_per_source(self):
        """Two same-source messages matching one wildcard receive must
        still arrive in send order under matching perturbation."""

        def body(comm):
            if comm.rank == 0:
                return [comm.recv(ANY_SOURCE, tag=5) for _ in range(4)]
            comm.send(0, ("first", comm.rank), tag=5)
            comm.send(0, ("second", comm.rank), tag=5)
            return None

        for seed in range(12):
            res = spmd_run(3, body, backend="fuzzed", seed=seed)
            order = {}
            for label, rank in res.values[0]:
                order.setdefault(rank, []).append(label)
            for rank, labels in order.items():
                assert labels == ["first", "second"], (seed, rank, labels)


class TestFuzzedScheduleOverride:
    def test_promotes_deterministic_runs(self):
        with fuzzed_schedule(7):
            res = spmd_run(4, _allreduce_body)
        assert res.schedule is not None

    def test_leaves_threads_backend_alone(self):
        with fuzzed_schedule(7):
            res = spmd_run(4, _allreduce_body, backend="threads")
        assert res.schedule is None

    def test_restores_on_exit(self):
        with fuzzed_schedule(7):
            pass
        assert spmd_run(2, _allreduce_body).schedule is None


class TestScheduleExplorer:
    def test_clean_program_sixteen_seeds(self):
        report = ScheduleExplorer.for_body(5, _allreduce_body).explore(16)
        assert report.ok
        assert report.seeds == list(range(16))
        assert "no nondeterminism" in report.summary()

    def test_racy_program_detected_with_replayable_seed(self):
        explorer = ScheduleExplorer.for_body(4, racy_first_arrival)
        report = explorer.explore(16)
        assert report.findings, "arrival-order race went undetected over 16 seeds"
        finding = report.findings[0]
        assert finding.rank == 0
        # Replaying the offending seed reproduces the exact divergent digest.
        replayed = explorer.replay(finding.seed)
        assert explorer.digests(replayed)[finding.rank] == finding.digest
        assert str(finding.seed) in finding.describe()

    def test_float_reduction_race_detected(self):
        report = ScheduleExplorer.for_body(5, racy_float_reduction).explore(16)
        assert report.findings

    def test_race_detector_flags_wildcard_receive(self):
        report = ScheduleExplorer.for_body(4, racy_first_arrival).explore(16)
        assert report.races, "no wildcard race observed over 16 seeds"
        race = report.races[0]
        assert race.rank == 0
        assert len(race.candidates) > 1
        assert race.chosen in race.candidates
        assert "could have matched" in race.describe()

    def test_no_races_reported_for_point_to_point(self):
        report = ScheduleExplorer.for_body(4, _allreduce_body).explore(8)
        assert report.races == []

    def test_schedule_dependent_deadlock_is_a_failure_finding(self):
        """A program that deadlocks only under some schedules must be
        reported with the seed, not raised out of explore()."""

        def body(comm):
            # Rank 1 only posts its send after probing; whether the probe
            # sees rank 0's message depends on the schedule.
            if comm.rank == 0:
                comm.send(1, "x", tag=1)
                comm.recv(1, tag=2)
            else:
                if not comm.probe(0, tag=1):
                    comm.recv(0, tag=3)  # wrong tag: blocks forever
                comm.send(0, "y", tag=2)
                comm.recv(0, tag=1)

        report = ScheduleExplorer.for_body(2, body, trace=False).explore(32)
        assert report.failures, "schedule-dependent deadlock never triggered"
        assert "DeadlockError" in report.failures[0].error

    def test_explicit_seed_iterable(self):
        report = ScheduleExplorer.for_body(3, _allreduce_body).explore([5, 9])
        assert report.seeds == [5, 9]
        assert report.ok


class TestApplicationsScheduleIndependent:
    """Acceptance: 16 seeds over the flagship apps, zero findings."""

    def test_mergesort(self):
        from repro.apps.sorting.mergesort import one_deep_mergesort

        data = np.random.default_rng(0).integers(0, 10**6, size=1024)
        explorer = ScheduleExplorer(lambda: one_deep_mergesort().run(4, data))
        report = explorer.explore(16)
        assert report.ok, report.summary()

    def test_fft2d(self):
        from repro.apps.fft2d import fft2d_archetype

        rng = np.random.default_rng(1)
        arr = rng.normal(size=(16, 16)) + 1j * rng.normal(size=(16, 16))
        explorer = ScheduleExplorer(lambda: fft2d_archetype().run(4, arr, 1))
        report = explorer.explore(16)
        assert report.ok, report.summary()

    def test_poisson(self):
        from repro.apps.poisson import poisson_archetype

        explorer = ScheduleExplorer(
            lambda: poisson_archetype().run(4, 12, 12, tolerance=1e-3)
        )
        report = explorer.explore(16)
        assert report.ok, report.summary()


class TestFaultInjection:
    def test_crash_reported_as_rank_failure_not_hang(self):
        plan = FaultPlan(crash_rank=2, crash_at_step=3)
        with pytest.raises(RankFailedError) as info:
            spmd_run(4, lambda c: c.barrier(), backend="fuzzed", seed=1, faults=plan)
        assert info.value.rank == 2
        assert isinstance(info.value.original, InjectedFaultError)

    def test_crash_of_blocked_rank_unwinds(self):
        """A rank already blocked on a receive when its crash comes due
        must still fail precisely (not deadlock the run)."""

        def body(comm):
            if comm.rank == 1:
                comm.recv(0, tag=9)  # never sent
            else:
                comm.recv(1, tag=8)  # never sent either

        plan = FaultPlan(crash_rank=1, crash_at_step=5)
        with pytest.raises(RankFailedError) as info:
            spmd_run(2, body, backend="fuzzed", seed=0, faults=plan)
        assert info.value.rank == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_delays_never_corrupt_or_deadlock_collectives(self, seed):
        plan = FaultPlan(delay_prob=0.6, max_delay_steps=8)
        det = spmd_run(5, _allreduce_body)
        fz = spmd_run(5, _allreduce_body, backend="fuzzed", seed=seed, faults=plan)
        assert fz.values == det.values

    def test_delays_preserve_fifo_per_channel(self):
        def body(comm):
            if comm.rank == 0:
                return [comm.recv(1, tag=0) for _ in range(5)]
            for i in range(5):
                comm.send(0, i, tag=0)
            return None

        plan = FaultPlan(delay_prob=0.8, max_delay_steps=10)
        for seed in range(8):
            res = spmd_run(2, body, backend="fuzzed", seed=seed, faults=plan)
            assert res.values[0] == [0, 1, 2, 3, 4], seed

    def test_real_deadlock_still_precise_under_delays(self):
        def body(comm):
            comm.recv((comm.rank + 1) % comm.size, tag=0)

        plan = FaultPlan(delay_prob=0.5, max_delay_steps=4)
        with pytest.raises(DeadlockError) as info:
            spmd_run(3, body, backend="fuzzed", seed=2, faults=plan)
        assert set(info.value.waiting) == {0, 1, 2}

    def test_explorer_reports_crash_seeds_as_failures(self):
        explorer = ScheduleExplorer.for_body(
            3, _allreduce_body, faults=FaultPlan(crash_rank=1, crash_at_step=2)
        )
        report = explorer.explore(4)
        assert len(report.failures) == 4
        assert all("InjectedFaultError" in f.error for f in report.failures)


class TestDigest:
    def test_distinguishes_types(self):
        assert value_digest(1) != value_digest("1")
        assert value_digest(1) != value_digest(1.0)
        assert value_digest(True) != value_digest(1)
        assert value_digest([1, 2]) != value_digest((1, 2))

    def test_numpy_arrays(self):
        a = np.arange(6).reshape(2, 3)
        assert value_digest(a) == value_digest(a.copy())
        assert value_digest(a) != value_digest(a.astype(float))
        assert value_digest(a) != value_digest(a.reshape(3, 2))
        # Non-contiguous views digest by content, not memory layout.
        assert value_digest(a.T) == value_digest(np.ascontiguousarray(a.T))

    def test_dict_order_independent(self):
        assert value_digest({"a": 1, "b": 2}) == value_digest({"b": 2, "a": 1})

    def test_dataclasses(self):
        from repro.apps.poisson import PoissonResult

        r1 = PoissonResult(iterations=3, diffmax=0.5, solution=np.eye(2))
        r2 = PoissonResult(iterations=3, diffmax=0.5, solution=np.eye(2))
        r3 = PoissonResult(iterations=4, diffmax=0.5, solution=np.eye(2))
        assert value_digest(r1) == value_digest(r2)
        assert value_digest(r1) != value_digest(r3)


class TestMatchEventRecording:
    def test_recorded_for_wildcard_under_fuzzing(self):
        res = spmd_run(
            4, racy_first_arrival, backend="fuzzed", seed=1, trace=True
        )
        events = [
            e for rank in res.tracer.events for e in rank if isinstance(e, MatchEvent)
        ]
        assert events, "wildcard receives recorded no MatchEvents"
        assert all(e.rank == 0 and e.wildcard_source for e in events)
        assert scan_races(res, seed=1) == [
            r for r in scan_races(res, seed=1)
        ]  # stable

    def test_not_recorded_for_directed_receives(self):
        res = spmd_run(4, _allreduce_body, backend="fuzzed", seed=1, trace=True)
        events = [
            e for rank in res.tracer.events for e in rank if isinstance(e, MatchEvent)
        ]
        assert events == []


class TestSmokeEntryPoint:
    def test_module_main_smoke(self, capsys):
        from repro.verify.__main__ import main

        assert main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "chaos suite: passed" in out

    def test_replay_prints_digests(self, capsys):
        from repro.verify.__main__ import main

        assert main(["--program", "racy-arrival", "--replay", "3"]) == 0
        out = capsys.readouterr().out
        assert "rank 0:" in out


class TestDemoControls:
    """Regression: the detector fires on the racy demo and stays silent
    on the race-free control — same traffic shape, directed receives."""

    SEEDS = 8

    def test_racy_demo_flagged_under_eight_seeds(self):
        report = ScheduleExplorer.for_body(4, racy_first_arrival).explore(self.SEEDS)
        assert report.races, "wildcard race went undetected over 8 seeds"
        assert report.findings, "result divergence went undetected over 8 seeds"
        assert not report.ok

    def test_race_free_control_stays_silent_under_eight_seeds(self):
        report = ScheduleExplorer.for_body(4, race_free_arrival).explore(self.SEEDS)
        assert report.ok
        assert report.races == []
        assert report.findings == []

    def test_control_returns_fixed_first_source(self):
        res = spmd_run(4, race_free_arrival)
        assert res.values[0] == 1
        assert res.values[1:] == [None, None, None]

    def test_control_registered_in_cli_as_clean(self):
        from repro.verify.__main__ import PROGRAMS

        factory, races_expected = PROGRAMS["race-free-arrival"]
        assert races_expected is False
        assert factory().explore(4).ok
