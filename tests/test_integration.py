"""Cross-subsystem integration tests.

These exercise combinations the unit tests don't: archetypes running on
sub-communicators, traces of whole applications, chained archetype
programs, and the public package surface.
"""

import numpy as np
import pytest

from repro import spmd_run
from repro.comm.reductions import SUM


class TestMeshOnSubcommunicator:
    def test_distgrid_on_group(self):
        """The mesh archetype works unchanged on a sub-communicator."""
        from repro.core.meshspectral import MeshContext

        full = np.arange(36.0).reshape(6, 6)

        def body(comm):
            sub = comm.split(comm.rank % 2)
            mesh = MeshContext(sub)
            from repro.core.grid import DistGrid

            g = DistGrid.from_global(
                sub, full if sub.rank == 0 else None, dist="rows", ghost=1
            )
            g.exchange()
            total = mesh.grid_reduce(g, np.sum, SUM, identity=0.0)
            return float(total)

        res = spmd_run(4, body)
        assert all(v == pytest.approx(full.sum()) for v in res.values)

    def test_two_groups_different_grids(self):
        from repro.core.meshspectral import MeshContext

        def body(comm):
            sub = comm.split("a" if comm.rank < 2 else "b")
            mesh = MeshContext(sub)
            n = 4 if comm.rank < 2 else 8
            g = mesh.grid((n, n), fill=1.0)
            return mesh.grid_reduce(g, np.sum, SUM, identity=0.0)

        res = spmd_run(4, body)
        assert res.values[0] == res.values[1] == 16.0
        assert res.values[2] == res.values[3] == 64.0

    def test_onedeep_on_group(self, rng):
        from repro.core.onedeep import OneDeepDC
        from repro.apps.sorting.mergesort import _merge_phase
        from repro.util.partition import split_evenly

        data = rng.integers(0, 10**6, size=600)

        def body(comm):
            sub = comm.split(0 if comm.rank < 3 else 1)
            arch = OneDeepDC(
                solve=lambda x: np.sort(x, kind="stable"), merge=_merge_phase()
            )
            piece = arch.body(sub, split_evenly(data, sub.size))
            gathered = sub.gather(piece, root=0)
            if sub.rank == 0:
                return np.concatenate(gathered)
            return None

        res = spmd_run(6, body)
        assert np.array_equal(res.values[0], np.sort(data))  # group "a" root
        assert np.array_equal(res.values[3], np.sort(data))  # group "b" root


class TestChainedArchetypePrograms:
    def test_sort_then_fft(self, rng):
        """Two archetype stages in sequence on the same communicator."""
        from repro.core.onedeep import OneDeepDC
        from repro.apps.sorting.mergesort import _merge_phase
        from repro.apps.fft2d import fft2d_program
        from repro.core.meshspectral import MeshContext
        from repro.util.partition import split_evenly

        keys = rng.integers(0, 255, size=64)

        def body(comm):
            arch = OneDeepDC(
                solve=lambda x: np.sort(x, kind="stable"), merge=_merge_phase()
            )
            piece = arch.body(comm, split_evenly(keys, comm.size))
            sorted_keys = np.concatenate(comm.allgather(piece))
            image = sorted_keys.astype(complex).reshape(8, 8)
            return fft2d_program(MeshContext(comm), image)

        res = spmd_run(4, body)
        expected = np.fft.fft2(np.sort(keys).astype(complex).reshape(8, 8))
        assert np.allclose(res.values[0], expected, atol=1e-9)


class TestWholeApplicationTraces:
    def test_poisson_trace_accounts_for_all_phases(self):
        from repro.apps.poisson import poisson_archetype
        from repro.trace.analysis import phase_breakdown, summarize
        from repro.machines.catalog import IBM_SP

        res = poisson_archetype().run(
            4,
            32,
            32,
            machine=IBM_SP,
            tolerance=0.0,
            max_iters=3,
            gather_solution=False,
            trace=True,
        )
        breakdown = phase_breakdown(res.tracer)
        # The par-loop layer charges under each loop's declared label,
        # so the sweep shows up as "jacobi" rather than a generic
        # "stencil_op" bucket.
        assert "jacobi" in breakdown
        assert "diffmax" in breakdown
        s = summarize(res.tracer)
        # 3 iterations x (exchange + allreduce) on 4 ranks: plenty of
        # messages, and every byte sent was received.
        assert s.total_messages > 20
        assert sum(r.bytes_sent for r in s.ranks) == sum(
            r.bytes_received for r in s.ranks
        )

    def test_gantt_of_full_application(self, rng):
        from repro.apps.sorting import one_deep_mergesort
        from repro.trace.analysis import render_gantt
        from repro.machines.catalog import INTEL_DELTA

        data = rng.integers(0, 10**6, size=5000)
        res = one_deep_mergesort().run(4, data, machine=INTEL_DELTA, trace=True)
        art = render_gantt(res.tracer)
        assert art.count("rank") == 4


class TestPublicSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_exports(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_comm_exports(self):
        import repro.comm as comm

        for name in comm.__all__:
            assert getattr(comm, name) is not None

    def test_bench_exports(self):
        import repro.bench as bench

        for name in bench.__all__:
            assert getattr(bench, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
