"""From-scratch FFT library."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.fftlib import (
    bit_reverse_indices,
    fft,
    fft2,
    fft_cost,
    fft_frequencies,
    ifft,
    ifft2,
    is_power_of_two,
)
from repro.errors import ReproError


class TestHelpers:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(2**k) for k in range(12))
        assert not any(is_power_of_two(n) for n in (0, 3, 6, 12, 100, -4))

    def test_bit_reverse(self):
        assert list(bit_reverse_indices(8)) == [0, 4, 2, 6, 1, 5, 3, 7]
        assert list(bit_reverse_indices(1)) == [0]

    def test_bit_reverse_is_permutation(self):
        rev = bit_reverse_indices(64)
        assert sorted(rev) == list(range(64))

    def test_bit_reverse_involution(self):
        rev = bit_reverse_indices(32)
        assert np.array_equal(rev[rev], np.arange(32))

    def test_bit_reverse_requires_pow2(self):
        with pytest.raises(ReproError):
            bit_reverse_indices(6)

    def test_cost(self):
        assert fft_cost(1) == 0.0
        assert fft_cost(8) == pytest.approx(5 * 8 * 3)
        assert fft_cost(8, count=10) == pytest.approx(10 * 5 * 8 * 3)


class TestAgainstNumpy:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256, 3, 5, 12, 15, 100, 97])
    def test_forward(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(fft(x), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [2, 8, 12, 100])
    def test_inverse(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(ifft(x), np.fft.ifft(x), atol=1e-10)

    def test_real_input(self, rng):
        x = rng.normal(size=32)
        assert np.allclose(fft(x), np.fft.fft(x), atol=1e-10)

    def test_batched_rows(self, rng):
        x = rng.normal(size=(5, 16)) + 1j * rng.normal(size=(5, 16))
        assert np.allclose(fft(x), np.fft.fft(x, axis=-1), atol=1e-10)

    def test_axis_argument(self, rng):
        x = rng.normal(size=(8, 6)).astype(complex)
        assert np.allclose(fft(x, axis=0), np.fft.fft(x, axis=0), atol=1e-10)

    def test_fft2(self, rng):
        x = rng.normal(size=(16, 12)) + 1j * rng.normal(size=(16, 12))
        assert np.allclose(fft2(x), np.fft.fft2(x), atol=1e-9)
        assert np.allclose(ifft2(fft2(x)), x, atol=1e-10)

    @given(n=st.integers(1, 128))
    @settings(max_examples=40, deadline=None)
    def test_any_length(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(fft(x), np.fft.fft(x), atol=1e-8)


class TestMathematicalProperties:
    @given(n=st.sampled_from([4, 8, 16, 20, 30]))
    @settings(deadline=None)
    def test_roundtrip(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(ifft(fft(x)), x, atol=1e-10)

    def test_linearity(self, rng):
        x = rng.normal(size=32).astype(complex)
        y = rng.normal(size=32).astype(complex)
        assert np.allclose(fft(2 * x + 3 * y), 2 * fft(x) + 3 * fft(y), atol=1e-9)

    def test_parseval(self, rng):
        x = rng.normal(size=64).astype(complex)
        lhs = np.sum(np.abs(x) ** 2)
        rhs = np.sum(np.abs(fft(x)) ** 2) / 64
        assert lhs == pytest.approx(rhs)

    def test_impulse_is_flat(self):
        x = np.zeros(16, dtype=complex)
        x[0] = 1.0
        assert np.allclose(fft(x), np.ones(16), atol=1e-12)

    def test_constant_is_impulse(self):
        x = np.ones(16, dtype=complex)
        out = fft(x)
        assert out[0] == pytest.approx(16.0)
        assert np.allclose(out[1:], 0.0, atol=1e-12)

    def test_frequencies_match_numpy(self):
        for n in (4, 5, 8, 9):
            assert np.allclose(fft_frequencies(n), np.fft.fftfreq(n))

    def test_empty_axis_rejected(self):
        with pytest.raises(ReproError):
            fft(np.empty(0))

    def test_scalar_rejected(self):
        with pytest.raises(ReproError):
            fft(np.float64(1.0))
