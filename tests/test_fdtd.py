"""3-D FDTD electromagnetics (paper §4.5.2)."""

import numpy as np
import pytest

from repro.apps.fdtd import fdtd_archetype, sequential_fdtd_time
from repro.machines.catalog import IBM_SP


class TestSolver:
    @pytest.mark.parametrize("p", [1, 2, 4, 6, 8])
    def test_p_invariance(self, p):
        ref = fdtd_archetype().run(1, 12, 10, 8, steps=6).values[0]
        res = fdtd_archetype().run(p, 12, 10, 8, steps=6).values[0]
        assert np.array_equal(res.ez, ref.ez)
        assert res.energy == pytest.approx(ref.energy, rel=1e-12)

    def test_energy_identical_on_all_ranks(self):
        res = fdtd_archetype().run(4, 10, 10, 10, steps=4)
        assert len({v.energy for v in res.values}) == 1

    def test_source_radiates(self):
        res = fdtd_archetype().run(2, 16, 16, 16, steps=10).values[0]
        assert res.energy > 0
        # The field has spread beyond the source cell.
        nonzero = np.count_nonzero(np.abs(res.ez) > 1e-12)
        assert nonzero > 10

    def test_no_source_no_field(self):
        res = fdtd_archetype().run(2, 8, 8, 8, steps=5, source_freq=0.0).values[0]
        assert res.energy == pytest.approx(0.0)
        assert np.allclose(res.ez, 0.0)

    def test_stable_at_courant_limit(self):
        res = fdtd_archetype().run(2, 12, 12, 12, steps=40, courant=0.5).values[0]
        assert np.isfinite(res.energy)
        assert res.energy < 1e6  # no blow-up

    def test_causality(self):
        """After few steps the field cannot have reached the far corner."""
        n = 20
        res = fdtd_archetype().run(1, n, n, n, steps=3).values[0]
        assert abs(res.ez[0, 0, 0]) < 1e-14

    def test_gather_false(self):
        res = fdtd_archetype().run(2, 8, 8, 8, steps=2, gather=False).values[0]
        assert res.ez is None
        assert res.energy >= 0


class TestPerformance:
    def test_sequential_time_model(self):
        assert sequential_fdtd_time(32, 32, 32, 10, IBM_SP) > 0

    def test_more_exchanges_with_more_ranks(self):
        from repro.trace.analysis import summarize

        a = summarize(fdtd_archetype().run(2, 12, 12, 12, steps=2, trace=True).tracer)
        b = summarize(fdtd_archetype().run(8, 12, 12, 12, steps=2, trace=True).tracer)
        assert b.total_messages > a.total_messages
