"""Distributed two-dimensional FFT (paper §4.4)."""

import numpy as np
import pytest

from repro.apps.fft2d import (
    fft2d_archetype,
    run_fft2d,
    sequential_fft2d_time,
)
from repro.machines.catalog import IBM_SP


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_numpy(self, p, rng):
        arr = rng.normal(size=(16, 24)) + 1j * rng.normal(size=(16, 24))
        res = fft2d_archetype().run(p, arr, 1)
        assert np.allclose(res.values[0], np.fft.fft2(arr), atol=1e-8)

    def test_real_input_promoted(self, rng):
        arr = rng.normal(size=(8, 8))
        res = fft2d_archetype().run(2, arr, 1)
        assert np.allclose(res.values[0], np.fft.fft2(arr), atol=1e-9)

    def test_inverse(self, rng):
        arr = rng.normal(size=(8, 16)) + 1j * rng.normal(size=(8, 16))
        fwd = fft2d_archetype().run(4, arr, 1).values[0]
        back = fft2d_archetype().run(4, fwd, 1, inverse=True).values[0]
        assert np.allclose(back, arr, atol=1e-10)

    def test_repeats(self, rng):
        arr = rng.normal(size=(8, 8)).astype(complex)
        twice = fft2d_archetype().run(2, arr, 2).values[0]
        assert np.allclose(twice, np.fft.fft2(np.fft.fft2(arr)), atol=1e-7)

    def test_nonsquare_odd_sizes(self, rng):
        arr = rng.normal(size=(6, 10)).astype(complex)
        res = fft2d_archetype().run(3, arr, 1)
        assert np.allclose(res.values[0], np.fft.fft2(arr), atol=1e-8)

    def test_result_only_on_root(self, rng):
        arr = rng.normal(size=(8, 8)).astype(complex)
        res = fft2d_archetype().run(4, arr, 1)
        assert all(v is None for v in res.values[1:])

    def test_run_helper(self, rng):
        arr = rng.normal(size=(8, 8)).astype(complex)
        res = run_fft2d(2, arr, machine=IBM_SP)
        assert np.allclose(res.values[0], np.fft.fft2(arr), atol=1e-9)
        assert res.elapsed > 0


class TestPerformanceShape:
    def test_sequential_time_scales(self):
        assert sequential_fft2d_time((256, 256), 1, IBM_SP) > sequential_fft2d_time(
            (64, 64), 1, IBM_SP
        )

    def test_communication_dominates_at_scale(self, rng):
        """The paper's Figure 12 caption: too small a ratio of computation
        to communication.  At 16+ ranks on a small grid the redistribution
        cost eats the gains."""
        from repro.trace.analysis import summarize

        arr = rng.normal(size=(32, 32)).astype(complex)
        res = fft2d_archetype().run(16, arr, 1, machine=IBM_SP, trace=True)
        s = summarize(res.tracer)
        assert s.comm_fraction() > 0.5

    def test_more_ranks_more_messages(self, rng):
        from repro.trace.analysis import summarize

        arr = rng.normal(size=(16, 16)).astype(complex)
        m2 = summarize(fft2d_archetype().run(2, arr, 1, trace=True).tracer)
        m8 = summarize(fft2d_archetype().run(8, arr, 1, trace=True).tracer)
        assert m8.total_messages > m2.total_messages
