"""Planar convex hull."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.apps.hull import (
    convex_hull,
    hull_area,
    one_deep_hull,
    point_in_hull,
)

points_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 120), st.just(2)),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


class TestConvexHull:
    def test_square(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5]])
        hull = convex_hull(pts)
        assert hull.shape == (4, 2)
        assert hull_area(hull) == pytest.approx(1.0)

    def test_collinear(self):
        pts = np.array([[0, 0], [1, 1], [2, 2], [3, 3]])
        hull = convex_hull(pts)
        assert hull.shape == (2, 2)
        assert hull_area(hull) == 0.0

    def test_single_and_pair(self):
        assert convex_hull(np.array([[1.0, 2.0]])).shape == (1, 2)
        assert convex_hull(np.array([[0, 0], [1, 1]])).shape == (2, 2)

    def test_duplicates_removed(self):
        pts = np.array([[0, 0], [0, 0], [1, 0], [0, 1], [1, 0]])
        hull = convex_hull(pts)
        assert hull.shape == (3, 2)

    @given(pts=points_strategy)
    @settings(max_examples=50)
    def test_all_points_inside(self, pts):
        hull = convex_hull(pts)
        for p in pts:
            assert point_in_hull(hull, p, tol=1e-7)

    @given(pts=points_strategy)
    @settings(max_examples=30)
    def test_idempotent(self, pts):
        hull = convex_hull(pts)
        again = convex_hull(hull)
        assert np.allclose(np.sort(hull, axis=0), np.sort(again, axis=0))

    @given(pts=points_strategy)
    @settings(max_examples=30)
    def test_counterclockwise(self, pts):
        hull = convex_hull(pts)
        assert hull_area(hull) >= 0.0

    def test_area_matches_scipy(self, rng):
        import scipy.spatial

        pts = rng.normal(size=(300, 2))
        ours = hull_area(convex_hull(pts))
        theirs = scipy.spatial.ConvexHull(pts).volume  # 2-D "volume" is area
        assert ours == pytest.approx(theirs)


class TestOneDeepHull:
    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_matches_sequential(self, p, rng):
        pts = rng.normal(size=(500, 2))
        expected = convex_hull(pts)
        res = one_deep_hull().run(p, pts)
        for v in res.values:
            assert np.allclose(v, expected)

    @given(pts=points_strategy, p=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_property(self, pts, p):
        expected = convex_hull(pts)
        res = one_deep_hull().run(p, pts)
        assert np.allclose(
            np.sort(res.values[0], axis=0), np.sort(expected, axis=0)
        )

    def test_replicated_result_on_all_ranks(self, rng):
        pts = rng.uniform(-5, 5, size=(200, 2))
        res = one_deep_hull().run(5, pts)
        for v in res.values[1:]:
            assert np.array_equal(v, res.values[0])
