"""Jacobi Poisson solver (paper §4.4.3)."""

import numpy as np
import pytest

from repro.apps.poisson import (
    poisson_archetype,
    reference_poisson,
    sequential_poisson_time,
)
from repro.machines.catalog import IBM_SP


class TestReferenceSolver:
    def test_converges(self):
        u, iters = reference_poisson(16, 16, tolerance=1e-5)
        assert 0 < iters < 10_000
        assert np.isfinite(u).all()

    def test_laplace_maximum_principle(self):
        """With f = 0 the converged solution is bounded by the boundary
        values (discrete maximum principle)."""
        u, _ = reference_poisson(20, 20, tolerance=1e-7)
        assert u.max() <= 1.0 + 1e-9
        assert u.min() >= -1e-9

    def test_linear_boundary_gives_linear_solution(self):
        """u = x is harmonic: with g(i,j) = i/(n-1) the exact discrete
        solution is linear, and Jacobi must converge to it."""
        n = 12
        g = lambda i, j: np.broadcast_to(i, np.broadcast(i, j).shape) / (n - 1)  # noqa: E731
        u, _ = reference_poisson(n, n, g=g, tolerance=1e-10, max_iters=50_000)
        expected = np.broadcast_to(np.arange(n)[:, None] / (n - 1), (n, n))
        assert np.allclose(u, expected, atol=1e-6)

    def test_source_term_sign(self):
        """A negative source (-f) lifts the interior (since ∇²u = f)."""
        f = lambda i, j: np.full(np.broadcast(i, j).shape, -100.0)  # noqa: E731
        g = lambda i, j: np.zeros(np.broadcast(i, j).shape)  # noqa: E731
        u, _ = reference_poisson(12, 12, f=f, g=g, tolerance=1e-8, max_iters=20_000)
        assert u[6, 6] > 0


class TestArchetypeSolver:
    @pytest.mark.parametrize("p", [1, 2, 4, 6, 9])
    def test_matches_reference_exactly(self, p):
        ref_u, ref_it = reference_poisson(18, 22, tolerance=1e-5)
        res = poisson_archetype().run(p, 18, 22, tolerance=1e-5)
        result = res.values[0]
        assert result.iterations == ref_it
        assert np.array_equal(result.solution, ref_u)

    def test_diffmax_identical_on_all_ranks(self):
        res = poisson_archetype().run(4, 16, 16, tolerance=1e-4)
        assert len({v.diffmax for v in res.values}) == 1

    def test_fixed_iteration_budget(self):
        res = poisson_archetype().run(2, 16, 16, tolerance=0.0, max_iters=7)
        assert res.values[0].iterations == 7

    def test_gather_optional(self):
        res = poisson_archetype().run(2, 16, 16, tolerance=1e-3, gather_solution=False)
        assert res.values[0].solution is None

    def test_custom_source_and_boundary(self):
        f = lambda i, j: np.full(np.broadcast(i, j).shape, 4.0)  # noqa: E731
        g = lambda i, j: np.zeros(np.broadcast(i, j).shape)  # noqa: E731
        ref_u, _ = reference_poisson(14, 14, f=f, g=g, tolerance=1e-6)
        res = poisson_archetype().run(4, 14, 14, f=f, g=g, tolerance=1e-6)
        assert np.allclose(res.values[0].solution, ref_u, atol=1e-12)

    def test_boundary_held_fixed(self):
        res = poisson_archetype().run(4, 16, 16, tolerance=1e-4)
        u = res.values[0].solution
        assert np.allclose(u[0, :], 1.0)  # hot top edge (default g)
        assert np.allclose(u[-1, 1:-1], 0.0)


class TestPerformance:
    def test_sequential_time_model(self):
        assert sequential_poisson_time(256, 256, 10, IBM_SP) > 0
        assert sequential_poisson_time(256, 256, 20, IBM_SP) == pytest.approx(
            2 * sequential_poisson_time(256, 256, 10, IBM_SP)
        )

    def test_parallel_virtual_time_decreases(self):
        arch = poisson_archetype()
        t2 = arch.run(
            2, 128, 128, machine=IBM_SP, tolerance=0.0, max_iters=5, gather_solution=False
        ).elapsed
        t8 = arch.run(
            8, 128, 128, machine=IBM_SP, tolerance=0.0, max_iters=5, gather_solution=False
        ).elapsed
        assert t8 < t2
