"""Distributed 3-D FFT and the general axis operation."""

import numpy as np
import pytest

from repro.core import MeshProgram
from repro.errors import ArchetypeError, RankFailedError
from repro.apps.fft3d import fft3d_archetype, run_fft3d, sequential_fft3d_time
from repro.machines.catalog import IBM_SP


class TestAxisOp:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_cumsum_along_each_axis(self, axis):
        full = np.arange(2.0 * 3 * 4).reshape(2, 3, 4)

        def prog(mesh):
            from repro.core.grid import DistGrid

            dist = tuple(
                mesh.comm.size if d == (axis + 1) % 3 else 1 for d in range(3)
            )
            g = DistGrid.from_global(
                mesh.comm, full if mesh.comm.rank == 0 else None, dist=dist
            )
            mesh.axis_op(lambda block: np.cumsum(block, axis=-1), g, axis=axis)
            return g.gather(root=0)

        res = MeshProgram(prog).run(2, mode="sequential")
        assert np.array_equal(res.values[0], np.cumsum(full, axis=axis))

    def test_requires_whole_axis(self):
        def prog(mesh):
            g = mesh.grid((4, 4, 4), dist=(mesh.comm.size, 1, 1))
            mesh.axis_op(lambda b: b, g, axis=0)

        with pytest.raises(RankFailedError) as info:
            MeshProgram(prog).run(2)
        assert isinstance(info.value.original, ArchetypeError)

    def test_axis_out_of_range(self):
        def prog(mesh):
            g = mesh.grid((4, 4))
            mesh.axis_op(lambda b: b, g, axis=5)

        with pytest.raises(RankFailedError):
            MeshProgram(prog).run(1)

    def test_shape_preserving_enforced(self):
        def prog(mesh):
            g = mesh.grid((4, 4))
            mesh.axis_op(lambda b: b[:, :2], g, axis=1)

        with pytest.raises(RankFailedError) as info:
            MeshProgram(prog).run(1)
        assert isinstance(info.value.original, ArchetypeError)

    def test_charges_per_vector(self):
        from repro.machines.model import MachineModel

        toy = MachineModel("toy", alpha=0, beta=0, flop_time=1e-6)

        def prog(mesh):
            g = mesh.grid((4, 6))
            mesh.axis_op(lambda b: b, g, axis=1, flops_per_vector=100.0)

        res = MeshProgram(prog).run(1, machine=toy)
        assert res.times[0] == pytest.approx(400e-6)


class TestFFT3D:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_numpy(self, p, rng):
        arr = rng.normal(size=(8, 8, 8)) + 1j * rng.normal(size=(8, 8, 8))
        res = fft3d_archetype().run(p, arr)
        assert np.allclose(res.values[0], np.fft.fftn(arr), atol=1e-8)

    def test_nonuniform_shape(self, rng):
        arr = rng.normal(size=(4, 6, 10)).astype(complex)
        res = fft3d_archetype().run(2, arr)
        assert np.allclose(res.values[0], np.fft.fftn(arr), atol=1e-8)

    def test_inverse_roundtrip(self, rng):
        arr = rng.normal(size=(4, 4, 8)).astype(complex)
        fwd = run_fft3d(2, arr).values[0]
        back = run_fft3d(2, fwd, inverse=True).values[0]
        assert np.allclose(back, arr, atol=1e-10)

    def test_result_only_on_root(self, rng):
        arr = rng.normal(size=(4, 4, 4)).astype(complex)
        res = fft3d_archetype().run(4, arr)
        assert all(v is None for v in res.values[1:])

    def test_sequential_time_model(self):
        assert sequential_fft3d_time((64, 64, 64), IBM_SP) > sequential_fft3d_time(
            (16, 16, 16), IBM_SP
        )

    def test_virtual_time_positive(self, rng):
        arr = rng.normal(size=(8, 8, 8)).astype(complex)
        res = fft3d_archetype().run(4, arr, machine=IBM_SP)
        assert res.elapsed > 0
