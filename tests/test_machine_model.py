"""Machine performance models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.machines import (
    CRAY_T3D,
    ETHERNET_SUNS,
    IBM_SP,
    IDEAL,
    INTEL_DELTA,
    INTEL_PARAGON,
    MachineModel,
    get_machine,
    list_machines,
)


class TestMessageTime:
    def test_ideal_is_free(self):
        assert IDEAL.message_time(10**9) == 0.0

    def test_alpha_beta(self):
        m = MachineModel("m", alpha=1e-4, beta=1e-7, flop_time=1e-8)
        assert m.message_time(0) == pytest.approx(1e-4)
        assert m.message_time(1000) == pytest.approx(1e-4 + 1e-4)

    def test_negative_size_rejected(self):
        with pytest.raises(ReproError):
            INTEL_DELTA.message_time(-1)

    def test_congestion_scales_with_nodes(self):
        m = MachineModel("m", alpha=1e-4, beta=0, flop_time=0, congestion_per_node=0.1)
        assert m.message_time(0, nodes=2) == pytest.approx(1e-4)
        assert m.message_time(0, nodes=12) == pytest.approx(2e-4)

    def test_congestion_floor_at_two_nodes(self):
        m = MachineModel("m", alpha=1e-4, beta=0, flop_time=0, congestion_per_node=0.1)
        assert m.message_time(0, nodes=1) == m.message_time(0, nodes=2)

    @given(nbytes=st.integers(0, 10**8))
    def test_monotone_in_size(self, nbytes):
        assert IBM_SP.message_time(nbytes + 1) >= IBM_SP.message_time(nbytes)


class TestComputeTime:
    def test_linear_in_flops(self):
        assert INTEL_DELTA.compute_time(8e6) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            IDEAL.compute_time(-1)

    def test_paging_penalty(self):
        m = MachineModel(
            "m", alpha=0, beta=0, flop_time=1e-6, mem_per_node=1000, paging_factor=9.0
        )
        base = m.compute_time(100, working_set_bytes=1000)
        paged = m.compute_time(100, working_set_bytes=2000)
        # half the working set overflows: factor 1 + 8*0.5 = 5
        assert paged == pytest.approx(5 * base)

    def test_no_penalty_within_memory(self):
        m = MachineModel("m", alpha=0, beta=0, flop_time=1e-6, mem_per_node=1000)
        assert m.compute_time(100, working_set_bytes=999) == m.compute_time(100)

    def test_memory_model_disabled(self):
        assert IDEAL.compute_time(100, working_set_bytes=1e18) == IDEAL.compute_time(100)


class TestDerived:
    def test_bandwidth(self):
        assert INTEL_DELTA.bandwidth() == pytest.approx(12e6)
        assert IDEAL.bandwidth() == float("inf")

    def test_half_performance_length(self):
        n_half = IBM_SP.half_performance_length()
        assert n_half == pytest.approx(IBM_SP.alpha * 35e6)

    def test_flops_rate(self):
        assert IBM_SP.flops_rate() == pytest.approx(40e6)

    def test_describe_mentions_name(self):
        assert "intel-delta" in INTEL_DELTA.describe()

    def test_comm_to_compute_ratio(self):
        # One byte per flop on the Delta: communication dominates.
        assert INTEL_DELTA.comm_to_compute_ratio(1.0) > 0.5


class TestValidation:
    def test_negative_costs_rejected(self):
        with pytest.raises(ReproError):
            MachineModel("bad", alpha=-1, beta=0, flop_time=0)

    def test_bad_paging_factor(self):
        with pytest.raises(ReproError):
            MachineModel("bad", alpha=0, beta=0, flop_time=0, paging_factor=0.5)


class TestCatalog:
    def test_lookup(self):
        assert get_machine("ibm-sp") is IBM_SP
        assert get_machine("ideal") is IDEAL

    def test_unknown(self):
        with pytest.raises(ReproError, match="unknown machine"):
            get_machine("cm-5")

    def test_list(self):
        names = list_machines()
        assert "intel-delta" in names and "cray-t3d" in names
        assert names == sorted(names)

    def test_latency_ordering_matches_era(self):
        # T3D had by far the lowest latency; Ethernet the highest.
        assert CRAY_T3D.alpha < IBM_SP.alpha < ETHERNET_SUNS.alpha
        assert INTEL_PARAGON.bandwidth() > INTEL_DELTA.bandwidth()
