"""Machine performance models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.machines import (
    CLOUD_25GBE,
    CRAY_T3D,
    ETHERNET_SUNS,
    GPU_NODE,
    IBM_SP,
    IDEAL,
    INTEL_DELTA,
    INTEL_PARAGON,
    MODERN_MACHINES,
    NUMA_EPYC,
    MachineModel,
    get_machine,
    list_machines,
)


class TestMessageTime:
    def test_ideal_is_free(self):
        assert IDEAL.message_time(10**9) == 0.0

    def test_alpha_beta(self):
        m = MachineModel("m", alpha=1e-4, beta=1e-7, flop_time=1e-8)
        assert m.message_time(0) == pytest.approx(1e-4)
        assert m.message_time(1000) == pytest.approx(1e-4 + 1e-4)

    def test_negative_size_rejected(self):
        with pytest.raises(ReproError):
            INTEL_DELTA.message_time(-1)

    def test_congestion_scales_with_nodes(self):
        m = MachineModel("m", alpha=1e-4, beta=0, flop_time=0, congestion_per_node=0.1)
        assert m.message_time(0, nodes=2) == pytest.approx(1e-4)
        assert m.message_time(0, nodes=12) == pytest.approx(2e-4)

    def test_congestion_floor_at_two_nodes(self):
        m = MachineModel("m", alpha=1e-4, beta=0, flop_time=0, congestion_per_node=0.1)
        assert m.message_time(0, nodes=1) == m.message_time(0, nodes=2)

    @given(nbytes=st.integers(0, 10**8))
    def test_monotone_in_size(self, nbytes):
        assert IBM_SP.message_time(nbytes + 1) >= IBM_SP.message_time(nbytes)


class TestComputeTime:
    def test_linear_in_flops(self):
        assert INTEL_DELTA.compute_time(8e6) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            IDEAL.compute_time(-1)

    def test_paging_penalty(self):
        m = MachineModel(
            "m", alpha=0, beta=0, flop_time=1e-6, mem_per_node=1000, paging_factor=9.0
        )
        base = m.compute_time(100, working_set_bytes=1000)
        paged = m.compute_time(100, working_set_bytes=2000)
        # half the working set overflows: factor 1 + 8*0.5 = 5
        assert paged == pytest.approx(5 * base)

    def test_no_penalty_within_memory(self):
        m = MachineModel("m", alpha=0, beta=0, flop_time=1e-6, mem_per_node=1000)
        assert m.compute_time(100, working_set_bytes=999) == m.compute_time(100)

    def test_memory_model_disabled(self):
        assert IDEAL.compute_time(100, working_set_bytes=1e18) == IDEAL.compute_time(100)


class TestDerived:
    def test_bandwidth(self):
        assert INTEL_DELTA.bandwidth() == pytest.approx(12e6)
        assert IDEAL.bandwidth() == float("inf")

    def test_half_performance_length(self):
        n_half = IBM_SP.half_performance_length()
        assert n_half == pytest.approx(IBM_SP.alpha * 35e6)

    def test_flops_rate(self):
        assert IBM_SP.flops_rate() == pytest.approx(40e6)

    def test_describe_mentions_name(self):
        assert "intel-delta" in INTEL_DELTA.describe()

    def test_comm_to_compute_ratio(self):
        # One byte per flop on the Delta: communication dominates.
        assert INTEL_DELTA.comm_to_compute_ratio(1.0) > 0.5


class TestValidation:
    def test_negative_costs_rejected(self):
        with pytest.raises(ReproError):
            MachineModel("bad", alpha=-1, beta=0, flop_time=0)

    def test_bad_paging_factor(self):
        with pytest.raises(ReproError):
            MachineModel("bad", alpha=0, beta=0, flop_time=0, paging_factor=0.5)


class TestCatalog:
    def test_lookup(self):
        assert get_machine("ibm-sp") is IBM_SP
        assert get_machine("ideal") is IDEAL

    def test_unknown(self):
        with pytest.raises(ReproError, match="unknown machine"):
            get_machine("cm-5")

    def test_list(self):
        names = list_machines()
        assert "intel-delta" in names and "cray-t3d" in names
        assert names == sorted(names)

    def test_latency_ordering_matches_era(self):
        # T3D had by far the lowest latency; Ethernet the highest.
        assert CRAY_T3D.alpha < IBM_SP.alpha < ETHERNET_SUNS.alpha
        assert INTEL_PARAGON.bandwidth() > INTEL_DELTA.bandwidth()

    def test_modern_machines_listed(self):
        names = list_machines()
        for machine in MODERN_MACHINES:
            assert machine.name in names
            assert get_machine(machine.name) is machine

    def test_modern_balance_shift(self):
        # Three decades move every absolute number, but the structural
        # story is the flop/byte balance: the GPU node sustains orders of
        # magnitude more flops per byte moved than the Delta, so the
        # paper's crossover points migrate toward tiny P.
        delta_fpb = INTEL_DELTA.flops_rate() / INTEL_DELTA.bandwidth()
        gpu_fpb = GPU_NODE.flops_rate() / GPU_NODE.bandwidth()
        assert gpu_fpb > 10 * delta_fpb
        # Shared-memory "messages" beat every 1990s interconnect.
        assert NUMA_EPYC.alpha < CRAY_T3D.alpha
        # Cloud VM networking has 1990s-supercomputer-class latency with
        # three orders of magnitude more bandwidth.
        assert IBM_SP.alpha / 10 < CLOUD_25GBE.alpha < IBM_SP.alpha
        assert CLOUD_25GBE.bandwidth() > 10 * CRAY_T3D.bandwidth()


class TestCatalogInvariants:
    """Invariants every catalogued machine must satisfy.

    Parameterized over :func:`list_machines`, so new catalog entries buy
    into every check by existing — no test edits required.
    """

    @pytest.fixture(params=list_machines())
    def machine(self, request) -> MachineModel:
        return get_machine(request.param)

    def test_costs_nonnegative_and_rates_positive(self, machine):
        assert machine.alpha >= 0 and machine.beta >= 0 and machine.flop_time >= 0
        assert machine.bandwidth() > 0
        assert machine.flops_rate() > 0
        if machine.name != "ideal":
            # Only the ideal reference machine communicates for free.
            assert machine.alpha > 0 and machine.beta > 0 and machine.flop_time > 0

    def test_memory_model_sane(self, machine):
        assert machine.paging_factor >= 1.0
        assert machine.max_nodes >= 2
        if machine.mem_per_node is not None:
            assert machine.mem_per_node > 0

    def test_message_time_monotone_in_size(self, machine):
        sizes = [0, 1, 64, 4096, 1 << 20]
        times = [machine.message_time(n) for n in sizes]
        assert times == sorted(times)

    def test_message_time_monotone_in_nodes(self, machine):
        assert machine.message_time(1024, nodes=64) >= machine.message_time(
            1024, nodes=2
        )

    def test_overheads_within_message_time(self, machine):
        # Posting or ingesting a message can never cost more than the
        # message itself — otherwise overlap would slow programs down —
        # and the zero-byte send overhead is bounded by the latency.
        for nbytes in (0, 1024, 1 << 20):
            mt = machine.message_time(nbytes)
            assert machine.send_overhead(nbytes) <= mt
            assert machine.recv_overhead(nbytes) <= mt
        assert machine.send_overhead(0) <= machine.alpha
