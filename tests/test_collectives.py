"""Collective operations over point-to-point messaging."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import spmd_run
from repro.comm import LAND, LOR, MAX, MIN, PROD, SUM, make_op
from repro.errors import CommError, RankFailedError
from tests.conftest import run_both_backends

PROCS = [1, 2, 3, 4, 5, 7, 8, 13]


class TestBarrier:
    @pytest.mark.parametrize("p", PROCS)
    def test_completes(self, p):
        res = spmd_run(p, lambda comm: comm.barrier() or True)
        assert all(res.values)

    def test_synchronises_clocks(self):
        from repro.machines.model import MachineModel

        toy = MachineModel("toy", alpha=1e-3, beta=0, flop_time=1e-6)

        def body(comm):
            if comm.rank == 0:
                comm.charge(10_000)  # rank 0 lags 10 ms
            comm.barrier()
            return comm.clock

        res = spmd_run(4, body, machine=toy)
        # After the barrier every rank's clock is at least rank 0's work.
        assert all(t >= 0.01 for t in res.values)


class TestBcast:
    @pytest.mark.parametrize("p", PROCS)
    @pytest.mark.parametrize("root", [0, "last"])
    def test_value_everywhere(self, p, root):
        root = p - 1 if root == "last" else 0

        def body(comm):
            v = {"data": [1, 2, 3]} if comm.rank == root else None
            return comm.bcast(v, root=root)

        res = spmd_run(p, body)
        assert all(v == {"data": [1, 2, 3]} for v in res.values)

    def test_array_payload(self, backend):
        def body(comm):
            v = np.arange(100) if comm.rank == 0 else None
            return comm.bcast(v, root=0)

        res = spmd_run(5, body, backend=backend)
        for v in res.values:
            assert np.array_equal(v, np.arange(100))

    def test_bad_root(self):
        with pytest.raises(RankFailedError) as info:
            spmd_run(2, lambda comm: comm.bcast(1, root=5))
        assert isinstance(info.value.original, CommError)

    def test_receivers_get_copies(self):
        """Mutating the broadcast value on one rank must not leak.

        Received arrays may arrive read-only (the COW payload contract),
        so ranks copy before mutating; the copies must be independent.
        """

        def body(comm):
            v = comm.bcast(np.zeros(4) if comm.rank == 0 else None, root=0)
            v = np.asarray(v).copy()
            v[:] = comm.rank
            comm.barrier()
            return v

        res = spmd_run(3, body)
        for rank, v in enumerate(res.values):
            assert np.all(v == rank)


class TestReduce:
    @pytest.mark.parametrize("p", PROCS)
    def test_sum_to_root(self, p):
        res = spmd_run(p, lambda comm: comm.reduce(comm.rank + 1, SUM, root=0))
        assert res.values[0] == p * (p + 1) // 2
        assert all(v is None for v in res.values[1:])

    def test_nonzero_root(self):
        res = spmd_run(5, lambda comm: comm.reduce(comm.rank, SUM, root=3))
        assert res.values[3] == 10
        assert res.values[0] is None

    def test_elementwise_arrays(self):
        def body(comm):
            return comm.reduce(np.full(4, comm.rank, dtype=float), MAX, root=0)

        res = spmd_run(6, body)
        assert np.array_equal(res.values[0], np.full(4, 5.0))

    def test_custom_op(self):
        concat = make_op("concat", lambda a, b: a + b, commutative=False)
        res = spmd_run(4, lambda comm: comm.reduce(str(comm.rank), concat, root=0))
        assert res.values[0] == "0123"


class TestAllreduce:
    @pytest.mark.parametrize("p", PROCS)
    def test_sum_everywhere(self, p, backend):
        res = spmd_run(p, lambda comm: comm.allreduce(comm.rank + 1, SUM), backend=backend)
        assert res.values == [p * (p + 1) // 2] * p

    @pytest.mark.parametrize("p", [2, 3, 5, 8])
    def test_min_max(self, p):
        res = spmd_run(p, lambda comm: (comm.allreduce(comm.rank, MIN), comm.allreduce(comm.rank, MAX)))
        assert all(v == (0, p - 1) for v in res.values)

    def test_logical_ops(self):
        def body(comm):
            return (
                comm.allreduce(comm.rank < 2, LAND),
                comm.allreduce(comm.rank == 2, LOR),
            )

        res = spmd_run(4, body)
        assert all(v == (False, True) for v in res.values)

    @pytest.mark.parametrize("p", [3, 4, 6, 7])
    def test_float_bitwise_identical_across_ranks(self, p):
        """Canonical combination order: all ranks agree to the last bit."""

        def body(comm):
            return comm.allreduce(0.1 * (comm.rank + 1) ** 3, SUM)

        res = spmd_run(p, body)
        assert len({v.hex() for v in res.values}) == 1

    @given(p=st.integers(1, 9), values=st.lists(st.integers(-100, 100), min_size=9, max_size=9))
    @settings(max_examples=25, deadline=None)
    def test_matches_sequential_reduction(self, p, values):
        def body(comm):
            return comm.allreduce(values[comm.rank], SUM)

        res = spmd_run(p, body)
        assert res.values == [sum(values[:p])] * p

    def test_product_arrays(self):
        def body(comm):
            return comm.allreduce(np.array([2.0, comm.rank + 1.0]), PROD)

        res = spmd_run(3, body)
        assert np.array_equal(res.values[0], np.array([8.0, 6.0]))


class TestGatherScatter:
    @pytest.mark.parametrize("p", PROCS)
    def test_gather(self, p):
        res = spmd_run(p, lambda comm: comm.gather(comm.rank * 2, root=0))
        assert res.values[0] == [2 * i for i in range(p)]
        assert all(v is None for v in res.values[1:])

    @pytest.mark.parametrize("p", PROCS)
    def test_scatter(self, p, backend):
        def body(comm):
            vals = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(vals, root=0)

        res = spmd_run(p, body, backend=backend)
        assert res.values == [f"item{i}" for i in range(p)]

    def test_scatter_gather_roundtrip(self):
        def body(comm):
            got = comm.scatter(list(range(comm.size)) if comm.rank == 0 else None)
            return comm.gather(got * got, root=0)

        res = spmd_run(6, body)
        assert res.values[0] == [i * i for i in range(6)]

    def test_scatter_wrong_length(self):
        def body(comm):
            return comm.scatter([1] if comm.rank == 0 else None, root=0)

        with pytest.raises(RankFailedError) as info:
            spmd_run(3, body)
        assert isinstance(info.value.original, CommError)

    @pytest.mark.parametrize("p", PROCS)
    def test_allgather(self, p, backend):
        res = spmd_run(p, lambda comm: comm.allgather(comm.rank**2), backend=backend)
        assert all(v == [i**2 for i in range(p)] for v in res.values)


class TestAlltoall:
    @pytest.mark.parametrize("p", PROCS)
    def test_transpose_semantics(self, p):
        def body(comm):
            return comm.alltoall([(comm.rank, j) for j in range(comm.size)])

        res = spmd_run(p, body)
        for i, received in enumerate(res.values):
            assert received == [(src, i) for src in range(p)]

    def test_varying_sizes(self, backend):
        """alltoallv: payload sizes differ per (source, dest) pair."""

        def body(comm):
            parcels = [np.arange(comm.rank * 10 + j) for j in range(comm.size)]
            got = comm.alltoall(parcels)
            return [g.size for g in got]

        res = spmd_run(4, body, backend=backend)
        for dest, sizes in enumerate(res.values):
            assert sizes == [src * 10 + dest for src in range(4)]

    def test_wrong_length_rejected(self):
        with pytest.raises(RankFailedError) as info:
            spmd_run(3, lambda comm: comm.alltoall([1, 2]))
        assert isinstance(info.value.original, CommError)


class TestScan:
    @pytest.mark.parametrize("p", PROCS)
    def test_inclusive_prefix_sum(self, p):
        res = spmd_run(p, lambda comm: comm.scan(comm.rank + 1, SUM))
        assert res.values == [sum(range(1, r + 2)) for r in range(p)]

    def test_noncommutative_op(self):
        concat = make_op("concat", lambda a, b: a + b, commutative=False)
        res = spmd_run(5, lambda comm: comm.scan(str(comm.rank), concat))
        assert res.values == ["0", "01", "012", "0123", "01234"]


class TestCollectiveSequences:
    @pytest.mark.chaos(seeds=8)
    def test_many_collectives_in_order(self, backend):
        """A realistic sequence exercises the collective tag discipline."""

        def body(comm):
            comm.barrier()
            s = comm.allreduce(comm.rank, SUM)
            g = comm.allgather(s)
            comm.barrier()
            v = comm.bcast(g[0] if comm.rank == 0 else None, root=0)
            return v

        p = 6
        res = spmd_run(p, body, backend=backend)
        assert res.values == [p * (p - 1) // 2] * p

    def test_user_tags_do_not_collide_with_collectives(self, backend):
        def body(comm):
            nxt = (comm.rank + 1) % comm.size
            comm.send(nxt, comm.rank, tag=0)
            total = comm.allreduce(1, SUM)
            prev = comm.recv(source=(comm.rank - 1) % comm.size, tag=0)
            return (total, prev)

        res = spmd_run(4, body, backend=backend)
        assert res.values == [(4, 3), (4, 0), (4, 1), (4, 2)]

    def test_user_tag_above_limit_rejected(self):
        from repro.comm.communicator import MAX_USER_TAG

        def body(comm):
            comm.send(comm.rank, "x", tag=MAX_USER_TAG + 5)

        with pytest.raises(RankFailedError) as info:
            spmd_run(1, body)
        assert isinstance(info.value.original, CommError)

    def test_backend_equivalence_compound(self):
        def body(comm):
            data = np.arange(10) + comm.rank
            total = comm.allreduce(data, SUM)
            pieces = comm.alltoall([data[:j].copy() for j in range(comm.size)])
            return total.sum() + sum(p.sum() for p in pieces)

        run_both_backends(5, body)
