"""The observability subsystem: metrics, critical path, Chrome export, CLI."""

import json

import pytest

from repro import spmd_run
from repro.comm.reductions import SUM
from repro.machines.catalog import IBM_SP
from repro.machines.model import MachineModel
from repro.obs.chrome import (
    ChromeTraceError,
    chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.critical import (
    comm_matrix,
    critical_path,
    pair_messages,
    rank_activity,
    render_comm_matrix,
    trace_makespan,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)
from repro.trace.analysis import summarize

TOY = MachineModel("toy", alpha=1e-3, beta=1e-6, flop_time=1e-6)


# -- metrics ------------------------------------------------------------------
class TestInstruments:
    def test_counter_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(MetricsError):
            Counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("g")
        g.set(10)
        g.dec(4)
        g.inc()
        assert g.value == 7.0

    def test_histogram_buckets_observations(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.mean == pytest.approx(555.5 / 4)
        assert h.bucket_counts == [1, 1, 1, 1]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(MetricsError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(MetricsError):
            Histogram("h", buckets=(3.0, 2.0))
        with pytest.raises(MetricsError):
            Histogram("h", buckets=())

    def test_default_bucket_sets_are_valid(self):
        # Regression: default bucket tuples must pass their own validation.
        assert Histogram("t").buckets  # TIME_BUCKETS default
        assert Histogram("c", buckets=COUNT_BUCKETS).buckets

    def test_histogram_snapshot_names_overflow_bucket(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["buckets"]["+inf"] == 1
        assert snap["min"] == snap["max"] == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricsError):
            reg.gauge("x")

    def test_snapshot_and_render(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["n"]["value"] == 3
        assert snap["h"]["count"] == 1
        text = reg.render()
        assert "n: 3" in text
        assert "h: count=1" in text

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render()

    def test_reset_drops_instruments(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.names() == []
        assert reg.get("x") is None

    def test_scoped_registry_isolates_and_restores(self):
        outer = get_registry()
        with scoped_registry() as inner:
            assert get_registry() is inner
            get_registry().counter("only.inner").inc()
        assert get_registry() is outer
        assert outer.get("only.inner") is None

    def test_set_registry_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)


class TestMergeSnapshot:
    def test_counters_add(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(2)
        other = MetricsRegistry()
        other.counter("jobs").inc(3)
        reg.merge_snapshot(other.snapshot())
        assert reg.counter("jobs").value == 5

    def test_gauges_take_last_write(self):
        # A gauge is an instantaneous reading: merging must adopt the
        # snapshot's value, not sum it with the local one.
        reg = MetricsRegistry()
        reg.gauge("depth").set(7)
        other = MetricsRegistry()
        other.gauge("depth").set(2)
        reg.merge_snapshot(other.snapshot())
        assert reg.gauge("depth").value == 2

    def test_histograms_merge_overlapping_buckets(self):
        bounds = (1.0, 10.0, 100.0)
        reg = MetricsRegistry()
        local = reg.histogram("lat", buckets=bounds)
        for v in (0.5, 5.0):
            local.observe(v)
        other = MetricsRegistry()
        remote = other.histogram("lat", buckets=bounds)
        for v in (5.0, 50.0, 500.0):
            remote.observe(v)
        reg.merge_snapshot(other.snapshot())
        merged = reg.histogram("lat", buckets=bounds)
        # Per-bucket counts add where the streams overlap (the 5.0s
        # share the <=10 bucket) and min/max/sum/count recombine.
        assert merged.bucket_counts == [1, 2, 1, 1]
        assert merged.count == 5
        assert merged.sum == pytest.approx(560.5)
        snap = merged.snapshot()
        assert snap["min"] == 0.5
        assert snap["max"] == 500.0

    def test_merge_creates_missing_instruments(self):
        other = MetricsRegistry()
        other.counter("c").inc(1)
        other.gauge("g").set(4)
        other.histogram("h", buckets=(1.0,)).observe(2.0)
        reg = MetricsRegistry()
        reg.merge_snapshot(other.snapshot())
        assert reg.counter("c").value == 1
        assert reg.gauge("g").value == 4
        assert reg.histogram("h", buckets=(1.0,)).count == 1

    def test_merge_rejects_bucket_mismatch(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        other = MetricsRegistry()
        other.histogram("h", buckets=(5.0,)).observe(1.0)
        with pytest.raises(MetricsError):
            reg.merge_snapshot(other.snapshot())

    def test_merge_rejects_kind_mismatch(self):
        reg = MetricsRegistry()
        reg.counter("x")
        other = MetricsRegistry()
        other.gauge("x").set(1)
        with pytest.raises(MetricsError):
            reg.merge_snapshot(other.snapshot())


class TestRuntimeInstrumentation:
    def test_scheduler_and_mailbox_counters_populated(self):
        def body(comm):
            return comm.allreduce(comm.rank, SUM)

        with scoped_registry() as reg:
            spmd_run(4, body, machine=TOY)
            assert reg.counter("runtime.scheduler.steps").value > 0
            assert reg.counter("runtime.scheduler.blocks").value > 0
            enqueued = reg.counter("runtime.mailbox.enqueued").value
            matched = reg.counter("runtime.mailbox.matched").value
            assert enqueued == matched > 0
            # Messages bound directly to a posted receive (the nonblocking
            # layer) never enter the pending queue, so the depth histogram
            # observes at most one sample per enqueued message.
            assert reg.histogram("runtime.mailbox.depth").count <= enqueued
            assert reg.counter("runtime.mailbox.posted").value > 0
            assert reg.counter("comm.requests.posted").value > 0
            assert (
                reg.counter("comm.requests.completed").value
                == reg.counter("comm.requests.posted").value
            )

    def test_deadlock_counter(self):
        from repro.errors import DeadlockError

        def body(comm):
            comm.recv(source=(comm.rank + 1) % comm.size, tag=9)

        with scoped_registry() as reg:
            with pytest.raises(DeadlockError):
                spmd_run(2, body)
            assert reg.counter("runtime.scheduler.deadlocks").value == 1

    def test_reduction_op_counters(self):
        with scoped_registry() as reg:
            spmd_run(4, lambda comm: comm.allreduce(1.0, SUM), machine=TOY)
            total = reg.counter("comm.reductions.applies").value
            assert total > 0
            assert reg.counter("comm.reductions.applies.sum").value == total

    def test_onedeep_phase_metrics(self):
        import numpy as np

        from repro.apps.sorting.mergesort import one_deep_mergesort

        data = np.random.default_rng(0).integers(0, 10**6, size=512)
        with scoped_registry() as reg:
            one_deep_mergesort().run(4, data, machine=TOY)
            assert reg.counter("core.onedeep.phase.solve").value == 4
            assert reg.counter("core.onedeep.phase.merge").value == 4
            hist = reg.histogram("core.onedeep.phase_seconds")
            assert hist.count == 8
            assert hist.sum > 0

    def test_mesh_op_and_redistribute_metrics(self):
        import numpy as np

        from repro.apps.fft2d import fft2d_archetype

        arr = np.random.default_rng(0).standard_normal((16, 16))
        with scoped_registry() as reg:
            fft2d_archetype().run(4, arr, 1, machine=TOY)
            assert reg.counter("core.mesh.row_op").value == 4
            assert reg.counter("core.mesh.col_op").value == 4
            assert reg.histogram("core.mesh.op_seconds").count > 0
            assert reg.counter("comm.redistribute.calls").value > 0
            assert reg.counter("comm.redistribute.bytes").value > 0
            assert reg.histogram("comm.redistribute.parcels").count > 0
            assert reg.histogram("comm.redistribute.virtual_seconds").count > 0


# -- critical path ------------------------------------------------------------
def _traced(nprocs, body):
    return spmd_run(nprocs, body, machine=TOY, trace=True)


class TestMessagePairing:
    def test_pairs_by_channel_fifo(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1)
                comm.send(1, "b", tag=1)
            elif comm.rank == 1:
                comm.recv(source=0, tag=1)
                comm.recv(source=0, tag=1)

        pairs = pair_messages(_traced(2, body).tracer)
        assert len(pairs) == 2
        assert [p.send_index for p in pairs] == [0, 1]
        assert all(p.send_rank == 0 and p.recv_rank == 1 for p in pairs)

    def test_wait_positive_when_receiver_early(self):
        def body(comm):
            if comm.rank == 0:
                comm.charge(10_000)  # late sender
                comm.send(1, "x", tag=1)
            else:
                comm.recv(source=0, tag=1)

        (pair,) = pair_messages(_traced(2, body).tracer)
        assert pair.wait > 0
        assert pair.wait <= pair.recv.duration


class TestCriticalPath:
    def test_length_equals_makespan_poisson(self):
        from repro.apps.poisson import poisson_archetype

        res = poisson_archetype().run(
            4, 24, 24, tolerance=0.0, max_iters=4,
            gather_solution=False, machine=IBM_SP, trace=True,
        )
        report = critical_path(res.tracer)
        assert report.length == pytest.approx(res.elapsed, rel=1e-12)
        assert report.makespan == pytest.approx(res.elapsed, rel=1e-12)

    def test_length_equals_makespan_mergesort(self):
        import numpy as np

        from repro.apps.sorting.mergesort import one_deep_mergesort

        data = np.random.default_rng(0).integers(0, 10**6, size=1024)
        res = one_deep_mergesort().run(4, data, machine=IBM_SP, trace=True)
        report = critical_path(res.tracer)
        assert report.length == pytest.approx(res.elapsed, rel=1e-12)

    def test_length_equals_makespan_fft2d(self):
        import numpy as np

        from repro.apps.fft2d import fft2d_archetype

        arr = np.random.default_rng(1).standard_normal((16, 16))
        res = fft2d_archetype().run(4, arr, 1, machine=IBM_SP, trace=True)
        report = critical_path(res.tracer)
        assert report.length == pytest.approx(res.elapsed, rel=1e-12)

    def test_segments_tile_the_timeline(self):
        def body(comm):
            comm.charge(1000 * (comm.rank + 1))
            comm.allreduce(comm.rank, SUM)

        report = critical_path(_traced(3, body).tracer)
        assert report.segments[0].start == 0.0
        assert report.segments[-1].end == pytest.approx(report.makespan)
        for a, b in zip(report.segments, report.segments[1:]):
            assert b.start == pytest.approx(a.end)

    def test_path_crosses_ranks_through_binding_send(self):
        def body(comm):
            if comm.rank == 0:
                comm.charge(50_000)  # the dominant chain starts here
                comm.send(1, "x", tag=1)
            else:
                comm.recv(source=0, tag=1)

        report = critical_path(_traced(2, body).tracer)
        assert report.rank_switches == 1
        assert {seg.rank for seg in report.segments} == {0, 1}
        assert report.length == pytest.approx(report.makespan)

    def test_breakdown_sums_to_length(self):
        def body(comm):
            comm.charge(500)
            comm.allreduce(1.0, SUM)

        report = critical_path(_traced(4, body).tracer)
        assert sum(report.breakdown.values()) == pytest.approx(report.length)
        assert "compute" in report.breakdown

    def test_render_mentions_makespan(self):
        def body(comm):
            comm.charge(100)

        report = critical_path(_traced(1, body).tracer)
        text = report.render()
        assert "critical path" in text
        assert "makespan" in text

    def test_empty_trace(self):
        res = spmd_run(2, lambda comm: None, trace=True)
        report = critical_path(res.tracer)
        assert report.makespan == 0.0
        assert report.segments == []
        assert trace_makespan(res.tracer) == 0.0


class TestRankActivity:
    def test_activity_tiles_makespan(self):
        def body(comm):
            if comm.rank == 0:
                comm.charge(20_000)
                comm.send(1, b"x" * 128, tag=1)
            else:
                comm.recv(source=0, tag=1)

        res = _traced(2, body)
        for act in rank_activity(res.tracer):
            total = act.compute + act.send + act.recv + act.idle
            assert total == pytest.approx(res.elapsed)

    def test_wait_attributed_to_late_sender(self):
        def body(comm):
            if comm.rank == 0:
                comm.charge(20_000)
                comm.send(1, "x", tag=1)
            else:
                comm.recv(source=0, tag=1)

        acts = rank_activity(_traced(2, body).tracer)
        assert acts[1].wait > 0
        assert acts[0].wait == 0.0
        assert acts[1].busy < acts[1].compute + acts[1].send + acts[1].recv


class TestCommMatrix:
    def test_counts_and_bytes(self):
        def body(comm):
            comm.send((comm.rank + 1) % comm.size, b"12345678", tag=1)
            comm.recv(tag=1)

        tracer = _traced(3, body).tracer
        messages, volume = comm_matrix(tracer)
        summary = summarize(tracer)
        assert sum(map(sum, messages)) == summary.total_messages
        assert sum(map(sum, volume)) == summary.total_bytes
        assert messages[0][1] == 1 and messages[0][2] == 0

    def test_render(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, "x", tag=1)
            elif comm.rank == 1:
                comm.recv(source=0, tag=1)

        text = render_comm_matrix(_traced(2, body).tracer)
        assert "src\\dst" in text
        assert "messages/bytes" in text


# -- Chrome trace export ------------------------------------------------------
class TestChromeTrace:
    def _poisson_tracer(self):
        from repro.apps.poisson import poisson_archetype

        return poisson_archetype().run(
            4, 16, 16, tolerance=0.0, max_iters=2,
            gather_solution=False, machine=IBM_SP, trace=True,
        ).tracer

    def test_structure(self):
        tracer = self._poisson_tracer()
        data = chrome_trace(tracer)
        assert isinstance(data["traceEvents"], list)
        phases = {ev["ph"] for ev in data["traceEvents"]}
        assert {"M", "X", "s", "f"} <= phases
        tids = {ev["tid"] for ev in data["traceEvents"] if ev["ph"] == "X"}
        assert tids == {0, 1, 2, 3}
        assert data["otherData"]["nprocs"] == 4

    def test_flow_arrows_match_message_pairs(self):
        tracer = self._poisson_tracer()
        data = chrome_trace(tracer)
        starts = [ev for ev in data["traceEvents"] if ev["ph"] == "s"]
        finishes = [ev for ev in data["traceEvents"] if ev["ph"] == "f"]
        assert len(starts) == len(finishes) == len(pair_messages(tracer))

    def test_export_validates_and_round_trips(self, tmp_path):
        tracer = self._poisson_tracer()
        path = tmp_path / "trace.json"
        data = export_chrome_trace(tracer, path)
        assert validate_chrome_trace(data) == []
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert len(loaded["traceEvents"]) == len(data["traceEvents"])

    def test_idle_slices_fill_to_makespan(self):
        def body(comm):
            comm.charge(1000.0 if comm.rank == 0 else 100_000.0)

        tracer = _traced(2, body).tracer
        data = chrome_trace(tracer)
        idle = [
            ev
            for ev in data["traceEvents"]
            if ev["ph"] == "X" and ev["cat"] == "idle" and ev["tid"] == 0
        ]
        assert idle, "fast rank should get a trailing idle slice"
        makespan_us = trace_makespan(tracer) * 1e6
        assert idle[-1]["ts"] + idle[-1]["dur"] == pytest.approx(makespan_us)


class TestChromeValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"notTraceEvents": []}) != []

    def test_rejects_unknown_phase(self):
        bad = {"traceEvents": [{"ph": "Z", "pid": 0, "tid": 0}]}
        problems = validate_chrome_trace(bad)
        assert any("unknown phase" in p for p in problems)

    def test_rejects_missing_keys_and_negative_dur(self):
        missing = {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "name": "n"}]}
        assert any("missing keys" in p for p in validate_chrome_trace(missing))
        negative = {
            "traceEvents": [
                {"ph": "X", "pid": 0, "tid": 0, "name": "n", "cat": "c",
                 "ts": 0.0, "dur": -1.0}
            ]
        }
        assert any("non-negative" in p for p in validate_chrome_trace(negative))

    def test_rejects_unpaired_and_backwards_flows(self):
        def flow(ph, ts):
            return {"ph": ph, "pid": 0, "tid": 0, "name": "m", "cat": "msg",
                    "id": 1, "ts": ts}

        unpaired = {"traceEvents": [flow("s", 0.0)]}
        assert any("no matching finish" in p for p in validate_chrome_trace(unpaired))
        backwards = {"traceEvents": [flow("s", 5.0), flow("f", 1.0)]}
        assert any("before it starts" in p for p in validate_chrome_trace(backwards))

    def test_export_refuses_invalid_document(self, tmp_path, monkeypatch):
        import repro.obs.chrome as chrome_mod

        def broken(tracer):
            return {"traceEvents": [{"ph": "Z"}]}

        monkeypatch.setattr(chrome_mod, "chrome_trace", broken)
        res = spmd_run(1, lambda comm: comm.charge(1), trace=True)
        target = tmp_path / "bad.json"
        with pytest.raises(ChromeTraceError):
            chrome_mod.export_chrome_trace(res.tracer, target)
        assert not target.exists()


# -- CLI ----------------------------------------------------------------------
class TestCli:
    def test_default_is_summary(self, capsys):
        from repro.obs.__main__ import main

        assert main(["poisson", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "virtual makespan" in out
        assert "metrics:" in out
        assert "runtime.scheduler.steps" in out

    def test_critical_path_flag(self, capsys):
        from repro.obs.__main__ import main

        assert main(["mergesort", "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "per-rank activity" in out

    def test_compare_model_flag(self, capsys):
        from repro.obs.__main__ import main

        assert main(["fft2d", "--compare-model"]) == 0
        out = capsys.readouterr().out
        assert "model prediction" in out
        assert "measured / predicted" in out

    def test_export_chrome_writes_valid_json(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        target = tmp_path / "out.json"
        assert main(["poisson", "--export-chrome", str(target)]) == 0
        assert validate_chrome_trace(json.loads(target.read_text())) == []

    def test_smoke_passes(self, capsys):
        from repro.obs.__main__ import main

        assert main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out

    def test_rejects_bad_procs(self):
        from repro.obs.__main__ import main

        with pytest.raises(SystemExit):
            main(["poisson", "--procs", "0"])

    def test_rejects_unknown_machine(self):
        from repro.errors import ReproError
        from repro.obs.__main__ import main

        with pytest.raises(ReproError):
            main(["poisson", "--machine", "nonesuch"])
