"""Nonblocking request API: isend/irecv/wait/waitall/waitany/sendrecv.

The PR 3 tentpole: posted receives in the mailbox, request objects in
the communicator, and virtual clocks that charge ``max(compute, comm)``
when transfers overlap computation.  The invariants these tests pin:

- payload correctness and posted-receive (MPI) matching semantics;
- a blocking send is virtual-time-identical to isend + immediate wait;
- overlapped transfers charge only what the compute does not hide;
- ``waitall``'s charging is canonical (schedule-independent), so the
  deterministic and threaded backends agree on every clock — and the
  chaos-marked tests extend that to fuzzed completion orders.
"""

import numpy as np
import pytest

from repro import spmd_run
from repro.comm import Request
from repro.errors import CommError
from repro.machines.catalog import IBM_SP, IDEAL
from tests.conftest import run_both_backends


class TestBasics:
    def test_isend_irecv_roundtrip(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.isend(1, {"x": 41}, tag=3)
                assert isinstance(req, Request)
                assert comm.wait(req) is None
                return True
            req = comm.irecv(source=0, tag=3)
            value = comm.wait(req)
            return value == {"x": 41}

        assert all(run_both_backends(2, body).values)

    def test_wait_is_idempotent(self):
        def body(comm):
            other = 1 - comm.rank
            sreq = comm.isend(other, comm.rank)
            rreq = comm.irecv(source=other)
            first = comm.wait(rreq)
            again = comm.wait(rreq)
            comm.wait(sreq)
            comm.wait(sreq)
            return first == other and again == other

        assert all(run_both_backends(2, body).values)

    def test_payload_guards(self):
        def body(comm):
            other = 1 - comm.rank
            sreq = comm.isend(other, 7)
            rreq = comm.irecv(source=other)
            with pytest.raises(CommError):
                _ = sreq.payload  # send requests carry no payload
            with pytest.raises(CommError):
                _ = rreq.payload  # not yet completed
            comm.waitall([sreq, rreq])
            return rreq.payload == 7

        assert all(run_both_backends(2, body).values)

    def test_foreign_request_rejected(self):
        """Waiting on another rank's request is a usage error."""
        shared: dict[int, Request] = {}

        def body(comm):
            if comm.rank == 0:
                shared[0] = comm.irecv(source=1, tag=9)
            comm.barrier()
            ok = True
            if comm.rank == 1:
                try:
                    comm.wait(shared[0])
                    ok = False
                except CommError:
                    pass
                comm.send(0, "now", tag=9)
            if comm.rank == 0:
                ok = comm.wait(shared[0]) == "now"
            return ok

        assert all(run_both_backends(2, body).values)

    def test_test_reports_completion(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.isend(1, 123)
                comm.wait(req)
                assert comm.test(req)
                return True
            req = comm.irecv(source=0)
            comm.wait(req)
            assert comm.test(req)
            return req.payload == 123

        assert all(run_both_backends(2, body).values)

    def test_payload_snapshot_at_post(self):
        """isend copies the payload: later mutation must not leak."""

        def body(comm):
            if comm.rank == 0:
                buf = np.arange(4.0)
                req = comm.isend(1, buf)
                buf[:] = -1.0
                comm.wait(req)
                return True
            return bool(np.array_equal(comm.recv(source=0), np.arange(4.0)))

        assert all(run_both_backends(2, body).values)


class TestWaitAllAny:
    def test_waitall_returns_in_request_order(self):
        def body(comm):
            if comm.rank == 0:
                reqs = [comm.isend(1, k, tag=k) for k in range(4)]
                comm.waitall(reqs)
                return True
            reqs = [comm.irecv(source=0, tag=k) for k in reversed(range(4))]
            values = comm.waitall(reqs)
            return values == [3, 2, 1, 0]

        assert all(run_both_backends(2, body).values)

    def test_waitall_mixes_sends_and_recvs(self):
        def body(comm):
            other = 1 - comm.rank
            reqs = [comm.irecv(source=other), comm.isend(other, comm.rank * 10)]
            values = comm.waitall(reqs)
            return values == [other * 10, None]

        assert all(run_both_backends(2, body).values)

    def test_waitany_returns_a_completed_index(self):
        def body(comm):
            if comm.rank == 0:
                reqs = [comm.isend(1, "a", tag=0), comm.isend(1, "b", tag=1)]
                comm.waitall(reqs)
                return True
            reqs = [comm.irecv(source=0, tag=0), comm.irecv(source=0, tag=1)]
            index, value = comm.waitany(reqs)
            assert value == ("a", "b")[index]
            rest = [r for r in reqs if not r.done]
            got = comm.waitall(rest)
            return len(rest) == 1 and got[0] in ("a", "b")

        assert all(run_both_backends(2, body).values)

    @pytest.mark.chaos(seeds=8)
    def test_waitall_charging_is_schedule_independent(self):
        """Fuzzed completion orders must not move any virtual clock."""

        def body(comm):
            other = 1 - comm.rank
            reqs = [comm.irecv(source=other, tag=k) for k in range(3)]
            reqs += [comm.isend(other, k, tag=k) for k in range(3)]
            values = comm.waitall(reqs)
            return values[:3]

        res = run_both_backends(2, body, machine=IBM_SP)
        assert res.values == [[0, 1, 2], [0, 1, 2]]


class TestSendrecv:
    def test_pairwise_swap(self):
        def body(comm):
            other = 1 - comm.rank
            return comm.sendrecv(other, comm.rank * 11, other)

        assert run_both_backends(2, body).values == [11, 0]

    def test_shift_with_open_ends(self):
        """dest/source of None mean no send / no receive (MPI_PROC_NULL)."""

        def body(comm):
            dest = comm.rank + 1 if comm.rank + 1 < comm.size else None
            source = comm.rank - 1 if comm.rank > 0 else None
            return comm.sendrecv(dest, comm.rank, source)

        assert run_both_backends(3, body).values == [None, 0, 1]

    def test_distinct_tags(self):
        def body(comm):
            other = 1 - comm.rank
            # Both directions in flight on different tags of one channel.
            a = comm.sendrecv(other, "ping", other, send_tag=5, recv_tag=5)
            b = comm.sendrecv(other, comm.rank, other, send_tag=6, recv_tag=6)
            return a == "ping" and b == other

        assert all(run_both_backends(2, body).values)


class TestPostedReceiveSemantics:
    def test_post_binds_before_blocking_wildcard(self):
        """A message bound to a posted receive cannot be stolen by a
        later blocking wildcard receive."""

        def body(comm):
            if comm.rank == 0:
                comm.send(1, "for-the-post", tag=1)
                comm.send(1, "for-the-wildcard", tag=2)
                return True
            req = comm.irecv(source=0, tag=1)
            # The wildcard matches only the unbound tag-2 message.
            stolen = comm.recv()
            posted = comm.wait(req)
            return stolen == "for-the-wildcard" and posted == "for-the-post"

        assert all(run_both_backends(2, body).values)

    def test_posts_match_in_fifo_order(self):
        """Two posts on one channel bind to messages in send order."""

        def body(comm):
            if comm.rank == 0:
                for k in range(3):
                    comm.send(1, k, tag=7)
                return True
            reqs = [comm.irecv(source=0, tag=7) for _ in range(3)]
            return comm.waitall(reqs) == [0, 1, 2]

        assert all(run_both_backends(2, body).values)


class TestOverlapAccounting:
    def test_blocking_send_equals_isend_wait(self):
        def blocking(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(1000))
            else:
                comm.recv(source=0)

        def nonblocking(comm):
            if comm.rank == 0:
                comm.wait(comm.isend(1, np.zeros(1000)))
            else:
                comm.wait(comm.irecv(source=0))

        a = spmd_run(2, blocking, machine=IBM_SP)
        b = spmd_run(2, nonblocking, machine=IBM_SP)
        assert a.times == b.times

    def test_compute_hides_wire_time(self):
        """With enough compute between post and wait, the sender's clock
        advances by post overhead + compute only — the wire is hidden."""
        flops = 1e7

        def overlapped(comm):
            if comm.rank == 0:
                req = comm.isend(1, np.zeros(10_000))
                comm.charge(flops, label="hidden")
                comm.wait(req)
            else:
                req = comm.irecv(source=0)
                comm.charge(flops, label="hidden")
                comm.wait(req)

        def sequential(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(10_000))
                comm.charge(flops, label="exposed")
            else:
                comm.charge(flops, label="exposed")
                comm.recv(source=0)

        a = spmd_run(2, overlapped, machine=IBM_SP)
        b = spmd_run(2, sequential, machine=IBM_SP)
        assert max(a.times) < max(b.times)

    def test_irecv_post_is_free(self):
        def body(comm):
            if comm.rank == 1:
                before = comm.clock
                req = comm.irecv(source=0)
                assert comm.clock == before  # posting a receive is free
                comm.wait(req)
                comm.recv(source=0, tag=9)
            else:
                comm.send(1, 1, tag=0)
                comm.send(1, 2, tag=9)

        spmd_run(2, body, machine=IBM_SP)

    def test_request_events_traced(self):
        from repro.trace.events import RequestEvent

        def body(comm):
            other = 1 - comm.rank
            comm.waitall([comm.isend(other, 1), comm.irecv(source=other)])

        res = spmd_run(2, body, machine=IDEAL, trace=True)
        kinds = {
            (ev.kind, ev.op)
            for rank in range(2)
            for ev in res.tracer.events_for(rank)
            if isinstance(ev, RequestEvent)
        }
        assert kinds == {
            ("isend", "post"),
            ("isend", "complete"),
            ("irecv", "post"),
            ("irecv", "complete"),
        }
