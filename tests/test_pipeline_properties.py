"""Property tests for the pipeline state-access modes.

In ``test_runtime_properties.py`` style: hypothesis drives the geometry
(stream length, farm width, credit window) and seeded schedule fuzzing
drives the interleavings, checking the declared state disciplines —
accumulator results are schedule-independent, serial stages never
interleave items (trace happens-before), partitioned workers only ever
see their own partition.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import FarmStage, PipelineArchetype, Stage, StateAccess
from repro.machines.catalog import IBM_SP
from repro.verify import fuzzed_schedule
from repro.verify.digest import value_digest


def _weigh(ctx, x, state):
    # a non-commutative-looking fold kept associative/commutative by
    # using addition over floats derived deterministically from x
    return x, (state[0] + 1, state[1] + float(x) * 1.5)


def _acc_pipeline(width: int, window: int) -> PipelineArchetype:
    return PipelineArchetype(
        [
            FarmStage(
                "weigh",
                _weigh,
                workers=width,
                state_access=StateAccess.ACCUMULATOR,
                init_state=lambda w: (0, 0.0),
                combine=lambda a, b: (a[0] + b[0], a[1] + b[1]),
                work_cost=25.0,
            )
        ],
        window=window,
    )


class TestAccumulator:
    def test_identical_under_20_fuzzed_schedules(self):
        p = _acc_pipeline(width=3, window=2)
        items = list(range(17))
        reference = p.run(p.nprocs, items, machine=IBM_SP)
        ref_digest = value_digest([reference.times, reference.values])
        ref_state = p.accumulated_state(reference, "weigh")
        for seed in range(20):
            with fuzzed_schedule(seed):
                res = p.run(p.nprocs, items, machine=IBM_SP)
            assert p.accumulated_state(res, "weigh") == ref_state, f"seed {seed}"
            assert value_digest([res.times, res.values]) == ref_digest, f"seed {seed}"

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=24),
        width=st.integers(min_value=1, max_value=4),
        window=st.integers(min_value=1, max_value=5),
    )
    def test_fold_is_width_and_window_independent(self, n, width, window):
        items = list(range(n))
        expected = (n, sum(float(x) * 1.5 for x in items))
        p = _acc_pipeline(width, window)
        res = p.run(p.nprocs, items)
        assert p.accumulated_state(res, "weigh") == expected


def _serial_tag(ctx, x, state):
    # charge under a per-item label so the trace records processing order
    ctx.charge(50.0, label=f"serial[{x}]")
    return x, state + [x]


class TestSerial:
    def _serial_events(self, seed=None):
        p = PipelineArchetype(
            [
                FarmStage("feed", lambda ctx, x, s: x, workers=2, work_cost=30.0),
                Stage(
                    "ser",
                    _serial_tag,
                    state_access=StateAccess.SERIAL,
                    init_state=lambda w: [],
                ),
            ],
            window=2,
        )
        items = list(range(13))
        if seed is None:
            res = p.run(p.nprocs, items, machine=IBM_SP, trace=True)
        else:
            with fuzzed_schedule(seed):
                res = p.run(p.nprocs, items, machine=IBM_SP, trace=True)
        serial_rank = 3  # emitter, feed×2, then the serial stage
        assert p._role(serial_rank) == ("work", 1, 0)
        events = [
            ev
            for ev in res.tracer.events_for(serial_rank)
            if getattr(ev, "label", "").startswith("serial[")
        ]
        return p, res, events

    def test_items_processed_in_stream_order(self):
        p, res, events = self._serial_events()
        ks = [int(ev.label[len("serial["):-1]) for ev in events]
        assert ks == list(range(13))
        state = p.reports(res)["ser"][0].state
        assert state == list(range(13))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_never_interleaves_under_fuzzing(self, seed):
        """Happens-before: item k+1's compute starts at or after item k's
        compute ends, on every schedule — the serial discipline."""
        p, res, events = self._serial_events(seed)
        ks = [int(ev.label[len("serial["):-1]) for ev in events]
        assert ks == sorted(ks), "serial stage processed items out of order"
        for prev, nxt in zip(events, events[1:]):
            assert nxt.start >= prev.end, (
                f"serial items overlap: {prev.label} [{prev.start}, {prev.end}) "
                f"vs {nxt.label} [{nxt.start}, {nxt.end})"
            )
        assert p.reports(res)["ser"][0].state == list(range(13))


def _collect_partition(ctx, x, state):
    return x, state + [x]


class TestPartitioned:
    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=20),
        width=st.integers(min_value=1, max_value=4),
    )
    def test_workers_only_see_their_partition(self, n, width):
        """Round-robin ownership *is* the partitioning: worker w's state
        accumulates exactly the items congruent to w mod width."""
        p = PipelineArchetype(
            [
                FarmStage(
                    "part",
                    _collect_partition,
                    workers=width,
                    state_access=StateAccess.PARTITIONED,
                    init_state=lambda w: [],
                )
            ],
            window=3,
        )
        res = p.run(p.nprocs, list(range(n)))
        for report in p.reports(res)["part"]:
            assert report.state == list(range(report.worker, n, width))
