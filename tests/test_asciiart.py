"""ASCII field rendering."""

import numpy as np
import pytest

from repro.util.asciiart import DEFAULT_RAMP, render_field


class TestRenderField:
    def test_shape(self):
        art = render_field(np.zeros((10, 10)), width=20, height=5)
        lines = art.splitlines()
        assert len(lines) == 6  # 5 rows + legend
        assert all(len(line) == 20 for line in lines[:-1])

    def test_constant_field(self):
        art = render_field(np.full((4, 4), 3.0), width=8, height=2)
        body = "".join(art.splitlines()[:-1])
        assert set(body) == {DEFAULT_RAMP[0]}

    def test_gradient_uses_full_ramp(self):
        field = np.linspace(0, 1, 100).reshape(10, 10)
        art = render_field(field, width=10, height=10)
        body = "".join(art.splitlines()[:-1])
        assert DEFAULT_RAMP[0] in body and DEFAULT_RAMP[-1] in body

    def test_explicit_range(self):
        art = render_field(np.full((2, 2), 0.5), vmin=0.0, vmax=1.0, width=4, height=2)
        body = "".join(art.splitlines()[:-1])
        mid = DEFAULT_RAMP[len(DEFAULT_RAMP) // 2]
        assert set(body) <= set(DEFAULT_RAMP)
        assert body[0] in DEFAULT_RAMP[3:7]
        del mid

    def test_legend_shows_bounds(self):
        art = render_field(np.array([[1.0, 5.0]]))
        assert "1" in art.splitlines()[-1]
        assert "5" in art.splitlines()[-1]

    def test_custom_ramp(self):
        art = render_field(np.array([[0.0, 1.0]]), ramp="ab", width=2, height=1)
        assert art.splitlines()[0] == "ab"

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_field(np.zeros(5))
        with pytest.raises(ValueError):
            render_field(np.zeros((2, 2, 2)))

    def test_downsamples_large_fields(self):
        art = render_field(np.random.default_rng(0).normal(size=(500, 700)))
        lines = art.splitlines()
        assert len(lines[0]) == 72
