"""The paper's central methodological claim, as an executable property.

"For deterministic programs this sequential execution gives the same
results as parallel execution" (§1.2) — every archetype application must
produce identical results under the deterministic run-to-block scheduler
(the paper's sequentially-executable version) and the free-running
threaded scheduler, and identical results at any process count.
"""

import numpy as np
import pytest

from repro.apps.cfd import cfd_archetype
from repro.apps.fdtd import fdtd_archetype
from repro.apps.fft2d import fft2d_archetype
from repro.apps.hull import one_deep_hull
from repro.apps.nearest import one_deep_closest_pair
from repro.apps.poisson import poisson_archetype
from repro.apps.skyline import concat_region_skylines, one_deep_skyline
from repro.apps.smog import smog_archetype
from repro.apps.sorting import (
    one_deep_mergesort,
    one_deep_quicksort,
    traditional_mergesort,
)
from repro.apps.spectralflow import spectralflow_archetype
from repro.machines.catalog import IBM_SP


def _both_modes(arch, p, *args, **kwargs):
    seq = arch.run(p, *args, mode="sequential", **kwargs)
    thr = arch.run(p, *args, mode="threads", **kwargs)
    assert seq.times == thr.times, "virtual clocks diverged between modes"
    return seq, thr


class TestSequentialEqualsParallel:
    def test_mergesort(self, rng):
        data = rng.integers(0, 10**6, size=3000)
        seq, thr = _both_modes(one_deep_mergesort(), 6, data)
        for a, b in zip(seq.values, thr.values):
            assert np.array_equal(a, b)

    def test_quicksort(self, rng):
        data = rng.normal(size=2500)
        seq, thr = _both_modes(one_deep_quicksort(), 5, data)
        for a, b in zip(seq.values, thr.values):
            assert np.array_equal(a, b)

    def test_traditional_mergesort(self, rng):
        data = rng.integers(0, 1000, size=512)
        seq, thr = _both_modes(traditional_mergesort(), 7, data)
        assert np.array_equal(seq.values[0], thr.values[0])

    def test_skyline(self, rng):
        n = 150
        left = rng.uniform(0, 80, n)
        blds = np.column_stack([left, rng.uniform(1, 30, n), left + rng.uniform(1, 10, n)])
        seq, thr = _both_modes(one_deep_skyline(), 4, blds)
        assert np.allclose(
            concat_region_skylines(seq.values), concat_region_skylines(thr.values)
        )

    def test_hull(self, rng):
        pts = rng.normal(size=(400, 2))
        seq, thr = _both_modes(one_deep_hull(), 4, pts)
        assert np.array_equal(seq.values[0], thr.values[0])

    def test_closest_pair(self, rng):
        pts = rng.uniform(0, 10, size=(300, 2))
        seq, thr = _both_modes(one_deep_closest_pair(), 4, pts)
        assert seq.values == thr.values

    def test_fft2d(self, rng):
        arr = rng.normal(size=(16, 16)).astype(complex)
        seq, thr = _both_modes(fft2d_archetype(), 4, arr, 1)
        assert np.array_equal(seq.values[0], thr.values[0])

    def test_poisson(self):
        seq, thr = _both_modes(poisson_archetype(), 4, 16, 16, tolerance=1e-4)
        assert np.array_equal(seq.values[0].solution, thr.values[0].solution)
        assert seq.values[0].iterations == thr.values[0].iterations

    def test_cfd(self):
        seq, thr = _both_modes(cfd_archetype(), 4, 20, 16, 6, ic="shock")
        assert np.array_equal(seq.values[0].density, thr.values[0].density)

    def test_fdtd(self):
        seq, thr = _both_modes(fdtd_archetype(), 4, 10, 10, 8, steps=4)
        assert np.array_equal(seq.values[0].ez, thr.values[0].ez)
        assert seq.values[0].energy == thr.values[0].energy

    def test_spectralflow(self):
        seq, thr = _both_modes(spectralflow_archetype(), 4, 16, 16, steps=2, dt=1e-3)
        assert np.array_equal(seq.values[0].swirl, thr.values[0].swirl)

    def test_smog(self):
        seq, thr = _both_modes(smog_archetype(), 4, 16, 16, steps=4)
        assert np.array_equal(seq.values[0].ozone, thr.values[0].ozone)


class TestProcessCountInvariance:
    """Deterministic archetype programs give the same answer at any P."""

    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_poisson_any_p(self, p):
        ref = poisson_archetype().run(1, 14, 14, tolerance=1e-4).values[0]
        res = poisson_archetype().run(p, 14, 14, tolerance=1e-4).values[0]
        assert np.array_equal(res.solution, ref.solution)

    @pytest.mark.parametrize("p", [2, 4, 6])
    def test_sorting_any_p(self, p, rng):
        data = rng.integers(0, 10**4, size=1200)
        expected = np.sort(data)
        for arch in (one_deep_mergesort(), one_deep_quicksort()):
            res = arch.run(p, data)
            assert np.array_equal(np.concatenate(res.values), expected)


class TestVirtualTimesBackendInvariant:
    """The cost model depends only on the program, not the host schedule."""

    def test_fft2d_times(self, rng):
        arr = rng.normal(size=(16, 16)).astype(complex)
        seq = fft2d_archetype().run(4, arr, 1, mode="sequential", machine=IBM_SP)
        thr = fft2d_archetype().run(4, arr, 1, mode="threads", machine=IBM_SP)
        assert seq.times == thr.times
        assert seq.elapsed > 0
