"""The archetype execution contract, as reusable checks.

Every archetype in the library makes the same promises, inherited from
the virtual-clock runtime (ROADMAP "uniform correctness contracts"):

1. **Digest determinism** — two identical runs produce bitwise-identical
   (clocks, values) digests.
2. **Fuzzed-schedule identity** — the digest is invariant under seeded
   schedule fuzzing (race freedom).
3. **Clock canonicality** — final virtual clocks are a pure function of
   the program, not the schedule or engine.
4. **Critical path == makespan** — the traced dependency graph's longest
   path equals the slowest rank's clock (no phantom dependencies, no
   missed ones).
5. **Trace schema validity** — the Chrome-trace export is well-formed.
6. **Backend identity** — threads and process-parallel engines reproduce
   the deterministic engine's digest bitwise.

``tests/test_archetype_contract.py`` applies these checks to every
program in :mod:`repro.verify.conformance` × every registered backend;
new archetypes get the whole battery by registering one program there.
The checks are plain functions so other suites (or a REPL) can call them
against any conformance program.
"""

from __future__ import annotations

from repro.obs.chrome import chrome_trace, validate_chrome_trace
from repro.obs.critical import critical_path, trace_makespan
from repro.runtime.spmd import RunResult
from repro.verify import fuzzed_schedule
from repro.verify.conformance import PROGRAMS
from repro.verify.digest import value_digest

#: every registered backend, in contract-suite order
BACKENDS = ("deterministic", "fuzzed", "threads", "parallel")

#: seeds for the fuzzed-schedule identity check (the ISSUE's 8-seed bar)
FUZZ_SEEDS = tuple(range(8))


def run_program(
    name: str, backend: str = "deterministic", seed: int = 0, trace: bool = False
) -> RunResult:
    """Run conformance program *name* on *backend* (seeded when fuzzed)."""
    program = PROGRAMS[name]
    if backend == "fuzzed":
        with fuzzed_schedule(seed):
            return program.runner(mode="sequential", trace=trace)
    mode = {"deterministic": "sequential"}.get(backend, backend)
    return program.runner(mode=mode, trace=trace)


def digest_of(result: RunResult) -> str:
    """The digest the contract compares: final clocks and per-rank values."""
    return value_digest([result.times, result.values])


def check_digest_determinism(name: str) -> None:
    """Contract 1: identical runs, identical digests."""
    first = digest_of(run_program(name))
    second = digest_of(run_program(name))
    assert first == second, f"{name}: deterministic reruns diverge"


def check_fuzzed_digest_identity(name: str, seeds=FUZZ_SEEDS) -> None:
    """Contract 2: schedule fuzzing never changes the digest."""
    reference = digest_of(run_program(name))
    for seed in seeds:
        fuzzed = digest_of(run_program(name, backend="fuzzed", seed=seed))
        assert fuzzed == reference, (
            f"{name}: digest diverged under fuzzed schedule seed {seed}"
        )


def check_clock_canonicality(name: str) -> None:
    """Contract 3: virtual clocks are schedule- and engine-independent.

    Compares exact floats (not digests) so a divergence names the rank.
    """
    reference = run_program(name).times
    assert any(t > 0.0 for t in reference), (
        f"{name}: all-zero clocks — the program must run on a modelled "
        "machine for clock checks to be meaningful"
    )
    for seed in FUZZ_SEEDS[:4]:
        times = run_program(name, backend="fuzzed", seed=seed).times
        assert times == reference, (
            f"{name}: clocks not canonical under fuzz seed {seed}: "
            f"{times} != {reference}"
        )
    for backend in ("threads", "parallel"):
        times = run_program(name, backend=backend).times
        assert times == reference, (
            f"{name}: clocks not canonical on {backend}: {times} != {reference}"
        )


def check_critical_path_equals_makespan(name: str) -> None:
    """Contract 4: the traced longest path accounts for the makespan."""
    result = run_program(name, trace=True)
    report = critical_path(result.tracer)
    makespan = trace_makespan(result.tracer)
    assert abs(report.length - makespan) < 1e-12, (
        f"{name}: critical path {report.length} != makespan {makespan}"
    )


def check_trace_schema(name: str) -> None:
    """Contract 5: the Chrome-trace export validates."""
    result = run_program(name, trace=True)
    errors = validate_chrome_trace(chrome_trace(result.tracer))
    assert not errors, f"{name}: invalid chrome trace: {errors}"


def check_backend_identity(name: str, backend: str) -> None:
    """Contract 6: *backend* reproduces the deterministic digest bitwise."""
    reference = digest_of(run_program(name))
    other = digest_of(run_program(name, backend=backend))
    assert other == reference, f"{name}: {backend} digest diverges from deterministic"


#: contract name -> single-program check (backend identity is separate:
#: it is parameterized over backends as well)
CHECKS = {
    "digest-determinism": check_digest_determinism,
    "fuzzed-digest-identity": check_fuzzed_digest_identity,
    "clock-canonicality": check_clock_canonicality,
    "critical-path-makespan": check_critical_path_equals_makespan,
    "trace-schema": check_trace_schema,
}

__all__ = [
    "BACKENDS",
    "CHECKS",
    "FUZZ_SEEDS",
    "PROGRAMS",
    "check_backend_identity",
    "check_clock_canonicality",
    "check_critical_path_equals_makespan",
    "check_digest_determinism",
    "check_fuzzed_digest_identity",
    "check_trace_schema",
    "digest_of",
    "run_program",
]
