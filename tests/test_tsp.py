"""Travelling salesman on the branch-and-bound archetype."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.apps.tsp import (
    brute_force_tour,
    random_cities,
    tour_cost,
    tsp_bnb,
    tsp_problem,
    validate_distances,
)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ReproError):
            validate_distances(np.zeros((2, 3)))

    def test_rejects_tiny(self):
        with pytest.raises(ReproError):
            validate_distances(np.zeros((1, 1)))

    def test_rejects_negative(self):
        d = np.ones((3, 3))
        d[0, 1] = -1
        with pytest.raises(ReproError):
            validate_distances(d)

    def test_tour_cost_closes_loop(self):
        d = np.array([[0.0, 1, 9], [9, 0, 2], [3, 9, 0]])
        assert tour_cost(d, (0, 1, 2)) == 1 + 2 + 3


class TestBound:
    def test_bound_admissible_at_root(self):
        d = random_cities(7, seed=3)
        problem = tsp_problem(d)
        exact, _ = brute_force_tour(d)
        assert problem.bound(problem.root()) <= exact + 1e-12

    def test_bound_exact_on_complete_tour(self):
        d = random_cities(5, seed=1)
        problem = tsp_problem(d)
        exact, path = brute_force_tour(d)
        node = (exact, path)
        assert problem.bound(node) == pytest.approx(exact)


class TestSolver:
    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_matches_brute_force(self, p):
        d = random_cities(8, seed=7)
        exact, _ = brute_force_tour(d)
        res = tsp_bnb(d).run(p)
        assert res.values[0].value == pytest.approx(exact)

    def test_tour_is_valid(self):
        d = random_cities(8, seed=11)
        res = tsp_bnb(d).run(3)
        tour = res.values[0].solution[1]
        assert tour[0] == tour[-1] == 0
        assert sorted(tour[:-1]) == list(range(8))
        assert tour_cost(d, tour[:-1]) == pytest.approx(res.values[0].value)

    @given(n=st.integers(3, 7), seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_property_matches_brute_force(self, n, seed):
        d = random_cities(n, seed=seed)
        exact, _ = brute_force_tour(d)
        res = tsp_bnb(d, chunk=8).run(3)
        assert res.values[0].value == pytest.approx(exact)

    def test_asymmetric_distances(self):
        d = np.array(
            [[0.0, 1, 10, 10], [10, 0, 1, 10], [10, 10, 0, 1], [1, 10, 10, 0]]
        )
        res = tsp_bnb(d).run(2)
        assert res.values[0].value == pytest.approx(4.0)
        assert res.values[0].solution[1] == (0, 1, 2, 3, 0)

    def test_two_cities(self):
        d = np.array([[0.0, 2.0], [3.0, 0.0]])
        res = tsp_bnb(d).run(1)
        assert res.values[0].value == pytest.approx(5.0)

    def test_result_identical_on_all_ranks(self):
        d = random_cities(7, seed=2)
        res = tsp_bnb(d).run(5)
        assert len({v.value for v in res.values}) == 1

    def test_modes_agree_on_optimum(self):
        d = random_cities(8, seed=5)
        seq = tsp_bnb(d).run(4, mode="sequential")
        thr = tsp_bnb(d).run(4, mode="threads")
        assert seq.values[0].value == pytest.approx(thr.values[0].value)
