"""Benchmark harness, reporting, and small-scale figure experiments."""

import numpy as np
import pytest

from repro.bench.harness import SpeedupCurve, SpeedupPoint, measure_speedups, perfect_curve
from repro.bench.report import format_curves, render_ascii_plot
from repro.errors import ReproError


def _curve(label, pairs):
    return SpeedupCurve(
        label=label,
        points=[SpeedupPoint(procs=p, t_seq=s, t_par=1.0) for p, s in pairs],
    )


class TestSpeedupPoint:
    def test_speedup_and_efficiency(self):
        pt = SpeedupPoint(procs=4, t_seq=8.0, t_par=2.0)
        assert pt.speedup == 4.0
        assert pt.efficiency == 1.0

    def test_zero_parallel_time(self):
        with pytest.raises(ReproError):
            SpeedupPoint(procs=1, t_seq=1.0, t_par=0.0).speedup


class TestSpeedupCurve:
    def test_accessors(self):
        c = _curve("x", [(1, 1.0), (2, 1.9), (4, 3.5)])
        assert c.procs == [1, 2, 4]
        assert c.speedups == [1.0, 1.9, 3.5]
        assert c.at(2).speedup == 1.9
        assert c.peak().procs == 4

    def test_missing_point(self):
        with pytest.raises(ReproError):
            _curve("x", [(1, 1.0)]).at(8)

    def test_monotonic(self):
        assert _curve("up", [(1, 1.0), (2, 2.0)]).is_monotonic()
        assert not _curve("dip", [(1, 1.0), (2, 2.0), (4, 1.5)]).is_monotonic()

    def test_perfect_curve(self):
        c = perfect_curve([1, 2, 4])
        assert c.speedups == [1.0, 2.0, 4.0]


class TestMeasureSpeedups:
    def test_measures_archetype(self):
        from repro.apps.sorting import one_deep_mergesort, sequential_sort_time
        from repro.machines.catalog import INTEL_DELTA

        rng = np.random.default_rng(0)
        data = rng.integers(0, 10**6, size=4000)
        arch = one_deep_mergesort()
        curve = measure_speedups(
            "test",
            lambda p: arch.run(p, data, machine=INTEL_DELTA),
            [1, 2, 4],
            sequential_sort_time(data.size, INTEL_DELTA),
        )
        assert len(curve.points) == 3
        assert curve.at(4).speedup > curve.at(1).speedup

    def test_callable_baseline(self):
        calls = []

        def run(p):
            from repro import spmd_run

            return spmd_run(p, lambda comm: comm.charge(1e6))

        curve = measure_speedups("x", run, [1], lambda: calls.append(1) or 2e6)
        assert calls == [1]
        assert curve.at(1).t_seq == 2e6

    def test_rejects_bad_baseline(self):
        with pytest.raises(ReproError):
            measure_speedups("x", lambda p: None, [1], 0.0)


class TestReporting:
    def test_format_curves_table(self):
        a = _curve("alpha", [(1, 1.0), (2, 1.8)])
        b = _curve("beta", [(1, 0.9), (4, 2.0)])
        out = format_curves("My Figure", [a, b])
        assert "My Figure" in out
        assert "alpha" in out and "beta" in out
        assert "1.80" in out
        assert out.count("\n") >= 5
        # P=4 missing from curve alpha -> dash
        assert "-" in out.splitlines()[-1]

    def test_ascii_plot(self):
        c = _curve("line", [(1, 1.0), (8, 6.0)])
        art = render_ascii_plot([c, perfect_curve([1, 8])])
        assert "processors" in art
        assert "line" in art and "perfect" in art


class TestFigureExperimentsSmall:
    """Tiny-size versions of the paper's figures: shape claims only."""

    def test_fig06_one_deep_beats_traditional(self):
        from repro.bench.figures import figure06_mergesort

        onedeep, trad = figure06_mergesort(n=1 << 14, procs=(1, 4, 16))
        assert onedeep.at(16).speedup > 2 * trad.at(16).speedup
        assert onedeep.at(16).speedup > onedeep.at(4).speedup
        assert trad.at(16).speedup < 5

    def test_fig12_fft_comm_bound(self):
        from repro.bench.figures import figure12_fft2d

        (curve,) = figure12_fft2d(shape=(64, 64), repeats=2, procs=(1, 4, 16))
        # "disappointing" speedup: far from perfect at 16 ranks
        assert curve.at(16).speedup < 8
        assert curve.at(16).efficiency < 0.5

    def test_fig15_poisson_scales(self):
        from repro.bench.figures import figure15_poisson

        (curve,) = figure15_poisson(nx=128, ny=128, iters=5, procs=(1, 4, 16))
        assert curve.at(4).speedup > 2.5
        assert curve.at(16).speedup > curve.at(4).speedup

    def test_fig16_cfd_efficient(self):
        from repro.bench.figures import figure16_cfd

        (curve,) = figure16_cfd(nx=128, ny=128, steps=2, procs=(1, 4, 16))
        assert curve.at(16).efficiency > 0.7

    def test_fig17_fdtd_peaks(self):
        from repro.bench.figures import figure17_fdtd

        (curve,) = figure17_fdtd(n=16, steps=2, procs=(1, 8, 16, 18))
        # Beyond the peak, adding processors hurts (the paper's claim).
        assert curve.at(18).speedup < curve.peak().speedup

    def test_fig18_superlinear_base(self):
        from repro.bench.figures import figure18_spectral

        (curve,) = figure18_spectral(
            nr=128, nz=256, steps=1, procs=(5, 10, 20), base_procs=5
        )
        # Better than ideal at small P (paging at the base count)...
        assert curve.at(10).speedup > 10 / 5
        # ...but no longer at the largest configuration.
        assert curve.at(20).speedup < 20 / 5


class TestBenchArtifact:
    """Machine-readable results from `python -m repro.bench all`."""

    def test_all_writes_schema_complete_artifact(self, tmp_path, capsys):
        import json

        from repro.bench.__main__ import FIGURE_MACHINES, FIGURES, main

        out = tmp_path / "BENCH_PR9.json"
        assert main(["all", "--json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["artifact"] == "BENCH_PR9"
        assert set(data["figures"]) == set(FIGURES) | {"fig_overlap", "fig_pipeline"}
        for name, entry in data["figures"].items():
            if name in ("fig_overlap", "fig_pipeline"):
                continue
            assert entry["machine"] == FIGURE_MACHINES[name]
            assert entry["description"]
            assert entry["curves"], name
            for curve in entry["curves"]:
                assert curve["label"]
                for point in curve["points"]:
                    assert point["procs"] >= 1
                    assert point["t_par"] > 0.0
                    assert point["speedup"] == pytest.approx(
                        point["t_seq"] / point["t_par"]
                    )
        # The overlap ablation must show a measurable win on at least two
        # machine models for every mesh app (the PR's acceptance gate).
        rows = data["figures"]["fig_overlap"]["rows"]
        machines = {r["machine"] for r in rows}
        assert len(machines) >= 2
        for machine in machines:
            for row in (r for r in rows if r["machine"] == machine):
                assert row["overlapped"] < row["blocking"], row
        # The pipeline farm-width sweep: both machines, a throughput win
        # from widening the farm past one worker, flat-ish latency.
        prows = data["figures"]["fig_pipeline"]["rows"]
        pmachines = {r["machine"] for r in prows}
        assert len(pmachines) >= 2
        for machine in pmachines:
            series = [r for r in prows if r["machine"] == machine]
            widths = [r["width"] for r in series]
            assert widths == sorted(widths) and widths[0] == 1
            best = max(r["throughput"] for r in series)
            assert best > series[0]["throughput"], series
            for row in series:
                assert row["latency"] > 0.0 and row["makespan"] > 0.0
        # Both host-time ablations ride along, digest-identical rows only.
        assert {r["app"] for r in data["wallclock"]["rows"]} == {
            "poisson",
            "fft2d",
            "mergesort",
        }
        for row in data["parallel"]["rows"]:
            assert row["identical"] is True, row
            assert row["host_cpus"] >= 1
        # The kernel-fusion ablation: digest-identical rows, and the
        # counters prove hoisting/packing actually engaged somewhere.
        krows = data["kernels"]["rows"]
        assert {r["app"] for r in krows} == {"poisson", "smog", "spectralflow"}
        for row in krows:
            assert row["identical"] is True, row
        assert any(r["counters"].get("exchanges_hoisted", 0) > 0 for r in krows)
        assert any(r["counters"].get("dats_packed", 0) > 0 for r in krows)
        # The autotuning ablation: tuned never worse than default, every
        # second search a catalog hit, and a genuine strict win somewhere.
        trows = data["tune"]["rows"]
        assert len({r["machine"] for r in trows}) >= 2
        for row in trows:
            assert row["tuned_measured_seconds"] <= row["default_measured_seconds"]
            assert row["cache_hit"] is True, row
        assert any(
            r["tuned_measured_seconds"] < r["default_measured_seconds"] for r in trows
        )

    def test_default_artifact_name(self):
        from repro.bench.__main__ import ARTIFACT

        assert ARTIFACT == "BENCH_PR9.json"
