"""Airshed smog model (paper §4.5.4)."""

import numpy as np
import pytest

from repro.apps.smog import (
    emission_field,
    photolysis_rate,
    sea_breeze_wind,
    sequential_smog_time,
    smog_archetype,
)
from repro.machines.catalog import IBM_SP


class TestForcing:
    def test_photolysis_diurnal_cycle(self):
        assert photolysis_rate(0.0) == 0.0  # midnight
        assert photolysis_rate(0.5) == pytest.approx(0.3)  # midday peak
        assert 0 < photolysis_rate(0.35) < photolysis_rate(0.5)  # morning
        assert photolysis_rate(0.9) == 0.0  # night
        assert photolysis_rate(1.5) == photolysis_rate(0.5)  # wraps daily

    def test_emissions_localised(self):
        ii, jj = np.ix_(np.arange(40), np.arange(40))
        e = emission_field(ii, jj, 40, 40)
        assert e.max() > 1.0
        assert e[0, 0] < 0.01

    def test_wind_field_bounded(self):
        ii, jj = np.ix_(np.arange(20), np.arange(20))
        for t in (0.0, 0.3, 0.7):
            u, v = sea_breeze_wind(ii, jj, 20, 20, t)
            assert np.all(np.abs(u) < 2.0) and np.all(np.abs(v) < 2.0)


class TestModel:
    @pytest.mark.parametrize("p", [1, 2, 4, 5])
    def test_p_invariance(self, p):
        ref = smog_archetype().run(1, 20, 16, steps=8).values[0]
        res = smog_archetype().run(p, 20, 16, steps=8).values[0]
        assert res.peak_ozone == pytest.approx(ref.peak_ozone, abs=1e-13)
        assert np.allclose(res.ozone, ref.ozone, atol=1e-13)
        assert res.total_ozone == pytest.approx(ref.total_ozone, rel=1e-10)

    def test_concentrations_nonnegative(self):
        res = smog_archetype().run(
            4, 24, 24, steps=30, gather_all_species=True
        ).values[0]
        for field in res.fields.values():
            assert np.all(field >= 0)

    def test_nox_conservation_in_chemistry(self):
        """NO + NO2 is conserved by the photochemical cycle; only
        emissions add NOx."""
        res0 = smog_archetype().run(
            2, 16, 16, steps=0, gather_all_species=True
        ).values[0]
        res = smog_archetype().run(
            2, 16, 16, steps=5, dt=1e-3, gather_all_species=True
        ).values[0]
        nox0 = res0.fields["no"].sum() + res0.fields["no2"].sum()
        nox = res.fields["no"].sum() + res.fields["no2"].sum()
        ii, jj = np.ix_(np.arange(16), np.arange(16))
        emitted = 5 * 1e-3 * emission_field(ii, jj, 16, 16).sum()
        # Transport uses open boundaries, so a little mass can leave, but
        # NOx never exceeds initial + emitted.
        assert nox <= nox0 + emitted + 1e-9

    def test_ozone_titrated_near_sources(self):
        """Fresh NO near the emission hot spots consumes ozone locally
        (nighttime chemistry: the run starts at t=0, j=0)."""
        res = smog_archetype().run(2, 30, 30, steps=20).values[0]
        o3 = res.ozone
        # city 1 sits at (0.3, 0.4) in unit coordinates
        city = o3[9, 12]
        far = o3[29, 0]
        assert city < far

    def test_peak_tracks_maximum(self):
        res = smog_archetype().run(2, 16, 16, steps=10).values[0]
        assert res.peak_ozone >= float(res.ozone.max()) - 1e-12

    def test_gather_flags(self):
        res = smog_archetype().run(2, 12, 12, steps=2, gather=False).values[0]
        assert res.ozone is None and res.fields is None


class TestPerformance:
    def test_sequential_time_model(self):
        assert sequential_smog_time(64, 64, 10, IBM_SP) > 0
