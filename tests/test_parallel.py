"""Process-parallel backend: digest identity, shm lifecycle, obs round-trip.

The correctness bar for ``backend="parallel"`` is bitwise equality with
the deterministic backend — per-rank values *and* final virtual clocks —
on every shipped app, plus a hard no-leak guarantee for the
shared-memory payload segments on every exit path (normal, crashing,
deadlocked).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import spmd_run
from repro.errors import DeadlockError, RankFailedError
from repro.machines.catalog import get_machine
from repro.obs.metrics import scoped_registry
from repro.verify.digest import value_digest

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="parallel backend tests need a POSIX shared-memory filesystem",
)


def _segments() -> list[str]:
    """This run's shared-memory segments currently present on the host."""
    return [f for f in os.listdir("/dev/shm") if f.startswith("repro-")]


def _ring_body(comm, n):
    data = np.full(n, float(comm.rank))
    comm.send((comm.rank + 1) % comm.size, data, tag=7)
    got = comm.recv(source=(comm.rank - 1) % comm.size, tag=7)
    return float(got.sum())


def _crash_body(comm):
    if comm.rank == 1:
        raise ValueError("injected failure")
    comm.send((comm.rank + 1) % comm.size, np.zeros(100_000), tag=1)
    comm.recv(tag=1)
    return comm.rank


def _deadlock_body(comm):
    comm.send((comm.rank + 1) % comm.size, np.ones(90_000), tag=3)
    comm.recv(source=(comm.rank - 1) % comm.size, tag=99)  # never sent
    return comm.rank


def _exchange_body(comm):
    peer = comm.size - 1 - comm.rank
    if comm.rank < peer:
        comm.send(peer, np.arange(50_000, dtype=np.float64), tag=1)
        return float(comm.recv(source=peer, tag=2).sum())
    if comm.rank > peer:
        got = comm.recv(source=peer, tag=1)
        comm.send(peer, got * 2.0, tag=2)
        return -1.0
    return 0.0


def _frozen_probe_body(comm):
    if comm.rank == 0:
        comm.send(1, np.arange(20_000, dtype=np.float64), tag=4)
        comm.send(1, np.arange(4, dtype=np.float64), tag=5)
        return None
    if comm.rank == 1:
        big = comm.recv(source=0, tag=4)
        small = comm.recv(source=0, tag=5)
        return (big.flags.writeable, small.flags.writeable, float(big[1]))
    return None


def _digest(result) -> str:
    return value_digest([result.times, result.values])


class TestDigestIdentity:
    """Per-rank values and clocks bitwise-equal to the reference backend."""

    def test_ring_identity(self):
        machine = get_machine("ibm-sp")
        ser = spmd_run(4, _ring_body, args=(5000,), machine=machine)
        par = spmd_run(4, _ring_body, args=(5000,), machine=machine, backend="parallel")
        assert par.values == ser.values
        assert par.times == ser.times
        assert par.backend == "parallel"

    @pytest.mark.parametrize("app", ["poisson", "fft2d", "mergesort"])
    @pytest.mark.parametrize("backend", ["threads", "parallel"])
    def test_app_matrix(self, app, backend, monkeypatch):
        """The cross-backend matrix: deterministic × threads × parallel."""
        from repro.bench.wallclock import WORKLOADS

        runner, _ = WORKLOADS[app]
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        reference = _digest(runner(4, 1))
        monkeypatch.setenv("REPRO_BACKEND", backend)
        assert _digest(runner(4, 1)) == reference

    def test_cross_backend_report(self):
        from repro.verify.crossbackend import cross_backend_matrix

        report = cross_backend_matrix(programs=["mergesort"])
        assert report.ok, report.summary()
        assert {c.backend for c in report.cells} == {
            "deterministic",
            "threads",
            "parallel",
        }


class TestSegmentLifecycle:
    """No /dev/shm leaks: normal exit, crash, and deadlock paths."""

    def test_normal_exit_leaves_no_segments(self):
        spmd_run(4, _ring_body, args=(50_000,), backend="parallel")
        assert _segments() == []

    def test_crash_leaves_no_segments(self):
        with pytest.raises(RankFailedError) as info:
            spmd_run(4, _crash_body, backend="parallel")
        assert info.value.rank == 1
        assert _segments() == []

    def test_deadlock_leaves_no_segments(self):
        with pytest.raises(DeadlockError) as info:
            spmd_run(4, _deadlock_body, backend="parallel", deadlock_timeout=2.0)
        # the heartbeat detector names every blocked rank and its wait
        assert set(info.value.waiting) == {0, 1, 2, 3}
        assert all("recv" in d for d in info.value.waiting.values())
        assert _segments() == []

    def test_received_arrays_are_frozen(self):
        """The COW contract holds across processes: payloads arrive
        read-only whether they travelled via a segment or via pickle."""
        res = spmd_run(2, _frozen_probe_body, backend="parallel")
        big_writeable, small_writeable, sample = res.values[1]
        assert big_writeable is False
        assert small_writeable is False
        assert sample == 1.0

    def test_threshold_routes_transport(self, monkeypatch):
        """REPRO_SHM_THRESHOLD switches arrays between segment and pickle."""
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "1000000000")
        with scoped_registry() as registry:
            spmd_run(4, _ring_body, args=(50_000,), backend="parallel")
            snap = registry.snapshot()
        assert "runtime.parallel.shm_segments" not in snap
        assert snap["runtime.parallel.pickled_payloads"]["value"] == 4
        assert _segments() == []

        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "1024")
        with scoped_registry() as registry:
            spmd_run(4, _ring_body, args=(50_000,), backend="parallel")
            snap = registry.snapshot()
        assert snap["runtime.parallel.shm_segments"]["value"] == 4
        assert _segments() == []


class TestObservabilityRoundTrip:
    """Worker traces and metrics merge into the parent at join."""

    def test_trace_merge_and_critical_path(self):
        from repro.obs.critical import critical_path

        res = spmd_run(4, _exchange_body, backend="parallel", trace=True)
        assert res.tracer is not None
        assert all(res.tracer.events_for(rank) for rank in range(4))
        report = critical_path(res.tracer)
        assert report.length == pytest.approx(max(res.times), abs=1e-12)

    def test_trace_identical_to_deterministic(self):
        ser = spmd_run(4, _exchange_body, trace=True)
        par = spmd_run(4, _exchange_body, backend="parallel", trace=True)
        assert par.tracer.all_events() == ser.tracer.all_events()

    def test_chrome_export_accepts_merged_trace(self, tmp_path):
        from repro.obs.chrome import export_chrome_trace

        res = spmd_run(4, _exchange_body, backend="parallel", trace=True)
        out = tmp_path / "trace.json"
        export_chrome_trace(res.tracer, out)
        assert out.exists()

    def test_metrics_merge(self):
        with scoped_registry() as registry:
            spmd_run(4, _ring_body, args=(50_000,), backend="parallel")
            snap = registry.snapshot()
        # runtime instrumentation recorded inside the workers is visible
        assert snap["runtime.mailbox.enqueued"]["value"] >= 4
        assert snap["runtime.parallel.shm_segments"]["value"] == 4


class TestFailureDetection:
    def test_rank_exception_carries_remote_traceback(self):
        with pytest.raises(RankFailedError) as info:
            spmd_run(4, _crash_body, backend="parallel")
        assert isinstance(info.value.original, ValueError)
        assert "injected failure" in str(info.value)
        assert "ValueError" in getattr(info.value, "remote_traceback", "")

    def test_hard_crash_is_not_a_hang(self):
        with pytest.raises(RankFailedError) as info:
            spmd_run(3, _hard_exit_body, backend="parallel")
        assert "exit code 17" in str(info.value)
        assert _segments() == []


def _hard_exit_body(comm):
    if comm.rank == 1:
        os._exit(17)
    comm.recv(source=1, tag=5)
    return comm.rank


class TestStartMethods:
    @pytest.mark.parametrize("method", ["forkserver", "spawn"])
    def test_strict_start_methods(self, method, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_START", method)
        ser = spmd_run(2, _ring_body, args=(2000,))
        par = spmd_run(2, _ring_body, args=(2000,), backend="parallel")
        assert par.values == ser.values
        assert par.times == ser.times
        assert _segments() == []
