"""The job server: protocol, cache, admission, worker pool, HTTP E2E.

The serving claim under test: for deterministic archetype runs, a
request's canonical form *is* its result — so a cache hit may be served
without re-execution, and a sampled re-execution must reproduce the
cached digest bitwise.  The failure-handling claim: a worker killed
mid-job costs latency, never correctness (requeue, bounded retries, same
digest).
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.apps import registry
from repro.apps.registry import AppSpec
from repro.obs.metrics import get_registry, scoped_registry
from repro.serve.cache import ResultCache
from repro.serve.executor import execute
from repro.serve.pool import WorkerPool, fork_available
from repro.serve.protocol import JobRequest, ServeError
from repro.serve.scheduler import AdmissionQueue, Job
from repro.serve.server import ServeServer
from repro.verify import fuzzed_schedule
from repro.verify.digest import value_digest
from tests.conftest import wait_until

pytestmark = pytest.mark.skipif(
    not fork_available(),
    reason="serve tests exercise forked worker processes",
)


def _direct_digest(app: str, params: dict, machine: str, seed: int = 0, fuzzed=False):
    """The digest the server must reproduce: a direct in-process run."""
    spec = registry.get(app)
    if fuzzed:
        with fuzzed_schedule(seed):
            result = spec.run(params, machine=machine, mode="sequential")
    else:
        result = spec.run(params, machine=machine, mode="sequential")
    return value_digest([result.times, result.values])


# -- a gate-controlled app for crash/timeout/batching tests -----------------
def _sleeper_runner(params, *, machine, mode, trace):
    deadline = time.monotonic() + params["max_wait"]
    while params["gate"] and os.path.exists(params["gate"]):
        if time.monotonic() > deadline:  # pragma: no cover - safety net
            break
        time.sleep(0.02)
    return registry.get("mergesort").runner(
        {"nprocs": 2, "n": params["n"], "seed": params["seed"]},
        machine=machine,
        mode=mode,
        trace=trace,
    )


# Registered at import time so forked pool workers inherit it.
registry.register(
    AppSpec(
        name="serve-test-sleeper",
        archetype="test",
        description="blocks while its gate file exists, then sorts",
        runner=_sleeper_runner,
        defaults={"gate": "", "n": 256, "seed": 0, "max_wait": 30.0},
    )
)


def _counter(name: str) -> float:
    instrument = get_registry().get(name)
    return instrument.value if instrument is not None else 0.0


def _http(url: str, method: str = "GET", body: dict | None = None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def _wait_done(url: str, job_id: str, timeout: float = 20.0) -> dict:
    last = {}

    def finished():
        nonlocal last
        _, last = _http(f"{url}/v1/jobs/{job_id}")
        return last["state"] in ("done", "failed")

    wait_until(finished, timeout=timeout, desc=f"{job_id} finishing")
    return last


@pytest.fixture
def server(tmp_path):
    with scoped_registry():
        with ServeServer(
            port=0,
            workers=1,
            cache_dir=tmp_path / "cache",
            batch_linger=0.0,
            heartbeat_timeout=5.0,
        ) as srv:
            yield srv


# -- protocol ---------------------------------------------------------------
class TestProtocol:
    def test_validated_merges_defaults(self):
        req = JobRequest(app="mergesort", params={"n": 128}).validated()
        assert req.params == {"nprocs": 4, "n": 128, "seed": 0}
        assert req.backend == "deterministic"

    def test_cache_key_canonicalises_defaults(self):
        implicit = JobRequest(app="mergesort").validated()
        explicit = JobRequest(
            app="mergesort", params={"nprocs": 4, "n": 4096, "seed": 0}
        ).validated()
        assert implicit.cache_key() == explicit.cache_key()

    def test_scheduling_fields_do_not_enter_the_key(self):
        base = JobRequest(app="poisson").validated()
        hurried = JobRequest(
            app="poisson", priority=9, timeout=5.0, weight=100.0
        ).validated()
        assert base.cache_key() == hurried.cache_key()

    @pytest.mark.parametrize(
        "field,value",
        [("params", {"n": 64}), ("machine", "ibm-sp"), ("seed", 1), ("backend", "fuzzed")],
    )
    def test_semantic_fields_change_the_key(self, field, value):
        base = JobRequest(app="mergesort").validated()
        varied = JobRequest(**{"app": "mergesort", field: value}).validated()
        assert base.cache_key() != varied.cache_key()

    @pytest.mark.parametrize(
        "bad",
        [
            {"app": "no-such-app"},
            {"app": "mergesort", "params": {"bogus": 1}},
            {"app": "mergesort", "params": 7},
            {"app": "mergesort", "machine": "no-such-machine"},
            {"app": "mergesort", "backend": "no-such-backend"},
            {"app": "mergesort", "timeout": -1.0},
            {"app": "mergesort", "weight": 0.0},
        ],
    )
    def test_invalid_requests_raise(self, bad):
        with pytest.raises(ServeError):
            JobRequest(**bad).validated()

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ServeError, match="unknown request field"):
            JobRequest.from_json({"app": "mergesort", "turbo": True})
        with pytest.raises(ServeError, match="missing"):
            JobRequest.from_json({})


# -- result cache -----------------------------------------------------------
class TestResultCache:
    RECORD = {"digest": "d" * 64, "times": [1.0], "elapsed": 1.0}

    def test_store_lookup_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        cache.store(key, self.RECORD, outputs=[1, 2], metrics={}, trace={"traceEvents": []})
        hit = cache.lookup(key)
        assert hit is not None
        assert hit.digest == self.RECORD["digest"]
        assert hit.record["key"] == key
        assert hit.outputs() == [1, 2]
        assert hit.trace() == {"traceEvents": []}
        assert len(cache) == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        assert ResultCache(tmp_path).lookup("ff" + "0" * 62) is None

    def test_corrupt_entry_evicts_as_miss(self, tmp_path):
        with scoped_registry():
            cache = ResultCache(tmp_path)
            key = "cd" + "0" * 62
            cache.store(key, self.RECORD, outputs=[], metrics={}, trace=None)
            entry = tmp_path / key[:2] / key
            (entry / "result.json").write_text("{not json")
            assert cache.lookup(key) is None
            assert not entry.exists()
            assert _counter("core.serve.cache.evictions") == 1
            assert len(cache) == 0

    def test_store_race_keeps_incumbent(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ee" + "0" * 62
        cache.store(key, self.RECORD, outputs=["first"], metrics={}, trace=None)
        cache.store(key, self.RECORD, outputs=["second"], metrics={}, trace=None)
        assert cache.lookup(key).outputs() == ["first"]
        assert len(cache) == 1


# -- admission queue --------------------------------------------------------
def _job(job_id: str, priority: int = 0, weight: float = 1.0) -> Job:
    request = JobRequest(app="mergesort", priority=priority, weight=weight)
    return Job(id=job_id, request=request, key=job_id)


class TestAdmissionQueue:
    def test_priority_then_fifo(self):
        q = AdmissionQueue(batch_max=1)
        for job in (_job("a"), _job("b", priority=5), _job("c"), _job("d", priority=5)):
            q.push(job)
        order = [q.pop_batch()[0].id for _ in range(4)]
        assert order == ["b", "d", "a", "c"]

    def test_small_jobs_batch_up_to_max(self):
        q = AdmissionQueue(batch_max=3)
        for i in range(5):
            q.push(_job(f"j{i}"))
        assert [j.id for j in q.pop_batch()] == ["j0", "j1", "j2"]
        assert [j.id for j in q.pop_batch()] == ["j3", "j4"]
        assert q.pop_batch() == []

    def test_big_job_dispatches_alone(self):
        q = AdmissionQueue(batch_max=4, small_weight=1.0)
        q.push(_job("big", weight=8.0))
        q.push(_job("small"))
        assert [j.id for j in q.pop_batch()] == ["big"]

    def test_big_job_stops_a_small_batch(self):
        # Grouping never reorders: the batch ends where the big job starts.
        q = AdmissionQueue(batch_max=4)
        q.push(_job("s1"))
        q.push(_job("big", weight=8.0))
        q.push(_job("s2"))
        assert [j.id for j in q.pop_batch()] == ["s1"]
        assert [j.id for j in q.pop_batch()] == ["big"]

    def test_peek_does_not_pop(self):
        q = AdmissionQueue()
        assert q.peek() is None
        q.push(_job("a"))
        assert q.peek().id == "a"
        assert len(q) == 1


# -- executor ---------------------------------------------------------------
class TestExecutor:
    def test_outcome_matches_direct_run(self):
        req = JobRequest(app="mergesort", params={"n": 256}, machine="ibm-sp").validated()
        outcome = execute(req)
        assert outcome.digest == _direct_digest("mergesort", req.params, "ibm-sp")
        assert outcome.trace is not None
        assert any(name.startswith("core.") for name in outcome.metrics)

    def test_fuzzed_backend_reproduces_deterministic_digest(self):
        # Race-free programs are schedule-independent: the fuzzed seed
        # changes the interleaving, never the observable outcome.
        det = execute(JobRequest(app="knapfarm", machine="ibm-sp").validated())
        fuzz = execute(
            JobRequest(app="knapfarm", machine="ibm-sp", backend="fuzzed", seed=5).validated()
        )
        assert det.digest == fuzz.digest


# -- the HTTP server, end to end --------------------------------------------
class TestServerE2E:
    BODY = {"app": "mergesort", "params": {"n": 256}, "machine": "ibm-sp"}

    def test_submit_poll_result_roundtrip(self, server):
        status, job = _http(f"{server.url}/v1/jobs", "POST", self.BODY)
        assert status == 200
        final = _wait_done(server.url, job["id"])
        assert final["state"] == "done"
        status, result = _http(f"{server.url}/v1/jobs/{job['id']}/result")
        assert status == 200
        assert result["record"]["digest"] == _direct_digest(
            "mergesort", {"n": 256}, "ibm-sp"
        )
        assert result["outputs"]
        status, trace = _http(f"{server.url}/v1/jobs/{job['id']}/trace")
        assert status == 200 and trace["traceEvents"]
        status, metrics = _http(f"{server.url}/v1/jobs/{job['id']}/metrics")
        assert status == 200 and "comm.requests.posted" in metrics

    def test_repeat_request_is_served_from_cache(self, server):
        _, first = _http(f"{server.url}/v1/jobs", "POST", self.BODY)
        assert _wait_done(server.url, first["id"])["state"] == "done"
        dispatched = _counter("core.serve.jobs.dispatched")

        _, second = _http(f"{server.url}/v1/jobs", "POST", self.BODY)
        # The hit completes at submit time: no polling, no dispatch.
        assert second["state"] == "done"
        assert second["cache_hit"] is True
        assert _counter("core.serve.jobs.dispatched") == dispatched
        assert _counter("core.serve.cache.hits") == 1
        assert _counter("core.serve.cache.misses") == 1

        _, a = _http(f"{server.url}/v1/jobs/{first['id']}/result")
        _, b = _http(f"{server.url}/v1/jobs/{second['id']}/result")
        assert a["record"]["digest"] == b["record"]["digest"]

    def test_equivalent_spellings_share_one_cache_entry(self, server):
        _, first = _http(f"{server.url}/v1/jobs", "POST", self.BODY)
        _wait_done(server.url, first["id"])
        spelled_out = dict(
            self.BODY, params={"n": 256, "nprocs": 4, "seed": 0}, priority=3
        )
        _, second = _http(f"{server.url}/v1/jobs", "POST", spelled_out)
        assert second["cache_hit"] is True
        assert second["key"] == first["key"]

    def test_invalid_submissions_return_400(self, server):
        for bad in (
            {"app": "no-such-app"},
            {"app": "mergesort", "params": {"bogus": 1}},
            {"app": "mergesort", "frobnicate": True},
        ):
            status, payload = _http(f"{server.url}/v1/jobs", "POST", bad)
            assert status == 400 and "error" in payload

    def test_unknown_job_views(self, server):
        status, _ = _http(f"{server.url}/v1/jobs/job-999999")
        assert status == 404
        status, _ = _http(f"{server.url}/v1/jobs/job-999999/result")
        assert status == 404

    def test_health_apps_and_metrics_endpoints(self, server):
        status, health = _http(f"{server.url}/v1/health")
        assert status == 200 and health["status"] == "ok"
        assert len(health["workers"]) == 1
        _, apps = _http(f"{server.url}/v1/apps")
        assert {"mergesort", "poisson", "fft2d", "imagepipe", "knapfarm"} <= {
            a["name"] for a in apps
        }
        _, job = _http(f"{server.url}/v1/jobs", "POST", self.BODY)
        _wait_done(server.url, job["id"])
        _, metrics = _http(f"{server.url}/v1/metrics")
        assert metrics["core.serve.jobs.submitted"]["value"] >= 1
        # Per-job snapshots merged into the server registry on completion.
        assert "comm.requests.posted" in metrics


class TestCacheVerification:
    def test_sampled_hit_reexecutes_and_verifies(self, tmp_path):
        with scoped_registry(), ServeServer(
            port=0,
            workers=1,
            cache_dir=tmp_path / "cache",
            batch_linger=0.0,
            verify_cache_every=1,
        ) as server:
            body = {"app": "mergesort", "params": {"n": 256}, "machine": "ibm-sp"}
            _, first = _http(f"{server.url}/v1/jobs", "POST", body)
            _wait_done(server.url, first["id"])

            _, second = _http(f"{server.url}/v1/jobs", "POST", body)
            assert second["cache_hit"] is True
            # Every hit is sampled here: the job re-executes instead of
            # answering instantly, then must report digest equality.
            final = _wait_done(server.url, second["id"])
            assert final["state"] == "done"
            assert final["verified"] is True
            assert _counter("core.serve.cache.verified") == 1
            assert _counter("core.serve.cache.verify_failures") == 0
            _, a = _http(f"{server.url}/v1/jobs/{first['id']}/result")
            _, b = _http(f"{server.url}/v1/jobs/{second['id']}/result")
            assert a["record"]["digest"] == b["record"]["digest"]


class TestBatchedAdmission:
    def test_small_jobs_share_one_dispatch(self, tmp_path):
        gate = tmp_path / "gate"
        gate.touch()
        with scoped_registry(), ServeServer(
            port=0,
            workers=1,
            cache_dir=tmp_path / "cache",
            batch_max=4,
            batch_linger=0.05,
        ) as server:
            _, blocker = _http(
                f"{server.url}/v1/jobs",
                "POST",
                {"app": "serve-test-sleeper", "params": {"gate": str(gate)}},
            )
            wait_until(
                lambda: _http(f"{server.url}/v1/jobs/{blocker['id']}")[1]["state"]
                == "running",
                desc="blocker occupying the worker",
            )
            # The worker is busy: these queue up behind the blocker and
            # must come out as ONE batch when the worker frees.
            small = [
                _http(
                    f"{server.url}/v1/jobs",
                    "POST",
                    {"app": "mergesort", "params": {"n": 64, "seed": seed}},
                )[1]
                for seed in range(3)
            ]
            gate.unlink()
            for job in [blocker, *small]:
                assert _wait_done(server.url, job["id"])["state"] == "done"
            assert _counter("core.serve.jobs.dispatched") == 4
            assert _counter("core.serve.batches.dispatched") == 2
            sizes = get_registry().get("core.serve.batch.size").snapshot()
            assert sizes["max"] == 3


@pytest.mark.skipif(os.name != "posix", reason="needs SIGKILL")
class TestWorkerFailure:
    def test_killed_worker_requeues_and_digest_survives(self, tmp_path):
        gate = tmp_path / "gate"
        gate.touch()
        with scoped_registry(), ServeServer(
            port=0,
            workers=1,
            cache_dir=tmp_path / "cache",
            batch_linger=0.0,
            heartbeat_timeout=5.0,
        ) as server:
            _, job = _http(
                f"{server.url}/v1/jobs",
                "POST",
                {
                    "app": "serve-test-sleeper",
                    "params": {"gate": str(gate), "n": 256, "seed": 9},
                },
            )

            def busy_pid():
                _, health = _http(f"{server.url}/v1/health")
                for worker in health["workers"]:
                    if job["id"] in worker["jobs"]:
                        return worker["pid"]
                return None

            wait_until(lambda: busy_pid() is not None, desc="job reaching a worker")
            os.kill(busy_pid(), signal.SIGKILL)
            gate.unlink()

            final = _wait_done(server.url, job["id"])
            assert final["state"] == "done"
            assert final["attempts"] == 2
            assert _counter("core.serve.jobs.requeued") == 1
            assert _counter("core.serve.workers.restarts") == 1
            _, result = _http(f"{server.url}/v1/jobs/{job['id']}/result")
            assert result["record"]["digest"] == _direct_digest(
                "mergesort", {"nprocs": 2, "n": 256, "seed": 9}, "ideal"
            )

    def test_job_timeout_fails_job_and_replaces_worker(self, tmp_path):
        gate = tmp_path / "gate"
        gate.touch()
        try:
            with scoped_registry(), ServeServer(
                port=0,
                workers=1,
                cache_dir=tmp_path / "cache",
                batch_linger=0.0,
            ) as server:
                _, job = _http(
                    f"{server.url}/v1/jobs",
                    "POST",
                    {
                        "app": "serve-test-sleeper",
                        "params": {"gate": str(gate), "max_wait": 20.0},
                        "timeout": 0.3,
                    },
                )
                final = _wait_done(server.url, job["id"])
                assert final["state"] == "failed"
                assert "timed out" in final["error"]
                assert _counter("core.serve.jobs.timeouts") == 1
                assert _counter("core.serve.workers.restarts") == 1
                status, _ = _http(f"{server.url}/v1/jobs/{job['id']}/result")
                assert status == 410
                # The replacement worker still serves fresh jobs.
                _, after = _http(
                    f"{server.url}/v1/jobs",
                    "POST",
                    {"app": "mergesort", "params": {"n": 64}},
                )
                assert _wait_done(server.url, after["id"])["state"] == "done"
        finally:
            gate.unlink(missing_ok=True)

    def test_retries_are_bounded(self, tmp_path):
        gate = tmp_path / "gate"
        gate.touch()
        try:
            with scoped_registry(), ServeServer(
                port=0,
                workers=1,
                cache_dir=tmp_path / "cache",
                batch_linger=0.0,
                max_retries=0,
            ) as server:
                _, job = _http(
                    f"{server.url}/v1/jobs",
                    "POST",
                    {"app": "serve-test-sleeper", "params": {"gate": str(gate)}},
                )

                def busy_pid():
                    _, health = _http(f"{server.url}/v1/health")
                    for worker in health["workers"]:
                        if job["id"] in worker["jobs"]:
                            return worker["pid"]
                    return None

                wait_until(lambda: busy_pid() is not None, desc="job reaching a worker")
                os.kill(busy_pid(), signal.SIGKILL)
                final = _wait_done(server.url, job["id"])
                assert final["state"] == "failed"
                assert "gave up" in final["error"]
                assert _counter("core.serve.jobs.requeued") == 0
        finally:
            gate.unlink(missing_ok=True)

    def test_pool_replace_preserves_outstanding_batch(self):
        with scoped_registry():
            pool = WorkerPool(1, heartbeat_timeout=5.0)
            try:
                worker = pool.workers()[0]
                pool.dispatch(worker, [("job-x", {"app": "mergesort"})])
                replacement = pool.replace(worker)
                assert worker.id not in {w.id for w in pool.workers()}
                assert replacement.process.is_alive()
                assert worker.batch is not None  # caller requeues from this
            finally:
                pool.stop()


class TestServedChaos:
    def test_eight_fuzzed_seeds_match_direct_digests(self, server):
        expected_det = _direct_digest("knapfarm", {}, "ibm-sp")
        jobs = []
        for seed in range(8):
            _, job = _http(
                f"{server.url}/v1/jobs",
                "POST",
                {"app": "knapfarm", "machine": "ibm-sp", "backend": "fuzzed", "seed": seed},
            )
            jobs.append((seed, job))
        for seed, job in jobs:
            final = _wait_done(server.url, job["id"])
            assert final["state"] == "done", final
            _, result = _http(f"{server.url}/v1/jobs/{job['id']}/result")
            served = result["record"]["digest"]
            # Each fuzzed schedule matches its direct in-process run AND
            # the deterministic digest: the server adds no nondeterminism
            # and the program is race-free under every schedule.
            assert served == _direct_digest("knapfarm", {}, "ibm-sp", seed, fuzzed=True)
            assert served == expected_det
