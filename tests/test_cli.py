"""The `python -m repro.bench` command-line interface."""

import json

import pytest

from repro.bench.__main__ import FIGURES, curves_to_json, main
from repro.bench.harness import SpeedupCurve, SpeedupPoint


class TestCurvesToJson:
    def test_round_trippable(self):
        curve = SpeedupCurve(
            "x", [SpeedupPoint(procs=2, t_seq=4.0, t_par=1.0)]
        )
        out = curves_to_json([curve])
        assert out[0]["label"] == "x"
        assert out[0]["points"][0] == {
            "procs": 2,
            "t_seq": 4.0,
            "t_par": 1.0,
            "speedup": 4.0,
        }
        json.dumps(out)  # serialisable


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_runs_small_figure(self, capsys, tmp_path, monkeypatch):
        # Shrink fig17 so the CLI test is quick.
        import repro.bench.__main__ as cli
        from repro.bench.figures import figure17_fdtd

        monkeypatch.setitem(
            cli.FIGURES,
            "fig17",
            (lambda: figure17_fdtd(n=12, steps=2, procs=(1, 4, 8)), "tiny fdtd"),
        )
        out_json = tmp_path / "series.json"
        assert main(["fig17", "--json", str(out_json), "--no-plot"]) == 0
        printed = capsys.readouterr().out
        assert "fig17" in printed and "3-D FDTD" in printed
        data = json.loads(out_json.read_text())
        assert data[0]["points"][0]["procs"] == 1

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
