"""Closest pair of points."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.apps.nearest import (
    brute_force_pair,
    closest_pair,
    closest_pair_cost,
    one_deep_closest_pair,
)

points_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 150), st.just(2)),
    elements=st.floats(-1000, 1000, allow_nan=False, allow_infinity=False),
)


class TestSequentialClosestPair:
    def test_simple(self):
        pts = np.array([[0, 0], [10, 10], [1, 0], [5, 5]])
        d, a, b = closest_pair(pts)
        assert d == pytest.approx(1.0)
        assert (a, b) == ((0.0, 0.0), (1.0, 0.0))

    def test_fewer_than_two(self):
        assert closest_pair(np.empty((0, 2)))[0] == math.inf
        assert closest_pair(np.array([[1.0, 1.0]]))[0] == math.inf

    def test_duplicate_points(self):
        pts = np.array([[3.0, 4.0], [3.0, 4.0], [10.0, 10.0]])
        assert closest_pair(pts)[0] == 0.0

    @given(pts=points_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, pts):
        assert closest_pair(pts)[0] == pytest.approx(
            brute_force_pair(pts)[0], abs=1e-9
        )

    def test_large_vs_brute(self, rng):
        pts = rng.uniform(0, 1000, size=(600, 2))
        assert closest_pair(pts)[0] == pytest.approx(brute_force_pair(pts)[0])

    def test_cost_model(self):
        assert closest_pair_cost(1000) > closest_pair_cost(100) > 0


class TestOneDeepClosestPair:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_matches_sequential(self, p, rng):
        pts = rng.uniform(0, 100, size=(500, 2))
        expected = closest_pair(pts)[0]
        res = one_deep_closest_pair().run(p, pts)
        for v in res.values:
            assert v[0] == pytest.approx(expected)

    @given(pts=points_strategy, p=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_property(self, pts, p):
        expected = brute_force_pair(pts)[0]
        res = one_deep_closest_pair().run(p, pts)
        assert res.values[0][0] == pytest.approx(expected, abs=1e-9)

    def test_pair_spanning_narrow_strips(self):
        """A cross pair spanning several thin strips must be found."""
        # Clusters far apart in x except two points that straddle the
        # middle; with many ranks the strips around the pair are thin.
        pts = np.array(
            [[0.0, 0.0], [0.1, 50.0], [49.9, 0.0], [50.1, 0.05], [100.0, 50.0], [99.9, 0.0]]
        )
        expected = brute_force_pair(pts)[0]
        res = one_deep_closest_pair().run(3, pts)
        assert res.values[0][0] == pytest.approx(expected)

    def test_identical_points_across_ranks(self):
        pts = np.array([[1.0, 1.0]] * 10 + [[5.0, 5.0]] * 10)
        res = one_deep_closest_pair().run(4, pts)
        assert res.values[0][0] == 0.0

    def test_result_identical_on_all_ranks(self, rng):
        pts = rng.normal(size=(300, 2))
        res = one_deep_closest_pair().run(5, pts)
        assert all(v == res.values[0] for v in res.values)
