"""The paper's two-version methodology, end to end.

§1.2: the initial archetype-based version (version 1, parfor/forall) is
sequentially executable and semantically equal to the sequential
algorithm; the archetype's transformation to the SPMD version (version
2) preserves semantics.  These tests pin the whole chain:

    sequential  ==  version 1 (parfor/forall)  ==  version 2 (SPMD)
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.parfor import forall, parfor
from repro.errors import ArchetypeError
from repro.apps.version1 import fft2d_v1, mergesort_v1, poisson_v1


class TestParfor:
    def test_results_in_index_order(self):
        assert parfor(5, lambda i: i * i) == [0, 1, 4, 9, 16]

    def test_empty(self):
        assert parfor(0, lambda i: i) == []

    def test_negative_rejected(self):
        with pytest.raises(ArchetypeError):
            parfor(-1, lambda i: i)

    def test_shuffled_execution_order(self):
        """Iterations run out of order — the independence check."""
        seen = []
        parfor(16, seen.append)
        assert sorted(seen) == list(range(16))
        assert seen != list(range(16))

    def test_dependence_is_caught_by_shuffle(self):
        """A body with a hidden inter-iteration dependence produces
        different results than its in-order execution — the defect the
        shuffle exists to expose."""
        acc = [0]

        def dependent(i):
            acc[0] += i
            return acc[0]

        shuffled = parfor(8, dependent)
        acc[0] = 0
        in_order = parfor(8, dependent, check_independence=False)
        assert shuffled != in_order

    def test_in_order_mode(self):
        seen = []
        parfor(8, seen.append, check_independence=False)
        assert seen == list(range(8))


class TestForall:
    def test_snapshot_semantics(self):
        """The right-hand side must see pre-update values even when the
        output is an input (the HPF guarantee)."""
        a = np.arange(6.0)
        forall(a, [(i,) for i in range(1, 6)], lambda i, x: x[i - 1], a)
        assert list(a) == [0, 0, 1, 2, 3, 4]

    def test_all_indices_default(self):
        a = np.zeros((3, 3))
        forall(a, None, lambda i, j: float(i * 10 + j))
        assert a[2, 1] == 21.0

    def test_multiple_reads(self):
        a = np.ones(4)
        b = np.arange(4.0)
        out = np.zeros(4)
        forall(out, [(i,) for i in range(4)], lambda i, x, y: x[i] + y[i], a, b)
        assert list(out) == [1, 2, 3, 4]


class TestMergesortChain:
    @pytest.mark.parametrize("n_logical", [1, 2, 4, 7])
    def test_v1_equals_sequential(self, n_logical, rng):
        data = rng.integers(0, 10**6, size=500)
        assert np.array_equal(mergesort_v1(data, n_logical), np.sort(data))

    @pytest.mark.parametrize("p", [2, 4, 5])
    def test_v1_equals_v2(self, p, rng):
        from repro.apps.sorting import one_deep_mergesort

        data = rng.integers(0, 10**6, size=800)
        v1 = mergesort_v1(data, p)
        v2 = np.concatenate(one_deep_mergesort().run(p, data).values)
        assert np.array_equal(v1, v2)

    @given(
        arr=hnp.arrays(
            dtype=np.int64, shape=st.integers(0, 200), elements=st.integers(-999, 999)
        ),
        p=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_chain(self, arr, p):
        from repro.apps.sorting import one_deep_mergesort

        expected = np.sort(arr)
        assert np.array_equal(mergesort_v1(arr, p), expected)
        v2 = np.concatenate(one_deep_mergesort().run(p, arr).values)
        assert np.array_equal(v2, expected)


class TestFFTChain:
    def test_v1_equals_numpy(self, rng):
        arr = rng.normal(size=(12, 16)) + 1j * rng.normal(size=(12, 16))
        assert np.allclose(fft2d_v1(arr), np.fft.fft2(arr), atol=1e-9)

    def test_v1_inverse(self, rng):
        arr = rng.normal(size=(8, 8)).astype(complex)
        assert np.allclose(fft2d_v1(fft2d_v1(arr), inverse=True), arr, atol=1e-10)

    @pytest.mark.parametrize("p", [2, 4])
    def test_v1_equals_v2(self, p, rng):
        from repro.apps.fft2d import fft2d_archetype

        arr = rng.normal(size=(8, 12)).astype(complex)
        v1 = fft2d_v1(arr)
        v2 = fft2d_archetype().run(p, arr, 1).values[0]
        assert np.allclose(v1, v2, atol=1e-9)


class TestPoissonChain:
    def test_v1_equals_sequential(self):
        from repro.apps.poisson import reference_poisson

        u1, it1 = poisson_v1(10, 12, tolerance=1e-3)
        u2, it2 = reference_poisson(10, 12, tolerance=1e-3)
        assert it1 == it2
        assert np.allclose(u1, u2, atol=1e-12)

    def test_v1_equals_v2(self):
        from repro.apps.poisson import poisson_archetype

        u1, it1 = poisson_v1(10, 10, tolerance=1e-3)
        res = poisson_archetype().run(3, 10, 10, tolerance=1e-3).values[0]
        assert res.iterations == it1
        assert np.allclose(res.solution, u1, atol=1e-12)
