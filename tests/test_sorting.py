"""Sorting applications: mergesort (three ways) and quicksort."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.apps.sorting import (
    merge_cost,
    merge_sorted,
    merge_two_sorted,
    one_deep_mergesort,
    one_deep_quicksort,
    sequential_mergesort,
    sequential_sort_time,
    sort_cost,
    traditional_mergesort,
)

int_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(0, 400),
    elements=st.integers(-(10**9), 10**9),
)


class TestMergePrimitives:
    def test_merge_two_basic(self):
        a = np.array([1, 3, 5])
        b = np.array([2, 4, 6])
        assert list(merge_two_sorted(a, b)) == [1, 2, 3, 4, 5, 6]

    def test_merge_two_empty(self):
        assert list(merge_two_sorted(np.array([]), np.array([1]))) == [1]
        assert list(merge_two_sorted(np.array([1]), np.array([]))) == [1]

    def test_merge_stability(self):
        """Equal keys: all of `a`'s occurrences precede `b`'s."""
        a = np.array([5, 5])
        b = np.array([5])
        merged = merge_two_sorted(a, b)
        assert list(merged) == [5, 5, 5]

    @given(a=int_arrays, b=int_arrays)
    def test_merge_two_property(self, a, b):
        a, b = np.sort(a), np.sort(b)
        merged = merge_two_sorted(a, b)
        assert np.array_equal(merged, np.sort(np.concatenate([a, b])))

    @given(
        arrays=st.lists(int_arrays, min_size=1, max_size=6),
    )
    @settings(max_examples=40)
    def test_merge_k_property(self, arrays):
        sorted_arrays = [np.sort(a) for a in arrays]
        merged = merge_sorted(sorted_arrays)
        assert np.array_equal(merged, np.sort(np.concatenate(sorted_arrays)))

    def test_merge_sorted_all_empty(self):
        assert merge_sorted([np.array([]), np.array([])]).size == 0


class TestSequentialMergesort:
    @given(arr=int_arrays)
    @settings(max_examples=40)
    def test_sorts(self, arr):
        assert np.array_equal(sequential_mergesort(arr), np.sort(arr))

    def test_does_not_mutate_input(self):
        arr = np.array([3, 1, 2])
        sequential_mergesort(arr)
        assert list(arr) == [3, 1, 2]

    def test_cost_model(self):
        assert sort_cost(0) == 0.0
        assert sort_cost(1) == 0.0
        assert sort_cost(1024) == pytest.approx(4.0 * 1024 * 10)
        assert merge_cost(100, ways=1) == 0.0
        assert merge_cost(8, ways=4) == pytest.approx(6.0 * 8 * 2)

    def test_sequential_time_positive(self):
        from repro.machines.catalog import INTEL_DELTA

        assert sequential_sort_time(10**6, INTEL_DELTA) > 0


class TestOneDeepMergesort:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_sorts_across_rank_counts(self, p, rng):
        data = rng.integers(-(10**6), 10**6, size=1000)
        res = one_deep_mergesort().run(p, data)
        assert np.array_equal(np.concatenate(res.values), np.sort(data))

    @given(arr=int_arrays, p=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_property(self, arr, p):
        res = one_deep_mergesort().run(p, arr)
        assert np.array_equal(np.concatenate(res.values), np.sort(arr))

    def test_duplicate_heavy_input(self):
        data = np.repeat([7, 3, 7, 1], 100)
        res = one_deep_mergesort().run(4, data)
        assert np.array_equal(np.concatenate(res.values), np.sort(data))

    def test_already_sorted(self):
        data = np.arange(500)
        res = one_deep_mergesort().run(5, data)
        assert np.array_equal(np.concatenate(res.values), data)

    def test_reverse_sorted(self):
        data = np.arange(500)[::-1].copy()
        res = one_deep_mergesort().run(5, data)
        assert np.array_equal(np.concatenate(res.values), np.sort(data))

    def test_floats(self, rng):
        data = rng.normal(size=800)
        res = one_deep_mergesort().run(4, data)
        assert np.array_equal(np.concatenate(res.values), np.sort(data))

    def test_rank_ranges_ordered(self, rng):
        """Post-condition from the paper: rank i's keys all precede rank
        i+1's keys."""
        data = rng.integers(0, 10**6, size=2000)
        res = one_deep_mergesort().run(6, data)
        for a, b in zip(res.values, res.values[1:]):
            if a.size and b.size:
                assert a[-1] <= b[0]


class TestOneDeepQuicksort:
    @pytest.mark.parametrize("p", [1, 2, 5, 8])
    def test_sorts(self, p, rng):
        data = rng.integers(-(10**6), 10**6, size=1500)
        res = one_deep_quicksort().run(p, data)
        assert np.array_equal(np.concatenate(res.values), np.sort(data))

    @given(arr=int_arrays, p=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_property(self, arr, p):
        res = one_deep_quicksort().run(p, arr)
        assert np.array_equal(np.concatenate(res.values), np.sort(arr))

    def test_constant_input(self):
        data = np.zeros(100, dtype=np.int64)
        res = one_deep_quicksort().run(4, data)
        assert np.array_equal(np.concatenate(res.values), data)

    def test_master_strategy(self, rng):
        data = rng.integers(0, 1000, size=600)
        res = one_deep_quicksort(strategy="master").run(3, data)
        assert np.array_equal(np.concatenate(res.values), np.sort(data))


class TestTraditionalMergesort:
    @pytest.mark.parametrize("p", [1, 2, 3, 6, 8])
    def test_sorts(self, p, rng):
        data = rng.integers(0, 10**6, size=900)
        res = traditional_mergesort().run(p, data)
        assert np.array_equal(res.values[0], np.sort(data))

    @given(arr=int_arrays, p=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_property(self, arr, p):
        res = traditional_mergesort().run(p, arr)
        assert np.array_equal(res.values[0], np.sort(arr))


class TestOneDeepBeatsTraditional:
    def test_virtual_time_comparison(self, rng):
        """The paper's headline claim (Figure 6): the one-deep version is
        significantly faster on a message-passing machine."""
        from repro.machines.catalog import INTEL_DELTA

        data = rng.integers(0, 10**6, size=1 << 15)
        p = 16
        t_onedeep = one_deep_mergesort().run(p, data, machine=INTEL_DELTA).elapsed
        t_trad = traditional_mergesort().run(p, data, machine=INTEL_DELTA).elapsed
        assert t_onedeep < t_trad / 2
