"""Sub-communicators (Comm.split) — the substrate for archetype composition."""

import numpy as np
import pytest

from repro import spmd_run
from repro.comm import SUM
from repro.errors import DeadlockError


class TestSplitBasics:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 7])
    def test_partition_by_parity(self, p):
        def body(comm):
            sub = comm.split(comm.rank % 2)
            return (sub.rank, sub.size, sub.allreduce(comm.rank, SUM))

        res = spmd_run(p, body)
        for rank, (local, size, total) in enumerate(res.values):
            group = [r for r in range(p) if r % 2 == rank % 2]
            assert local == group.index(rank)
            assert size == len(group)
            assert total == sum(group)

    def test_key_reorders(self):
        def body(comm):
            sub = comm.split(0, key=comm.size - comm.rank)
            return sub.rank

        assert spmd_run(4, body).values == [3, 2, 1, 0]

    def test_none_color_excluded(self):
        def body(comm):
            sub = comm.split(None if comm.rank == 1 else "group")
            if comm.rank == 1:
                return sub is None
            return (sub.rank, sub.size)

        res = spmd_run(3, body)
        assert res.values == [(0, 2), True, (1, 2)]

    def test_string_colors(self):
        def body(comm):
            sub = comm.split("even" if comm.rank % 2 == 0 else "odd")
            return sub.size

        res = spmd_run(5, body)
        assert res.values == [3, 2, 3, 2, 3]

    def test_singleton_groups(self):
        def body(comm):
            sub = comm.split(comm.rank)
            return (sub.rank, sub.size, sub.allreduce(7, SUM))

        res = spmd_run(4, body)
        assert all(v == (0, 1, 7) for v in res.values)


class TestIsolation:
    def test_same_tag_different_contexts(self):
        """Group traffic never matches parent traffic, even on one tag."""

        def body(comm):
            sub = comm.split(comm.rank % 2)
            if sub.size > 1:
                sub.send((sub.rank + 1) % sub.size, ("group", comm.rank), tag=5)
            comm.send((comm.rank + 1) % comm.size, ("world", comm.rank), tag=5)
            world_msg = comm.recv(tag=5)
            group_msg = sub.recv(tag=5) if sub.size > 1 else None
            return (world_msg[0], None if group_msg is None else group_msg[0])

        res = spmd_run(5, body)
        for world, group in res.values:
            assert world == "world"
            assert group in (None, "group")

    def test_wildcard_recv_respects_context(self):
        """An ANY_SOURCE/ANY_TAG receive on the parent must not steal a
        group message."""

        def body(comm):
            sub = comm.split(0)
            if comm.rank == 1:
                sub.send(0, "group-payload", tag=1)
                comm.send(0, "world-payload", tag=2)
            if comm.rank == 0:
                first = comm.recv()  # wildcard on the world communicator
                second = sub.recv()
                return (first, second)
            return None

        res = spmd_run(2, body)
        assert res.values[0] == ("world-payload", "group-payload")

    def test_group_deadlock_detected(self):
        def body(comm):
            sub = comm.split(0)
            sub.recv(source=(sub.rank + 1) % sub.size, tag=9)

        with pytest.raises(DeadlockError):
            spmd_run(3, body)

    def test_sibling_groups_run_independently(self):
        """Two halves each run their own collective sequence concurrently."""

        def body(comm):
            sub = comm.split(comm.rank < comm.size // 2)
            acc = sub.allreduce(np.arange(3) * (comm.rank + 1), SUM)
            gathered = sub.gather(comm.rank, root=0)
            return (acc.tolist(), gathered)

        res = spmd_run(6, body)
        lower = [0, 1, 2]
        upper = [3, 4, 5]
        expected_lower = (np.arange(3) * sum(r + 1 for r in lower)).tolist()
        expected_upper = (np.arange(3) * sum(r + 1 for r in upper)).tolist()
        assert res.values[0] == (expected_lower, lower)
        assert res.values[3] == (expected_upper, upper)


class TestClockSharing:
    def test_group_comm_advances_rank_clock(self):
        from repro.machines.model import MachineModel

        toy = MachineModel("toy", alpha=1e-3, beta=0.0, flop_time=1e-6)

        def body(comm):
            sub = comm.split(0)
            before = comm.clock
            sub.barrier()
            return comm.clock > before

        res = spmd_run(3, body, machine=toy)
        assert all(res.values)

    def test_nested_splits(self):
        def body(comm):
            half = comm.split(comm.rank // 2)
            single = half.split(half.rank)
            return (half.size, single.size, single.allreduce(1, SUM))

        res = spmd_run(4, body)
        assert all(v == (2, 1, 1) for v in res.values)

    def test_global_rank_property(self):
        def body(comm):
            sub = comm.split(comm.rank % 2, key=-comm.rank)
            return (sub.global_rank, comm.global_rank)

        res = spmd_run(4, body)
        assert [v[0] for v in res.values] == [0, 1, 2, 3]
        assert [v[1] for v in res.values] == [0, 1, 2, 3]


class TestComposition:
    def test_two_archetypes_side_by_side(self, rng):
        """Task-parallel composition (paper §6): half the machine sorts
        while the other half runs a mesh computation, then results meet
        on the world communicator."""
        from repro.core.meshspectral import MeshContext
        from repro.core.onedeep import OneDeepDC
        from repro.apps.sorting.mergesort import _merge_phase
        from repro.util.partition import split_evenly

        data = rng.integers(0, 1000, size=400)

        def body(comm):
            color = "sort" if comm.rank < comm.size // 2 else "mesh"
            sub = comm.split(color)
            if color == "sort":
                sections = split_evenly(np.sort(data)[::-1].copy(), sub.size)
                arch = OneDeepDC(
                    solve=lambda x: np.sort(x, kind="stable"), merge=_merge_phase()
                )
                piece = arch.body(sub, sections)
                local = float(np.sum(piece))
            else:
                mesh = MeshContext(sub)
                g = mesh.grid((8, 8), fill=1.0)
                from repro.comm.reductions import SUM as MSUM

                local = mesh.grid_reduce(g, np.sum, MSUM, identity=0.0)
                local = float(local) if sub.rank == 0 else 0.0
            # Combine the two task results on the world communicator.
            return comm.allreduce(local, SUM)

        res = spmd_run(6, body)
        expected = float(np.sum(data)) + 64.0
        assert all(v == pytest.approx(expected) for v in res.values)
