"""Regular sampling and splitter selection."""

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.util.sampling import (
    partition_by_splitters,
    regular_sample,
    splitters_from_samples,
)

sorted_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(0, 300),
    elements=st.integers(-(10**6), 10**6),
).map(np.sort)


class TestRegularSample:
    def test_empty(self):
        assert regular_sample(np.array([]), 4).size == 0

    def test_zero_samples(self):
        assert regular_sample(np.arange(10), 0).size == 0

    def test_includes_minimum(self):
        arr = np.arange(100)
        assert regular_sample(arr, 4)[0] == 0

    def test_count(self):
        assert regular_sample(np.arange(100), 7).size == 7

    @given(arr=sorted_arrays, s=st.integers(1, 20))
    def test_samples_are_subset_and_sorted(self, arr, s):
        sample = regular_sample(arr, s)
        if arr.size == 0:
            assert sample.size == 0
            return
        assert sample.size == s
        assert np.all(np.isin(sample, arr))
        assert np.all(np.diff(sample) >= 0)


class TestSplitters:
    def test_uniform(self):
        samples = np.arange(100)
        sp = splitters_from_samples(samples, 4)
        assert sp.size == 3
        assert list(sp) == [25, 50, 75]

    def test_single_part_no_splitters(self):
        assert splitters_from_samples(np.arange(10), 1).size == 0

    def test_empty_samples(self):
        assert splitters_from_samples(np.array([]), 4).size == 0

    @given(arr=sorted_arrays, p=st.integers(1, 16))
    def test_splitter_count_and_order(self, arr, p):
        sp = splitters_from_samples(arr, p)
        if arr.size == 0:
            assert sp.size == 0
            return
        assert sp.size == p - 1
        assert np.all(np.diff(sp) >= 0)


class TestPartitionBySplitters:
    @given(arr=sorted_arrays, p=st.integers(1, 16))
    def test_concat_is_identity(self, arr, p):
        sp = splitters_from_samples(arr, p)
        pieces = partition_by_splitters(arr, sp)
        assert len(pieces) == sp.size + 1
        assert np.array_equal(np.concatenate(pieces) if pieces else arr, arr)

    @given(arr=sorted_arrays, p=st.integers(2, 16))
    def test_pieces_respect_splitters(self, arr, p):
        sp = splitters_from_samples(arr, p)
        pieces = partition_by_splitters(arr, sp)
        for i, piece in enumerate(pieces):
            if piece.size == 0:
                continue
            if i > 0:
                assert piece.min() >= sp[i - 1]
            if i < sp.size:
                assert piece.max() < sp[i]

    def test_boundary_goes_right(self):
        pieces = partition_by_splitters(np.array([1, 2, 2, 3]), np.array([2]))
        assert list(pieces[0]) == [1]
        assert list(pieces[1]) == [2, 2, 3]
