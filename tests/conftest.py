"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import spmd_run
from repro.machines.catalog import IDEAL


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=["deterministic", "threads"])
def backend(request) -> str:
    """Run a test under both scheduling backends."""
    return request.param


def run_both_backends(nprocs, fn, args=(), machine=IDEAL, **kwargs):
    """Run on both backends and assert identical per-rank results.

    Returns the deterministic backend's RunResult.  Results are compared
    with numpy-aware equality.
    """
    det = spmd_run(nprocs, fn, args=args, machine=machine, backend="deterministic", **kwargs)
    thr = spmd_run(nprocs, fn, args=args, machine=machine, backend="threads", **kwargs)
    for rank, (a, b) in enumerate(zip(det.values, thr.values)):
        assert_equal_values(a, b, f"rank {rank} differs between backends")
    assert det.times == thr.times, "virtual clocks differ between backends"
    return det


def assert_equal_values(a, b, msg=""):
    """Deep equality that understands numpy arrays inside containers."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert np.array_equal(np.asarray(a), np.asarray(b)), msg
    elif isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        assert len(a) == len(b), msg
        for x, y in zip(a, b):
            assert_equal_values(x, y, msg)
    elif isinstance(a, dict) and isinstance(b, dict):
        assert a.keys() == b.keys(), msg
        for k in a:
            assert_equal_values(a[k], b[k], msg)
    else:
        assert a == b, msg
