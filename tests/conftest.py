"""Shared test fixtures and helpers.

Schedule fuzzing: marking a test ``@pytest.mark.chaos`` re-runs it once
per seed with every ``backend="deterministic"`` run inside it promoted to
the seeded :class:`~repro.runtime.scheduler.FuzzedBackend` (via
:func:`repro.verify.fuzzed_schedule`), so the test's own assertions check
schedule-independence.  ``--chaos-seeds=N`` sets the seed count globally;
``@pytest.mark.chaos(seeds=K)`` raises it per test (the larger wins).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import spmd_run
from repro.machines.catalog import IDEAL
from repro.verify import fuzzed_schedule


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--chaos-seeds",
        type=int,
        default=4,
        metavar="N",
        help="seeds per @pytest.mark.chaos test (default 4)",
    )


def pytest_generate_tests(metafunc: pytest.Metafunc) -> None:
    marker = metafunc.definition.get_closest_marker("chaos")
    if marker is None:
        return
    n = max(
        int(marker.kwargs.get("seeds", 0)),
        metafunc.config.getoption("--chaos-seeds"),
    )
    # _chaos_seed is autouse, so it is always parametrisable even though
    # the test function never names it.
    metafunc.parametrize(
        "_chaos_seed", range(n), indirect=True, ids=[f"seed{s}" for s in range(n)]
    )


@pytest.fixture(autouse=True)
def _isolated_tune_catalog(tmp_path, monkeypatch):
    """Point the tuned-config catalog at an empty per-test directory.

    Registry and archetype runs consult the catalog by default; without
    this, entries tuned on the host (under ``~/.cache/repro/tuned``)
    would leak process grids and runtime knobs into the digest, clock,
    and conformance suites.
    """
    monkeypatch.setenv("REPRO_TUNE_DIR", str(tmp_path / "tuned"))


@pytest.fixture(autouse=True)
def _chaos_seed(request: pytest.FixtureRequest):
    """Under the ``chaos`` marker, wrap the test in a fuzzed schedule."""
    if request.node.get_closest_marker("chaos") is None:
        yield None
        return
    seed = getattr(request, "param", 0)
    with fuzzed_schedule(seed):
        yield seed


def wait_until(predicate, timeout=5.0, interval=0.005, desc="condition"):
    """Poll *predicate* until it's true or the deadline expires.

    The replacement for fixed ``time.sleep`` waits in backend tests: a
    sleep long enough to be reliable is slow, and a fast one is flaky —
    a deadline poll is both quick in the common case and generous under
    CI load.  Raises ``AssertionError`` (naming *desc*) on timeout.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    if predicate():  # one last look after the deadline
        return True
    raise AssertionError(f"timed out after {timeout}s waiting for {desc}")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=["deterministic", "threads"])
def backend(request) -> str:
    """Run a test under both scheduling backends."""
    return request.param


def run_both_backends(nprocs, fn, args=(), machine=IDEAL, **kwargs):
    """Run on both backends and assert identical per-rank results.

    Returns the deterministic backend's RunResult.  Results are compared
    with numpy-aware equality.
    """
    det = spmd_run(nprocs, fn, args=args, machine=machine, backend="deterministic", **kwargs)
    thr = spmd_run(nprocs, fn, args=args, machine=machine, backend="threads", **kwargs)
    for rank, (a, b) in enumerate(zip(det.values, thr.values)):
        assert_equal_values(a, b, f"rank {rank} differs between backends")
    assert det.times == thr.times, "virtual clocks differ between backends"
    return det


def assert_equal_values(a, b, msg=""):
    """Deep equality that understands numpy arrays inside containers."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert np.array_equal(np.asarray(a), np.asarray(b)), msg
    elif isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        assert len(a) == len(b), msg
        for x, y in zip(a, b):
            assert_equal_values(x, y, msg)
    elif isinstance(a, dict) and isinstance(b, dict):
        assert a.keys() == b.keys(), msg
        for k in a:
            assert_equal_values(a[k], b[k], msg)
    else:
        assert a == b, msg
