"""Axisymmetric spectral incompressible-flow code (paper §4.5.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.spectralflow import (
    spectralflow_archetype,
    sequential_spectralflow_time,
    thomas_solve,
    vortex_ic,
)
from repro.machines.catalog import IBM_SP


class TestThomasSolver:
    def test_simple_system(self):
        # 3x3: [[2,1,0],[1,2,1],[0,1,2]] x = b
        lower = np.array([0.0, 1.0, 1.0])
        upper = np.array([1.0, 1.0, 0.0])
        diag = np.array([[2.0, 2.0, 2.0]])
        rhs = np.array([[4.0, 8.0, 8.0]])
        x = thomas_solve(lower, diag, upper, rhs)
        A = np.array([[2, 1, 0], [1, 2, 1], [0, 1, 2]], dtype=float)
        assert np.allclose(A @ x[0], rhs[0])

    @given(n=st.integers(2, 40), m=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_against_dense_solver(self, n, m):
        rng = np.random.default_rng(n * 100 + m)
        lower = rng.uniform(0.5, 1.5, n)
        upper = rng.uniform(0.5, 1.5, n)
        # Diagonally dominant so the system is well conditioned.
        diag = rng.uniform(4.0, 6.0, (m, n))
        rhs = rng.normal(size=(m, n))
        x = thomas_solve(lower, diag, upper, rhs)
        for k in range(m):
            A = np.diag(diag[k])
            for i in range(1, n):
                A[i, i - 1] = lower[i]
                A[i - 1, i] = upper[i - 1]
            assert np.allclose(A @ x[k], rhs[k], atol=1e-8)

    def test_complex_rhs(self):
        lower = np.zeros(2)
        upper = np.zeros(2)
        diag = np.array([[2.0, 4.0]])
        rhs = np.array([[2.0 + 2j, 4.0 - 8j]])
        x = thomas_solve(lower, diag, upper, rhs)
        assert np.allclose(x, [[1 + 1j, 1 - 2j]])


class TestInitialCondition:
    def test_vortex_patch_localised(self):
        ii, jj = np.ix_(np.arange(32), np.arange(32))
        omega, swirl = vortex_ic(ii, jj, 32, 32)
        assert omega.max() == pytest.approx(10.0, rel=0.05)
        assert omega[0, 0] < 1e-3  # far corner quiet
        assert swirl.max() > 0

    def test_periodic_in_z(self):
        ii, jj = np.ix_(np.arange(16), np.arange(16))
        omega, _ = vortex_ic(ii, jj, 16, 16)
        # Symmetric around the patch centre in the periodic direction.
        assert omega[8, 1] == pytest.approx(omega[8, 15], rel=1e-9)


class TestSolver:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_p_invariance(self, p):
        ref = spectralflow_archetype().run(1, 16, 16, steps=3, dt=1e-3).values[0]
        res = spectralflow_archetype().run(p, 16, 16, steps=3, dt=1e-3).values[0]
        assert res.max_vorticity == pytest.approx(ref.max_vorticity, rel=1e-10)
        assert np.allclose(res.swirl, ref.swirl, atol=1e-10)

    def test_stays_finite(self):
        res = spectralflow_archetype().run(2, 24, 32, steps=8, dt=5e-4).values[0]
        assert np.isfinite(res.max_vorticity)
        assert np.isfinite(res.swirl).all()

    def test_diffusion_damps_vorticity(self):
        strong = spectralflow_archetype().run(
            2, 16, 16, steps=6, dt=1e-3, nu=0.05
        ).values[0]
        weak = spectralflow_archetype().run(
            2, 16, 16, steps=6, dt=1e-3, nu=1e-5
        ).values[0]
        assert strong.max_vorticity < weak.max_vorticity

    def test_adaptive_dt(self):
        res = spectralflow_archetype().run(2, 16, 16, steps=3).values[0]
        assert res.time > 0

    def test_result_identical_on_all_ranks(self):
        res = spectralflow_archetype().run(4, 16, 16, steps=2, dt=1e-3)
        assert len({v.max_vorticity for v in res.values}) == 1

    def test_uses_row_and_col_ops(self):
        """The dataflow: two redistributions (rows<->cols) per step."""
        from repro.trace.analysis import summarize

        with_redistribution = spectralflow_archetype().run(
            4, 16, 16, steps=1, dt=1e-3, trace=True, gather=False
        )
        s = summarize(with_redistribution.tracer)
        # alltoall (redistribution) traffic dominates message counts.
        assert s.total_messages >= 2 * 4 * 3  # two alltoalls of 4 ranks + extras


class TestPerformance:
    def test_sequential_time_model(self):
        t = sequential_spectralflow_time(128, 128, 5, IBM_SP)
        assert t > 0
        assert sequential_spectralflow_time(128, 128, 10, IBM_SP) == pytest.approx(2 * t)
