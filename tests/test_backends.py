"""Backend registry: names, aliases, env resolution, runner plumbing."""

from __future__ import annotations

import threading
import time

import pytest

from repro import spmd_run
from repro.core.archetype import ExecutionMode
from repro.errors import DeadlockError, ReproError
from repro.runtime import backends
from tests.conftest import wait_until


def _rank_id(comm):
    return comm.rank


class TestRegistry:
    def test_canonical_names(self):
        assert backends.names() == ("deterministic", "fuzzed", "threads", "parallel")

    def test_aliases_resolve(self):
        assert backends.resolve("threaded") == "threads"
        assert backends.resolve("processes") == "parallel"

    def test_unknown_name_raises_listing_choices(self):
        with pytest.raises(ReproError, match="unknown backend 'warp'"):
            backends.resolve("warp")

    def test_none_resolves_env_default(self, monkeypatch):
        monkeypatch.delenv(backends.BACKEND_ENV, raising=False)
        assert backends.resolve(None) == "deterministic"
        monkeypatch.setenv(backends.BACKEND_ENV, "threaded")
        assert backends.resolve(None) == "threads"

    def test_create_in_process_backends(self):
        from repro.runtime.scheduler import (
            DeterministicBackend,
            FuzzedBackend,
            ThreadedBackend,
        )

        assert isinstance(backends.create("deterministic", 2), DeterministicBackend)
        assert isinstance(backends.create("fuzzed", 2, seed=3), FuzzedBackend)
        assert isinstance(backends.create("threads", 2), ThreadedBackend)

    def test_parallel_has_no_in_process_factory(self):
        assert backends.get("parallel").in_process is False
        with pytest.raises(ReproError, match="process-parallel"):
            backends.create("parallel", 2)


class TestRunnerPlumbing:
    def test_spmd_run_honours_env(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "threads")
        res = spmd_run(2, _rank_id)
        assert res.backend == "threads"
        assert res.values == [0, 1]

    def test_spmd_run_rejects_unknown_backend(self):
        with pytest.raises(ReproError, match="unknown backend"):
            spmd_run(2, _rank_id, backend="quantum")

    def test_result_records_backend(self):
        assert spmd_run(2, _rank_id).backend == "deterministic"
        assert spmd_run(2, _rank_id, backend="threaded").backend == "threads"

    def test_execution_modes_map_to_backends(self):
        assert ExecutionMode.SEQUENTIAL.backend == "deterministic"
        assert ExecutionMode.THREADS.backend == "threads"
        assert ExecutionMode.PARALLEL.backend == "parallel"

    def test_archetype_mode_none_uses_env(self, monkeypatch):
        import numpy as np

        from repro.apps.sorting.mergesort import one_deep_mergesort

        monkeypatch.setenv(backends.BACKEND_ENV, "threads")
        data = np.random.default_rng(0).integers(0, 100, size=64)
        res = one_deep_mergesort().run(2, data)
        assert res.backend == "threads"


def _starved_recv(comm):
    if comm.rank == 0:
        comm.recv(source=1, tag=9)  # never sent
    return comm.rank


class TestThreadedWait:
    """The condition-variable timeout fix (no 0.1 s polling loop)."""

    def test_deadlock_timeout_does_not_overshoot(self):
        start = time.monotonic()
        with pytest.raises(DeadlockError, match="presumed deadlock"):
            spmd_run(2, _starved_recv, backend="threads", deadlock_timeout=0.4)
        elapsed = time.monotonic() - start
        # one full-budget wait, not ~timeout + up-to-100ms of poll slop
        assert 0.4 <= elapsed < 5.0

    def test_delivery_wakes_waiter_promptly(self):
        waiting = threading.Event()

        def body(comm):
            if comm.rank == 0:
                # hold the send until rank 1 is at (or about to enter) its
                # blocking recv — deadline-based, not a fixed sleep
                wait_until(waiting.is_set, desc="rank 1 reaching its recv")
                comm.send(1, 42, tag=1)
                return None
            waiting.set()
            return comm.recv(source=0, tag=1)

        start = time.monotonic()
        res = spmd_run(2, body, backend="threads", deadlock_timeout=30.0)
        assert res.values[1] == 42
        # the waiter must wake on delivery, nowhere near the deadlock budget
        assert time.monotonic() - start < 5.0
