"""Ghost-boundary exchange."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import spmd_run
from repro.errors import DistributionError, RankFailedError
from repro.comm import CartGrid, block_layout, exchange_ghosts
from repro.comm.boundary import (
    add_ghosts,
    exchange_ghosts_many,
    exchange_ghosts_many_start,
    exchange_ghosts_start,
    interior,
    strip_ghosts,
)
from tests.conftest import run_both_backends


def _ghosted_sections(comm, full, grid_dims, ghost, fill=-1.0):
    lay = block_layout(full.shape, grid_dims)
    section = full[lay.slices(comm.rank)].copy()
    return lay, add_ghosts(section, ghost, fill=fill)


class TestHelpers:
    def test_add_strip_roundtrip(self):
        arr = np.arange(12.0).reshape(3, 4)
        padded = add_ghosts(arr, 2, fill=0.0)
        assert padded.shape == (7, 8)
        assert np.array_equal(strip_ghosts(padded, 2), arr)

    def test_interior_slices(self):
        arr = np.zeros((5, 6))
        assert interior(arr, 1) == (slice(1, 4), slice(1, 5))

    def test_negative_ghost(self):
        with pytest.raises(DistributionError):
            add_ghosts(np.zeros((2, 2)), -1)


class TestExchange2D:
    @pytest.mark.parametrize("dims", [(1, 1), (2, 1), (1, 3), (2, 2), (3, 2)])
    def test_ghosts_match_neighbours(self, dims):
        full = np.arange(8.0 * 12).reshape(8, 12)
        p = dims[0] * dims[1]

        def body(comm):
            lay, local = _ghosted_sections(comm, full, dims, ghost=1)
            exchange_ghosts(comm, local, CartGrid(dims), ghost=1)
            (r0, r1), (c0, c1) = lay.rect(comm.rank)
            # every interior-facing ghost must equal the global array
            if r0 > 0:
                assert np.array_equal(local[0, 1:-1], full[r0 - 1, c0:c1])
            if r1 < 8:
                assert np.array_equal(local[-1, 1:-1], full[r1, c0:c1])
            if c0 > 0:
                assert np.array_equal(local[1:-1, 0], full[r0:r1, c0 - 1])
            if c1 < 12:
                assert np.array_equal(local[1:-1, -1], full[r0:r1, c1])
            # owned data untouched
            assert np.array_equal(strip_ghosts(local, 1), full[r0:r1, c0:c1])
            return True

        assert all(spmd_run(p, body).values)

    def test_corners_filled(self):
        """Diagonal-neighbour data reaches corner ghosts (two-hop rule)."""
        full = np.arange(6.0 * 6).reshape(6, 6)

        def body(comm):
            lay, local = _ghosted_sections(comm, full, (2, 2), ghost=1)
            exchange_ghosts(comm, local, CartGrid((2, 2)), ghost=1)
            (r0, _), (c0, _) = lay.rect(comm.rank)
            if r0 > 0 and c0 > 0:
                assert local[0, 0] == full[r0 - 1, c0 - 1]
            return True

        assert all(spmd_run(4, body).values)

    def test_periodic_wraps(self):
        full = np.arange(4.0 * 4).reshape(4, 4)

        def body(comm):
            lay, local = _ghosted_sections(comm, full, (2, 1), ghost=1)
            exchange_ghosts(comm, local, CartGrid((2, 1)), ghost=1, periodic=(True, False))
            (r0, r1), _ = lay.rect(comm.rank)
            expected_above = full[(r0 - 1) % 4, :]
            assert np.array_equal(local[0, 1:-1], expected_above)
            return True

        assert all(spmd_run(2, body).values)

    def test_nonperiodic_edges_untouched(self):
        full = np.ones((4, 4))

        def body(comm):
            _, local = _ghosted_sections(comm, full, (2, 1), ghost=1, fill=-7.0)
            exchange_ghosts(comm, local, CartGrid((2, 1)), ghost=1)
            lay = block_layout(full.shape, (2, 1))
            (r0, r1), _ = lay.rect(comm.rank)
            if r0 == 0:
                assert np.all(local[0, :] == -7.0)
            if r1 == 4:
                assert np.all(local[-1, :] == -7.0)
            return True

        assert all(spmd_run(2, body).values)

    def test_ghost_width_two(self):
        full = np.arange(10.0 * 4).reshape(10, 4)

        def body(comm):
            lay, local = _ghosted_sections(comm, full, (2, 1), ghost=2)
            exchange_ghosts(comm, local, CartGrid((2, 1)), ghost=2)
            (r0, r1), _ = lay.rect(comm.rank)
            if r0 > 0:
                assert np.array_equal(local[0:2, 2:-2], full[r0 - 2 : r0, :])
            return True

        assert all(spmd_run(2, body).values)

    @given(
        rows=st.integers(4, 10),
        cols=st.integers(4, 10),
        px=st.integers(1, 3),
        py=st.integers(1, 2),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_interior_preserved(self, rows, cols, px, py):
        if rows < 2 * px or cols < 2 * py:
            return  # sections too thin for ghost width 1
        full = np.arange(float(rows * cols)).reshape(rows, cols)

        def body(comm):
            lay, local = _ghosted_sections(comm, full, (px, py), ghost=1)
            exchange_ghosts(comm, local, CartGrid((px, py)), ghost=1)
            return np.array_equal(strip_ghosts(local, 1), full[lay.slices(comm.rank)])

        assert all(spmd_run(px * py, body).values)


class TestExchange3D:
    def test_3d_faces(self):
        full = np.arange(4.0 * 4 * 4).reshape(4, 4, 4)

        def body(comm):
            lay, local = _ghosted_sections(comm, full, (2, 2, 1), ghost=1)
            exchange_ghosts(comm, local, CartGrid((2, 2, 1)), ghost=1)
            (a0, a1), (b0, b1), (c0, c1) = lay.rect(comm.rank)
            if a0 > 0:
                assert np.array_equal(local[0, 1:-1, 1:-1], full[a0 - 1, b0:b1, c0:c1])
            return np.array_equal(strip_ghosts(local, 1), full[lay.slices(comm.rank)])

        assert all(spmd_run(4, body).values)


class TestExchangeMany:
    def test_matches_individual_exchanges(self):
        full_a = np.arange(6.0 * 6).reshape(6, 6)
        full_b = full_a * 10

        def body(comm):
            lay, la = _ghosted_sections(comm, full_a, (2, 1), ghost=1)
            _, lb = _ghosted_sections(comm, full_b, (2, 1), ghost=1)
            la2, lb2 = la.copy(), lb.copy()
            cart = CartGrid((2, 1))
            exchange_ghosts_many(comm, [la, lb], cart, ghost=1)
            exchange_ghosts(comm, la2, cart, ghost=1)
            exchange_ghosts(comm, lb2, cart, ghost=1)
            return np.array_equal(la, la2) and np.array_equal(lb, lb2)

        assert all(spmd_run(2, body).values)

    def test_fewer_messages_than_individual(self):
        """Packing is the point: one message per neighbour per direction."""
        from repro.trace.analysis import summarize

        full = np.arange(8.0 * 4).reshape(8, 4)

        def packed(comm):
            _, la = _ghosted_sections(comm, full, (2, 1), ghost=1)
            _, lb = _ghosted_sections(comm, full, (2, 1), ghost=1)
            exchange_ghosts_many(comm, [la, lb], CartGrid((2, 1)), ghost=1)

        def unpacked(comm):
            _, la = _ghosted_sections(comm, full, (2, 1), ghost=1)
            _, lb = _ghosted_sections(comm, full, (2, 1), ghost=1)
            exchange_ghosts(comm, la, CartGrid((2, 1)), ghost=1)
            exchange_ghosts(comm, lb, CartGrid((2, 1)), ghost=1)

        a = spmd_run(2, packed, trace=True)
        b = spmd_run(2, unpacked, trace=True)
        assert summarize(a.tracer).total_messages < summarize(b.tracer).total_messages

    def test_shape_mismatch_rejected(self):
        def body(comm):
            exchange_ghosts_many(
                comm, [np.zeros((4, 4)), np.zeros((5, 4))], CartGrid((comm.size, 1))
            )

        with pytest.raises(RankFailedError) as info:
            spmd_run(2, body)
        assert isinstance(info.value.original, DistributionError)


class TestGhostCorrectness:
    """PR 3 satellite: wide ghosts, corners, periodic wrap, degenerate grids."""

    @pytest.mark.parametrize("ghost", [2, 3])
    def test_corner_ghosts_wide(self, ghost):
        """The sequential-axis exchange's two-hop rule fills corner ghost
        blocks of any width from the diagonal neighbour."""
        full = np.arange(12.0 * 12).reshape(12, 12)

        def body(comm):
            lay, local = _ghosted_sections(comm, full, (2, 2), ghost=ghost)
            exchange_ghosts(comm, local, CartGrid((2, 2)), ghost=ghost)
            (r0, r1), (c0, c1) = lay.rect(comm.rank)
            g = ghost
            if r0 >= g and c0 >= g:
                assert np.array_equal(local[0:g, 0:g], full[r0 - g : r0, c0 - g : c0])
            if r1 + g <= 12 and c1 + g <= 12:
                assert np.array_equal(
                    local[-g:, -g:], full[r1 : r1 + g, c1 : c1 + g]
                )
            if r0 >= g and c1 + g <= 12:
                assert np.array_equal(
                    local[0:g, -g:], full[r0 - g : r0, c1 : c1 + g]
                )
            # face ghosts of the full width
            if r0 >= g:
                assert np.array_equal(
                    local[0:g, g:-g], full[r0 - g : r0, c0:c1]
                )
            return True

        assert all(spmd_run(4, body).values)

    @pytest.mark.parametrize("ghost", [2])
    def test_periodic_wrap_wide(self, ghost):
        """Periodic axes wrap ghost slabs of width > 1 modulo the domain."""
        full = np.arange(8.0 * 8).reshape(8, 8)

        def body(comm):
            lay, local = _ghosted_sections(comm, full, (2, 2), ghost=ghost)
            exchange_ghosts(
                comm, local, CartGrid((2, 2)), ghost=ghost, periodic=True
            )
            (r0, r1), (c0, c1) = lay.rect(comm.rank)
            g = ghost
            rows_above = [(r0 - k) % 8 for k in range(g, 0, -1)]
            assert np.array_equal(local[0:g, g:-g], full[np.ix_(rows_above, range(c0, c1))])
            cols_left = [(c0 - k) % 8 for k in range(g, 0, -1)]
            assert np.array_equal(local[g:-g, 0:g], full[np.ix_(range(r0, r1), cols_left)])
            # periodic corners wrap on both axes (two-hop rule)
            assert np.array_equal(
                local[0:g, 0:g], full[np.ix_(rows_above, cols_left)]
            )
            return True

        assert all(spmd_run(4, body).values)

    def test_degenerate_single_rank_axis_periodic(self):
        """An axis with one rank and periodic wrap exchanges with itself."""
        full = np.arange(4.0 * 9).reshape(4, 9)

        def body(comm):
            lay, local = _ghosted_sections(comm, full, (1, 3), ghost=1)
            exchange_ghosts(
                comm, local, CartGrid((1, 3)), ghost=1, periodic=(True, False)
            )
            (r0, r1), (c0, c1) = lay.rect(comm.rank)
            # axis 0 is unsplit: the "neighbour" is this rank itself, and
            # the ghosts wrap this rank's own rows.
            assert np.array_equal(local[0, 1:-1], full[3, c0:c1])
            assert np.array_equal(local[-1, 1:-1], full[0, c0:c1])
            return True

        assert all(run_both_backends(3, body).values)

    def test_degenerate_single_rank_axis_nonperiodic(self):
        """An unsplit non-periodic axis leaves its ghosts untouched."""
        full = np.ones((4, 9))

        def body(comm):
            _, local = _ghosted_sections(comm, full, (1, 3), ghost=1, fill=-3.0)
            exchange_ghosts(comm, local, CartGrid((1, 3)), ghost=1)
            assert np.all(local[0, :] == -3.0)
            assert np.all(local[-1, :] == -3.0)
            return True

        assert all(spmd_run(3, body).values)

    def test_fully_degenerate_grid(self):
        """A 1x1 process grid with periodic wrap is pure self-exchange."""
        full = np.arange(3.0 * 4).reshape(3, 4)

        def body(comm):
            _, local = _ghosted_sections(comm, full, (1, 1), ghost=1)
            exchange_ghosts(comm, local, CartGrid((1, 1)), ghost=1, periodic=True)
            assert np.array_equal(local[0, 1:-1], full[-1, :])
            assert np.array_equal(local[1:-1, 0], full[:, -1])
            return True

        assert all(run_both_backends(1, body).values)


def _face_slabs(shape, ghost):
    """Selectors of the non-corner ghost slabs of every axis/side."""
    ndim = len(shape)
    out = []
    for axis in range(ndim):
        inner = tuple(
            slice(ghost, shape[d] - ghost) for d in range(ndim) if d != axis
        )
        for sel_axis in (slice(0, ghost), slice(shape[axis] - ghost, shape[axis])):
            sel = inner[:axis] + (sel_axis,) + inner[axis:]
            out.append(sel)
    return out


class TestOverlappedExchange:
    """The nonblocking face exchange agrees with the blocking path on the
    owned cells and every face ghost (corners are out of contract — the
    overlapped variant posts all axes at once, so there is no two-hop)."""

    @pytest.mark.chaos(seeds=8)
    @pytest.mark.parametrize("periodic", [False, True])
    def test_single_matches_blocking_faces(self, periodic):
        full = np.arange(8.0 * 12).reshape(8, 12)

        def body(comm):
            _, ov = _ghosted_sections(comm, full, (2, 2), ghost=2, fill=-5.0)
            _, bl = _ghosted_sections(comm, full, (2, 2), ghost=2, fill=-5.0)
            cart = CartGrid((2, 2))
            handle = exchange_ghosts_start(comm, ov, cart, ghost=2, periodic=periodic)
            handle.wait()
            assert handle.done
            handle.wait()  # idempotent
            exchange_ghosts(comm, bl, cart, ghost=2, periodic=periodic)
            assert np.array_equal(strip_ghosts(ov, 2), strip_ghosts(bl, 2))
            for sel in _face_slabs(ov.shape, 2):
                assert np.array_equal(ov[sel], bl[sel])
            return True

        assert all(run_both_backends(4, body).values)

    @pytest.mark.chaos(seeds=8)
    def test_packed_matches_blocking_faces(self):
        full_a = np.arange(6.0 * 8).reshape(6, 8)
        full_b = full_a * -2.0

        def body(comm):
            _, oa = _ghosted_sections(comm, full_a, (2, 1), ghost=1)
            _, ob = _ghosted_sections(comm, full_b, (2, 1), ghost=1)
            _, ba = _ghosted_sections(comm, full_a, (2, 1), ghost=1)
            _, bb = _ghosted_sections(comm, full_b, (2, 1), ghost=1)
            cart = CartGrid((2, 1))
            handle = exchange_ghosts_many_start(comm, [oa, ob], cart, ghost=1)
            handle.wait()
            exchange_ghosts_many(comm, [ba, bb], cart, ghost=1)
            for ov, bl in ((oa, ba), (ob, bb)):
                assert np.array_equal(strip_ghosts(ov, 1), strip_ghosts(bl, 1))
                for sel in _face_slabs(ov.shape, 1):
                    assert np.array_equal(ov[sel], bl[sel])
            return True

        assert all(run_both_backends(2, body).values)

    def test_concurrent_handles_pair_correctly(self):
        """Two in-flight exchanges of different arrays bind FIFO per
        channel and do not cross-deliver."""
        full_a = np.arange(8.0 * 4).reshape(8, 4)
        full_b = full_a + 100.0

        def body(comm):
            _, la = _ghosted_sections(comm, full_a, (2, 1), ghost=1)
            _, lb = _ghosted_sections(comm, full_b, (2, 1), ghost=1)
            cart = CartGrid((2, 1))
            ha = exchange_ghosts_start(comm, la, cart, ghost=1)
            hb = exchange_ghosts_start(comm, lb, cart, ghost=1)
            hb.wait()
            ha.wait()
            lay = block_layout(full_a.shape, (2, 1))
            (r0, r1), _ = lay.rect(comm.rank)
            if r0 > 0:
                assert np.array_equal(la[0, 1:-1], full_a[r0 - 1, :])
                assert np.array_equal(lb[0, 1:-1], full_b[r0 - 1, :])
            return True

        assert all(run_both_backends(2, body).values)


class TestExchangeErrors:
    def test_zero_ghost_rejected(self):
        def body(comm):
            exchange_ghosts(comm, np.zeros((4, 4)), CartGrid((comm.size, 1)), ghost=0)

        with pytest.raises(RankFailedError) as info:
            spmd_run(2, body)
        assert isinstance(info.value.original, DistributionError)

    def test_grid_size_mismatch(self):
        def body(comm):
            exchange_ghosts(comm, np.zeros((4, 4)), CartGrid((3, 1)), ghost=1)

        with pytest.raises(RankFailedError) as info:
            spmd_run(2, body)
        assert isinstance(info.value.original, DistributionError)

    def test_too_small_local_array(self):
        def body(comm):
            exchange_ghosts(comm, np.zeros((1, 4)), CartGrid((comm.size, 1)), ghost=1)

        with pytest.raises(RankFailedError) as info:
            spmd_run(2, body)
        assert isinstance(info.value.original, DistributionError)

    def test_dim_mismatch(self):
        def body(comm):
            exchange_ghosts(comm, np.zeros((4,)), CartGrid((comm.size, 1)), ghost=1)

        with pytest.raises(RankFailedError) as info:
            spmd_run(2, body)
        assert isinstance(info.value.original, DistributionError)
