"""Pipeline/farm archetype: wiring, back-pressure, collection, EOS.

The contract battery (digests, clocks, cross-backend identity) lives in
``test_archetype_contract.py``; this file covers the archetype's own
semantics — stage geometry, credit windows bounding mailbox depth,
ordered vs. unordered collection, and end-of-stream through farms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.imagepipe import imagepipe_archetype, make_images, sequential_reference
from repro.apps.knapfarm import best_value, knapsack_farm, random_instances
from repro.apps.knapsack import dp_reference
from repro.core.pipeline import (
    FarmStage,
    PipelineArchetype,
    Stage,
    StateAccess,
)
from repro.errors import ArchetypeError
from repro.machines.catalog import IBM_SP
from repro.obs.metrics import scoped_registry


def _inc(ctx, x, state):
    return x + 1


def _double(ctx, x, state):
    return x * 2


def _tally(ctx, x, state):
    return x, state + x


def _tally_stage(**kwargs):
    return Stage(
        "tally",
        _tally,
        state_access=StateAccess.ACCUMULATOR,
        init_state=lambda w: 0,
        combine=lambda a, b: a + b,
        **kwargs,
    )


class TestWiring:
    def test_rank_layout(self):
        p = PipelineArchetype([Stage("a", _inc), FarmStage("b", _inc, workers=3)])
        # emitter + 1 + 3 workers + collector
        assert p.nprocs == 6
        assert p._role(0) == ("emit", -1, 0)
        assert p._role(1) == ("work", 0, 0)
        assert p._role(2) == ("work", 1, 0)
        assert p._role(4) == ("work", 1, 2)
        assert p._role(5) == ("collect", 2, 0)

    def test_wrong_nprocs_rejected(self):
        p = PipelineArchetype([Stage("a", _inc)])
        with pytest.raises(ArchetypeError, match="exactly 3 ranks"):
            p.run(4, [1, 2, 3])

    def test_empty_stage_list_rejected(self):
        with pytest.raises(ArchetypeError, match="at least one stage"):
            PipelineArchetype([])

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ArchetypeError, match="unique"):
            PipelineArchetype([Stage("a", _inc), Stage("a", _double)])

    def test_serial_stage_cannot_be_farmed(self):
        with pytest.raises(ArchetypeError, match="serial state cannot be farmed"):
            PipelineArchetype(
                [FarmStage("s", _tally, state_access=StateAccess.SERIAL, workers=2)]
            )

    def test_accumulator_requires_combine(self):
        with pytest.raises(ArchetypeError, match="requires a combine"):
            PipelineArchetype(
                [Stage("t", _tally, state_access=StateAccess.ACCUMULATOR)]
            )

    def test_window_must_be_positive(self):
        with pytest.raises(ArchetypeError, match="window"):
            PipelineArchetype([Stage("a", _inc)], window=0)
        with pytest.raises(ArchetypeError, match="window"):
            PipelineArchetype([Stage("a", _inc, window=0)])

    def test_stage_results_and_reports(self):
        p = PipelineArchetype([FarmStage("double", _double, workers=3), _tally_stage()])
        items = list(range(10))
        res = p.run(p.nprocs, items)
        assert p.output(res) == [x * 2 for x in items]
        reports = p.reports(res)
        # round-robin ownership: worker k%3 gets items k, k+3, ...
        assert [r.processed for r in reports["double"]] == [4, 3, 3]
        assert sum(r.processed for r in reports["tally"]) == 10
        assert p.accumulated_state(res, "tally") == sum(x * 2 for x in items)

    def test_accumulated_state_lookup_errors(self):
        p = PipelineArchetype([Stage("a", _inc), _tally_stage()])
        res = p.run(p.nprocs, [1, 2])
        with pytest.raises(ArchetypeError, match="no stage named"):
            p.accumulated_state(res, "missing")
        with pytest.raises(ArchetypeError, match="not accumulator"):
            p.accumulated_state(res, "a")


class TestBackPressure:
    """Credit windows bound mailbox depth; no window lets it grow with N."""

    N = 32

    def _max_depth(self, window: int) -> float:
        p = PipelineArchetype([Stage("work", _inc, work_cost=1000.0)], window=window)
        with scoped_registry() as reg:
            p.run(p.nprocs, list(range(self.N)), machine=IBM_SP)
            depth = reg.get("runtime.mailbox.depth")
            assert depth is not None and depth.count > 0
            return depth.snapshot()["max"]

    def test_window_bounds_depth(self):
        # a rank's mailbox holds at most `window` data messages plus
        # `window` returning credits (the +1 is the delivery being observed)
        for window in (1, 2, 4):
            assert self._max_depth(window) <= 2 * window + 1

    def test_unbounded_window_fills_queue(self):
        assert self._max_depth(self.N + 8) >= self.N

    def test_credit_waits_counted(self):
        p = PipelineArchetype([Stage("work", _inc, work_cost=1000.0)], window=2)
        with scoped_registry() as reg:
            p.run(p.nprocs, list(range(16)), machine=IBM_SP)
            assert reg.get("core.pipeline.credit_waits").value > 0


class TestCollection:
    def test_ordered_preserves_stream_order(self):
        p = PipelineArchetype([FarmStage("double", _double, workers=3)], window=2)
        items = list(range(17))
        assert p.output(p.run(p.nprocs, items)) == [x * 2 for x in items]

    def test_unordered_preserves_multiset(self):
        p = PipelineArchetype(
            [FarmStage("double", _double, workers=3)], window=2, ordered=False
        )
        items = list(range(17))
        out = p.output(p.run(p.nprocs, items))
        assert sorted(out) == [x * 2 for x in items]

    @pytest.mark.chaos(seeds=8)
    def test_unordered_multiset_schedule_independent(self):
        p = PipelineArchetype(
            [FarmStage("double", _double, workers=2)], window=2, ordered=False
        )
        out = p.output(p.run(p.nprocs, list(range(9))))
        assert sorted(out) == [x * 2 for x in range(9)]

    def test_per_stage_window_override(self):
        p = PipelineArchetype(
            [Stage("a", _inc, window=1), Stage("b", _inc)], window=3
        )
        assert p._window_of(0) == 1
        assert p._window_of(1) == 3
        assert p._window_of(2) == 3  # collector link uses the default
        res = p.run(p.nprocs, list(range(8)))
        assert p.output(res) == [x + 2 for x in range(8)]


class TestEndOfStream:
    def test_empty_stream(self):
        p = PipelineArchetype([FarmStage("double", _double, workers=3), _tally_stage()])
        res = p.run(p.nprocs, [])
        assert p.output(res) == []
        assert p.accumulated_state(res, "tally") == 0
        assert all(r.processed == 0 for rs in p.reports(res).values() for r in rs)

    def test_fewer_items_than_workers(self):
        p = PipelineArchetype([FarmStage("double", _double, workers=4)])
        res = p.run(p.nprocs, [10, 20])
        assert p.output(res) == [20, 40]
        assert [r.processed for r in p.reports(res)["double"]] == [1, 1, 0, 0]

    def test_eos_through_consecutive_farms(self):
        p = PipelineArchetype(
            [
                FarmStage("double", _double, workers=3),
                FarmStage("inc", _inc, workers=2),
            ],
            window=1,
        )
        items = list(range(11))
        res = p.run(p.nprocs, items)
        assert p.output(res) == [x * 2 + 1 for x in items]

    def test_empty_stream_unordered(self):
        p = PipelineArchetype(
            [FarmStage("double", _double, workers=3)], ordered=False
        )
        assert p.output(p.run(p.nprocs, [])) == []


class TestApps:
    def test_imagepipe_matches_sequential_reference(self):
        images = make_images(5, (8, 8), seed=11)
        p = imagepipe_archetype(blur_workers=2, window=2)
        res = p.run(p.nprocs, images, machine=IBM_SP)
        ref_out, ref_stats = sequential_reference(images)
        for got, want in zip(p.output(res), ref_out):
            assert np.array_equal(got, want)
        assert p.accumulated_state(res, "stats") == ref_stats

    def test_knapfarm_matches_dp_reference(self):
        instances = random_instances(4, nitems=10, seed=7)
        p = knapsack_farm(workers=2, window=2)
        res = p.run(p.nprocs, instances, machine=IBM_SP)
        refs = [dp_reference(inst) for inst in instances]
        got = [-r.value for r in p.output(res)]
        assert got == pytest.approx(refs, abs=1e-9)
        assert best_value(p, res) == pytest.approx(max(refs), abs=1e-9)

    @pytest.mark.chaos(seeds=8)
    def test_imagepipe_schedule_independent(self):
        images = make_images(4, (8, 8), seed=5)
        p = imagepipe_archetype(blur_workers=2, window=2)
        res = p.run(p.nprocs, images, machine=IBM_SP)
        ref_out, ref_stats = sequential_reference(images)
        for got, want in zip(p.output(res), ref_out):
            assert np.array_equal(got, want)
        assert p.accumulated_state(res, "stats") == ref_stats


class TestBackends:
    def test_values_and_clocks_identical(self, backend):
        p = PipelineArchetype(
            [FarmStage("double", _double, workers=2), _tally_stage()], window=2
        )
        items = list(range(12))
        det = p.run(p.nprocs, items, machine=IBM_SP)
        other = p.run(p.nprocs, items, machine=IBM_SP, mode=backend_mode(backend))
        assert p.output(other) == p.output(det)
        assert other.times == det.times


def backend_mode(backend: str) -> str:
    return {"deterministic": "sequential"}.get(backend, backend)
