#!/usr/bin/env python
"""Branch-and-bound demo: the nondeterministic archetype of paper §6.

Solves a 0/1 knapsack instance with the manager-worker branch-and-bound
archetype at several processor counts, showing the archetype's contract
for nondeterministic patterns: node counts (the dataflow) vary with the
configuration, the optimum never does.

Run:  python examples/knapsack_bnb_demo.py
"""

from repro import IBM_SP
from repro.apps.knapsack import dp_reference, knapsack_bnb, random_instance


def main() -> None:
    inst = random_instance(22, seed=12)
    exact = dp_reference(inst)
    print(
        f"knapsack: {inst.nitems} items, capacity {inst.capacity:.0f}, "
        f"DP optimum = {exact:.3f}"
    )
    print("(loosened bound -> wide frontier; LP-strength bound cost model)\n")
    print(f"{'P':>4} {'optimum':>10} {'nodes expanded':>15} {'modelled time':>14}")
    for p in (1, 2, 4, 8, 16):
        result = knapsack_bnb(
            inst, chunk=4, bound_flops=1e5, bound_slack=0.03
        ).run(p, machine=IBM_SP)
        best = result.values[0]
        assert abs(-best.value - exact) < 1e-9, "optimality violated!"
        print(
            f"{p:>4} {-best.value:>10.3f} {best.expanded:>15} "
            f"{result.elapsed * 1e3:>11.2f} ms"
        )
    print(
        "\nOne rank manages the open list, the rest expand nodes; the\n"
        "exploration schedule is nondeterministic but the optimum is\n"
        "identical in every configuration — the archetype's guarantee."
    )


if __name__ == "__main__":
    main()
