#!/usr/bin/env python
"""FDTD electromagnetics demo (paper §4.5.2).

A sinusoidal source at the centre of a 3-D PEC cavity radiates for a few
hundred leapfrog steps on the 3-D mesh archetype; the demo prints the
total field energy (a copy-consistent global) and renders the central
Ez slice, showing the expanding spherical wavefront.

Run:  python examples/fdtd_demo.py
"""

import numpy as np

from repro import IBM_SP
from repro.apps.fdtd import fdtd_archetype
from repro.util.asciiart import render_field

N = 40
PROCS = 8


def main() -> None:
    arch = fdtd_archetype()
    for steps in (20, 60):
        result = arch.run(
            PROCS, N, N, N, steps=steps, source_freq=0.05, machine=IBM_SP
        )
        state = result.values[0]
        mid = state.ez[:, :, N // 2]
        print(f"\n=== {steps} steps: field energy = {state.energy:.4f} ===")
        amax = float(np.abs(mid).max()) or 1.0
        print(render_field(np.abs(mid), width=64, height=20, vmin=0, vmax=amax))


if __name__ == "__main__":
    main()
