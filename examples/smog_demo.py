#!/usr/bin/env python
"""Airshed smog model demo (paper §4.5.4).

Simulates a day of photochemistry over a basin with two urban emission
hot spots and a rotating sea-breeze wind: NO emissions titrate ozone
near the sources at night, then midday photolysis regenerates it
downwind — the classic urban-plume pattern the CIT airshed model
resolves.  Runs on 6 ranks of the modelled Intel Paragon.

Run:  python examples/smog_demo.py
"""

from repro import INTEL_PARAGON
from repro.apps.smog import smog_archetype
from repro.util.asciiart import render_field

N = 48
PROCS = 6
STEPS_PER_PHASE = 125  # dt=2e-3 -> a quarter day per phase


def main() -> None:
    arch = smog_archetype()
    for phases, label in ((1, "dawn"), (2, "midday"), (3, "dusk")):
        result = arch.run(
            PROCS, N, N, steps=phases * STEPS_PER_PHASE, machine=INTEL_PARAGON
        )
        state = result.values[0]
        print(
            f"\n=== {label}: peak O3 so far {state.peak_ozone:.3f}, "
            f"burden {state.total_ozone:.1f} ==="
        )
        print(render_field(state.ozone, width=64, height=16))


if __name__ == "__main__":
    main()
