#!/usr/bin/env python
"""2-D FFT demo (paper §4.4): spectral low-pass filtering.

Builds a noisy synthetic "image", transforms it with the distributed
2-D FFT (row FFTs -> redistribute -> column FFTs), zeroes the high
frequencies, transforms back, and renders before/after.  All the
interprocess communication lives in the archetype's redistribution.

Run:  python examples/fft_filter_demo.py
"""

import numpy as np

from repro import IBM_SP
from repro.apps.fft2d import fft2d_archetype
from repro.apps.fftlib import fft_frequencies
from repro.util.asciiart import render_field

N = 64
PROCS = 8
CUTOFF = 0.12  # keep |f| below this fraction of the Nyquist band


def main() -> None:
    rng = np.random.default_rng(3)
    yy, xx = np.mgrid[0:N, 0:N] / N
    image = (
        np.sin(2 * np.pi * 2 * xx) * np.cos(2 * np.pi * 3 * yy)
        + 0.8 * rng.normal(size=(N, N))
    )

    arch = fft2d_archetype()
    spectrum = arch.run(PROCS, image.astype(complex), 1, machine=IBM_SP).values[0]

    fr = fft_frequencies(N)
    mask = (np.abs(fr)[:, None] < CUTOFF) & (np.abs(fr)[None, :] < CUTOFF)
    filtered_spectrum = spectrum * mask

    smooth = arch.run(PROCS, filtered_spectrum, 1, inverse=True).values[0].real

    print("noisy input:")
    print(render_field(image, width=64, height=16))
    print("\nlow-pass filtered (distributed FFT round trip):")
    print(render_field(smooth, width=64, height=16))
    residual = np.abs(smooth - image).mean()
    print(f"\nmean |difference| vs input: {residual:.3f} (noise removed)")


if __name__ == "__main__":
    main()
