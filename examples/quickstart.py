#!/usr/bin/env python
"""Quickstart: sort an array with the one-deep divide-and-conquer archetype.

The archetype supplies every parallel ingredient (splitter computation,
all-to-all redistribution, process coordination); the application code is
purely sequential.  The same program runs under the deterministic
scheduler (the paper's debuggable "sequential execution") or free
threads, on any modelled machine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import INTEL_DELTA
from repro.apps.sorting import one_deep_mergesort, sequential_sort_time

NPROCS = 8
N_KEYS = 200_000


def main() -> None:
    rng = np.random.default_rng(42)
    data = rng.integers(0, 10**9, size=N_KEYS)

    archetype = one_deep_mergesort()
    result = archetype.run(NPROCS, data, machine=INTEL_DELTA)

    # Rank i returns the keys between splitters i-1 and i; the sorted
    # array is the concatenation of the per-rank results.
    merged = np.concatenate(result.values)
    assert np.array_equal(merged, np.sort(data)), "sorted output mismatch"

    t_seq = sequential_sort_time(N_KEYS, INTEL_DELTA)
    print(f"sorted {N_KEYS:,} keys on {NPROCS} ranks of {INTEL_DELTA.name}")
    print(f"  sequential (modelled) : {t_seq * 1e3:9.2f} ms")
    print(f"  parallel   (modelled) : {result.elapsed * 1e3:9.2f} ms")
    print(f"  speedup               : {t_seq / result.elapsed:9.2f}x")
    print(f"  per-rank key ranges   : "
          f"{[(int(v[0]), int(v[-1])) if v.size else None for v in result.values]}")


if __name__ == "__main__":
    main()
