#!/usr/bin/env python
"""The paper's Figure 6 story at example scale: one-deep vs traditional.

Sorts the same keys with the traditional recursive parallelisation
(Figure 1: data starts on one rank, halves ship down a process tree) and
the one-deep archetype (Figures 4/5: data starts distributed, one
splitter-based merge), printing the speedup table and the message
statistics that explain the gap.

Run:  python examples/sorting_comparison.py
"""

import numpy as np

from repro import INTEL_DELTA
from repro.apps.sorting import (
    one_deep_mergesort,
    sequential_sort_time,
    traditional_mergesort,
)
from repro.trace.analysis import summarize


def main() -> None:
    rng = np.random.default_rng(7)
    data = rng.integers(0, 2**40, size=1 << 17)
    t_seq = sequential_sort_time(data.size, INTEL_DELTA)

    print(f"sorting {data.size:,} keys on the modelled {INTEL_DELTA.describe()}")
    print(f"sequential mergesort: {t_seq:.3f} s (modelled)\n")
    print(f"{'P':>4} {'one-deep':>10} {'traditional':>12} {'od msgs':>8} {'tr bytes/od bytes':>18}")

    for p in (2, 4, 8, 16, 32, 64):
        onedeep = one_deep_mergesort().run(p, data, machine=INTEL_DELTA, trace=True)
        tree = traditional_mergesort().run(p, data, machine=INTEL_DELTA, trace=True)
        s_od, s_tr = summarize(onedeep.tracer), summarize(tree.tracer)
        print(
            f"{p:>4} {t_seq / onedeep.elapsed:>9.1f}x {t_seq / tree.elapsed:>11.1f}x "
            f"{s_od.total_messages:>8} {s_tr.total_bytes / max(s_od.total_bytes, 1):>17.1f}x"
        )

    print(
        "\nThe tree ships every key ~log2(P) times through a serialised root;\n"
        "the one-deep merge moves each key once, all ranks at a time."
    )


if __name__ == "__main__":
    main()
