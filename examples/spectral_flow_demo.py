#!/usr/bin/env python
"""Spectral flow demo: the paper's Figure 21 ("azimuthal velocity in a
swirling flow").

Runs the axisymmetric spectral incompressible-flow code — Fourier in the
periodic axial direction, finite differences radially, with two data
redistributions per step — and renders the azimuthal (swirl) velocity.

Run:  python examples/spectral_flow_demo.py
"""

from pathlib import Path

import numpy as np

from repro import IBM_SP
from repro.apps.spectralflow import spectralflow_archetype
from repro.util.asciiart import render_field

NR, NZ = 64, 64
PROCS = 8


def main() -> None:
    arch = spectralflow_archetype()
    for steps in (0, 30):
        result = arch.run(PROCS, NR, NZ, steps=steps, machine=IBM_SP)
        state = result.values[0]
        print(
            f"\n=== after {steps} steps (t = {state.time:.4f}, "
            f"max |vorticity| = {state.max_vorticity:.2f}) ==="
        )
        print(render_field(state.swirl, width=72, height=20))
        if steps == 30:
            out = Path("spectral_swirl.npy")
            np.save(out, state.swirl)
            print(f"\nswirl field saved to {out}")


if __name__ == "__main__":
    main()
