#!/usr/bin/env python
"""Compressible-flow demo: the paper's Figure 19 scenario.

A Mach-2 shock propagates into gas with a sinusoidal density interface;
the run reproduces the physics of "density as a shock interacts with a
sinusoidal density gradient" on the mesh archetype, rendering density
snapshots as ASCII art and saving the final fields.

Run:  python examples/cfd_shock_demo.py
"""

from pathlib import Path

import numpy as np

from repro import INTEL_DELTA
from repro.apps.cfd import cfd_archetype
from repro.util.asciiart import render_field

NX, NY = 128, 48
PROCS = 8


def main() -> None:
    arch = cfd_archetype()
    for steps in (0, 60, 180):
        result = arch.run(PROCS, NX, NY, steps, ic="shock", machine=INTEL_DELTA)
        state = result.values[0]
        print(
            f"\n=== t = {state.time:.4f} ({steps} steps, "
            f"{PROCS} ranks, modelled {result.elapsed:.2f} s on the Delta) ==="
        )
        # Transpose so x runs horizontally like the paper's figures.
        print(render_field(state.density.T, width=96, height=18))
        if steps == 180:
            out = Path("cfd_shock_density.npy")
            np.save(out, state.density)
            print(f"\nfinal density field saved to {out}")

    # The paper's second CFD code (Figure 20): the same interaction with
    # ideal-dissociating-gas chemistry; render the dissociation field.
    result = arch.run(
        PROCS, NX, NY, 180, ic="shock", reactive=True, machine=INTEL_DELTA
    )
    state = result.values[0]
    print(f"\n=== IDG chemistry, t = {state.time:.4f}: dissociation fraction ===")
    print(render_field(state.progress.T, width=96, height=18, vmin=0.0, vmax=1.0))


if __name__ == "__main__":
    main()
