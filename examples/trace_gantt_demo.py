#!/usr/bin/env python
"""Visualising the archetypes' concurrency structure (paper Figures 1 vs 2).

Traces one-deep and traditional mergesort on 8 ranks and renders their
virtual-time Gantt charts.  The pictures are the paper's Figure 1 and
Figure 2 made empirical: the traditional tree's concurrency ramps up and
down (long idle tails at the top of the tree), while the one-deep
version keeps every rank busy through split/solve/merge.

Run:  python examples/trace_gantt_demo.py
"""

import numpy as np

from repro import INTEL_DELTA
from repro.apps.sorting import one_deep_mergesort, traditional_mergesort
from repro.trace import phase_breakdown, render_gantt


def main() -> None:
    rng = np.random.default_rng(1)
    data = rng.integers(0, 2**40, size=1 << 16)

    onedeep = one_deep_mergesort().run(8, data, machine=INTEL_DELTA, trace=True)
    tree = traditional_mergesort().run(8, data, machine=INTEL_DELTA, trace=True)

    print("one-deep mergesort (every rank busy through all three phases):\n")
    print(render_gantt(onedeep.tracer))
    print("\nphase breakdown (summed charged compute):")
    for label, t in sorted(phase_breakdown(onedeep.tracer).items()):
        print(f"  {label:>18}: {t * 1e3:8.2f} ms")

    print("\ntraditional mergesort (the Figure 1 tree: idle tails everywhere):\n")
    print(render_gantt(tree.tracer))
    print(
        f"\nvirtual makespans: one-deep {onedeep.elapsed * 1e3:.1f} ms, "
        f"traditional {tree.elapsed * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
