#!/usr/bin/env python
"""Archetype composition: task-parallel composition of data-parallel parts.

Paper §6 proposes "task-parallel compositions of data-parallel
computations" as future work (and cites the authors' group-communication
archetype paper).  With sub-communicators this falls out naturally: a
12-rank machine splits into a 4-rank *sorting* task and an 8-rank
*Poisson* task; each group runs its archetype program concurrently in an
isolated communication context, and the results meet on the world
communicator.

Run:  python examples/task_data_composition.py
"""

import numpy as np

from repro import IBM_SP, spmd_run
from repro.apps.sorting.mergesort import _merge_phase
from repro.comm.reductions import MAX, SUM
from repro.core.meshspectral import MeshContext
from repro.core.onedeep import OneDeepDC
from repro.util.partition import split_evenly

NPROCS = 12
SORT_RANKS = 4
N_KEYS = 50_000
GRID = 64


def pipeline(comm, data):
    task = "sort" if comm.rank < SORT_RANKS else "poisson"
    sub = comm.split(task)

    if task == "sort":
        # Data-parallel task 1: one-deep mergesort on 4 ranks.
        arch = OneDeepDC(solve=lambda x: np.sort(x, kind="stable"), merge=_merge_phase())
        piece = arch.body(sub, split_evenly(data, sub.size))
        summary = ("sorted-keys", float(piece.size))
    else:
        # Data-parallel task 2: Jacobi sweeps on 8 ranks.
        mesh = MeshContext(sub)
        u = mesh.grid((GRID, GRID), ghost=1)
        unew = u.like()
        u.fill_from(lambda i, j: (i == 0) * 1.0)
        unew.interior[...] = u.interior
        for _ in range(50):
            mesh.stencil_op(
                lambda out, s: out.__setitem__(
                    ..., 0.25 * (s[-1, 0] + s[1, 0] + s[0, -1] + s[0, 1])
                ),
                unew,
                u,
                flops_per_point=6.0,
            )
            region = u.interior_intersection(1)
            u.interior[region] = unew.interior[region]
        heat = mesh.grid_reduce(u, np.sum, SUM, identity=0.0)
        summary = ("interior-heat", float(heat) if sub.rank == 0 else 0.0)

    # Task results meet on the world communicator.
    keys_total = comm.allreduce(summary[1] if summary[0] == "sorted-keys" else 0.0, SUM)
    heat_total = comm.allreduce(summary[1] if summary[0] == "interior-heat" else 0.0, MAX)
    return (keys_total, heat_total)


def main() -> None:
    rng = np.random.default_rng(5)
    data = rng.integers(0, 10**9, size=N_KEYS)
    result = spmd_run(NPROCS, pipeline, args=(data,), machine=IBM_SP)
    keys, heat = result.values[0]
    print(f"composed tasks on {NPROCS} ranks of {IBM_SP.name}:")
    print(f"  sort task    : {int(keys):,} keys sorted across {SORT_RANKS} ranks")
    print(f"  poisson task : interior heat {heat:.2f} on {NPROCS - SORT_RANKS} ranks")
    print(f"  modelled makespan: {result.elapsed * 1e3:.2f} ms")
    print(
        "\nEach task ran its archetype in an isolated communication context;\n"
        "the makespan is the slower task (task parallelism), not the sum."
    )


if __name__ == "__main__":
    main()
