#!/usr/bin/env python
"""Poisson solver demo (paper §4.4.3).

Solves the Poisson problem on the unit square with a hot top edge and a
point heat source, on 9 ranks of the modelled IBM SP, and renders the
temperature field as ASCII art.

Run:  python examples/poisson_demo.py
"""

import numpy as np

from repro import IBM_SP
from repro.apps.poisson import poisson_archetype
from repro.util.asciiart import render_field

N = 48


def source(i, j):
    """A concentrated negative source (heating) off-centre."""
    shape = np.broadcast(i, j).shape
    ii = np.broadcast_to(i, shape)
    jj = np.broadcast_to(j, shape)
    return np.where((np.abs(ii - 30) < 2) & (np.abs(jj - 32) < 2), -4000.0, 0.0)


def boundary(i, j):
    """Hot top edge, cold everywhere else."""
    shape = np.broadcast(i, j).shape
    return np.where(np.broadcast_to(i, shape) == 0, 1.0, 0.0)


def main() -> None:
    result = poisson_archetype().run(
        9, N, N, f=source, g=boundary, tolerance=1e-5, machine=IBM_SP
    )
    state = result.values[0]
    print(
        f"Jacobi iteration converged in {state.iterations} sweeps "
        f"(diffmax={state.diffmax:.2e}) on 9 ranks of {IBM_SP.name}"
    )
    print(f"modelled parallel time: {result.elapsed * 1e3:.1f} ms\n")
    print(render_field(state.solution))


if __name__ == "__main__":
    main()
