# Convenience entry points.  PYTHONPATH is set so targets work without an
# editable install (the offline container has no `wheel`).
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify test obs-smoke chaos bench

# Default gate: tier-1 tests plus the observability smoke check.
verify: test obs-smoke

# Tier-1 gate: the full suite (includes the chaos-marked tests at the
# default 4 seeds and the verify subsystem's own tests) — stays fast.
test:
	$(PYTHON) -m pytest -x -q

# Observability smoke: trace a small Poisson + mergesort run, export
# Chrome/Perfetto trace JSON, validate it against the trace-event
# structure, and check the critical-path invariant (path == makespan).
obs-smoke:
	$(PYTHON) -m repro.obs --smoke

# The chaos suite on its own: the 4-seed smoke sweep over the flagship
# apps + racy controls, then every @pytest.mark.chaos test.
chaos:
	$(PYTHON) -m repro.verify --smoke
	$(PYTHON) -m pytest -q -m chaos

# Reduced-scale sweep over every figure; writes BENCH_PR2.json.
bench:
	$(PYTHON) -m repro.bench all
