# Convenience entry points.  PYTHONPATH is set so targets work without an
# editable install (the offline container has no `wheel`).
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify test obs-smoke chaos bench bench-wallclock bench-parallel \
	bench-pipeline bench-kernels serve-smoke tune-smoke coverage lint

# Default gate: lint (when ruff is available), tier-1 tests, and the
# observability smoke check.
verify: lint test obs-smoke

# Ruff over src/ and tests/ (configured in pyproject.toml).  The offline
# container may not ship ruff; CI installs it, so skip gracefully here.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Tier-1 gate: the full suite (includes the chaos-marked tests at the
# default 4 seeds and the verify subsystem's own tests) — stays fast.
test:
	$(PYTHON) -m pytest -x -q

# Observability smoke: trace a small Poisson + mergesort run, export
# Chrome/Perfetto trace JSON, validate it against the trace-event
# structure, and check the critical-path invariant (path == makespan).
obs-smoke:
	$(PYTHON) -m repro.obs --smoke

# The chaos suite on its own: the 4-seed smoke sweep over the flagship
# apps + racy controls, then every @pytest.mark.chaos test.
chaos:
	$(PYTHON) -m repro.verify --smoke
	$(PYTHON) -m pytest -q -m chaos

# Reduced-scale sweep over every figure plus the blocking-vs-overlapped
# exchange ablation, the pipeline farm-width sweep, the host-time
# ablations, and the autotuning ablation; writes BENCH_PR9.json.
bench:
	$(PYTHON) -m repro.bench all

# Pipeline smoke: the image-pipeline throughput/latency sweep on both
# modelled machines (virtual time only — fast everywhere).
bench-pipeline:
	$(PYTHON) -m repro.bench pipeline

# Job-server smoke: start a server on an ephemeral port with a
# throwaway cache, submit the same job twice (the second must be a
# cache hit with an identical digest and no new worker dispatch), then
# a third whose sampled re-execution must verify the cache bitwise,
# and shut down cleanly.
serve-smoke:
	$(PYTHON) -m repro.serve smoke

# Wall-clock fast-path smoke: one sample per mode, digest identity
# checked, and a deliberately generous regression floor (typical
# speedups are ~1.5-2x; 0.2x only trips if a change re-serialises the
# hot path or breaks the off-mode baseline outright).
bench-wallclock:
	$(PYTHON) -m repro.bench wallclock --repeats 1 --min-speedup 0.2

# Process-parallel smoke: serial vs one-OS-process-per-rank, digest
# identity checked on every row.  The speedup floor is generous (real
# multi-core hosts measure well above it) and applies only when the
# host has >= 4 usable cores — below that there is nothing to win.
bench-parallel:
	$(PYTHON) -m repro.bench parallel --repeats 1 --min-speedup 1.1 --min-cpus 4

# Kernel-fusion smoke: fused vs unfused par-loop execution, digest
# identity checked on every row.  The floor is deliberately generous
# (0.2x trips only if fusion catastrophically regresses or the A/B
# harness breaks) because host timing on shared CI runners is noisy;
# the committed BENCH_PR9.json records the measured win.
bench-kernels:
	$(PYTHON) -m repro.bench kernels --repeats 1 --min-speedup 0.2

# Autotuning smoke: exhaustive searches on poisson + fft2d over two
# modern machines against a throwaway catalog — checks the entry is
# written, the tuned makespan never exceeds the default, a second
# search is a pure catalog hit, and the tuned end-to-end run's digest
# is bitwise-equal to the untuned run's.
tune-smoke:
	$(PYTHON) -m repro.tune smoke

# Coverage with a soft floor: the report is informational (exit 0) so a
# dip reads as a warning in CI rather than a red build; the floor keeps
# the expectation visible.  Configured in pyproject ([tool.coverage.*]).
# The offline container may not ship pytest-cov; CI installs it.
COVERAGE_FLOOR ?= 75
coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -q --cov=repro --cov-report=term && \
		{ $(PYTHON) -m coverage report --fail-under=$(COVERAGE_FLOOR) >/dev/null 2>&1 \
			|| echo "WARNING: coverage below the $(COVERAGE_FLOOR)% soft floor (report-only)"; }; \
	else \
		echo "pytest-cov not installed; skipping coverage (CI runs it)"; \
	fi
