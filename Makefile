# Convenience entry points.  PYTHONPATH is set so targets work without an
# editable install (the offline container has no `wheel`).
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test chaos bench

# Tier-1 gate: the full suite (includes the chaos-marked tests at the
# default 4 seeds and the verify subsystem's own tests) — stays fast.
test:
	$(PYTHON) -m pytest -x -q

# The chaos suite on its own: the 4-seed smoke sweep over the flagship
# apps + racy controls, then every @pytest.mark.chaos test.
chaos:
	$(PYTHON) -m repro.verify --smoke
	$(PYTHON) -m pytest -q -m chaos

bench:
	$(PYTHON) -m repro.bench --help
