"""Command-line entry point: ``python -m repro.verify``.

Runs the schedule-fuzzing suite over the paper's flagship applications
(one-deep mergesort, 2-D FFT, Jacobi Poisson), the pipeline/farm
conformance programs (imagepipe, knapfarm), and the intentionally racy
positive controls, and exits nonzero when anything unexpected is found:

- a *clean* application diverging under any seed (nondeterminism bug), or
- a *racy* control **not** being detected (fuzzer regression).

``--smoke`` uses 4 seeds and small inputs (the CI gate, well under a
minute); the default is the acceptance sweep with 16 seeds.  ``--replay
SEED --program NAME`` re-runs one seed of one program and prints its
digests — the debugging workflow once a finding names a seed.

``--cross-backend`` runs the digest-identity matrix instead: each clean
application on the deterministic, threaded, and process-parallel
backends, requiring bitwise-identical digests of (clocks, values)
across all three (:mod:`repro.verify.crossbackend`).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

import numpy as np

from repro.verify.demo import race_free_arrival, racy_first_arrival, racy_float_reduction
from repro.verify.explorer import ScheduleExplorer


def _mergesort_explorer(nprocs: int = 4) -> ScheduleExplorer:
    from repro.apps.sorting.mergesort import one_deep_mergesort

    data = np.random.default_rng(0).integers(0, 10**6, size=2048)
    return ScheduleExplorer(lambda: one_deep_mergesort().run(nprocs, data))


def _fft2d_explorer(nprocs: int = 4) -> ScheduleExplorer:
    from repro.apps.fft2d import fft2d_archetype

    rng = np.random.default_rng(1)
    arr = rng.normal(size=(16, 16)) + 1j * rng.normal(size=(16, 16))
    return ScheduleExplorer(lambda: fft2d_archetype().run(nprocs, arr, 1))


def _poisson_explorer(nprocs: int = 4) -> ScheduleExplorer:
    from repro.apps.poisson import poisson_archetype

    return ScheduleExplorer(
        lambda: poisson_archetype().run(nprocs, 12, 12, tolerance=1e-3)
    )


def _racy_arrival_explorer(nprocs: int = 4) -> ScheduleExplorer:
    return ScheduleExplorer.for_body(nprocs, racy_first_arrival)


def _racy_reduction_explorer(nprocs: int = 5) -> ScheduleExplorer:
    return ScheduleExplorer.for_body(nprocs, racy_float_reduction)


def _race_free_arrival_explorer(nprocs: int = 4) -> ScheduleExplorer:
    return ScheduleExplorer.for_body(nprocs, race_free_arrival)


def _imagepipe_explorer() -> ScheduleExplorer:
    from repro.verify.conformance import PROGRAMS as CONFORMANCE

    runner = CONFORMANCE["imagepipe"].runner
    return ScheduleExplorer(lambda: runner(mode=None))


def _knapfarm_explorer() -> ScheduleExplorer:
    from repro.verify.conformance import PROGRAMS as CONFORMANCE

    runner = CONFORMANCE["knapfarm"].runner
    return ScheduleExplorer(lambda: runner(mode=None))


def _fusedmesh_explorer() -> ScheduleExplorer:
    from repro.verify.conformance import PROGRAMS as CONFORMANCE

    runner = CONFORMANCE["fusedmesh"].runner
    return ScheduleExplorer(lambda: runner(mode=None))


#: name -> (explorer factory, races expected?)
PROGRAMS: dict[str, tuple[Callable[[], ScheduleExplorer], bool]] = {
    "mergesort": (_mergesort_explorer, False),
    "fft2d": (_fft2d_explorer, False),
    "poisson": (_poisson_explorer, False),
    "racy-arrival": (_racy_arrival_explorer, True),
    "racy-reduction": (_racy_reduction_explorer, True),
    "race-free-arrival": (_race_free_arrival_explorer, False),
    "imagepipe": (_imagepipe_explorer, False),
    "knapfarm": (_knapfarm_explorer, False),
    "fusedmesh": (_fusedmesh_explorer, False),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="schedule-fuzz the application suite and its racy controls",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="fast CI gate: 4 seeds per program"
    )
    parser.add_argument(
        "--seeds", type=int, default=16, help="seeds per program (default 16)"
    )
    parser.add_argument(
        "--program",
        choices=sorted(PROGRAMS),
        action="append",
        help="restrict to one program (repeatable; default: all)",
    )
    parser.add_argument(
        "--replay", type=int, default=None, metavar="SEED",
        help="re-run one seed of --program and print its digests",
    )
    parser.add_argument(
        "--cross-backend",
        action="store_true",
        help="run the deterministic × threads × parallel digest-identity "
        "matrix over the clean applications instead of schedule fuzzing",
    )
    args = parser.parse_args(argv)
    seeds = 4 if args.smoke else args.seeds
    names = args.program or sorted(PROGRAMS)

    if args.cross_backend:
        from repro.verify.crossbackend import PROGRAMS as MATRIX_PROGRAMS
        from repro.verify.crossbackend import cross_backend_matrix

        # With no explicit --program, run the full matrix — including
        # programs registered only for the cross-backend check.
        chosen = [n for n in names if n in MATRIX_PROGRAMS] if args.program else None
        report = cross_backend_matrix(programs=chosen)
        print(report.summary())
        print("cross-backend matrix:", "passed" if report.ok else "FAILED")
        return 0 if report.ok else 1

    if args.replay is not None:
        if len(names) != 1:
            parser.error("--replay requires exactly one --program")
        explorer, _ = PROGRAMS[names[0]][0](), PROGRAMS[names[0]][1]
        result = explorer.replay(args.replay)
        print(f"{names[0]} seed {args.replay} digests:")
        for rank, digest in enumerate(explorer.digests(result)):
            print(f"  rank {rank}: {digest}")
        return 0

    failed = False
    for name in names:
        factory, racy = PROGRAMS[name]
        report = factory().explore(seeds)
        verdict = "ok"
        if racy and report.ok:
            verdict = "FAIL (race went undetected)"
            failed = True
        elif not racy and not report.ok:
            verdict = "FAIL (nondeterminism)"
            failed = True
        elif racy:
            verdict = f"ok (detected, e.g. seed {report.findings[0].seed})"
        expectation = "expect divergence" if racy else "expect clean"
        print(f"[{name}] {seeds} seeds, {expectation}: {verdict}")
        if not racy and not report.ok:
            print(report.summary())
    print("chaos suite:", "FAILED" if failed else "passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
