"""Run a program over many schedules and compare results to the baseline.

:class:`ScheduleExplorer` wraps a zero-argument *program* callable that
performs one deterministic run and returns its
:class:`~repro.runtime.spmd.RunResult` (any other return value is
digested whole).  ``explore(seeds)`` executes the program once per seed
under :func:`~repro.runtime.spmd.fuzzed_schedule` and reports:

- **nondeterminism findings** — a rank whose result digest differs from
  the deterministic baseline, with the offending seed for replay;
- **failure findings** — a seed under which the program raised where the
  baseline did not (e.g. a schedule-dependent deadlock);
- **wildcard races** — receives where several sources could legally have
  matched (informational unless paired with a divergence).

``replay(seed)`` re-runs one seed exactly — same scheduling decisions,
same digests, byte-identical traces — which is the debugging entry point
once a finding names a seed.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.machines.catalog import IDEAL
from repro.machines.model import MachineModel
from repro.runtime.scheduler import FaultPlan
from repro.runtime.spmd import RunResult, fuzzed_schedule, spmd_run
from repro.verify.digest import value_digest
from repro.verify.races import RaceFinding, scan_completion_races, scan_races


@dataclass(frozen=True)
class NondeterminismFinding:
    """A rank's result diverged from the deterministic baseline."""

    seed: int
    rank: int
    baseline_digest: str
    digest: str

    def describe(self) -> str:
        return (
            f"seed {self.seed}: rank {self.rank} result digest "
            f"{self.digest[:12]}… != baseline {self.baseline_digest[:12]}… "
            f"(replay with ScheduleExplorer.replay({self.seed}))"
        )


@dataclass(frozen=True)
class FailureFinding:
    """A seed raised where the deterministic baseline succeeded."""

    seed: int
    error: str

    def describe(self) -> str:
        return f"seed {self.seed}: run failed with {self.error}"


@dataclass
class ExplorationReport:
    """Outcome of one :meth:`ScheduleExplorer.explore` sweep."""

    seeds: list[int]
    baseline_digests: list[str]
    findings: list[NondeterminismFinding] = field(default_factory=list)
    failures: list[FailureFinding] = field(default_factory=list)
    races: list[RaceFinding] = field(default_factory=list)
    #: waitany/waitall completion-order choice points (informational —
    #: canonical charging keeps waitall schedule-independent regardless)
    completion_races: list[RaceFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every seed reproduced the baseline digests exactly."""
        return not self.findings and not self.failures

    def summary(self) -> str:
        lines = [
            f"explored {len(self.seeds)} seeds over {len(self.baseline_digests)} ranks: "
            + ("no nondeterminism" if self.ok else "DIVERGENCE DETECTED")
        ]
        lines.extend(f.describe() for f in self.findings)
        lines.extend(f.describe() for f in self.failures)
        if self.races:
            distinct = {(r.rank, r.tag, r.candidates) for r in self.races}
            lines.append(
                f"{len(self.races)} wildcard-race observation(s) at "
                f"{len(distinct)} distinct receive site(s):"
            )
            seen: set[tuple] = set()
            for r in self.races:
                key = (r.rank, r.tag, r.candidates)
                if key not in seen:
                    seen.add(key)
                    lines.append("  " + r.describe())
        if self.completion_races:
            distinct = {(r.rank, r.tag, r.candidates) for r in self.completion_races}
            lines.append(
                f"{len(self.completion_races)} completion-order observation(s) at "
                f"{len(distinct)} distinct wait site(s) (informational)"
            )
        return "\n".join(lines)


class ScheduleExplorer:
    """Explore a program's schedule space from a fixed entry point.

    Parameters
    ----------
    program:
        Zero-argument callable performing one run with the default
        (deterministic) backend and returning its result — typically a
        closure over :func:`~repro.runtime.spmd.spmd_run` or an
        :meth:`Archetype.run <repro.core.archetype.Archetype.run>` call.
        If it returns a :class:`~repro.runtime.spmd.RunResult`, digests
        are computed per rank; any other value is digested as one unit.
    perturb_matching:
        Forwarded to the fuzzed backend: randomise which legal candidate
        a wildcard receive takes.
    faults:
        Optional :class:`~repro.runtime.scheduler.FaultPlan` applied to
        every fuzzed run (never to the baseline).
    """

    def __init__(
        self,
        program: Callable[[], Any],
        perturb_matching: bool = True,
        faults: FaultPlan | None = None,
    ):
        self._program = program
        self.perturb_matching = perturb_matching
        self.faults = faults
        self._baseline: Any = None
        self._have_baseline = False

    @classmethod
    def for_body(
        cls,
        nprocs: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Mapping[str, Any] | None = None,
        machine: MachineModel = IDEAL,
        trace: bool = True,
        **options: Any,
    ) -> "ScheduleExplorer":
        """Explorer over a plain SPMD body ``fn(comm, *args, **kwargs)``.

        Tracing defaults on so fuzzed runs feed the race detector.
        """

        def program() -> RunResult:
            return spmd_run(
                nprocs, fn, args=args, kwargs=kwargs, machine=machine, trace=trace
            )

        return cls(program, **options)

    # -- execution ---------------------------------------------------------
    def baseline(self) -> Any:
        """The deterministic run's result (cached after the first call)."""
        if not self._have_baseline:
            self._baseline = self._program()
            self._have_baseline = True
        return self._baseline

    def run_seed(self, seed: int) -> Any:
        """One fuzzed run under *seed* (exactly reproducible)."""
        with fuzzed_schedule(
            seed, perturb_matching=self.perturb_matching, faults=self.faults
        ):
            return self._program()

    def replay(self, seed: int) -> Any:
        """Alias of :meth:`run_seed`, named for the debugging workflow:
        take the seed from a finding and re-run it under a debugger or
        with tracing to inspect the exact divergent interleaving."""
        return self.run_seed(seed)

    # -- analysis ----------------------------------------------------------
    @staticmethod
    def digests(result: Any) -> list[str]:
        """Per-rank digests of a run result (single digest otherwise)."""
        if isinstance(result, RunResult):
            return [value_digest(v) for v in result.values]
        return [value_digest(result)]

    def explore(self, seeds: int | Iterable[int] = 16) -> ExplorationReport:
        """Run the program under each seed and diff against the baseline.

        *seeds* is either a count (seeds ``0..N-1``) or an explicit
        iterable of seeds.  A fuzzed run that raises a
        :class:`~repro.errors.ReproError` (deadlock, rank failure) where
        the baseline succeeded is reported as a failure finding rather
        than propagated — the seed is the reproducer.
        """
        seed_list = list(range(seeds)) if isinstance(seeds, int) else list(seeds)
        baseline_digests = self.digests(self.baseline())
        report = ExplorationReport(seeds=seed_list, baseline_digests=baseline_digests)
        for seed in seed_list:
            try:
                result = self.run_seed(seed)
            except ReproError as exc:
                report.failures.append(FailureFinding(seed=seed, error=repr(exc)))
                continue
            for rank, (base, got) in enumerate(
                zip(baseline_digests, self.digests(result))
            ):
                if base != got:
                    report.findings.append(
                        NondeterminismFinding(
                            seed=seed, rank=rank, baseline_digest=base, digest=got
                        )
                    )
            if isinstance(result, RunResult):
                report.races.extend(scan_races(result, seed))
                report.completion_races.extend(scan_completion_races(result, seed))
        return report
