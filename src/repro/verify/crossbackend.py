"""Cross-backend digest identity: the parallel-backend correctness bar.

The schedule fuzzer (:mod:`repro.verify.explorer`) certifies programs
race-free *within* one backend by diffing digests across seeds.  This
module checks the complementary claim across execution engines: a
race-free program must produce bitwise-identical per-rank result digests
and final virtual clocks on every backend — run-to-block deterministic,
free-running threads, and one-OS-process-per-rank — because canonical
clock charging makes virtual time schedule-independent and race freedom
makes values interleaving-independent.  This is the property that lets
``backend="parallel"`` be a pure wall-clock optimisation.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.runtime.backends import BACKEND_ENV, resolve
from repro.runtime.spmd import RunResult
from repro.verify.digest import value_digest

#: the engines compared by default (canonical names)
DEFAULT_BACKENDS = ("deterministic", "threads", "parallel")


def _registry_runner(app: str) -> Callable[[str], RunResult]:
    """A matrix runner from the shared app registry: the app at its
    verification sizes, with ``mode=None`` so the ``REPRO_BACKEND``
    default set by :func:`cross_backend_matrix` selects the engine."""

    def run(backend: str) -> RunResult:
        from repro.apps import registry

        spec = registry.get(app)
        return spec.run(spec.verify_overrides, machine="ibm-sp", mode=None)

    return run


#: name -> runner(backend) for the matrix: the shared app registry's
#: workloads at verification scale (one source of truth with the
#: conformance suite and the job server)
PROGRAMS: dict[str, Callable[[str], RunResult]] = {
    name: _registry_runner(name)
    for name in (
        "mergesort",
        "fft2d",
        "poisson",
        "cfd",
        "fdtd",
        "smog",
        "spectralflow",
        "imagepipe",
        "knapfarm",
    )
}


@dataclass
class MatrixCell:
    """One (program, backend) run, digested."""

    program: str
    backend: str
    digest: str  #: digest over (times, values) — the full observable outcome
    matches_reference: bool


@dataclass
class CrossBackendReport:
    """Digest-identity matrix over programs × backends."""

    reference: str  #: the backend every other backend is compared against
    cells: list[MatrixCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.matches_reference for cell in self.cells)

    def summary(self) -> str:
        lines = [f"cross-backend digest matrix (reference: {self.reference})"]
        for cell in self.cells:
            mark = "ok" if cell.matches_reference else "DIVERGED"
            lines.append(
                f"  {cell.program:>10} × {cell.backend:<13} "
                f"{cell.digest[:16]}  {mark}"
            )
        return "\n".join(lines)


def cross_backend_matrix(
    programs: list[str] | None = None,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    reference: str = "deterministic",
) -> CrossBackendReport:
    """Run each program on each backend and diff digests vs *reference*.

    Backends are selected through the ``REPRO_BACKEND`` environment
    default (restored afterwards), so the matrix exercises exactly the
    resolution path users and CI rely on.
    """
    names = [resolve(b) for b in backends]
    reference = resolve(reference)
    if reference not in names:
        names.insert(0, reference)
    report = CrossBackendReport(reference=reference)
    previous = os.environ.get(BACKEND_ENV)
    try:
        for program in programs or list(PROGRAMS):
            runner = PROGRAMS[program]
            digests: dict[str, str] = {}
            for backend in names:
                os.environ[BACKEND_ENV] = backend
                result = runner(backend)
                digests[backend] = value_digest([result.times, result.values])
            for backend in names:
                report.cells.append(
                    MatrixCell(
                        program=program,
                        backend=backend,
                        digest=digests[backend],
                        matches_reference=digests[backend] == digests[reference],
                    )
                )
    finally:
        if previous is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = previous
    return report
