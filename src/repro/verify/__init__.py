"""Schedule-space verification of archetype programs.

The paper's central claim is that the archetype fixes the communication
structure, so application code is correct under *any* legal interleaving
of the ranks.  This package checks that claim instead of assuming it:

- :class:`~repro.verify.explorer.ScheduleExplorer` runs a program under
  many seeded-PRNG schedules (the runtime's
  :class:`~repro.runtime.scheduler.FuzzedBackend`) and compares per-rank
  result digests against the deterministic baseline; any divergence is a
  *nondeterminism finding* carrying the seed that reproduces it;
- :func:`~repro.verify.races.scan_races` flags wildcard receives where
  more than one source could legally have matched (schedule-dependent
  matching), from the trace layer's
  :class:`~repro.trace.events.MatchEvent` records;
- :class:`~repro.runtime.scheduler.FaultPlan` injects message
  delay/reordering and rank crashes, for asserting that
  :class:`~repro.errors.DeadlockError` / :class:`~repro.errors.RankFailedError`
  reporting stays precise under adversarial conditions;
- :func:`~repro.runtime.spmd.fuzzed_schedule` promotes any existing
  deterministic run (including the pytest suite, via the ``chaos``
  marker) to a fuzzed one without touching its call sites.

``python -m repro.verify --smoke`` runs a fast end-to-end check; see
``docs/verification.md`` for the workflow.
"""

from repro.runtime.scheduler import FaultPlan, FuzzedBackend
from repro.runtime.spmd import fuzzed_schedule
from repro.verify.digest import value_digest
from repro.verify.explorer import (
    ExplorationReport,
    NondeterminismFinding,
    ScheduleExplorer,
)
from repro.verify.races import RaceFinding, scan_completion_races, scan_races

__all__ = [
    "FaultPlan",
    "FuzzedBackend",
    "fuzzed_schedule",
    "value_digest",
    "ScheduleExplorer",
    "ExplorationReport",
    "NondeterminismFinding",
    "RaceFinding",
    "scan_completion_races",
    "scan_races",
]
