"""Demo programs that calibrate the verifier.

The racy programs are positive controls: their result depends on message
arrival order, and the test suite and the ``--smoke`` entry point assert
that :class:`~repro.verify.explorer.ScheduleExplorer` flags them with a
replayable seed — if the fuzzer ever stops finding these, it is broken.
:func:`race_free_arrival` is the matching negative control: the same
traffic shape with directed receives, on which the detector must stay
silent — if it fires there, it is reporting false positives.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.message import ANY_SOURCE

#: tag used by the demo programs
DEMO_TAG = 7


def racy_first_arrival(comm: Any) -> int | None:
    """Rank 0 returns the *source* of whichever worker message a wildcard
    receive matches first — a textbook arrival-order race.

    Every rank > 0 sends its rank id to rank 0; rank 0 drains them with
    wildcard receives and returns the first sender it happened to see.
    Under the deterministic backend this is always the same rank; under
    schedule fuzzing it varies with the seed, so the explorer reports a
    nondeterminism finding *and* the race detector flags the wildcard
    receive whenever more than one message was pending.
    """
    if comm.rank == 0:
        first = comm.recv_msg(ANY_SOURCE, tag=DEMO_TAG)
        for _ in range(comm.size - 2):
            comm.recv_msg(ANY_SOURCE, tag=DEMO_TAG)
        return first.source
    comm.send(0, comm.rank, tag=DEMO_TAG)
    return None


def race_free_arrival(comm: Any) -> int | None:
    """The negative control for :func:`racy_first_arrival`.

    Same traffic shape — every worker sends its rank id to rank 0 on the
    same tag — but rank 0 drains the messages with *directed* receives in
    rank order, so the result is schedule-independent.  The race detector
    must stay silent on this program under every seed; if it fires here,
    it is reporting false positives.
    """
    if comm.rank == 0:
        first = comm.recv_msg(1, tag=DEMO_TAG)
        for source in range(2, comm.size):
            comm.recv_msg(source, tag=DEMO_TAG)
        return first.source
    comm.send(0, comm.rank, tag=DEMO_TAG)
    return None


def racy_float_reduction(comm: Any) -> float | None:
    """Rank 0 folds worker contributions in arrival order — the classic
    nonassociative floating-point reduction race.

    Each worker sends ``(0.1 + rank) ** 3``; rank 0 adds them in the
    order received.  Floating-point addition is not associative, so the
    sum's low bits depend on the schedule.
    """
    if comm.rank == 0:
        acc = 0.0
        for _ in range(comm.size - 1):
            acc += comm.recv(ANY_SOURCE, tag=DEMO_TAG)
        return acc
    comm.send(0, (0.1 + comm.rank) ** 3, tag=DEMO_TAG)
    return None
