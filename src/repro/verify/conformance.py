"""Canonical conformance programs: one small run per registered archetype.

Every archetype in the library promises the same execution contract —
deterministic results, schedule-independent virtual clocks, consistent
traces — but until this module the contract was re-checked ad hoc per
archetype.  Here each archetype registers one small, fast, canonical
program; the conformance suite (``tests/test_archetype_contract.py``)
and the cross-backend digest matrix (:mod:`repro.verify.crossbackend`)
iterate over this registry, so a new archetype buys into every contract
check by adding one entry.

Runners accept ``mode`` (an :class:`~repro.core.archetype.ExecutionMode`
string, or ``None`` to defer to ``REPRO_BACKEND``) and ``trace``; they
run on a modelled machine (IBM SP) so virtual clocks are non-trivial and
clock-canonicality checks bite.

Program definitions live in the shared app registry
(:mod:`repro.apps.registry`): each conformance program is one registered
app run at its ``verify_overrides`` sizes, so the conformance suite, the
cross-backend matrix, and the job server all resolve the *same* runs.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.apps import registry
from repro.runtime.spmd import RunResult


@dataclass(frozen=True)
class ConformanceProgram:
    """One archetype's canonical program for contract checking."""

    #: registry key (also the cross-backend matrix name)
    name: str
    #: which archetype family the program exercises
    archetype: str
    #: runner(mode=..., trace=...) -> RunResult
    runner: Callable[..., RunResult]


def _registry_runner(app: str) -> Callable[..., RunResult]:
    def run(mode: str | None = None, trace: bool = False) -> RunResult:
        spec = registry.get(app)
        return spec.run(
            spec.verify_overrides, machine="ibm-sp", mode=mode, trace=trace
        )

    return run


def _program(name: str, app: str) -> ConformanceProgram:
    return ConformanceProgram(name, registry.get(app).archetype, _registry_runner(app))


#: every registered archetype's canonical program, keyed by program name
PROGRAMS: dict[str, ConformanceProgram] = {
    "onedeep": _program("onedeep", "mergesort"),
    "meshspectral": _program("meshspectral", "poisson"),
    # The fused mesh-spectral program: multi-species transport/chemistry
    # through the kernel layer's fusion, packing, and hoisting paths.
    "fusedmesh": _program("fusedmesh", "smog"),
    # Packed-exchange mesh programs: the 2-D flow solver (CFL max
    # reductions) and the 3-D leapfrog FDTD code (energy sum reduction).
    "cfdmesh": _program("cfdmesh", "cfd"),
    "fdtdmesh": _program("fdtdmesh", "fdtd"),
    "imagepipe": _program("imagepipe", "imagepipe"),
    "knapfarm": _program("knapfarm", "knapfarm"),
}


def archetypes() -> tuple[str, ...]:
    """The archetype families covered by the registry."""
    return tuple(dict.fromkeys(p.archetype for p in PROGRAMS.values()))
