"""Canonical conformance programs: one small run per registered archetype.

Every archetype in the library promises the same execution contract —
deterministic results, schedule-independent virtual clocks, consistent
traces — but until this module the contract was re-checked ad hoc per
archetype.  Here each archetype registers one small, fast, canonical
program; the conformance suite (``tests/test_archetype_contract.py``)
and the cross-backend digest matrix (:mod:`repro.verify.crossbackend`)
iterate over this registry, so a new archetype buys into every contract
check by adding one entry.

Runners accept ``mode`` (an :class:`~repro.core.archetype.ExecutionMode`
string, or ``None`` to defer to ``REPRO_BACKEND``) and ``trace``; they
run on a modelled machine (IBM SP) so virtual clocks are non-trivial and
clock-canonicality checks bite.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.runtime.spmd import RunResult


@dataclass(frozen=True)
class ConformanceProgram:
    """One archetype's canonical program for contract checking."""

    #: registry key (also the cross-backend matrix name)
    name: str
    #: which archetype family the program exercises
    archetype: str
    #: runner(mode=..., trace=...) -> RunResult
    runner: Callable[..., RunResult]


def _run_onedeep(mode: str | None = None, trace: bool = False) -> RunResult:
    import numpy as np

    from repro.apps.sorting.mergesort import one_deep_mergesort
    from repro.machines.catalog import IBM_SP

    data = np.random.default_rng(0).integers(0, 10**6, size=512)
    return one_deep_mergesort().run(4, data, mode=mode, machine=IBM_SP, trace=trace)


def _run_meshspectral(mode: str | None = None, trace: bool = False) -> RunResult:
    from repro.apps.poisson import poisson_archetype
    from repro.machines.catalog import IBM_SP

    return poisson_archetype().run(
        4, 12, 12, tolerance=1e-3, mode=mode, machine=IBM_SP, trace=trace
    )


def _run_imagepipe(mode: str | None = None, trace: bool = False) -> RunResult:
    from repro.apps.imagepipe import imagepipe_archetype, make_images
    from repro.machines.catalog import IBM_SP

    pipeline = imagepipe_archetype(blur_workers=2, window=2)
    images = make_images(6, (8, 8), seed=3)
    return pipeline.run(pipeline.nprocs, images, mode=mode, machine=IBM_SP, trace=trace)


def _run_knapfarm(mode: str | None = None, trace: bool = False) -> RunResult:
    from repro.apps.knapfarm import knapsack_farm, random_instances
    from repro.machines.catalog import IBM_SP

    pipeline = knapsack_farm(workers=2, window=2)
    instances = random_instances(4, nitems=10, seed=7)
    return pipeline.run(
        pipeline.nprocs, instances, mode=mode, machine=IBM_SP, trace=trace
    )


#: every registered archetype's canonical program, keyed by program name
PROGRAMS: dict[str, ConformanceProgram] = {
    "onedeep": ConformanceProgram("onedeep", "one-deep-dc", _run_onedeep),
    "meshspectral": ConformanceProgram(
        "meshspectral", "mesh-spectral", _run_meshspectral
    ),
    "imagepipe": ConformanceProgram("imagepipe", "pipeline-farm", _run_imagepipe),
    "knapfarm": ConformanceProgram("knapfarm", "pipeline-farm", _run_knapfarm),
}


def archetypes() -> tuple[str, ...]:
    """The archetype families covered by the registry."""
    return tuple(dict.fromkeys(p.archetype for p in PROGRAMS.values()))
