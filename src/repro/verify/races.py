"""Wildcard-receive race detection over recorded traces.

The fuzzed backend records a :class:`~repro.trace.events.MatchEvent` for
every wildcard receive it satisfies, including the set of source ranks
whose oldest pending message could legally have matched at that moment.
When that set has more than one element, the receive is *racy*: which
message it returns depends on arrival order, i.e. on the schedule.  That
is not automatically a bug — a work-pool master taking results in any
order is racy by design — but a racy receive feeding a
schedule-dependent result is exactly how nondeterminism findings arise,
so the explorer reports both side by side.

Completion-order nondeterminism is tracked separately: a ``waitany`` /
``waitall`` over several already-fulfilled nonblocking requests picks
one completion order among many (the fuzzed backend records these as
MatchEvents with ``completion=True``).  The request layer's canonical
charging makes ``waitall`` schedule-independent regardless, so these are
informational rather than findings; :func:`scan_completion_races` lists
them for observability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.spmd import RunResult
from repro.trace.events import MatchEvent


@dataclass(frozen=True)
class RaceFinding:
    """One wildcard receive observed with multiple legal matches."""

    #: seed of the fuzzed run the race was observed under
    seed: int
    #: receiving rank
    rank: int
    #: virtual time of the match decision
    clock: float
    #: tag of the message actually taken
    tag: int
    #: source rank actually taken
    chosen: int
    #: sorted distinct source ranks that could have matched
    candidates: tuple[int, ...]

    def describe(self) -> str:
        return (
            f"seed {self.seed}: rank {self.rank} wildcard recv at t={self.clock:.6g}s "
            f"took source {self.chosen} (tag {self.tag}) but any of "
            f"{list(self.candidates)} could have matched"
        )


def scan_races(result: RunResult, seed: int) -> list[RaceFinding]:
    """Extract wildcard races from a traced (fuzzed) run.

    Returns an empty list when the run was not traced.  Only receives
    with a wildcard *source* and more than one candidate source are
    races; a wildcard tag with a single source still matches in FIFO
    order, which the schedule cannot change.
    """
    if result.tracer is None:
        return []
    findings: list[RaceFinding] = []
    for rank_events in result.tracer.events:
        for event in rank_events:
            if (
                isinstance(event, MatchEvent)
                and event.wildcard_source
                and len(event.candidates) > 1
            ):
                findings.append(
                    RaceFinding(
                        seed=seed,
                        rank=event.rank,
                        clock=event.start,
                        tag=event.tag,
                        chosen=event.source,
                        candidates=event.candidates,
                    )
                )
    return findings


def scan_completion_races(result: RunResult, seed: int) -> list[RaceFinding]:
    """Extract completion-order choice points from a traced (fuzzed) run.

    A completion race is a ``waitany``/``waitall`` that found more than
    one fulfilled request and picked one observation order among many.
    Unlike wildcard races these cannot change ``waitall``'s virtual-time
    accounting (charging is canonicalised by arrival order), but a
    program branching on ``waitany``'s *index* is schedule-dependent in
    the same way a wildcard receive is — so the explorer surfaces them.
    """
    if result.tracer is None:
        return []
    findings: list[RaceFinding] = []
    for rank_events in result.tracer.events:
        for event in rank_events:
            if (
                isinstance(event, MatchEvent)
                and event.completion
                and len(event.candidates) > 1
            ):
                findings.append(
                    RaceFinding(
                        seed=seed,
                        rank=event.rank,
                        clock=event.start,
                        tag=event.tag,
                        chosen=event.source,
                        candidates=event.candidates,
                    )
                )
    return findings
