"""Stable digests of per-rank results.

A digest is a SHA-256 over a canonical byte encoding of a value, built so
that two runs produce the same digest iff they produced the same result:
container structure, numpy dtype/shape/contents, and scalar types all
feed the hash.  Digests (not the values themselves) are what the
:class:`~repro.verify.explorer.ScheduleExplorer` compares across seeds,
so divergence reports stay small even for large arrays.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

import numpy as np


def value_digest(value: Any) -> str:
    """Hex SHA-256 of *value*'s canonical encoding."""
    h = hashlib.sha256()
    _feed(h, value)
    return h.hexdigest()


def _feed(h: "hashlib._Hash", value: Any) -> None:
    # Each branch writes a type marker before the payload so that e.g.
    # the string "1" and the int 1 cannot collide.
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"B" + (b"1" if value else b"0"))
    elif isinstance(value, int):
        h.update(b"I" + str(value).encode())
    elif isinstance(value, float):
        h.update(b"F" + repr(value).encode())
    elif isinstance(value, complex):
        h.update(b"C" + repr(value).encode())
    elif isinstance(value, str):
        h.update(b"S" + value.encode())
    elif isinstance(value, bytes):
        h.update(b"Y" + value)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(b"A" + arr.dtype.str.encode() + repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(value, np.generic):
        h.update(b"G" + value.dtype.str.encode())
        h.update(value.tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(b"L" if isinstance(value, list) else b"T")
        h.update(str(len(value)).encode())
        for item in value:
            _feed(h, item)
    elif isinstance(value, dict):
        h.update(b"D" + str(len(value)).encode())
        # Canonical order: keys sorted by their own digest, so insertion
        # order (which a schedule could influence) never matters.
        for key, item in sorted(value.items(), key=lambda kv: value_digest(kv[0])):
            _feed(h, key)
            _feed(h, item)
    elif isinstance(value, (set, frozenset)):
        h.update(b"E" + str(len(value)).encode())
        for d in sorted(value_digest(item) for item in value):
            h.update(d.encode())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(b"O" + type(value).__qualname__.encode())
        for f in dataclasses.fields(value):
            h.update(f.name.encode())
            _feed(h, getattr(value, f.name))
    else:
        h.update(b"R" + repr(value).encode())
