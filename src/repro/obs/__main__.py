"""Command-line entry point for the observability subsystem.

Usage::

    python -m repro.obs poisson --summary --critical-path
    python -m repro.obs mergesort --procs 8 --export-chrome trace.json
    python -m repro.obs fft2d --compare-model --machine intel-delta
    python -m repro.obs --smoke        # the make obs-smoke CI gate

Runs a small traced archetype application (Poisson, one-deep mergesort,
or 2-D FFT) and reports on it: trace summary + metrics, critical path,
Chrome trace-event export (open the file at https://ui.perfetto.dev),
and measured-vs-model comparison.  With no report flags, ``--summary``
is implied.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.machines.catalog import get_machine, list_machines
from repro.obs.chrome import export_chrome_trace
from repro.obs.critical import critical_path, rank_activity, render_comm_matrix
from repro.obs.metrics import get_registry, scoped_registry
from repro.obs.workloads import WORKLOADS, WorkloadRun
from repro.trace.analysis import render_gantt, summarize


def _print_summary(run: WorkloadRun) -> None:
    tracer = run.result.tracer
    summary = summarize(tracer)
    print(f"{run.description} on {run.nprocs} rank(s)")
    print(f"virtual makespan: {run.measured:.6g}s")
    print()
    print("rank  compute      comm         idle         sent     received")
    for rs in summary.ranks:
        print(
            f"{rs.rank:>4}  {rs.compute_time:<11.6g}  {rs.comm_time:<11.6g}  "
            f"{rs.idle_time:<11.6g}  {rs.bytes_sent:>7} B  {rs.bytes_received:>7} B"
        )
    print(
        f"totals: {summary.total_messages} messages, "
        f"{summary.total_bytes} B sent, {summary.total_bytes_received} B received, "
        f"{summary.total_idle_time:.6g}s idle, "
        f"comm fraction {summary.comm_fraction():.1%}"
    )
    print()
    print(render_gantt(tracer))
    print()
    print("communication matrix:")
    print(render_comm_matrix(tracer))
    print()
    print("metrics:")
    print(get_registry().render())


def _print_critical_path(run: WorkloadRun) -> None:
    report = critical_path(run.result.tracer)
    print(report.render())
    print()
    print("per-rank activity (seconds):")
    print("rank  compute      send         recv         wait         idle")
    for act in rank_activity(run.result.tracer):
        print(
            f"{act.rank:>4}  {act.compute:<11.6g}  {act.send:<11.6g}  "
            f"{act.recv:<11.6g}  {act.wait:<11.6g}  {act.idle:<11.6g}"
        )


def _print_comparison(run: WorkloadRun) -> None:
    machine = run.result.machine
    measured = run.measured
    predicted = run.predicted
    ratio = measured / predicted if predicted > 0 else float("inf")
    print(f"machine: {machine.describe()}")
    print(f"measured (simulated) makespan: {measured:.6g}s")
    print(f"model prediction:              {predicted:.6g}s")
    print(f"measured / predicted:          {ratio:.3f}")
    print(
        "(the closed form ignores skew and wait effects; agreement within a"
        " small factor is expected, exact agreement is not)"
    )


def smoke(machine_name: str = "ibm-sp") -> int:
    """The ``make obs-smoke`` gate: trace two archetypes, export, validate.

    Runs a small Poisson and mergesort job, exports each to a Chrome
    trace (validated on export), and checks the critical-path invariant
    (path length == virtual makespan).  Returns a process exit code.
    """
    machine = get_machine(machine_name)
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as tmp:
        for app in ("poisson", "mergesort"):
            with scoped_registry():
                run = WORKLOADS[app](4, machine)
                path = Path(tmp) / f"{app}.trace.json"
                data = export_chrome_trace(run.result.tracer, path)
                report = critical_path(run.result.tracer)
                drift = abs(report.length - run.measured)
                ok = drift <= 1e-9 * max(run.measured, 1.0)
                recorded = len(get_registry().names())
                status = "ok" if ok else "FAIL"
                print(
                    f"[{status}] {app}: {len(data['traceEvents'])} trace events "
                    f"exported and validated; critical path {report.length:.6g}s "
                    f"vs makespan {run.measured:.6g}s; {recorded} metrics recorded"
                )
                if not ok:
                    failures += 1
    if failures:
        print(f"obs smoke: {failures} check(s) failed", file=sys.stderr)
        return 1
    print("obs smoke: all checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observe a traced archetype run: summary, critical path, "
        "Chrome/Perfetto export, model comparison.",
    )
    parser.add_argument(
        "app",
        nargs="?",
        default="poisson",
        choices=sorted(WORKLOADS),
        help="application to run (default: poisson)",
    )
    parser.add_argument(
        "--procs", type=int, default=4, metavar="N", help="rank count (default: 4)"
    )
    parser.add_argument(
        "--machine",
        default="ibm-sp",
        metavar="NAME",
        help=f"machine model: {', '.join(list_machines())} (default: ibm-sp)",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="trace summary, Gantt, comm matrix, and metrics (default action)",
    )
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="longest virtual-time chain and per-rank activity breakdown",
    )
    parser.add_argument(
        "--export-chrome",
        metavar="PATH",
        help="write a Chrome trace-event JSON file (open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--compare-model",
        action="store_true",
        help="measured makespan vs the closed-form MachineModel prediction",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: run poisson+mergesort, export+validate traces, "
        "check the critical-path invariant",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke(args.machine)

    if args.procs < 1:
        parser.error("--procs must be >= 1")
    machine = get_machine(args.machine)
    wants_report = args.summary or args.critical_path or args.compare_model
    if not wants_report and not args.export_chrome:
        args.summary = True

    with scoped_registry():
        run = WORKLOADS[args.app](args.procs, machine)
        sections: list = []
        if args.summary:
            sections.append(lambda: _print_summary(run))
        if args.critical_path:
            sections.append(lambda: _print_critical_path(run))
        if args.compare_model:
            sections.append(lambda: _print_comparison(run))
        for i, section in enumerate(sections):
            if i:
                print()
                print("-" * 64)
            section()
        if args.export_chrome:
            data = export_chrome_trace(run.result.tracer, args.export_chrome)
            print(
                f"wrote {len(data['traceEvents'])} trace events to "
                f"{args.export_chrome} (open in https://ui.perfetto.dev)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
