"""Canned traced workloads for the ``python -m repro.obs`` CLI.

Each runner executes one archetype application with tracing on and
returns the :class:`~repro.runtime.spmd.RunResult` together with the
closed-form :mod:`repro.bench.predict` prediction for the same problem,
so ``--compare-model`` can put measured and modelled times side by side.

Problem sizes are deliberately small — these runs exist to produce
traces worth looking at (and for the ``make obs-smoke`` gate), not to
benchmark.  Use ``python -m repro.bench`` for the paper's figures.

Applications resolve through the shared app registry
(:mod:`repro.apps.registry`); this module only adds the analytic
prediction each workload is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import registry
from repro.bench.predict import predict_fft2d, predict_onedeep_sort, predict_poisson
from repro.machines.model import MachineModel
from repro.runtime.spmd import RunResult


@dataclass(frozen=True)
class WorkloadRun:
    """One traced application run plus its analytic prediction."""

    app: str
    description: str
    nprocs: int
    result: RunResult
    predicted: float

    @property
    def measured(self) -> float:
        """The run's virtual makespan (seconds)."""
        return self.result.elapsed


def run_poisson(
    nprocs: int, machine: MachineModel, nx: int = 48, ny: int = 48, iters: int = 8
) -> WorkloadRun:
    """Jacobi Poisson (mesh archetype) for a fixed iteration count."""
    result = registry.get("poisson").run(
        {"nprocs": nprocs, "nx": nx, "ny": ny, "max_iters": iters},
        machine=machine,
        trace=True,
    )
    return WorkloadRun(
        app="poisson",
        description=f"Jacobi Poisson {nx}x{ny}, {iters} iterations",
        nprocs=nprocs,
        result=result,
        predicted=predict_poisson(nx, ny, iters, nprocs, machine),
    )


def run_mergesort(
    nprocs: int, machine: MachineModel, n: int = 4096, seed: int = 0
) -> WorkloadRun:
    """One-deep mergesort (divide-and-conquer archetype)."""
    result = registry.get("mergesort").run(
        {"nprocs": nprocs, "n": n, "seed": seed}, machine=machine, trace=True
    )
    return WorkloadRun(
        app="mergesort",
        description=f"one-deep mergesort of {n} keys",
        nprocs=nprocs,
        result=result,
        predicted=predict_onedeep_sort(n, nprocs, machine),
    )


def run_fft2d(
    nprocs: int,
    machine: MachineModel,
    rows: int = 32,
    cols: int = 32,
    repeats: int = 2,
    seed: int = 0,
) -> WorkloadRun:
    """Distributed 2-D FFT (spectral archetype)."""
    result = registry.get("fft2d").run(
        {"nprocs": nprocs, "rows": rows, "cols": cols, "repeats": repeats, "seed": seed},
        machine=machine,
        trace=True,
    )
    return WorkloadRun(
        app="fft2d",
        description=f"2-D FFT {rows}x{cols}, {repeats} repeat(s)",
        nprocs=nprocs,
        result=result,
        predicted=predict_fft2d(rows, cols, repeats, nprocs, machine),
    )


#: CLI application name -> runner
WORKLOADS = {
    "poisson": run_poisson,
    "mergesort": run_mergesort,
    "fft2d": run_fft2d,
}
