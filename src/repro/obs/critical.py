"""Critical-path analysis of a traced SPMD run.

The runtime's virtual clocks already encode a happens-before order:

- events on one rank are totally ordered (each begins where the
  previous one ended, modulo explicit untraced ``advance`` calls);
- a receive happens after the send it matched (the message's arrival
  time is the sender's post-send clock, and the receiver's clock is
  advanced to at least that arrival before the ingest overhead).

This module reconstructs that DAG from a :class:`~repro.trace.tracer.Tracer`'s
event logs — pairing each recv with its send by per-channel FIFO order,
which is exactly the mailbox's matching order for a single channel — and
walks it backwards from the event that ends last.  At every step the
*binding* predecessor is the one whose end time actually constrained the
current event's completion: for a receive that waited, the matched send;
otherwise the rank-local predecessor.  The resulting chain of exclusive
contributions tiles ``[0, makespan]`` exactly, so the reported path
length always equals the run's virtual makespan — the property the test
suite asserts on multiple archetype applications.

Caveat: pairing is by (source, dest, tag) channel and ignores the
communication context of sub-communicators created by ``split()``; two
contexts reusing one tag on the same channel can mispair.  All shipped
applications and collectives are unaffected (contexts never interleave
same-tag traffic on one channel).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.trace.events import CommEvent, ComputeEvent, Event, MatchEvent
from repro.trace.tracer import Tracer


@dataclass(frozen=True)
class MessagePair:
    """A matched send/recv pair (one message's two trace events)."""

    send_rank: int
    send_index: int
    send: CommEvent
    recv_rank: int
    recv_index: int
    recv: CommEvent

    @property
    def arrival(self) -> float:
        """When the message reached the receiver's mailbox (virtual time).

        Prefers the arrival stamp recorded on either event (nonblocking
        transfers end their send event at the post overhead, well before
        the wire drains); a blocking send's end *is* the arrival.
        """
        if self.recv.arrival >= 0.0:
            return self.recv.arrival
        if self.send.arrival >= 0.0:
            return self.send.arrival
        return self.send.end

    @property
    def wait(self) -> float:
        """Virtual time the receiver spent waiting for this message."""
        return min(max(self.arrival - self.recv.start, 0.0), self.recv.duration)


def pair_messages(tracer: Tracer) -> list[MessagePair]:
    """Match send events to recv events by per-channel FIFO order.

    Channels are (source, dest, tag) triples.  Within a channel the
    mailbox matches messages in arrival (= send) order, so pairing the
    k-th send with the k-th recv reconstructs the actual matching.
    Unmatched events (none in a completed run) are skipped.
    """
    pending: dict[tuple[int, int, int], deque[tuple[int, int, CommEvent]]] = {}
    for rank in range(tracer.nprocs):
        for index, ev in enumerate(tracer.events_for(rank)):
            if isinstance(ev, CommEvent) and ev.kind == "send":
                key = (ev.rank, ev.peer, ev.tag)
                pending.setdefault(key, deque()).append((rank, index, ev))
    pairs: list[MessagePair] = []
    for rank in range(tracer.nprocs):
        for index, ev in enumerate(tracer.events_for(rank)):
            if isinstance(ev, CommEvent) and ev.kind == "recv":
                queue = pending.get((ev.peer, ev.rank, ev.tag))
                if queue:
                    send_rank, send_index, send = queue.popleft()
                    pairs.append(
                        MessagePair(send_rank, send_index, send, rank, index, ev)
                    )
    return pairs


def _event_kind(ev: Event) -> str:
    if isinstance(ev, ComputeEvent):
        return "compute"
    if isinstance(ev, MatchEvent):
        return "match"
    if isinstance(ev, CommEvent):
        return ev.kind
    return "event"


def _event_label(ev: Event) -> str:
    if isinstance(ev, ComputeEvent):
        return ev.label or "(unlabelled compute)"
    if isinstance(ev, MatchEvent):
        return f"match(source={ev.source}, tag={ev.tag})"
    if isinstance(ev, CommEvent):
        peer = "sends to" if ev.kind == "send" else "receives from"
        return f"{peer} rank {ev.peer} (tag {ev.tag}, {ev.nbytes} B)"
    return type(ev).__name__


@dataclass(frozen=True)
class PathSegment:
    """One event's exclusive contribution to the critical path.

    ``start`` is where the binding predecessor released this event (not
    necessarily the event's own start: a receive that waited contributes
    only its post-arrival ingest overhead, because the wait overlaps the
    sender's chain).  Consecutive segments tile the timeline exactly.
    """

    rank: int
    kind: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPathReport:
    """The longest virtual-time chain through a traced run."""

    makespan: float
    segments: list[PathSegment] = field(default_factory=list)

    @property
    def length(self) -> float:
        """Total path length; equals :attr:`makespan` by construction."""
        return sum(seg.duration for seg in self.segments)

    @property
    def breakdown(self) -> dict[str, float]:
        """Path time by segment kind (compute / send / recv / match)."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0.0) + seg.duration
        return out

    @property
    def rank_switches(self) -> int:
        """How many times the path hops between ranks (message edges)."""
        return sum(
            1 for a, b in zip(self.segments, self.segments[1:]) if a.rank != b.rank
        )

    def render(self, top: int = 12) -> str:
        """Human-readable report: totals, breakdown, heaviest segments."""
        lines = [
            f"critical path: {self.length:.6g}s over {len(self.segments)} events, "
            f"{self.rank_switches} rank switch(es) (makespan {self.makespan:.6g}s)"
        ]
        total = self.length or 1.0
        for kind, seconds in sorted(
            self.breakdown.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {kind:>8}: {seconds:.6g}s ({seconds / total:6.1%})")
        heavy = sorted(self.segments, key=lambda s: -s.duration)[:top]
        if heavy:
            lines.append(f"  heaviest segments (top {len(heavy)}):")
            for seg in heavy:
                lines.append(
                    f"    rank {seg.rank:>3} {seg.kind:>7} "
                    f"[{seg.start:.6g}s .. {seg.end:.6g}s] "
                    f"{seg.duration:.6g}s  {seg.label}"
                )
        return "\n".join(lines)


def trace_makespan(tracer: Tracer) -> float:
    """The latest event end time across all ranks (0.0 for an empty trace)."""
    return max(
        (ev.end for rank in range(tracer.nprocs) for ev in tracer.events_for(rank)),
        default=0.0,
    )


def critical_path(tracer: Tracer) -> CriticalPathReport:
    """Walk the happens-before DAG backwards from the last event to end.

    At each event the binding predecessor is the one with the latest end
    time among (a) the previous event on the same rank and (b) for a
    receive, the matched send — the constraint that actually determined
    when the event could complete.  Each event contributes the interval
    from its binding predecessor's end to its own end, so the segment
    durations telescope to the makespan.
    """
    makespan = trace_makespan(tracer)
    report = CriticalPathReport(makespan=makespan)
    if makespan <= 0.0:
        return report

    events = [tracer.events_for(rank) for rank in range(tracer.nprocs)]
    send_of: dict[int, tuple[int, int]] = {
        id(pair.recv): (pair.send_rank, pair.send_index)
        for pair in pair_messages(tracer)
    }

    # Terminal: the event that ends last (ties broken by lowest rank).
    terminal: tuple[int, int] | None = None
    for rank in range(tracer.nprocs):
        for index, ev in enumerate(events[rank]):
            if terminal is None or ev.end > events[terminal[0]][terminal[1]].end:
                terminal = (rank, index)
    assert terminal is not None

    segments: list[PathSegment] = []
    rank, index = terminal
    while True:
        ev = events[rank][index]
        pred: tuple[int, int] | None = None
        if index > 0:
            pred = (rank, index - 1)
        if isinstance(ev, CommEvent) and ev.kind == "recv":
            sender = send_of.get(id(ev))
            if sender is not None:
                send_ev = events[sender[0]][sender[1]]
                # The send binds when the message's *arrival* is later
                # than the local predecessor's end (i.e. the receiver
                # actually waited on the wire).  For nonblocking sends the
                # send event ends at the post overhead, so compare against
                # the arrival stamp; a blocking send's end is its arrival.
                arrival = ev.arrival
                if arrival < 0.0:
                    arrival = (
                        send_ev.arrival if send_ev.arrival >= 0.0 else send_ev.end
                    )
                if pred is None or arrival > events[pred[0]][pred[1]].end:
                    pred = sender
        released = events[pred[0]][pred[1]].end if pred is not None else 0.0
        segments.append(
            PathSegment(
                rank=ev.rank,
                kind=_event_kind(ev),
                label=_event_label(ev),
                start=released,
                end=ev.end,
            )
        )
        if pred is None:
            break
        rank, index = pred
    segments.reverse()
    report.segments = segments
    return report


@dataclass(frozen=True)
class RankActivity:
    """Where one rank's virtual timeline went."""

    rank: int
    compute: float
    send: float
    recv: float
    #: portion of recv time spent waiting for messages not yet arrived
    wait: float
    #: gaps between traced events plus lead-in/tail-out to the makespan
    idle: float

    @property
    def busy(self) -> float:
        return self.compute + self.send + (self.recv - self.wait)


def rank_activity(tracer: Tracer) -> list[RankActivity]:
    """Per-rank busy/wait/idle breakdown against the trace makespan."""
    makespan = trace_makespan(tracer)
    wait_by_rank = [0.0] * tracer.nprocs
    waits: dict[int, float] = {}
    for pair in pair_messages(tracer):
        waits[id(pair.recv)] = pair.wait
    out: list[RankActivity] = []
    for rank in range(tracer.nprocs):
        compute = send = recv = wait = 0.0
        idle = 0.0
        cursor = 0.0
        for ev in tracer.events_for(rank):
            idle += max(ev.start - cursor, 0.0)
            cursor = max(cursor, ev.end)
            if isinstance(ev, ComputeEvent):
                compute += ev.duration
            elif isinstance(ev, CommEvent):
                if ev.kind == "send":
                    send += ev.duration
                else:
                    recv += ev.duration
                    wait += waits.get(id(ev), 0.0)
        idle += max(makespan - cursor, 0.0)
        wait_by_rank[rank] = wait
        out.append(
            RankActivity(
                rank=rank, compute=compute, send=send, recv=recv, wait=wait, idle=idle
            )
        )
    return out


def comm_matrix(tracer: Tracer) -> tuple[list[list[int]], list[list[int]]]:
    """Rank x rank communication matrices from the send events.

    Returns ``(messages, bytes)``: ``messages[src][dst]`` is how many
    messages *src* sent to *dst*, ``bytes[src][dst]`` the payload total.
    """
    n = tracer.nprocs
    messages = [[0] * n for _ in range(n)]
    volume = [[0] * n for _ in range(n)]
    for rank in range(n):
        for ev in tracer.events_for(rank):
            if isinstance(ev, CommEvent) and ev.kind == "send" and 0 <= ev.peer < n:
                messages[ev.rank][ev.peer] += 1
                volume[ev.rank][ev.peer] += ev.nbytes
    return messages, volume


def render_comm_matrix(tracer: Tracer) -> str:
    """ASCII rank x rank matrix: ``messages/bytes`` per cell."""
    messages, volume = comm_matrix(tracer)
    n = tracer.nprocs
    cells = [
        [f"{messages[i][j]}/{volume[i][j]}" if messages[i][j] else "." for j in range(n)]
        for i in range(n)
    ]
    width = max((len(c) for row in cells for c in row), default=1)
    width = max(width, len(str(n - 1)))
    header = "src\\dst " + " ".join(str(j).rjust(width) for j in range(n))
    lines = [header]
    for i in range(n):
        lines.append(
            f"{i:>7} " + " ".join(cells[i][j].rjust(width) for j in range(n))
        )
    lines.append("(cells: messages/bytes)")
    return "\n".join(lines)
