"""Chrome trace-event JSON export (Perfetto-viewable).

Converts a :class:`~repro.trace.tracer.Tracer`'s event logs to the
Trace Event Format understood by https://ui.perfetto.dev and
``chrome://tracing``:

- one track (``tid``) per rank, all under one process (``pid`` 0);
- a complete slice (``"ph": "X"``) per compute / send / recv event,
  with category ``compute`` / ``send`` / ``recv`` and the event's
  details (label, peer, tag, bytes, flops) in ``args``;
- explicit ``idle`` slices filling the gaps between a rank's events and
  the tail up to the run's makespan, so load imbalance is visible at a
  glance;
- a flow arrow (``"ph": "s"`` → ``"ph": "f"``) per message, drawn from
  the send slice to the matched recv slice (the finish point is the
  message's *arrival* — for nonblocking transfers that is after the
  send slice ends, the wire draining while the sender computes);
- instant events (``"ph": "i"``) for wildcard match decisions and
  request lifecycle marks (isend/irecv posts and completions).

Virtual seconds map to trace microseconds (the format's native unit).
:func:`validate_chrome_trace` checks the structural rules this module
relies on — the CI smoke gate (``make obs-smoke``) runs it on a fresh
export, and the test suite runs it on both valid and broken documents.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.trace.events import CommEvent, ComputeEvent, MatchEvent, RequestEvent
from repro.trace.tracer import Tracer
from repro.obs.critical import pair_messages, trace_makespan

#: virtual seconds -> trace-event timestamp units (microseconds)
_US = 1e6

#: gaps shorter than this (seconds) are not worth an idle slice
_MIN_IDLE = 1e-12


class ChromeTraceError(ValueError):
    """An export does not conform to the trace-event structure we emit."""


def _slice(
    rank: int, name: str, cat: str, start: float, end: float, args: dict | None = None
) -> dict:
    out = {
        "ph": "X",
        "pid": 0,
        "tid": rank,
        "name": name,
        "cat": cat,
        "ts": start * _US,
        "dur": max(end - start, 0.0) * _US,
    }
    if args:
        out["args"] = args
    return out


def chrome_trace(tracer: Tracer) -> dict:
    """Build the trace document (a JSON-serialisable dict)."""
    makespan = trace_makespan(tracer)
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro virtual machine"},
        }
    ]
    for rank in range(tracer.nprocs):
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "name": "thread_name",
                "args": {"name": f"rank {rank}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "name": "thread_sort_index",
                "args": {"sort_index": rank},
            }
        )

    for rank in range(tracer.nprocs):
        cursor = 0.0
        for ev in tracer.events_for(rank):
            if ev.start - cursor > _MIN_IDLE:
                events.append(_slice(rank, "idle", "idle", cursor, ev.start))
            cursor = max(cursor, ev.end)
            if isinstance(ev, ComputeEvent):
                events.append(
                    _slice(
                        rank,
                        ev.label or "compute",
                        "compute",
                        ev.start,
                        ev.end,
                        {"flops": ev.flops},
                    )
                )
            elif isinstance(ev, MatchEvent):
                events.append(
                    {
                        "ph": "i",
                        "pid": 0,
                        "tid": rank,
                        "name": f"match source={ev.source} tag={ev.tag}",
                        "cat": "match",
                        "ts": ev.start * _US,
                        "s": "t",
                        "args": {"candidates": list(ev.candidates)},
                    }
                )
            elif isinstance(ev, RequestEvent):
                events.append(
                    {
                        "ph": "i",
                        "pid": 0,
                        "tid": rank,
                        "name": f"{ev.kind} {ev.op} #{ev.req_id}",
                        "cat": "request",
                        "ts": ev.start * _US,
                        "s": "t",
                        "args": {
                            "peer": ev.peer,
                            "tag": ev.tag,
                            "nbytes": ev.nbytes,
                            "req_id": ev.req_id,
                        },
                    }
                )
            elif isinstance(ev, CommEvent):
                name = (
                    f"send -> {ev.peer}" if ev.kind == "send" else f"recv <- {ev.peer}"
                )
                events.append(
                    _slice(
                        rank,
                        name,
                        ev.kind,
                        ev.start,
                        ev.end,
                        {"peer": ev.peer, "tag": ev.tag, "nbytes": ev.nbytes},
                    )
                )
        if makespan - cursor > _MIN_IDLE:
            events.append(_slice(rank, "idle", "idle", cursor, makespan))

    for flow_id, pair in enumerate(pair_messages(tracer), start=1):
        # Arrow from inside the send slice to inside the recv slice: the
        # binding point is the message's arrival stamp (for nonblocking
        # sends that is after the send slice — the wire drains while the
        # sender computes), clamped into the recv slice for receives that
        # did not wait.
        arrival = min(max(pair.arrival, pair.recv.start), pair.recv.end)
        events.append(
            {
                "ph": "s",
                "pid": 0,
                "tid": pair.send_rank,
                "name": "msg",
                "cat": "msg",
                "id": flow_id,
                "ts": pair.send.start * _US,
            }
        )
        events.append(
            {
                "ph": "f",
                "pid": 0,
                "tid": pair.recv_rank,
                "name": "msg",
                "cat": "msg",
                "id": flow_id,
                "bp": "e",
                "ts": arrival * _US,
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs.chrome",
            "nprocs": tracer.nprocs,
            "virtual_makespan_seconds": makespan,
        },
    }


#: phases this exporter may emit, and the keys each requires
_REQUIRED_KEYS = {
    "X": ("pid", "tid", "name", "cat", "ts", "dur"),
    "M": ("pid", "tid", "name", "args"),
    "s": ("pid", "tid", "name", "cat", "id", "ts"),
    "f": ("pid", "tid", "name", "cat", "id", "ts"),
    "i": ("pid", "tid", "name", "cat", "ts"),
}


def validate_chrome_trace(data: Any) -> list[str]:
    """Structural check of a trace document; returns a list of problems.

    An empty list means the document satisfies the trace-event rules
    this exporter relies on: the JSON-object container form, complete
    slices with non-negative durations, known metadata records, and
    fully paired flow arrows (every ``s`` has exactly one ``f`` with the
    same id, at a timestamp not before the start).
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"top level must be a JSON object, got {type(data).__name__}"]
    trace_events = data.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["'traceEvents' must be a list"]
    flow_starts: dict[Any, float] = {}
    flow_finishes: dict[Any, float] = {}
    for i, ev in enumerate(trace_events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _REQUIRED_KEYS:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        missing = [k for k in _REQUIRED_KEYS[ph] if k not in ev]
        if missing:
            problems.append(f"{where}: phase {ph!r} missing keys {missing}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev[key], int):
                problems.append(f"{where}: {key!r} must be an integer")
        if ph != "M" and not isinstance(ev["ts"], (int, float)):
            problems.append(f"{where}: 'ts' must be a number")
        if ph == "X":
            dur = ev["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'dur' must be a non-negative number")
        if ph == "M" and not isinstance(ev["args"], dict):
            problems.append(f"{where}: metadata 'args' must be an object")
        if ph == "s":
            if ev["id"] in flow_starts:
                problems.append(f"{where}: duplicate flow start id {ev['id']!r}")
            flow_starts[ev["id"]] = ev["ts"]
        if ph == "f":
            if ev["id"] in flow_finishes:
                problems.append(f"{where}: duplicate flow finish id {ev['id']!r}")
            flow_finishes[ev["id"]] = ev["ts"]
    for fid, ts in flow_finishes.items():
        if fid not in flow_starts:
            problems.append(f"flow finish id {fid!r} has no matching start")
        elif ts < flow_starts[fid]:
            problems.append(f"flow id {fid!r} finishes before it starts")
    for fid in flow_starts:
        if fid not in flow_finishes:
            problems.append(f"flow start id {fid!r} has no matching finish")
    return problems


def export_chrome_trace(tracer: Tracer, path: str | Path) -> dict:
    """Validate and write the trace document to *path*; returns it.

    Raises :class:`ChromeTraceError` (without writing) if the generated
    document fails its own schema check — a guard against exporter
    regressions reaching Perfetto as silently broken files.
    """
    data = chrome_trace(tracer)
    problems = validate_chrome_trace(data)
    if problems:
        raise ChromeTraceError(
            "generated trace fails schema validation: " + "; ".join(problems[:5])
        )
    path = Path(path)
    with path.open("w") as fh:
        json.dump(data, fh, indent=1)
    return data
