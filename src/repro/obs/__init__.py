"""repro.obs — the observability subsystem.

Three layers, all built on artifacts the runtime already produces:

- :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges, and fixed-bucket histograms.  The runtime, the
  communication library, and the archetype skeletons are instrumented at
  their choke points (scheduler steps/blocks, mailbox enqueue/match,
  collective entry/exit, archetype phase boundaries), so every run
  populates the registry without any application changes.
- :mod:`repro.obs.critical` — happens-before analysis of a
  :class:`~repro.trace.tracer.Tracer`'s event logs: message send/recv
  pairing, the critical path (the longest virtual-time chain, whose
  length equals the run's makespan), per-rank busy/wait/idle breakdowns,
  and the rank x rank communication matrix.
- :mod:`repro.obs.chrome` — Chrome trace-event JSON export (one track
  per rank, compute/send/recv/idle slices, flow arrows for messages),
  viewable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``,
  plus a schema validator the CI smoke gate runs.

``python -m repro.obs`` drives all of it from the shell; see
``docs/observability.md``.
"""

from repro.obs.chrome import chrome_trace, export_chrome_trace, validate_chrome_trace
from repro.obs.critical import (
    CriticalPathReport,
    MessagePair,
    PathSegment,
    RankActivity,
    comm_matrix,
    critical_path,
    pair_messages,
    rank_activity,
    render_comm_matrix,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "scoped_registry",
    "MessagePair",
    "PathSegment",
    "CriticalPathReport",
    "RankActivity",
    "pair_messages",
    "critical_path",
    "rank_activity",
    "comm_matrix",
    "render_comm_matrix",
    "chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
]
