"""Metrics: counters, gauges, and fixed-bucket histograms.

The registry is deliberately minimal — no labels, no exporters, no
background threads — because its job is introspection of a simulation
running in-process: the instrumented choke points (scheduler, mailbox,
collectives, archetype phases) record *what the runtime did*, and the
``python -m repro.obs`` CLI or a test reads the numbers back.

A process-wide default registry is always available via
:func:`get_registry`; instrumentation sites call
``get_registry().counter("...").inc()`` so that tests can swap in a
fresh registry with :func:`scoped_registry` and observe one run in
isolation.  All instruments are thread-safe (ranks run on threads).

Hot paths (the mailbox, the scheduler, request completion) use the
bind-once *handle* API instead — :func:`counter_handle`,
:func:`gauge_handle`, :func:`histogram_handle` — which resolves the
instrument once and then records with a single registry-identity check
per event (no lock, no dict lookup, no name formatting).  Handles stay
correct across :func:`scoped_registry`/:func:`set_registry` swaps: a
swap is detected by identity comparison and the handle re-binds against
the new registry on its next use.

This module sits below :mod:`repro.runtime` in the layering: it imports
nothing from the rest of the package except the dependency-free
:mod:`repro.fastpath` switch, so the runtime can import it without
cycles.
"""

from __future__ import annotations

import contextlib
import threading
from bisect import bisect_left
from collections.abc import Iterator, Sequence

from repro import fastpath

#: default histogram buckets for virtual-time observations (seconds):
#: one decade per bucket from 1 microsecond to 100 seconds
TIME_BUCKETS: tuple[float, ...] = tuple(10.0**e for e in range(-6, 3))

#: default histogram buckets for small cardinalities (queue depths,
#: parcel counts): powers of two up to 1024
COUNT_BUCKETS: tuple[float, ...] = tuple(float(1 << e) for e in range(11))


class MetricsError(ValueError):
    """Invalid use of the metrics registry (name/type conflicts, bad values)."""


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """A value that can go up and down (e.g. instantaneous queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self._value}


class Histogram:
    """A fixed-bucket histogram of observations.

    ``buckets`` are inclusive upper bounds in strictly increasing order;
    an implicit +inf bucket catches the overflow.  Tracks count, sum,
    min, and max alongside the per-bucket counts.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = TIME_BUCKETS, help: str = ""):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(later <= earlier for later, earlier in zip(bounds[1:], bounds)):
            raise MetricsError(
                f"histogram {name!r} buckets must be strictly increasing: {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            i = 0
            while i < len(self.buckets) and value > self.buckets[i]:
                i += 1
            self._counts[i] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def bucket_counts(self) -> list[int]:
        """Counts per bucket; the last entry is the +inf overflow bucket."""
        return list(self._counts)

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": dict(zip([*map(str, self.buckets), "+inf"], self._counts)),
        }


class MetricsRegistry:
    """A named collection of instruments with get-or-create access.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when the name is already registered (raising on a kind mismatch), so
    instrumentation sites never need to pre-declare anything.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory()
                self._instruments[name] = inst
            elif inst.kind != kind:
                raise MetricsError(
                    f"metric {name!r} already registered as a {inst.kind}, "
                    f"requested as a {kind}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self, name: str, buckets: Sequence[float] = TIME_BUCKETS, help: str = ""
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, buckets, help), "histogram"
        )

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under *name*, or ``None``."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (a fresh start for the next run)."""
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> dict[str, dict]:
        """Plain-data view of every instrument, sorted by name."""
        return {name: self._instruments[name].snapshot() for name in self.names()}

    def merge_snapshot(self, snapshot: dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is how per-process metrics from the parallel backend's
        workers — and the job server's per-job snapshots — reach the
        parent: counters add their values; gauges take the snapshot's
        value (*last-write-wins*: a gauge is an instantaneous reading,
        and the most recently merged snapshot is the most recent
        observation — summing queue depths or utilisations across
        snapshots would fabricate a reading nobody took); histograms add
        per-bucket counts and recombine sum/count/min/max.  Instruments
        missing here are created (histogram bounds recovered from the
        snapshot's bucket keys); kind or bucket mismatches raise
        :class:`MetricsError` rather than silently mixing streams.
        """
        for name, data in snapshot.items():
            kind = data.get("kind")
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                self.gauge(name).set(data["value"])
            elif kind == "histogram":
                bucket_counts = data["buckets"]
                bounds = tuple(float(b) for b in bucket_counts if b != "+inf")
                hist = self.histogram(name, buckets=bounds)
                if hist.buckets != bounds:
                    raise MetricsError(
                        f"histogram {name!r} bucket mismatch: registry has "
                        f"{hist.buckets}, snapshot has {bounds}"
                    )
                with hist._lock:
                    for i, count in enumerate(bucket_counts.values()):
                        hist._counts[i] += count
                    hist._count += data["count"]
                    hist._sum += data["sum"]
                    if data["min"] is not None:
                        hist._min = min(hist._min, data["min"])
                    if data["max"] is not None:
                        hist._max = max(hist._max, data["max"])
            else:
                raise MetricsError(f"metric {name!r} has unknown kind {kind!r}")

    def render(self) -> str:
        """Human-readable dump, one line per scalar and histogram."""
        lines = []
        for name in self.names():
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                lines.append(
                    f"{name}: count={inst.count} sum={inst.sum:.6g} "
                    f"mean={inst.mean:.6g}"
                )
            else:
                value = inst.value
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"{name}: {shown}")
        return "\n".join(lines) if lines else "(no metrics recorded)"


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry all instrumentation sites record into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextlib.contextmanager
def scoped_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Swap in a fresh (or given) registry for the duration of the block.

    The isolation tool for tests and the CLI: everything the runtime
    records inside the block lands in the scoped registry, and the
    previous registry is restored on exit.
    """
    fresh = registry if registry is not None else MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


class _Handle:
    """Bind-once accessor for one instrument of the process-wide registry.

    Created at import time by instrumentation sites; resolves its
    instrument on first use and re-resolves automatically whenever the
    default registry is swapped (:func:`scoped_registry` /
    :func:`set_registry`), detected by a plain identity check.  With the
    fast path disabled (:mod:`repro.fastpath`), every event takes the
    historical full route — lock, dict lookup, get-or-create — so the
    wallclock ablation measures what handles actually save.
    """

    __slots__ = ("name", "help", "_registry", "_instrument")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._registry: MetricsRegistry | None = None
        self._instrument: Counter | Gauge | Histogram | None = None

    def _create(self, registry: MetricsRegistry):
        raise NotImplementedError

    def resolve(self) -> Counter | Gauge | Histogram:
        """The live instrument in the *current* default registry."""
        registry = _default_registry
        if self._registry is not registry:
            self._instrument = self._create(registry)
            self._registry = registry
        return self._instrument


class CounterHandle(_Handle):
    """Cached handle to a :class:`Counter` (see :func:`counter_handle`).

    The fast branch mutates the counter without taking its lock: the
    run-to-block backends have exactly one live thread, so the update is
    race-free by construction.  On the threaded backend a concurrent
    increment can (rarely, under free-running GIL preemption) be lost;
    metrics are observability, not semantics, and the trade is accepted
    and measured by the wallclock ablation.
    """

    def _create(self, registry: MetricsRegistry) -> Counter:
        return registry.counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        registry = _default_registry
        if not fastpath._enabled:
            registry.counter(self.name, self.help).inc(amount)
            return
        if self._registry is not registry:
            self._instrument = self._create(registry)
            self._registry = registry
        self._instrument._value += amount


class GaugeHandle(_Handle):
    """Cached handle to a :class:`Gauge` (see :func:`gauge_handle`).

    Lock-free on the fast branch, like :class:`CounterHandle`.
    """

    def _create(self, registry: MetricsRegistry) -> Gauge:
        return registry.gauge(self.name, self.help)

    def set(self, value: float) -> None:
        registry = _default_registry
        if not fastpath._enabled:
            registry.gauge(self.name, self.help).set(value)
            return
        if self._registry is not registry:
            self._instrument = self._create(registry)
            self._registry = registry
        self._instrument._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        registry = _default_registry
        if not fastpath._enabled:
            registry.gauge(self.name, self.help).inc(amount)
            return
        if self._registry is not registry:
            self._instrument = self._create(registry)
            self._registry = registry
        self._instrument._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class HistogramHandle(_Handle):
    """Cached handle to a :class:`Histogram` (see :func:`histogram_handle`).

    Lock-free on the fast branch, like :class:`CounterHandle`; the
    bucket search uses ``bisect_left``, which lands on the same bucket
    as :meth:`Histogram.observe`'s linear scan (first bound >= value,
    overflow past the end).
    """

    __slots__ = ("buckets",)

    def __init__(self, name: str, buckets: Sequence[float] = TIME_BUCKETS, help: str = ""):
        super().__init__(name, help)
        self.buckets = buckets

    def _create(self, registry: MetricsRegistry) -> Histogram:
        return registry.histogram(self.name, self.buckets, self.help)

    def observe(self, value: float) -> None:
        registry = _default_registry
        if not fastpath._enabled:
            registry.histogram(self.name, self.buckets, self.help).observe(value)
            return
        if self._registry is not registry:
            self._instrument = self._create(registry)
            self._registry = registry
        inst = self._instrument
        value = float(value)
        inst._counts[bisect_left(inst.buckets, value)] += 1
        inst._count += 1
        inst._sum += value
        if value < inst._min:
            inst._min = value
        if value > inst._max:
            inst._max = value


def counter_handle(name: str, help: str = "") -> CounterHandle:
    """A bind-once counter accessor for hot instrumentation sites."""
    return CounterHandle(name, help)


def gauge_handle(name: str, help: str = "") -> GaugeHandle:
    """A bind-once gauge accessor for hot instrumentation sites."""
    return GaugeHandle(name, help)


def histogram_handle(
    name: str, buckets: Sequence[float] = TIME_BUCKETS, help: str = ""
) -> HistogramHandle:
    """A bind-once histogram accessor for hot instrumentation sites."""
    return HistogramHandle(name, buckets, help)
