"""Autotuning ablation: tuned vs default makespan, prediction quality.

Each case runs one exhaustive :func:`repro.tune.search` — every
candidate measured, including the ones the closed-form pruner would
have skipped — against a throwaway catalog directory, so the artifact
records three things the tuner claims:

* the tuned configuration's measured virtual makespan never exceeds the
  default's (the search contract: the default is candidate 0 and wins
  ties);
* the ``bench/predict.py`` predictions used for pruning track the
  measured makespans (mean relative error per case) and the pruner
  never discards a would-be winner (``prune_accuracy``);
* a second search is a pure catalog hit — no candidate re-measured.

Cases pair the isotropic default (where keeping the default grid *is*
the right answer) with anisotropic domains and larger rank counts
(where a flat process grid genuinely wins), across the three modern
machine models.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass

from repro.machines.catalog import MODERN_MACHINES
from repro.tune import catalog
from repro.tune.search import PRUNED, REJECTED, WINNER, SearchOutcome, search

#: (case name, app, parameter overrides) — reduced scales, same shapes
#: the test suite exercises
CASES: tuple[tuple[str, str, dict], ...] = (
    ("poisson-square", "poisson", {"nx": 32, "ny": 32, "max_iters": 3}),
    ("poisson-wide", "poisson", {"nx": 64, "ny": 16, "max_iters": 3}),
    (
        "poisson-wide-p8",
        "poisson",
        {"nprocs": 8, "nx": 64, "ny": 16, "max_iters": 3},
    ),
    ("fft2d", "fft2d", {"rows": 32, "cols": 32, "repeats": 1}),
)

MACHINES: tuple[str, ...] = tuple(m.name for m in MODERN_MACHINES)


@dataclass(frozen=True)
class TuneRow:
    """One (case, machine) exhaustive search, summarised."""

    case: str
    app: str
    machine: str
    nprocs: int
    winner: str  #: human-readable winner config
    default_measured: float  #: virtual makespan of candidate 0
    tuned_measured: float  #: virtual makespan of the winner
    predicted: float | None  #: closed-form prediction for the winner
    prediction_error: float | None  #: mean |pred-meas|/meas over candidates
    candidates: int
    pruned: int  #: candidates the non-exhaustive search would skip
    rejected: int  #: candidates rejected by the digest contract
    prune_accuracy: float | None  #: audited prunes that were correct
    cache_hit: bool  #: second search answered from the catalog

    @property
    def speedup(self) -> float:
        return (
            self.default_measured / self.tuned_measured
            if self.tuned_measured > 0
            else float("inf")
        )

    def to_json(self) -> dict:
        return {
            "case": self.case,
            "app": self.app,
            "machine": self.machine,
            "procs": self.nprocs,
            "winner": self.winner,
            "default_measured_seconds": self.default_measured,
            "tuned_measured_seconds": self.tuned_measured,
            "speedup": self.speedup,
            "predicted_seconds": self.predicted,
            "prediction_error": self.prediction_error,
            "candidates": self.candidates,
            "pruned": self.pruned,
            "digest_rejected": self.rejected,
            "prune_accuracy": self.prune_accuracy,
            "cache_hit": self.cache_hit,
        }


@contextmanager
def _scratch_catalog():
    """A throwaway catalog so the ablation never reads or writes the
    user's tuned configs."""
    saved = os.environ.get(catalog.DIR_ENV)
    with tempfile.TemporaryDirectory(prefix="repro-bench-tune-") as tmp:
        os.environ[catalog.DIR_ENV] = tmp
        try:
            yield
        finally:
            if saved is None:
                os.environ.pop(catalog.DIR_ENV, None)
            else:
                os.environ[catalog.DIR_ENV] = saved


def _prediction_error(outcome: SearchOutcome) -> float | None:
    errors = [
        abs(r.predicted - r.measured) / r.measured
        for r in outcome.reports
        if r.predicted is not None and r.measured is not None and r.measured > 0
    ]
    return sum(errors) / len(errors) if errors else None


def _row(case: str, app: str, overrides: dict, machine: str) -> TuneRow:
    outcome = search(app, machine, overrides=overrides, exhaustive=True)
    again = search(app, machine, overrides=overrides)
    counts = outcome.counts()
    winner_predicted = next(
        (r.predicted for r in outcome.reports if r.status == WINNER), None
    )
    return TuneRow(
        case=case,
        app=app,
        machine=machine,
        nprocs=outcome.nprocs,
        winner=outcome.entry.config.describe(),
        default_measured=outcome.entry.default_measured,
        tuned_measured=outcome.entry.measured,
        predicted=winner_predicted,
        prediction_error=_prediction_error(outcome),
        candidates=len(outcome.reports),
        pruned=counts.get(PRUNED, 0),
        rejected=counts.get(REJECTED, 0),
        prune_accuracy=outcome.prune_accuracy,
        cache_hit=again.cache_hit and not again.reports,
    )


def run_ablation(
    cases: tuple[tuple[str, str, dict], ...] = CASES,
    machines: tuple[str, ...] = MACHINES,
) -> list[TuneRow]:
    """Exhaustive tuned-vs-default searches over cases × machines."""
    rows: list[TuneRow] = []
    with _scratch_catalog():
        for case, app, overrides in cases:
            for machine in machines:
                rows.append(_row(case, app, overrides, machine))
    return rows


def render_table(rows: list[TuneRow]) -> str:
    lines = [
        "autotuning ablation (exhaustive search; virtual makespan, seconds)",
        f"{'case':>16} {'machine':>12} {'P':>3} {'default':>11} {'tuned':>11} "
        f"{'speedup':>8} {'pred err':>8} {'pruned':>6} {'rej':>4} {'hit':>4}  winner",
    ]
    for r in rows:
        err = f"{r.prediction_error:.1%}" if r.prediction_error is not None else "-"
        lines.append(
            f"{r.case:>16} {r.machine:>12} {r.nprocs:>3} "
            f"{r.default_measured:>11.6g} {r.tuned_measured:>11.6g} "
            f"{r.speedup:>7.4f}x {err:>8} {r.pruned:>3}/{r.candidates:<2} "
            f"{r.rejected:>4} {'yes' if r.cache_hit else 'NO':>4}  {r.winner}"
        )
    return "\n".join(lines)


def check_rows(rows: list[TuneRow]) -> list[str]:
    """Gate failures — every row must honour the search contract."""
    problems = []
    for r in rows:
        if r.tuned_measured > r.default_measured:
            problems.append(
                f"{r.case}@{r.machine}: tuned makespan {r.tuned_measured:g} "
                f"exceeds default {r.default_measured:g}"
            )
        if not r.cache_hit:
            problems.append(f"{r.case}@{r.machine}: second search missed the catalog")
        if r.prune_accuracy is not None and r.prune_accuracy < 1.0:
            problems.append(
                f"{r.case}@{r.machine}: pruner discarded a winning candidate "
                f"(accuracy {r.prune_accuracy:.2f})"
            )
    return problems
