"""Kernel-fusion ablation: host time with fusion off vs on.

The kernel layer's plan (grouping, exchange packs, hoists, charges) is
identical in both modes — ``REPRO_KERNEL_FUSION`` only switches group
bodies between loop-by-loop and tile-interleaved execution — so the two
runs must be observationally identical: same per-rank virtual clocks,
same values, same digests.  This module measures what the switch is
*for*: real host seconds on the mesh-spectral workloads whose steps
declare several loops over the same region (smog fuses an eight-loop
transport/chemistry chain; spectralflow fuses its advection pair and
hoists the streamfunction exchange).

Mirrors :mod:`repro.bench.wallclock` (best-of-N, digest-gated, generous
CI floor); additionally captures the ``core.kernels.*`` counters so the
artifact records how much fusion and hoisting actually happened.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.apps import registry
from repro.kernels import fusion_forced
from repro.obs.metrics import scoped_registry
from repro.runtime.spmd import RunResult
from repro.verify.digest import value_digest

#: rank count for the ablation
DEFAULT_NPROCS = 2
#: host-time samples per (workload, mode); best-of is reported
DEFAULT_REPEATS = 3


def _run_poisson(nprocs: int, scale: int = 1) -> RunResult:
    return registry.get("poisson").run(
        {"nprocs": nprocs, "nx": 256, "ny": 256, "max_iters": 10 * scale},
        machine="ibm-sp",
    )


def _run_smog(nprocs: int, scale: int = 1) -> RunResult:
    # Large enough that the per-step eight-loop chain's working set
    # spills cache unfused — the configuration fusion is for.
    return registry.get("smog").run(
        {"nprocs": nprocs, "nx": 512, "ny": 512, "steps": 4 * scale},
        machine="ibm-sp",
    )


def _run_spectralflow(nprocs: int, scale: int = 1) -> RunResult:
    return registry.get("spectralflow").run(
        {"nprocs": nprocs, "nr": 256, "nz": 256, "steps": 4 * scale},
        machine="ibm-sp",
    )


WORKLOADS = {
    "poisson": (_run_poisson, registry.get("poisson").description),
    "smog": (_run_smog, registry.get("smog").description),
    "spectralflow": (_run_spectralflow, registry.get("spectralflow").description),
}

#: counters captured into each row (names under ``core.kernels.``)
COUNTER_NAMES = (
    "loops",
    "groups",
    "loops_fused",
    "exchanges",
    "exchanges_hoisted",
    "dats_packed",
    "tiles",
)


@dataclass(frozen=True)
class KernelAblationRow:
    """One workload's fusion-off vs fusion-on measurement."""

    app: str
    nprocs: int
    wall_unfused: float  #: best-of-N host seconds, REPRO_KERNEL_FUSION=0
    wall_fused: float  #: best-of-N host seconds, fusion on
    virtual_elapsed: float  #: virtual makespan (identical in both modes)
    digest: str  #: digest of (times, values) — identical in both modes
    identical: bool  #: did both modes produce the same digest?
    counters: dict = field(default_factory=dict)  #: core.kernels.* (fused run)

    @property
    def speedup(self) -> float:
        """Host-time ratio unfused/fused (>1 means fusion helps)."""
        return (
            self.wall_unfused / self.wall_fused
            if self.wall_fused > 0
            else float("inf")
        )

    def to_json(self) -> dict:
        return {
            "app": self.app,
            "procs": self.nprocs,
            "wall_unfused_seconds": self.wall_unfused,
            "wall_fused_seconds": self.wall_fused,
            "speedup": self.speedup,
            "virtual_elapsed_seconds": self.virtual_elapsed,
            "digest": self.digest,
            "identical": self.identical,
            "counters": self.counters,
        }


def _sample(runner, nprocs: int, scale: int, fused: bool):
    """One timed run with fusion forced to *fused*; returns
    (host seconds, result, kernel counters)."""
    with fusion_forced(fused), scoped_registry() as reg:
        start = time.perf_counter()
        result = runner(nprocs, scale)
        elapsed = time.perf_counter() - start
        snap = reg.snapshot()
    counters = {
        name: snap[f"core.kernels.{name}"]["value"]
        for name in COUNTER_NAMES
        if f"core.kernels.{name}" in snap
    }
    return elapsed, result, counters


def run_ablation(
    apps: list[str] | None = None,
    nprocs: int = DEFAULT_NPROCS,
    repeats: int = DEFAULT_REPEATS,
    scale: int = 1,
) -> list[KernelAblationRow]:
    """Run the fusion off/on ablation; one row per app.

    Samples alternate unfused/fused rather than running one mode's
    repeats back to back, so slow host drift (thermal throttling, noisy
    CI neighbours) cancels out of the ratio instead of masquerading as
    a fusion effect."""
    rows: list[KernelAblationRow] = []
    for app in apps or list(WORKLOADS):
        runner, _ = WORKLOADS[app]
        wall_off = wall_on = float("inf")
        res_off = res_on = None
        counters: dict = {}
        for _ in range(repeats):
            t, res_off, _ = _sample(runner, nprocs, scale, False)
            wall_off = min(wall_off, t)
            t, res_on, counters = _sample(runner, nprocs, scale, True)
            wall_on = min(wall_on, t)
        digest_off = value_digest([res_off.times, res_off.values])
        digest_on = value_digest([res_on.times, res_on.values])
        rows.append(
            KernelAblationRow(
                app=app,
                nprocs=nprocs,
                wall_unfused=wall_off,
                wall_fused=wall_on,
                virtual_elapsed=max(res_on.times),
                digest=digest_on,
                identical=digest_off == digest_on,
                counters=counters,
            )
        )
    return rows


def render_table(rows: list[KernelAblationRow]) -> str:
    lines = [
        "kernel-fusion ablation (host seconds, best of N; plan and virtual time "
        "identical)",
        f"{'app':>13} {'P':>3} {'unfused (s)':>12} {'fused (s)':>10} {'speedup':>8} "
        f"{'hoisted':>8} {'packed':>7} {'fused loops':>11} {'identical':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.app:>13} {r.nprocs:>3} {r.wall_unfused:>12.4f} "
            f"{r.wall_fused:>10.4f} {r.speedup:>7.2f}x "
            f"{r.counters.get('exchanges_hoisted', 0):>8.0f} "
            f"{r.counters.get('dats_packed', 0):>7.0f} "
            f"{r.counters.get('loops_fused', 0):>11.0f} "
            f"{'yes' if r.identical else 'NO':>9}"
        )
    return "\n".join(lines)


def check_rows(
    rows: list[KernelAblationRow], min_speedup: float | None
) -> list[str]:
    """Gate failures: digest mismatches always fail; *min_speedup* (when
    given) is the generous CI floor the best row must clear — host timing
    on shared runners is noisy, so the gate guards against fusion being
    silently disabled, not against modest regressions."""
    problems = []
    for r in rows:
        if not r.identical:
            problems.append(
                f"{r.app}: fusion changed observable results (digest mismatch)"
            )
    if min_speedup is not None and rows:
        best = max(r.speedup for r in rows)
        if best < min_speedup:
            problems.append(
                f"best fusion speedup {best:.2f}x below the regression floor "
                f"{min_speedup:.2f}x"
            )
    return problems
