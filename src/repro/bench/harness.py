"""Speedup-experiment harness.

A speedup experiment runs an archetype program at several process counts
on a modelled machine, compares each run's virtual makespan with the
sequential algorithm's virtual time, and reports the speedup series —
the quantity every numeric figure in the paper plots.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.runtime.spmd import RunResult


@dataclass(frozen=True)
class SpeedupPoint:
    """One point of a speedup curve."""

    procs: int
    t_seq: float
    t_par: float

    @property
    def speedup(self) -> float:
        if self.t_par <= 0:
            raise ReproError("parallel virtual time is zero")
        return self.t_seq / self.t_par

    @property
    def efficiency(self) -> float:
        return self.speedup / self.procs


@dataclass
class SpeedupCurve:
    """A named speedup series (one line of a paper figure)."""

    label: str
    points: list[SpeedupPoint] = field(default_factory=list)

    @property
    def procs(self) -> list[int]:
        return [p.procs for p in self.points]

    @property
    def speedups(self) -> list[float]:
        return [p.speedup for p in self.points]

    def at(self, procs: int) -> SpeedupPoint:
        for p in self.points:
            if p.procs == procs:
                return p
        raise ReproError(f"curve {self.label!r} has no point at P={procs}")

    def peak(self) -> SpeedupPoint:
        """The point with the highest speedup."""
        return max(self.points, key=lambda p: p.speedup)

    def is_monotonic(self) -> bool:
        s = self.speedups
        return all(b >= a for a, b in zip(s, s[1:]))


def measure_speedups(
    label: str,
    run: Callable[[int], RunResult],
    procs: Sequence[int],
    sequential_time: float | Callable[[], float],
) -> SpeedupCurve:
    """Run the experiment at each process count and build the curve.

    ``run(P)`` executes the parallel program on P ranks and returns its
    :class:`RunResult`; ``sequential_time`` is the baseline virtual time
    (or a thunk computing it once).
    """
    t_seq = sequential_time() if callable(sequential_time) else sequential_time
    if t_seq <= 0:
        raise ReproError(f"sequential baseline time must be positive, got {t_seq}")
    curve = SpeedupCurve(label=label)
    for p in procs:
        result = run(p)
        curve.points.append(SpeedupPoint(procs=p, t_seq=t_seq, t_par=result.elapsed))
    return curve


def perfect_curve(procs: Sequence[int]) -> SpeedupCurve:
    """The "perfect speedup" reference line (speedup == P)."""
    return SpeedupCurve(
        label="perfect speedup",
        points=[SpeedupPoint(procs=p, t_seq=float(p), t_par=1.0) for p in procs],
    )
