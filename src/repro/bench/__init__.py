"""Benchmark harness: the experiments behind every figure in the paper.

:mod:`repro.bench.harness` runs speedup experiments (virtual parallel
time vs. a sequential baseline on a modelled machine);
:mod:`repro.bench.figures` defines one experiment per numeric figure of
the paper (Figures 6, 12, 15, 16, 17, 18); :mod:`repro.bench.report`
renders the series as the tables/ASCII plots the benchmark suite prints.
"""

from repro.bench.harness import SpeedupCurve, SpeedupPoint, measure_speedups
from repro.bench.figures import (
    figure06_mergesort,
    figure12_fft2d,
    figure15_poisson,
    figure16_cfd,
    figure17_fdtd,
    figure18_spectral,
    overlap_ablation,
)
from repro.bench.report import format_curves, render_ascii_plot
from repro.bench.predict import (
    exchange_time,
    overlapped_exchange_time,
    predict_cfd,
    predict_fft2d,
    predict_onedeep_sort,
    predict_poisson,
)

__all__ = [
    "exchange_time",
    "overlapped_exchange_time",
    "predict_onedeep_sort",
    "predict_poisson",
    "predict_fft2d",
    "predict_cfd",
    "overlap_ablation",
    "SpeedupPoint",
    "SpeedupCurve",
    "measure_speedups",
    "figure06_mergesort",
    "figure12_fft2d",
    "figure15_poisson",
    "figure16_cfd",
    "figure17_fdtd",
    "figure18_spectral",
    "format_curves",
    "render_ascii_plot",
]
