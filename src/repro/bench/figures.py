"""One experiment per numeric figure of the paper.

Each ``figureNN_*`` function runs the corresponding workload on the
modelled machine and returns the speedup curve(s) the figure plots.
Workload parameters garbled in the source scan are chosen to land in the
regime the prose describes (see EXPERIMENTS.md); the assertions the
benchmark suite applies check the *shape* claims the paper makes in
text, not absolute numbers.

All experiments execute the real algorithms on real data through the
virtual machine; virtual times come from the machine model applied to
the actual message pattern and the analytic work charges.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.bench.harness import SpeedupCurve, measure_speedups
from repro.machines.catalog import IBM_SP, INTEL_DELTA
from repro.machines.model import MachineModel
from repro.apps.sorting.mergesort import (
    one_deep_mergesort,
    sequential_sort_time,
    traditional_mergesort,
)
from repro.apps.fft2d import fft2d_archetype, sequential_fft2d_time
from repro.apps.poisson import poisson_archetype, sequential_poisson_time
from repro.apps.cfd import cfd_archetype, sequential_cfd_time
from repro.apps.fdtd import fdtd_archetype, sequential_fdtd_time
from repro.apps.spectralflow import (
    sequential_spectralflow_time,
    spectralflow_archetype,
)

#: default process counts per figure (the paper's x-axes)
FIG06_PROCS = (1, 2, 4, 8, 16, 32, 64)
FIG12_PROCS = (1, 2, 4, 8, 16, 32)
FIG15_PROCS = (1, 2, 4, 8, 16, 32, 40)
FIG16_PROCS = (1, 2, 4, 9, 16, 25, 49, 100)
FIG17_PROCS = (1, 2, 4, 8, 12, 16, 18)
FIG18_PROCS = (5, 10, 15, 20, 25, 30, 35, 40)


def figure06_mergesort(
    n: int = 1 << 20,
    procs: tuple[int, ...] = FIG06_PROCS,
    machine: MachineModel = INTEL_DELTA,
    seed: int = 0,
) -> list[SpeedupCurve]:
    """Figure 6: traditional vs one-deep mergesort on the Intel Delta.

    The paper sorts ~10M integers on up to 64 processors; we default to
    2^20 keys (the comm/compute ratio, which sets the curve shapes, is
    nearly size-independent for sort workloads at these scales).
    """
    rng = np.random.default_rng(seed)
    data = rng.integers(0, np.iinfo(np.int64).max, size=n)
    t_seq = sequential_sort_time(n, machine)

    onedeep = one_deep_mergesort()
    traditional = traditional_mergesort()
    curves = [
        measure_speedups(
            "one-deep mergesort",
            lambda p: onedeep.run(p, data, machine=machine),
            procs,
            t_seq,
        ),
        measure_speedups(
            "traditional mergesort",
            lambda p: traditional.run(p, data, machine=machine),
            procs,
            t_seq,
        ),
    ]
    return curves


def figure12_fft2d(
    shape: tuple[int, int] = (128, 128),
    repeats: int = 5,
    procs: tuple[int, ...] = FIG12_PROCS,
    machine: MachineModel = IBM_SP,
    seed: int = 0,
) -> list[SpeedupCurve]:
    """Figure 12: parallel 2-D FFT vs sequential on the IBM SP.

    The paper's caption calls the performance "disappointing ... a result
    of too small a ratio of computation to communication"; the modest
    grid keeps the experiment in that regime.
    """
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    t_seq = sequential_fft2d_time(shape, repeats, machine)
    arch = fft2d_archetype()
    return [
        measure_speedups(
            "2-D FFT",
            lambda p: arch.run(p, data, repeats, machine=machine),
            procs,
            t_seq,
        )
    ]


def figure15_poisson(
    nx: int = 512,
    ny: int = 512,
    iters: int = 20,
    procs: tuple[int, ...] = FIG15_PROCS,
    machine: MachineModel = IBM_SP,
) -> list[SpeedupCurve]:
    """Figure 15: Jacobi Poisson solver on the IBM SP.

    Runs a fixed number of Jacobi sweeps (tolerance set unreachably low
    so every process count does identical work)."""
    arch = poisson_archetype()
    t_seq = sequential_poisson_time(nx, ny, iters, machine)
    return [
        measure_speedups(
            "Poisson solver",
            lambda p: arch.run(
                p,
                nx,
                ny,
                machine=machine,
                tolerance=0.0,
                max_iters=iters,
                gather_solution=False,
            ),
            procs,
            t_seq,
        )
    ]


def figure16_cfd(
    nx: int = 512,
    ny: int = 512,
    steps: int = 3,
    procs: tuple[int, ...] = FIG16_PROCS,
    machine: MachineModel = INTEL_DELTA,
) -> list[SpeedupCurve]:
    """Figure 16: 2-D compressible-flow code on the Intel Delta —
    close-to-perfect speedup to ~100 processors.

    The grid is the largest that fits one Delta node's memory (the
    baseline is single-node execution, as in the paper's caption), with
    the production optimisations real codes used: packed boundary
    messages and a CFL reduction computed once per run.
    """
    arch = cfd_archetype()
    t_seq = sequential_cfd_time(nx, ny, steps, machine)
    return [
        measure_speedups(
            "2-D CFD",
            lambda p: arch.run(
                p,
                nx,
                ny,
                steps,
                ic="smooth",
                machine=machine,
                gather=False,
                cfl_interval=steps,
            ),
            procs,
            t_seq,
        )
    ]


def figure17_fdtd(
    n: int = 32,
    steps: int = 4,
    procs: tuple[int, ...] = FIG17_PROCS,
    machine: MachineModel = IBM_SP,
) -> list[SpeedupCurve]:
    """Figure 17: 3-D FDTD electromagnetics on the IBM SP.

    The paper: "the decrease in performance for more than ~16 processors
    results from the ratio of computation to communication dropping too
    low for efficiency" — a small grid per node plus switch congestion
    reproduces the peak-then-decline."""
    arch = fdtd_archetype()
    t_seq = sequential_fdtd_time(n, n, n, steps, machine)
    return [
        measure_speedups(
            "3-D FDTD",
            lambda p: arch.run(p, n, n, n, steps=steps, machine=machine, gather=False),
            procs,
            t_seq,
        )
    ]


def figure18_spectral(
    nr: int = 256,
    nz: int = 512,
    steps: int = 2,
    procs: tuple[int, ...] = FIG18_PROCS,
    machine: MachineModel | None = None,
    base_procs: int = 5,
) -> list[SpeedupCurve]:
    """Figure 18: spectral flow code on the IBM SP, speedup relative to a
    5-processor base.

    The paper: single-processor execution "was not feasible due to memory
    requirements", and "inefficiencies in executing the code on the base
    number of processors (e.g. paging) probably explain the better-than-
    ideal speedup for small numbers of processors".  We model nodes whose
    memory holds the per-rank working set only for P > ~8, so the base
    configuration pages and the speedup relative to it starts
    super-ideal.  The curve reports T(base)/T(P); ideal is P/base.
    """
    if machine is None:
        # SP nodes sized so the base configuration's working set slightly
        # overflows node memory (mild paging), while P >= 2*base fits.
        working_set_total = 10 * 8.0 * nr * nz
        machine = dataclasses.replace(
            IBM_SP,
            mem_per_node=working_set_total / base_procs * 0.96,
            name="ibm-sp-small-mem",
        )
    arch = spectralflow_archetype()
    base = arch.run(
        base_procs, nr, nz, steps=steps, dt=1e-3, machine=machine, gather=False
    )
    t_base = base.elapsed
    curve = measure_speedups(
        f"spectral flow (vs {base_procs} procs)",
        lambda p: arch.run(
            p, nr, nz, steps=steps, dt=1e-3, machine=machine, gather=False
        ),
        procs,
        t_base,
    )
    return [curve]


def sequential_spectral_reference(nr: int, nz: int, steps: int, machine: MachineModel) -> float:
    """Exposed for analysis: the (paged) sequential baseline of Fig. 18."""
    return sequential_spectralflow_time(nr, nz, steps, machine)


#: default machine models for the overlap ablation (one high-latency
#: switch, one low-latency mesh — the overlap win shows on both)
OVERLAP_MACHINES: tuple[MachineModel, ...] = (IBM_SP, INTEL_DELTA)


def overlap_ablation(
    procs: int = 4,
    machines: tuple[MachineModel, ...] = OVERLAP_MACHINES,
    poisson_n: int = 128,
    poisson_iters: int = 5,
    cfd_n: int = 96,
    cfd_steps: int = 3,
    fdtd_n: int = 16,
    fdtd_steps: int = 2,
) -> list[dict]:
    """Blocking vs overlapped ghost exchange: virtual makespan A/B.

    Runs each mesh application twice per machine model — once with the
    blocking boundary exchange (``overlap=False``) and once with the
    nonblocking post-recvs / compute-deep / waitall / compute-shell
    pipeline (``overlap=True``, the default) — and reports the makespan
    ratio.  The numerics are bitwise identical between the two modes
    (asserted by the test suite); only the virtual-time accounting
    differs, because the overlapped path charges ``max(compute, wire)``
    where the blocking path charges their sum.
    """
    rows: list[dict] = []
    runs = {
        "poisson": lambda machine, overlap: poisson_archetype().run(
            procs,
            poisson_n,
            poisson_n,
            machine=machine,
            tolerance=0.0,
            max_iters=poisson_iters,
            gather_solution=False,
            overlap=overlap,
        ),
        "cfd": lambda machine, overlap: cfd_archetype().run(
            procs,
            cfd_n,
            cfd_n,
            cfd_steps,
            ic="smooth",
            machine=machine,
            gather=False,
            overlap=overlap,
        ),
        "fdtd": lambda machine, overlap: fdtd_archetype().run(
            procs,
            fdtd_n,
            fdtd_n,
            fdtd_n,
            steps=fdtd_steps,
            machine=machine,
            gather=False,
            overlap=overlap,
        ),
    }
    for machine in machines:
        for app, run in runs.items():
            blocking = run(machine, False).elapsed
            overlapped = run(machine, True).elapsed
            rows.append(
                {
                    "app": app,
                    "machine": machine.name,
                    "procs": procs,
                    "blocking": blocking,
                    "overlapped": overlapped,
                    "ratio": overlapped / blocking if blocking else 1.0,
                }
            )
    return rows


def pipeline_farm(
    widths: tuple[int, ...] = (1, 2, 4, 8),
    items: int = 32,
    shape: tuple[int, int] = (24, 24),
    window: int = 4,
    machines: tuple[MachineModel, ...] = OVERLAP_MACHINES,
) -> list[dict]:
    """Throughput and latency vs. farm width for the image pipeline.

    Streams *items* frames through the four-stage image pipeline
    (:mod:`repro.apps.imagepipe`) with the blur farm widened across
    *widths*, on both modelled machines.  Throughput is
    ``items / makespan``; latency is the makespan of a single-frame
    stream (the time one frame spends traversing every stage, message
    costs included).  The blur stage dominates per-item work, so
    throughput rises with width until a neighbouring stage saturates —
    widening the farm past that point buys nothing, while per-frame
    latency stays flat throughout (farming adds bandwidth, not speed).
    """
    from repro.apps.imagepipe import imagepipe_archetype, make_images

    stream = make_images(items, shape, seed=0)
    single = make_images(1, shape, seed=0)
    rows: list[dict] = []
    for machine in machines:
        for width in widths:
            pipeline = imagepipe_archetype(blur_workers=width, window=window)
            makespan = pipeline.run(pipeline.nprocs, stream, machine=machine).elapsed
            latency = pipeline.run(pipeline.nprocs, single, machine=machine).elapsed
            rows.append(
                {
                    "machine": machine.name,
                    "width": width,
                    "procs": pipeline.nprocs,
                    "items": items,
                    "makespan": makespan,
                    "throughput": items / makespan if makespan else float("inf"),
                    "latency": latency,
                }
            )
    return rows
