"""Rendering for benchmark results: tables and ASCII speedup plots."""

from __future__ import annotations

from repro.bench.harness import SpeedupCurve


def format_curves(title: str, curves: list[SpeedupCurve]) -> str:
    """A table with one row per process count and one column per curve —
    the rows the paper's figures plot."""
    procs = sorted({p for c in curves for p in c.procs})
    headers = ["P"] + [c.label for c in curves]
    widths = [max(len(h), 6) for h in headers]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for p in procs:
        row = [str(p).rjust(widths[0])]
        for c, w in zip(curves, widths[1:]):
            try:
                row.append(f"{c.at(p).speedup:.2f}".rjust(w))
            except Exception:
                row.append("-".rjust(w))
        lines.append("  ".join(row))
    return "\n".join(lines)


def render_ascii_plot(
    curves: list[SpeedupCurve], width: int = 60, height: int = 18
) -> str:
    """A rough ASCII rendering of speedup-vs-processors curves.

    Each curve gets a marker character; the diagonal reference (perfect
    speedup) can be included as one of the curves.
    """
    markers = "ox+*#@%&"
    max_p = max(p for curve in curves for p in curve.procs)
    max_s = max(1.0, max(max(curve.speedups) for curve in curves))
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for ci, curve in enumerate(curves):
        m = markers[ci % len(markers)]
        for pt in curve.points:
            x = round(pt.procs / max_p * width)
            y = round(pt.speedup / max_s * height)
            grid[height - y][x] = m
    lines = [f"speedup (max {max_s:.1f})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * (width + 1) + f"> processors (max {max_p})")
    for ci, curve in enumerate(curves):
        lines.append(f"  {markers[ci % len(markers)]} = {curve.label}")
    return "\n".join(lines)
