"""Command-line entry point: regenerate a paper figure from the shell.

Usage::

    python -m repro.bench fig06            # Figure 6 at default scale
    python -m repro.bench fig17 --json out.json
    python -m repro.bench list

Each figure command runs the corresponding experiment, prints the
speedup table and an ASCII plot, and optionally writes the series as
JSON.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench import figures
from repro.bench.harness import SpeedupCurve
from repro.bench.report import format_curves, render_ascii_plot

FIGURES = {
    "fig06": (figures.figure06_mergesort, "traditional vs one-deep mergesort (Delta)"),
    "fig12": (figures.figure12_fft2d, "2-D FFT (IBM SP)"),
    "fig15": (figures.figure15_poisson, "Poisson solver (IBM SP)"),
    "fig16": (figures.figure16_cfd, "2-D CFD (Delta)"),
    "fig17": (figures.figure17_fdtd, "3-D FDTD (IBM SP)"),
    "fig18": (figures.figure18_spectral, "spectral flow vs 5-proc base (IBM SP)"),
}


def curves_to_json(curves: list[SpeedupCurve]) -> list[dict]:
    return [
        {
            "label": c.label,
            "points": [
                {"procs": p.procs, "t_seq": p.t_seq, "t_par": p.t_par, "speedup": p.speedup}
                for p in c.points
            ],
        }
        for c in curves
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate a figure from Massingill & Chandy (IPPS 1999).",
    )
    parser.add_argument(
        "figure",
        choices=[*FIGURES, "list"],
        help="figure to regenerate, or 'list' to enumerate them",
    )
    parser.add_argument("--json", metavar="PATH", help="also write the series as JSON")
    parser.add_argument(
        "--no-plot", action="store_true", help="table only, skip the ASCII plot"
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        for name, (_, description) in FIGURES.items():
            print(f"  {name}: {description}")
        return 0

    experiment, description = FIGURES[args.figure]
    curves = experiment()
    print(format_curves(f"{args.figure} — {description}", curves))
    if not args.no_plot:
        print()
        print(render_ascii_plot(curves))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(curves_to_json(curves), fh, indent=2)
        print(f"\nseries written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
