"""Command-line entry point: regenerate a paper figure from the shell.

Usage::

    python -m repro.bench fig06            # Figure 6 at default scale
    python -m repro.bench fig17 --json out.json
    python -m repro.bench overlap          # blocking vs overlapped A/B
    python -m repro.bench pipeline         # farm-width throughput/latency
    python -m repro.bench wallclock        # simulator host-time ablation
    python -m repro.bench parallel         # serial vs process-parallel
    python -m repro.bench kernels          # kernel-fusion off vs on
    python -m repro.bench tune             # tuned vs default makespan
    python -m repro.bench all              # every figure, reduced scale,
                                           #   writes BENCH_PR9.json
    python -m repro.bench list

Each figure command runs the corresponding experiment, prints the
speedup table and an ASCII plot, and optionally writes the series as
JSON.  ``wallclock`` measures *host* seconds for the messaging-heavy
workloads with the fast path off vs on (virtual time is identical in
both modes — that is checked); ``parallel`` measures the same workloads
on the deterministic backend vs one-OS-process-per-rank
(:mod:`repro.runtime.parallel`), again digest-checked.  ``kernels``
measures host seconds with par-loop fusion forced off vs on
(:mod:`repro.bench.kernels`) — the plan, virtual clocks, and digests
are identical in both modes; only the group-body walk changes.
``pipeline`` sweeps the image pipeline's blur-farm width and reports
virtual-time throughput and per-frame latency on both modelled
machines.  ``tune`` runs exhaustive autotuning searches
(:mod:`repro.bench.tune`) over the modern machine models and reports
tuned-vs-default virtual makespans, prediction error, and prune
hit-rates.  ``all`` sweeps every figure at a reduced problem scale,
runs the blocking-vs-overlapped exchange ablation, the pipeline
farm-width sweep, the three host-time ablations, and the autotuning
ablation, and emits a machine-readable artifact (``BENCH_PR9.json``)
so the performance trajectory can be tracked across PRs.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench import figures, wallclock
from repro.bench import kernels as kernels_bench
from repro.bench import parallel as parallel_bench
from repro.bench import tune as tune_bench
from repro.bench.harness import SpeedupCurve
from repro.bench.report import format_curves, render_ascii_plot

FIGURES = {
    "fig06": (figures.figure06_mergesort, "traditional vs one-deep mergesort (Delta)"),
    "fig12": (figures.figure12_fft2d, "2-D FFT (IBM SP)"),
    "fig15": (figures.figure15_poisson, "Poisson solver (IBM SP)"),
    "fig16": (figures.figure16_cfd, "2-D CFD (Delta)"),
    "fig17": (figures.figure17_fdtd, "3-D FDTD (IBM SP)"),
    "fig18": (figures.figure18_spectral, "spectral flow vs 5-proc base (IBM SP)"),
}

#: default output of ``python -m repro.bench all``
ARTIFACT = "BENCH_PR9.json"

#: machine model each figure runs on (matches the figure defaults)
FIGURE_MACHINES = {
    "fig06": "intel-delta",
    "fig12": "ibm-sp",
    "fig15": "ibm-sp",
    "fig16": "intel-delta",
    "fig17": "ibm-sp",
    "fig18": "ibm-sp-small-mem",
}

#: reduced problem scales for the ``all`` sweep — the same sizes the test
#: suite exercises, so the sweep finishes in seconds while preserving
#: every figure's shape claim
FAST_PARAMS: dict[str, dict] = {
    "fig06": {"n": 1 << 14, "procs": (1, 4, 16)},
    "fig12": {"shape": (64, 64), "repeats": 2, "procs": (1, 4, 16)},
    "fig15": {"nx": 128, "ny": 128, "iters": 5, "procs": (1, 4, 16)},
    "fig16": {"nx": 128, "ny": 128, "steps": 2, "procs": (1, 4, 16)},
    "fig17": {"n": 16, "steps": 2, "procs": (1, 8, 16, 18)},
    "fig18": {"nr": 128, "nz": 256, "steps": 1, "procs": (5, 10, 20), "base_procs": 5},
}


def curves_to_json(curves: list[SpeedupCurve]) -> list[dict]:
    return [
        {
            "label": c.label,
            "points": [
                {"procs": p.procs, "t_seq": p.t_seq, "t_par": p.t_par, "speedup": p.speedup}
                for p in c.points
            ],
        }
        for c in curves
    ]


def render_pipeline_table(rows: list[dict]) -> str:
    lines = [
        "image pipeline: throughput/latency vs blur-farm width (virtual time)",
        f"{'machine':>14} {'width':>5} {'P':>3} {'makespan':>12} "
        f"{'items/s':>12} {'latency':>12}",
    ]
    for r in rows:
        lines.append(
            f"{r['machine']:>14} {r['width']:>5} {r['procs']:>3} "
            f"{r['makespan']:>12.6g} {r['throughput']:>12.6g} {r['latency']:>12.6g}"
        )
    return "\n".join(lines)


def render_overlap_table(rows: list[dict]) -> str:
    lines = [
        "blocking vs overlapped ghost exchange (virtual makespan, seconds)",
        f"{'app':>8} {'machine':>14} {'P':>3} {'blocking':>12} {'overlapped':>12} {'ratio':>7}",
    ]
    for r in rows:
        lines.append(
            f"{r['app']:>8} {r['machine']:>14} {r['procs']:>3} "
            f"{r['blocking']:>12.6g} {r['overlapped']:>12.6g} {r['ratio']:>7.3f}"
        )
    return "\n".join(lines)


def run_all(json_path: str) -> int:
    """Sweep every figure at reduced scale and write the JSON artifact."""
    report: dict = {"artifact": "BENCH_PR9", "figures": {}}
    for name, (experiment, description) in FIGURES.items():
        curves = experiment(**FAST_PARAMS[name])
        entry = {
            "description": description,
            "machine": FIGURE_MACHINES[name],
            "params": {
                k: list(v) if isinstance(v, tuple) else v
                for k, v in FAST_PARAMS[name].items()
            },
            "curves": curves_to_json(curves),
        }
        report["figures"][name] = entry
        peaks = ", ".join(
            f"{c.label}: {c.peak().speedup:.2f}x @ P={c.peak().procs}" for c in curves
        )
        print(f"{name} [{entry['machine']}] {description} — {peaks}")
    ablation = figures.overlap_ablation()
    report["figures"]["fig_overlap"] = {
        "description": "blocking vs overlapped ghost exchange makespan",
        "machine": ", ".join(m.name for m in figures.OVERLAP_MACHINES),
        "params": {"procs": 4},
        "rows": ablation,
    }
    print()
    print(render_overlap_table(ablation))
    pipeline_rows = figures.pipeline_farm(widths=(1, 2, 4), items=16, shape=(16, 16))
    report["figures"]["fig_pipeline"] = {
        "description": "image pipeline throughput/latency vs blur-farm width",
        "machine": ", ".join(m.name for m in figures.OVERLAP_MACHINES),
        "params": {"widths": [1, 2, 4], "items": 16, "shape": [16, 16]},
        "rows": pipeline_rows,
    }
    print()
    print(render_pipeline_table(pipeline_rows))
    rows = wallclock.run_ablation()
    report["wallclock"] = {
        "description": "simulator host-seconds, fast path off vs on "
        "(virtual time identical)",
        "procs": wallclock.DEFAULT_NPROCS,
        "repeats": wallclock.DEFAULT_REPEATS,
        "rows": [r.to_json() for r in rows],
    }
    print()
    print(wallclock.render_table(rows))
    problems = wallclock.check_rows(rows, min_speedup=None)
    parallel_rows = parallel_bench.run_ablation()
    report["parallel"] = {
        "description": "simulator host-seconds, deterministic backend vs "
        "one OS process per rank (virtual time identical)",
        "procs": wallclock.DEFAULT_NPROCS,
        "repeats": wallclock.DEFAULT_REPEATS,
        "host_cpus": parallel_bench.host_cpus(),
        "rows": [r.to_json() for r in parallel_rows],
    }
    print()
    print(parallel_bench.render_table(parallel_rows))
    problems += parallel_bench.check_rows(parallel_rows, min_speedup=None)
    kernel_rows = kernels_bench.run_ablation()
    report["kernels"] = {
        "description": "simulator host-seconds, par-loop fusion off vs on "
        "(plan and virtual time identical)",
        "procs": kernels_bench.DEFAULT_NPROCS,
        "repeats": kernels_bench.DEFAULT_REPEATS,
        "rows": [r.to_json() for r in kernel_rows],
    }
    print()
    print(kernels_bench.render_table(kernel_rows))
    problems += kernels_bench.check_rows(kernel_rows, min_speedup=None)
    tune_rows = tune_bench.run_ablation()
    report["tune"] = {
        "description": "autotuned vs default virtual makespan, exhaustive "
        "search (predicted-vs-measured error and prune hit-rate per case)",
        "machines": list(tune_bench.MACHINES),
        "rows": [r.to_json() for r in tune_rows],
    }
    print()
    print(tune_bench.render_table(tune_rows))
    problems += tune_bench.check_rows(tune_rows)
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    with open(json_path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\nartifact written to {json_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate a figure from Massingill & Chandy (IPPS 1999).",
    )
    parser.add_argument(
        "figure",
        choices=[
            *FIGURES,
            "overlap",
            "pipeline",
            "wallclock",
            "parallel",
            "kernels",
            "tune",
            "all",
            "list",
        ],
        help="figure to regenerate, 'overlap' for the blocking-vs-"
        "overlapped exchange ablation, 'pipeline' for the image-pipeline "
        "farm-width sweep, 'wallclock' for the simulator "
        "host-time ablation, 'parallel' for the serial-vs-process-"
        "parallel ablation, 'kernels' for the par-loop fusion ablation, "
        "'tune' for the autotuned-vs-default makespan ablation, "
        f"'all' for the reduced-scale sweep (writes {ARTIFACT}), "
        "or 'list' to enumerate them",
    )
    parser.add_argument("--json", metavar="PATH", help="also write the series as JSON")
    parser.add_argument(
        "--no-plot", action="store_true", help="table only, skip the ASCII plot"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=wallclock.DEFAULT_REPEATS,
        help="wallclock/parallel: host-time samples per mode (best-of)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="wallclock/parallel: fail unless the speedup clears X "
        "(the CI smoke's generous regression floor; for 'parallel' the "
        "best row must clear it, and only on hosts with --min-cpus cores)",
    )
    parser.add_argument(
        "--min-cpus",
        type=int,
        default=4,
        metavar="N",
        help="parallel only: apply --min-speedup only when the host has "
        "at least N usable cores (speedup is capped by core count)",
    )
    parser.add_argument(
        "--nprocs",
        type=int,
        default=None,
        metavar="P",
        help="parallel/kernels: rank count for the ablation "
        f"(default {wallclock.DEFAULT_NPROCS} for parallel, "
        f"{kernels_bench.DEFAULT_NPROCS} for kernels)",
    )
    parser.add_argument(
        "--apps",
        nargs="+",
        choices=sorted(set(wallclock.WORKLOADS) | set(kernels_bench.WORKLOADS)),
        default=None,
        metavar="APP",
        help="wallclock/parallel/kernels: restrict the ablation to these "
        "registry workloads (default: all the command knows)",
    )
    args = parser.parse_args(argv)

    def known_apps(workloads: dict) -> list[str] | None:
        """The requested apps this command's ablation knows (the --apps
        choices are the union across commands)."""
        if args.apps is None:
            return None
        picked = [a for a in args.apps if a in workloads]
        if not picked:
            parser.error(
                f"none of {args.apps} apply here; choose from {sorted(workloads)}"
            )
        return picked

    if args.figure == "list":
        for name, (_, description) in FIGURES.items():
            print(f"  {name}: {description}")
        print("  overlap: blocking vs overlapped ghost-exchange ablation")
        print("  pipeline: image-pipeline throughput/latency vs farm width")
        print("  wallclock: simulator host-time ablation (fast path off vs on)")
        print("  parallel: serial vs process-parallel host-time ablation")
        print("  kernels: par-loop fusion host-time ablation (off vs on)")
        print("  tune: autotuned vs default virtual-makespan ablation")
        print("ablation workloads (from the shared app registry):")
        for name, (_, description) in sorted(wallclock.WORKLOADS.items()):
            print(f"  {name}: {description}")
        return 0

    if args.figure == "all":
        return run_all(args.json or ARTIFACT)

    if args.figure == "wallclock":
        rows = wallclock.run_ablation(
            apps=known_apps(wallclock.WORKLOADS), repeats=args.repeats
        )
        print(wallclock.render_table(rows))
        problems = wallclock.check_rows(rows, min_speedup=args.min_speedup)
        for p in problems:
            print(f"FAIL: {p}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump([r.to_json() for r in rows], fh, indent=2)
            print(f"\nseries written to {args.json}")
        return 1 if problems else 0

    if args.figure == "parallel":
        rows = parallel_bench.run_ablation(
            apps=known_apps(parallel_bench.WORKLOADS),
            nprocs=args.nprocs or wallclock.DEFAULT_NPROCS,
            repeats=args.repeats,
        )
        print(parallel_bench.render_table(rows))
        problems = parallel_bench.check_rows(
            rows, min_speedup=args.min_speedup, min_cpus=args.min_cpus
        )
        for p in problems:
            print(f"FAIL: {p}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump([r.to_json() for r in rows], fh, indent=2)
            print(f"\nseries written to {args.json}")
        return 1 if problems else 0

    if args.figure == "kernels":
        rows = kernels_bench.run_ablation(
            apps=known_apps(kernels_bench.WORKLOADS),
            nprocs=args.nprocs or kernels_bench.DEFAULT_NPROCS,
            repeats=args.repeats,
        )
        print(kernels_bench.render_table(rows))
        problems = kernels_bench.check_rows(rows, min_speedup=args.min_speedup)
        for p in problems:
            print(f"FAIL: {p}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump([r.to_json() for r in rows], fh, indent=2)
            print(f"\nseries written to {args.json}")
        return 1 if problems else 0

    if args.figure == "tune":
        rows = tune_bench.run_ablation()
        print(tune_bench.render_table(rows))
        problems = tune_bench.check_rows(rows)
        for p in problems:
            print(f"FAIL: {p}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump([r.to_json() for r in rows], fh, indent=2)
            print(f"\nseries written to {args.json}")
        return 1 if problems else 0

    if args.figure == "overlap":
        rows = figures.overlap_ablation()
        print(render_overlap_table(rows))
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(rows, fh, indent=2)
            print(f"\nseries written to {args.json}")
        return 0

    if args.figure == "pipeline":
        rows = figures.pipeline_farm()
        print(render_pipeline_table(rows))
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(rows, fh, indent=2)
            print(f"\nseries written to {args.json}")
        return 0

    experiment, description = FIGURES[args.figure]
    curves = experiment()
    print(format_curves(f"{args.figure} — {description}", curves))
    if not args.no_plot:
        print()
        print(render_ascii_plot(curves))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(curves_to_json(curves), fh, indent=2)
        print(f"\nseries written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
