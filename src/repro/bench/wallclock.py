"""Wall-clock ablation: how fast the *simulator itself* runs.

Everything else in :mod:`repro.bench` measures virtual seconds on the
modelled machine.  This module times real seconds on the host for the
same workloads, with the wall-clock fast path (:mod:`repro.fastpath`:
copy-on-write payloads, indexed mailboxes, metric handles, the heap
scheduler) forced off and then on.  The two runs must be
observationally identical — same per-rank virtual clocks, same values —
which is checked here with a digest and proven more thoroughly by the
A/B identity tests; the *only* thing allowed to change is the host time.

Workloads are the messaging-heavy trio the observability CLI uses
(Jacobi Poisson, 2-D FFT, one-deep mergesort) at 16 ranks, run without
tracing so the measurement isolates the runtime hot path rather than
trace-event appends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import fastpath
from repro.apps import registry
from repro.runtime.spmd import RunResult
from repro.verify.digest import value_digest

#: rank count for the ablation (the acceptance scale)
DEFAULT_NPROCS = 16
#: wall-clock samples per (workload, mode); best-of is reported
DEFAULT_REPEATS = 3


# Workloads resolve through the shared app registry; only the ablation's
# scaling knob and machine pairing are local decisions.


def _run_poisson(nprocs: int, scale: int = 1) -> RunResult:
    return registry.get("poisson").run(
        {"nprocs": nprocs, "max_iters": 8 * scale}, machine="ibm-sp"
    )


def _run_fft2d(nprocs: int, scale: int = 1) -> RunResult:
    return registry.get("fft2d").run(
        {"nprocs": nprocs, "repeats": 2 * scale}, machine="ibm-sp"
    )


def _run_mergesort(nprocs: int, scale: int = 1) -> RunResult:
    return registry.get("mergesort").run(
        {"nprocs": nprocs, "n": 4096 * scale}, machine="intel-delta"
    )


WORKLOADS = {
    "poisson": (_run_poisson, registry.get("poisson").description),
    "fft2d": (_run_fft2d, registry.get("fft2d").description),
    "mergesort": (_run_mergesort, registry.get("mergesort").description),
}


@dataclass(frozen=True)
class AblationRow:
    """One workload's fast-path-off vs fast-path-on measurement."""

    app: str
    nprocs: int
    wall_off: float  #: best-of-N host seconds, fast path off
    wall_on: float  #: best-of-N host seconds, fast path on
    virtual_elapsed: float  #: virtual makespan (identical in both modes)
    digest: str  #: digest of (times, values) — identical in both modes
    identical: bool  #: did both modes produce the same digest?

    @property
    def speedup(self) -> float:
        """Host-time ratio off/on (>1 means the fast path helps)."""
        return self.wall_off / self.wall_on if self.wall_on > 0 else float("inf")

    def to_json(self) -> dict:
        return {
            "app": self.app,
            "procs": self.nprocs,
            "wall_off_seconds": self.wall_off,
            "wall_on_seconds": self.wall_on,
            "speedup": self.speedup,
            "virtual_elapsed_seconds": self.virtual_elapsed,
            "digest": self.digest,
            "identical": self.identical,
        }


def _measure(runner, nprocs: int, scale: int, repeats: int, flag: bool):
    """Best-of-*repeats* wall seconds with the fast path forced to *flag*."""
    best = float("inf")
    result: RunResult | None = None
    with fastpath.forced(flag):
        for _ in range(repeats):
            start = time.perf_counter()
            result = runner(nprocs, scale)
            best = min(best, time.perf_counter() - start)
    return best, result


def run_ablation(
    apps: list[str] | None = None,
    nprocs: int = DEFAULT_NPROCS,
    repeats: int = DEFAULT_REPEATS,
    scale: int = 1,
) -> list[AblationRow]:
    """Run the off/on ablation for each workload; returns one row per app."""
    rows: list[AblationRow] = []
    for app in apps or list(WORKLOADS):
        runner, _ = WORKLOADS[app]
        wall_off, res_off = _measure(runner, nprocs, scale, repeats, False)
        wall_on, res_on = _measure(runner, nprocs, scale, repeats, True)
        digest_off = value_digest([res_off.times, res_off.values])
        digest_on = value_digest([res_on.times, res_on.values])
        rows.append(
            AblationRow(
                app=app,
                nprocs=nprocs,
                wall_off=wall_off,
                wall_on=wall_on,
                virtual_elapsed=max(res_on.times),
                digest=digest_on,
                identical=digest_off == digest_on,
            )
        )
    return rows


def render_table(rows: list[AblationRow]) -> str:
    lines = [
        "simulator wall-clock ablation (host seconds, best of N; virtual time unchanged)",
        f"{'app':>10} {'P':>3} {'off (s)':>10} {'on (s)':>10} {'speedup':>8} "
        f"{'virtual (s)':>12} {'identical':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.app:>10} {r.nprocs:>3} {r.wall_off:>10.4f} {r.wall_on:>10.4f} "
            f"{r.speedup:>7.2f}x {r.virtual_elapsed:>12.6g} "
            f"{'yes' if r.identical else 'NO':>9}"
        )
    return "\n".join(lines)


def check_rows(rows: list[AblationRow], min_speedup: float | None) -> list[str]:
    """Gate failures: digest mismatches always fail; *min_speedup* (when
    given) is the generous regression floor the CI smoke applies so a
    future change can't silently re-serialize the hot path."""
    problems = []
    for r in rows:
        if not r.identical:
            problems.append(
                f"{r.app}: fast path changed observable results (digest mismatch)"
            )
        if min_speedup is not None and r.speedup < min_speedup:
            problems.append(
                f"{r.app}: fast-path speedup {r.speedup:.2f}x below the "
                f"regression floor {min_speedup:.2f}x"
            )
    return problems
