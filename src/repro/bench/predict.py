"""Analytic archetype performance models (the paper's reference [32]).

The paper argues archetypes "may also be helpful in developing
performance models for classes of programs with common structure"
(§1.1).  This module provides closed-form T(P) predictions for the
archetype programs, built from per-collective cost terms derived from
the machine model and the archetypes' known communication patterns.

The test suite validates the predictions against the simulator: because
the simulation executes the real message pattern, agreement (within a
tolerance covering skew/wait effects the closed forms ignore) is
evidence for both.
"""

from __future__ import annotations

import math

from repro.machines.model import MachineModel
from repro.util.nbytes import _OVERHEAD_BYTES
from repro.apps.sorting.common import MERGE_FLOPS_PER_KEY, merge_cost, sort_cost
from repro.apps.fftlib import fft_cost
from repro.apps.poisson import FLOPS_PER_POINT


# -- collective cost terms -----------------------------------------------------
def _round_cost(machine: MachineModel, nbytes: float, nodes: int) -> float:
    """One communication round on the critical path: a send plus the
    matching receive's ingest overhead."""
    payload = int(nbytes) + _OVERHEAD_BYTES
    return machine.message_time(payload, nodes=nodes) + machine.recv_overhead(
        payload, nodes=nodes
    )


def ring_allgather_time(machine: MachineModel, nodes: int, item_bytes: float) -> float:
    """P-1 neighbour rounds, each carrying one accumulated item."""
    if nodes <= 1:
        return 0.0
    return (nodes - 1) * _round_cost(machine, item_bytes + 16, nodes)


def alltoall_time(machine: MachineModel, nodes: int, parcel_bytes: float) -> float:
    """Pairwise exchange: P-1 rounds of one parcel each way per rank."""
    if nodes <= 1:
        return 0.0
    return (nodes - 1) * _round_cost(machine, parcel_bytes, nodes)


def allreduce_time(machine: MachineModel, nodes: int, item_bytes: float = 8) -> float:
    """Recursive doubling: ~ceil(log2 P) rounds, plus the fold/unfold
    rounds for non-powers of two."""
    if nodes <= 1:
        return 0.0
    rounds = math.ceil(math.log2(nodes))
    pof2 = 1 << (nodes.bit_length() - 1)
    if pof2 != nodes:
        rounds += 2
    return rounds * _round_cost(machine, item_bytes, nodes)


def exchange_time(
    machine: MachineModel,
    nodes: int,
    proc_grid: tuple[int, ...],
    slab_bytes_per_axis: tuple[float, ...],
) -> float:
    """Blocking ghost exchange, one axis at a time.

    Each axis posts its receives and sends nonblocking and completes
    them with a single ``waitall``, so the two directions' wire
    transfers overlap: an interior rank pays one send-post overhead,
    one message time, and two ingest overheads; an edge rank (only one
    neighbour on the axis, the ``dim == 2`` case everywhere) pays one
    message time plus one ingest overhead.
    """
    total = 0.0
    for dim, slab in zip(proc_grid, slab_bytes_per_axis):
        if dim > 1:
            payload = int(slab) + _OVERHEAD_BYTES
            mt = machine.message_time(payload, nodes=nodes)
            ro = machine.recv_overhead(payload, nodes=nodes)
            if dim > 2:
                total += machine.send_overhead(payload, nodes=nodes) + mt + 2 * ro
            else:
                total += mt + ro
    return total


def overlapped_exchange_time(
    machine: MachineModel,
    nodes: int,
    proc_grid: tuple[int, ...],
    slab_bytes_per_axis: tuple[float, ...],
    compute_seconds: float,
) -> float:
    """One overlapped stencil sweep: post every face's send/recv, update
    the deep cells while the wires drain, then ingest the slabs.

    The critical-path rank pays its send-post overheads, then the larger
    of the deep compute and the slowest concurrent wire transfer, then
    one ingest overhead per incoming slab (shell compute is folded into
    *compute_seconds* — the slabs are a vanishing fraction of the work).
    """
    so_tot = ro_tot = wire = 0.0
    for dim, slab in zip(proc_grid, slab_bytes_per_axis):
        if dim > 1:
            payload = int(slab) + _OVERHEAD_BYTES
            faces = 2 if dim > 2 else 1  # messages each way on this axis
            so_tot += faces * machine.send_overhead(payload, nodes=nodes)
            ro_tot += faces * machine.recv_overhead(payload, nodes=nodes)
            wire = max(wire, machine.message_time(payload, nodes=nodes))
    if wire == 0.0:
        return compute_seconds
    return so_tot + max(compute_seconds, wire) + ro_tot


# -- archetype program models ---------------------------------------------------
def predict_onedeep_sort(
    n: int, nodes: int, machine: MachineModel, oversample: int = 32
) -> float:
    """T(P) of one-deep mergesort (replicated splitter strategy)."""
    local = n / nodes
    compute = (
        sort_cost(local)  # local solve
        + oversample  # sampling
        + sort_cost(oversample * nodes)  # splitter computation
        + MERGE_FLOPS_PER_KEY * local  # partition
        + merge_cost(local, ways=8)  # k-way merge of received runs
    ) * machine.flop_time
    comm = ring_allgather_time(machine, nodes, oversample * 8) + alltoall_time(
        machine, nodes, 8 * n / nodes**2
    )
    return compute + comm


def predict_poisson(
    nx: int,
    ny: int,
    iters: int,
    nodes: int,
    machine: MachineModel,
    proc_grid: tuple[int, int] | None = None,
    overlap: bool = True,
) -> float:
    """T(P) of the Jacobi Poisson solver (fixed iteration count).

    With *overlap* (the application default) the Jacobi sweep hides the
    ghost slabs' wire time behind the deep-cell update; the residual and
    copy passes plus the convergence allreduce stay on the critical path
    either way.
    """
    if proc_grid is None:
        from repro.comm.cart import choose_proc_grid

        proc_grid = choose_proc_grid(nodes, 2)  # type: ignore[assignment]
    pr, pc = proc_grid
    points = nx * ny / nodes
    slabs = ((ny / pc) * 8.0, (nx / pr) * 8.0)
    stencil_compute = FLOPS_PER_POINT * points * machine.flop_time
    other_compute = (2.0 + 2.0) * points * machine.flop_time
    if overlap:
        per_iter = overlapped_exchange_time(
            machine, nodes, proc_grid, slabs, stencil_compute
        )
    else:
        per_iter = stencil_compute + exchange_time(machine, nodes, proc_grid, slabs)
    per_iter += other_compute + allreduce_time(machine, nodes)
    return iters * per_iter


def predict_fft2d(
    rows: int,
    cols: int,
    repeats: int,
    nodes: int,
    machine: MachineModel,
    gather: bool = True,
) -> float:
    """T(P) of the distributed 2-D FFT program (including the final
    gather to rank 0 that the program performs)."""
    per_repeat_compute = (
        fft_cost(cols) * (rows / nodes) + fft_cost(rows) * (cols / nodes)
    ) * machine.flop_time
    parcel = 16.0 * (rows / nodes) * (cols / nodes)  # complex128 blocks
    per_repeat_comm = 2 * alltoall_time(machine, nodes, parcel)
    total = repeats * (per_repeat_compute + per_repeat_comm)
    if gather and nodes > 1:
        # Root ingests P-1 section-sized messages; the senders' transfers
        # overlap, so the receive overheads dominate the critical path.
        section = 16.0 * rows * cols / nodes
        total += machine.message_time(int(section), nodes=nodes) + (
            nodes - 1
        ) * machine.recv_overhead(int(section) + _OVERHEAD_BYTES, nodes=nodes)
    return total


def predict_smog(
    nx: int,
    ny: int,
    steps: int,
    nodes: int,
    machine: MachineModel,
    chem_substeps: int = 4,
    proc_grid: tuple[int, int] | None = None,
    overlap: bool = True,
) -> float:
    """T(P) of the airshed smog model's fused step loop.

    The kernel layer runs each step as one declared sequence: the three
    species transports form a fusion group whose ghost refreshes *pack*
    into a single slab per neighbour per direction carrying all three
    arrays (modelled like the CFD packed exchange, with the transport
    compute hiding the wire time when *overlap* holds), and the
    copy-back/emissions/chemistry chain is pure local compute — fusion
    changes its host time, never its virtual cost.  The per-step ozone
    maximum adds one allreduce.
    """
    from repro.apps.smog import CHEMISTRY_FLOPS, TRANSPORT_FLOPS

    if proc_grid is None:
        from repro.comm.cart import choose_proc_grid

        proc_grid = choose_proc_grid(nodes, 2)  # type: ignore[assignment]
    pr, pc = proc_grid
    cells = nx * ny / nodes
    transport_compute = 3 * TRANSPORT_FLOPS * cells * machine.flop_time
    # Copy-backs are uncharged moves; emissions + sub-stepped chemistry
    # charge per cell.
    local_compute = (2.0 + CHEMISTRY_FLOPS * chem_substeps) * cells * machine.flop_time
    # Packed exchange: 3 species in one slab per direction (ghost rim included).
    slabs = (3 * (ny / pc + 2) * 8.0, 3 * (nx / pr + 2) * 8.0)
    if overlap:
        per_step = overlapped_exchange_time(
            machine, nodes, proc_grid, slabs, transport_compute
        )
    else:
        per_step = transport_compute + exchange_time(machine, nodes, proc_grid, slabs)
    per_step += local_compute + allreduce_time(machine, nodes)
    # Final ozone-burden sum reduction.
    return steps * per_step + allreduce_time(machine, nodes)


def predict_cfd(
    nx: int,
    ny: int,
    steps: int,
    nodes: int,
    machine: MachineModel,
    proc_grid: tuple[int, int] | None = None,
    cfl_interval: int = 1,
    overlap: bool = True,
) -> float:
    """T(P) of the compressible-flow step loop (packed exchange).

    With *overlap* (the application default) the Lax-Friedrichs update
    of the deep cells hides the packed slabs' wire time; the CFL wave
    speed (computed from interior cells before the exchange) and its
    max-reduction stay on the critical path.
    """
    from repro.apps.cfd import FLOPS_PER_CELL

    if proc_grid is None:
        from repro.comm.cart import choose_proc_grid

        proc_grid = choose_proc_grid(nodes, 2)  # type: ignore[assignment]
    pr, pc = proc_grid
    cells = nx * ny / nodes
    step_compute = FLOPS_PER_CELL * cells * machine.flop_time
    # Packed exchange: 4 state components in one slab per direction.
    slabs = (4 * (ny / pc + 2) * 8.0, 4 * (nx / pr + 2) * 8.0)
    if overlap:
        per_step = overlapped_exchange_time(
            machine, nodes, proc_grid, slabs, step_compute
        )
    else:
        per_step = step_compute + exchange_time(machine, nodes, proc_grid, slabs)
    reduces = math.ceil(steps / cfl_interval)
    cfl = reduces * (6.0 * cells * machine.flop_time + allreduce_time(machine, nodes))
    return steps * per_step + cfl
