"""Parallel-vs-serial ablation: real multi-core speedup of the simulator.

The wallclock ablation (:mod:`repro.bench.wallclock`) measures how fast
the *single-core* simulator got; this one measures what actually running
ranks in parallel buys on top of it.  Each workload is timed twice on
the host clock — once on the (fastpath-on) deterministic backend, once
on the process-parallel backend (:mod:`repro.runtime.parallel`) — and
the two runs must be observationally identical: same per-rank values,
same final virtual clocks, checked here with a digest.  Only host time
is allowed to differ.

The achievable speedup is bounded by the host's core count, so every
row records ``host_cpus`` and the CI gate (``--min-speedup``) is only
applied when the host has at least ``--min-cpus`` cores — on a 1-2 core
container the parallel backend pays process/IPC overhead with no cores
to win back, and an honest artifact shows that rather than gating on it.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.bench.wallclock import DEFAULT_NPROCS, DEFAULT_REPEATS, WORKLOADS
from repro.runtime.backends import BACKEND_ENV
from repro.runtime.spmd import RunResult
from repro.verify.digest import value_digest


def host_cpus() -> int:
    """Cores this process may run on (affinity-aware where available)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@contextmanager
def _backend_env(name: str | None):
    previous = os.environ.get(BACKEND_ENV)
    if name is None:
        os.environ.pop(BACKEND_ENV, None)
    else:
        os.environ[BACKEND_ENV] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = previous


@dataclass(frozen=True)
class ParallelRow:
    """One workload's serial-vs-parallel measurement."""

    app: str
    nprocs: int
    host_cpus: int
    wall_serial: float  #: best-of-N host seconds, deterministic backend
    wall_parallel: float  #: best-of-N host seconds, parallel backend
    virtual_elapsed: float  #: virtual makespan (identical in both modes)
    digest: str  #: digest of (times, values) — identical in both modes
    identical: bool  #: did both backends produce the same digest?

    @property
    def speedup(self) -> float:
        """Host-time ratio serial/parallel (>1 means parallel wins)."""
        return self.wall_serial / self.wall_parallel if self.wall_parallel > 0 else float("inf")

    def to_json(self) -> dict:
        return {
            "app": self.app,
            "procs": self.nprocs,
            "host_cpus": self.host_cpus,
            "wall_serial_seconds": self.wall_serial,
            "wall_parallel_seconds": self.wall_parallel,
            "speedup": self.speedup,
            "virtual_elapsed_seconds": self.virtual_elapsed,
            "digest": self.digest,
            "identical": self.identical,
        }


def _measure(runner, nprocs: int, scale: int, repeats: int, backend: str | None):
    """Best-of-*repeats* wall seconds with ``REPRO_BACKEND`` set to *backend*."""
    best = float("inf")
    result: RunResult | None = None
    with _backend_env(backend):
        for _ in range(repeats):
            start = time.perf_counter()
            result = runner(nprocs, scale)
            best = min(best, time.perf_counter() - start)
    return best, result


def run_ablation(
    apps: list[str] | None = None,
    nprocs: int = DEFAULT_NPROCS,
    repeats: int = DEFAULT_REPEATS,
    scale: int = 1,
) -> list[ParallelRow]:
    """Run the serial/parallel ablation for each workload."""
    cpus = host_cpus()
    rows: list[ParallelRow] = []
    for app in apps or list(WORKLOADS):
        runner, _ = WORKLOADS[app]
        wall_serial, res_serial = _measure(runner, nprocs, scale, repeats, None)
        wall_parallel, res_parallel = _measure(runner, nprocs, scale, repeats, "parallel")
        digest_serial = value_digest([res_serial.times, res_serial.values])
        digest_parallel = value_digest([res_parallel.times, res_parallel.values])
        rows.append(
            ParallelRow(
                app=app,
                nprocs=nprocs,
                host_cpus=cpus,
                wall_serial=wall_serial,
                wall_parallel=wall_parallel,
                virtual_elapsed=max(res_serial.times),
                digest=digest_serial,
                identical=digest_serial == digest_parallel,
            )
        )
    return rows


def render_table(rows: list[ParallelRow]) -> str:
    cpus = rows[0].host_cpus if rows else host_cpus()
    lines = [
        f"parallel-vs-serial ablation (host seconds, best of N; {cpus} host cores; "
        "virtual time unchanged)",
        f"{'app':>10} {'P':>3} {'serial (s)':>11} {'parallel (s)':>13} {'speedup':>8} "
        f"{'virtual (s)':>12} {'identical':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.app:>10} {r.nprocs:>3} {r.wall_serial:>11.4f} {r.wall_parallel:>13.4f} "
            f"{r.speedup:>7.2f}x {r.virtual_elapsed:>12.6g} "
            f"{'yes' if r.identical else 'NO':>9}"
        )
    return "\n".join(lines)


def check_rows(
    rows: list[ParallelRow], min_speedup: float | None, min_cpus: int = 4
) -> list[str]:
    """Gate failures: digest mismatches always fail; the *min_speedup*
    floor requires the best row to clear it, and only on hosts with at
    least *min_cpus* cores (speedup is physically capped by core count)."""
    problems = [
        f"{r.app}: parallel backend changed observable results (digest mismatch)"
        for r in rows
        if not r.identical
    ]
    if min_speedup is not None and rows:
        cpus = rows[0].host_cpus
        if cpus >= min_cpus:
            best = max(rows, key=lambda r: r.speedup)
            if best.speedup < min_speedup:
                problems.append(
                    f"best parallel speedup {best.speedup:.2f}x ({best.app}) below "
                    f"the floor {min_speedup:.2f}x on a {cpus}-core host"
                )
    return problems
