"""The wall-clock fast-path switch.

The simulator carries several *host-side* optimisations that change no
virtual timestamp, digest, or trace: copy-on-write payload transfer,
per-channel indexed mailboxes, bind-once metric handles, and the heap
scheduler.  They are all gated on one process-wide flag so that

- ``python -m repro.bench wallclock`` can measure the honest ablation
  (fast path on vs off) on the same workload, and
- the A/B identity tests can prove the two modes are observationally
  equivalent (bitwise-identical clocks, results, and schedules).

The flag is read *at construction time* by the backend and its mailboxes
(toggling mid-run is not supported) and per call by the payload-transfer
and metrics layers.  Default: enabled; set ``REPRO_FASTPATH=0`` in the
environment to start disabled.

This module sits below everything else in the layering (it imports
nothing from the package), so even :mod:`repro.obs.metrics` can consult
it without cycles.
"""

from __future__ import annotations

import contextlib
import os
from collections.abc import Iterator

_enabled: bool = os.environ.get("REPRO_FASTPATH", "1").lower() not in (
    "0",
    "false",
    "off",
)


def enabled() -> bool:
    """True when the wall-clock fast path is active."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Set the fast-path flag; returns the previous value.

    Only affects runtime objects constructed *after* the call — a
    running backend keeps the mode it was built with.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextlib.contextmanager
def forced(flag: bool) -> Iterator[None]:
    """Force the fast path on/off for the duration of the block.

    The A/B lever used by the wallclock bench and the identity tests::

        with fastpath.forced(False):
            baseline = spmd_run(...)   # naive host paths
        with fastpath.forced(True):
            fast = spmd_run(...)       # optimised host paths
        assert baseline.times == fast.times
    """
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)
