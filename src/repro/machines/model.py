"""The machine performance model.

A :class:`MachineModel` converts the *pattern* of an SPMD execution —
messages sent and computational work performed — into virtual time on each
rank's clock.  The model is deliberately simple (Hockney alpha-beta
messages, linear flop cost, threshold paging penalty): the paper's claims
concern speedup *shapes*, which depend on computation/communication ratios
rather than on microarchitectural detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass(frozen=True)
class MachineModel:
    """A distributed-memory message-passing machine.

    Parameters
    ----------
    name:
        Human-readable machine name.
    alpha:
        Per-message latency in seconds (software + network startup cost).
    beta:
        Per-byte transfer time in seconds (inverse bandwidth).
    flop_time:
        Seconds per (useful, achieved) floating-point operation.  This is
        calibrated against *achieved* application rates of the era, not
        peak rates.
    mem_per_node:
        Usable node memory in bytes.  Working sets larger than this incur
        the paging penalty below.  ``None`` disables the memory model.
    paging_factor:
        Multiplier applied to compute time for the portion of the working
        set that exceeds node memory.  Models the performance cliff that
        the paper invokes to explain Figure 18's superlinear region.
    max_nodes:
        Largest configuration of the machine (informational; exceeded
        configurations raise).
    congestion_per_node:
        Fractional slowdown of every message per participating node,
        modelling interconnect contention: a message on a *P*-node
        configuration costs ``(alpha + beta*n) * (1 + congestion_per_node
        * max(P - 2, 0))``.  Captures the "computation-to-communication
        ratio dropping too low" regime the paper reports for its
        electromagnetics code beyond ~16 processors.
    """

    name: str
    alpha: float
    beta: float
    flop_time: float
    mem_per_node: float | None = None
    paging_factor: float = 8.0
    max_nodes: int = 4096
    congestion_per_node: float = 0.0
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.flop_time < 0:
            raise ReproError(f"machine {self.name!r} has negative cost parameters")
        if self.paging_factor < 1.0:
            raise ReproError("paging_factor must be >= 1")

    #: receiver software overhead, as a fraction of alpha per message
    RECV_ALPHA_FRACTION = 0.35
    #: receiver copy cost, as a fraction of beta per byte
    RECV_BETA_FRACTION = 0.25
    #: sender software overhead (nonblocking post), as a fraction of alpha
    SEND_ALPHA_FRACTION = 0.35
    #: sender copy-to-wire cost (nonblocking post), as a fraction of beta
    SEND_BETA_FRACTION = 0.25

    # -- communication ---------------------------------------------------
    def message_time(self, nbytes: int, nodes: int = 2) -> float:
        """Sender-side time to move one *nbytes*-byte message between two
        nodes of a *nodes*-node configuration (congestion scales with the
        machine size)."""
        if nbytes < 0:
            raise ReproError(f"negative message size {nbytes}")
        congestion = 1.0 + self.congestion_per_node * max(nodes - 2, 0)
        return (self.alpha + self.beta * nbytes) * congestion

    def send_overhead(self, nbytes: int, nodes: int = 2) -> float:
        """Sender-side time to *post* one message without waiting for it.

        This is the overlap-aware cost path: a blocking send charges the
        full :meth:`message_time` (store-and-forward), while a
        nonblocking ``isend`` charges only this software/injection
        overhead and lets the wire transfer proceed concurrently with
        whatever the sender does next.  Waiting on the send's request
        synchronises with the transfer's completion, so
        ``isend`` + immediate ``wait`` costs exactly one blocking send,
        and ``isend`` + compute + ``wait`` costs
        ``max(compute, message_time) + send_overhead``-style totals —
        the max-instead-of-sum accounting documented in
        docs/performance_model.md.  Always ``<= message_time`` (the
        fractions are below 1), so overlap never makes a program slower.
        """
        if nbytes < 0:
            raise ReproError(f"negative message size {nbytes}")
        congestion = 1.0 + self.congestion_per_node * max(nodes - 2, 0)
        return (
            self.SEND_ALPHA_FRACTION * self.alpha
            + self.SEND_BETA_FRACTION * self.beta * nbytes
        ) * congestion

    def recv_overhead(self, nbytes: int, nodes: int = 2) -> float:
        """Receiver-side time to ingest one message.

        Charged per message *after* the arrival synchronisation, so a
        node receiving from many peers serialises their software
        overheads — the hot-spot effect that makes gather-to-root
        patterns slower than recursive doubling on real machines.
        """
        if nbytes < 0:
            raise ReproError(f"negative message size {nbytes}")
        congestion = 1.0 + self.congestion_per_node * max(nodes - 2, 0)
        return (
            self.RECV_ALPHA_FRACTION * self.alpha
            + self.RECV_BETA_FRACTION * self.beta * nbytes
        ) * congestion

    def bandwidth(self) -> float:
        """Asymptotic bandwidth in bytes/second (``inf`` when beta == 0)."""
        return float("inf") if self.beta == 0 else 1.0 / self.beta

    def half_performance_length(self) -> float:
        """Hockney's n_1/2: message size reaching half asymptotic bandwidth."""
        return float("inf") if self.beta == 0 else self.alpha / self.beta

    # -- computation ------------------------------------------------------
    def compute_time(self, flops: float, working_set_bytes: float | None = None) -> float:
        """Time for *flops* useful floating-point operations on one node.

        When the memory model is enabled and a working-set size is
        provided, work on the overflowing fraction of the working set is
        slowed by ``paging_factor``.
        """
        if flops < 0:
            raise ReproError(f"negative flop count {flops}")
        base = flops * self.flop_time
        if (
            self.mem_per_node is not None
            and working_set_bytes is not None
            and working_set_bytes > self.mem_per_node
        ):
            overflow_fraction = 1.0 - self.mem_per_node / working_set_bytes
            base *= 1.0 + (self.paging_factor - 1.0) * overflow_fraction
        return base

    def flops_rate(self) -> float:
        """Achieved flop rate in flop/s (``inf`` for an ideal machine)."""
        return float("inf") if self.flop_time == 0 else 1.0 / self.flop_time

    # -- derived ratios (useful for analysis and tests) -------------------
    def comm_to_compute_ratio(self, nbytes_per_flop: float) -> float:
        """Seconds of communication per second of computation at the given
        traffic intensity (bytes transferred per flop executed)."""
        if self.flop_time == 0:
            return float("inf")
        return (self.beta * nbytes_per_flop) / self.flop_time

    def describe(self) -> str:
        """One-line summary used by benchmark reports."""
        bw = self.bandwidth()
        bw_s = f"{bw / 1e6:.1f} MB/s" if bw != float("inf") else "infinite"
        rate = self.flops_rate()
        rate_s = f"{rate / 1e6:.1f} Mflop/s" if rate != float("inf") else "infinite"
        return (
            f"{self.name}: alpha={self.alpha * 1e6:.1f} us, bandwidth={bw_s}, "
            f"achieved {rate_s}/node"
        )
