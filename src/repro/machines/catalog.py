"""Catalog of modelled machines.

Parameters are calibrated against published measurements of the era's
platforms (latency/bandwidth from vendor and benchmarking literature,
achieved per-node flop rates from application reports, which are far below
peak).  Exact values matter less than the *ratios*, which set the
computation/communication balance that shapes the paper's speedup curves.

====================  =========  ============  =================
machine               latency    bandwidth     achieved Mflop/s
====================  =========  ============  =================
Intel Delta           ~75 us     ~12 MB/s      ~8  (i860, 40 MHz)
Intel Paragon         ~100 us    ~70 MB/s      ~10 (i860XP)
IBM SP (SP-1/SP-2)    ~50 us     ~35 MB/s      ~40 (POWER/POWER2)
Cray T3D              ~3 us      ~120 MB/s     ~25 (Alpha 21064)
Ethernet Sun network  ~1 ms      ~1 MB/s       ~10 (SuperSPARC)
====================  =========  ============  =================

The *modern* entries below extend the table three decades so the
paper's crossover analyses (compute/communicate ratio vs machine
balance) can be re-asked on 2020s hardware.  "Achieved" rates again
sit far below peak — they are sustained application rates per rank:

====================  =========  ============  =================
machine               latency    bandwidth     achieved Gflop/s
====================  =========  ============  =================
NUMA EPYC node        ~0.8 us    ~10 GB/s      ~4   (one core, AVX2)
Cloud 25 GbE cluster  ~18 us     ~2.7 GB/s     ~6   (VM node)
GPU node (NVLink)     ~6 us      ~40 GB/s      ~900 (accelerator)
====================  =========  ============  =================

The striking structural change is the flop/byte balance: the GPU node
achieves ~22 flops per byte moved vs the Delta's ~0.7, so crossover
points that sat at P≈16 in 1999 move to tiny P (communication almost
always dominates) unless messages are overlapped or aggregated.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.machines.model import MachineModel

#: Idealised machine: communication is free and compute is one time unit
#: per flop.  Used by semantics tests (results must not depend on costs)
#: and as the "perfect speedup" reference.
IDEAL = MachineModel(
    name="ideal",
    alpha=0.0,
    beta=0.0,
    flop_time=1.0,
    mem_per_node=None,
    notes="cost-free network; semantics testing and perfect-speedup reference",
)

INTEL_DELTA = MachineModel(
    name="intel-delta",
    alpha=75e-6,
    beta=1.0 / 12e6,
    flop_time=1.0 / 8e6,
    mem_per_node=16 * 2**20,
    max_nodes=512,
    notes="Touchstone Delta: i860/40MHz nodes, 2-D mesh; Fig 6 and Fig 16 testbed",
)

INTEL_PARAGON = MachineModel(
    name="intel-paragon",
    alpha=100e-6,
    beta=1.0 / 70e6,
    flop_time=1.0 / 10e6,
    mem_per_node=32 * 2**20,
    max_nodes=2048,
    notes="Paragon XP/S: i860XP nodes, higher bandwidth than Delta",
)

IBM_SP = MachineModel(
    name="ibm-sp",
    alpha=50e-6,
    beta=1.0 / 35e6,
    flop_time=1.0 / 40e6,
    mem_per_node=128 * 2**20,
    max_nodes=512,
    congestion_per_node=0.02,
    notes="IBM SP-1/SP-2: POWER nodes, multistage switch; Figs 12, 15, 17, 18 testbed",
)

CRAY_T3D = MachineModel(
    name="cray-t3d",
    alpha=3e-6,
    beta=1.0 / 120e6,
    flop_time=1.0 / 25e6,
    mem_per_node=64 * 2**20,
    max_nodes=2048,
    notes="T3D: Alpha 21064 nodes, 3-D torus, very low latency",
)

ETHERNET_SUNS = MachineModel(
    name="ethernet-suns",
    alpha=1e-3,
    beta=1.0 / 1e6,
    flop_time=1.0 / 10e6,
    mem_per_node=64 * 2**20,
    max_nodes=64,
    notes="network of Sun workstations on shared 10 Mb Ethernet",
)

# -- modern machines ---------------------------------------------------------
# Calibrated against published microbenchmarks (shared-memory core-to-core
# transfer rates, cloud-VM TCP latency/throughput studies, NVLink
# point-to-point measurements) and *sustained* application flop rates,
# matching the 1990s entries' achieved-not-peak convention.

NUMA_EPYC = MachineModel(
    name="numa-epyc",
    alpha=0.8e-6,
    beta=1.0 / 10e9,
    flop_time=1.0 / 4e9,
    mem_per_node=4 * 2**30,
    max_nodes=128,
    congestion_per_node=0.01,
    notes="NUMA multi-core node (EPYC-class): ranks are cores, messages are "
    "cross-CCD cache transfers; mild congestion models memory-bus contention",
)

CLOUD_25GBE = MachineModel(
    name="cloud-25gbe",
    alpha=18e-6,
    beta=1.0 / 2.7e9,
    flop_time=1.0 / 6e9,
    mem_per_node=16 * 2**30,
    max_nodes=1024,
    congestion_per_node=0.015,
    notes="cloud cluster on 25 GbE VPC networking: kernel TCP latency, "
    "~2.7 GB/s achieved per-flow bandwidth, oversubscription congestion",
)

GPU_NODE = MachineModel(
    name="gpu-node",
    alpha=6e-6,
    beta=1.0 / 40e9,
    flop_time=1.0 / 900e9,
    mem_per_node=64 * 2**30,
    max_nodes=64,
    notes="GPU-node-like balance (NVLink-connected accelerators): extreme "
    "flop/byte ratio, so communication dominates at tiny P unless overlapped",
)

#: the 2020s entries, for tools that sweep only modern hardware
MODERN_MACHINES = (NUMA_EPYC, CLOUD_25GBE, GPU_NODE)

_CATALOG: dict[str, MachineModel] = {
    m.name: m
    for m in (
        IDEAL,
        INTEL_DELTA,
        INTEL_PARAGON,
        IBM_SP,
        CRAY_T3D,
        ETHERNET_SUNS,
        NUMA_EPYC,
        CLOUD_25GBE,
        GPU_NODE,
    )
}


def get_machine(name: str) -> MachineModel:
    """Look up a machine model by name (as listed by :func:`list_machines`)."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise ReproError(
            f"unknown machine {name!r}; available: {', '.join(sorted(_CATALOG))}"
        ) from None


def list_machines() -> list[str]:
    """Names of all catalogued machines."""
    return sorted(_CATALOG)
