"""Catalog of modelled machines.

Parameters are calibrated against published measurements of the era's
platforms (latency/bandwidth from vendor and benchmarking literature,
achieved per-node flop rates from application reports, which are far below
peak).  Exact values matter less than the *ratios*, which set the
computation/communication balance that shapes the paper's speedup curves.

====================  =========  ============  =================
machine               latency    bandwidth     achieved Mflop/s
====================  =========  ============  =================
Intel Delta           ~75 us     ~12 MB/s      ~8  (i860, 40 MHz)
Intel Paragon         ~100 us    ~70 MB/s      ~10 (i860XP)
IBM SP (SP-1/SP-2)    ~50 us     ~35 MB/s      ~40 (POWER/POWER2)
Cray T3D              ~3 us      ~120 MB/s     ~25 (Alpha 21064)
Ethernet Sun network  ~1 ms      ~1 MB/s       ~10 (SuperSPARC)
====================  =========  ============  =================
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.machines.model import MachineModel

#: Idealised machine: communication is free and compute is one time unit
#: per flop.  Used by semantics tests (results must not depend on costs)
#: and as the "perfect speedup" reference.
IDEAL = MachineModel(
    name="ideal",
    alpha=0.0,
    beta=0.0,
    flop_time=1.0,
    mem_per_node=None,
    notes="cost-free network; semantics testing and perfect-speedup reference",
)

INTEL_DELTA = MachineModel(
    name="intel-delta",
    alpha=75e-6,
    beta=1.0 / 12e6,
    flop_time=1.0 / 8e6,
    mem_per_node=16 * 2**20,
    max_nodes=512,
    notes="Touchstone Delta: i860/40MHz nodes, 2-D mesh; Fig 6 and Fig 16 testbed",
)

INTEL_PARAGON = MachineModel(
    name="intel-paragon",
    alpha=100e-6,
    beta=1.0 / 70e6,
    flop_time=1.0 / 10e6,
    mem_per_node=32 * 2**20,
    max_nodes=2048,
    notes="Paragon XP/S: i860XP nodes, higher bandwidth than Delta",
)

IBM_SP = MachineModel(
    name="ibm-sp",
    alpha=50e-6,
    beta=1.0 / 35e6,
    flop_time=1.0 / 40e6,
    mem_per_node=128 * 2**20,
    max_nodes=512,
    congestion_per_node=0.02,
    notes="IBM SP-1/SP-2: POWER nodes, multistage switch; Figs 12, 15, 17, 18 testbed",
)

CRAY_T3D = MachineModel(
    name="cray-t3d",
    alpha=3e-6,
    beta=1.0 / 120e6,
    flop_time=1.0 / 25e6,
    mem_per_node=64 * 2**20,
    max_nodes=2048,
    notes="T3D: Alpha 21064 nodes, 3-D torus, very low latency",
)

ETHERNET_SUNS = MachineModel(
    name="ethernet-suns",
    alpha=1e-3,
    beta=1.0 / 1e6,
    flop_time=1.0 / 10e6,
    mem_per_node=64 * 2**20,
    max_nodes=64,
    notes="network of Sun workstations on shared 10 Mb Ethernet",
)

_CATALOG: dict[str, MachineModel] = {
    m.name: m
    for m in (IDEAL, INTEL_DELTA, INTEL_PARAGON, IBM_SP, CRAY_T3D, ETHERNET_SUNS)
}


def get_machine(name: str) -> MachineModel:
    """Look up a machine model by name (as listed by :func:`list_machines`)."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise ReproError(
            f"unknown machine {name!r}; available: {', '.join(sorted(_CATALOG))}"
        ) from None


def list_machines() -> list[str]:
    """Names of all catalogued machines."""
    return sorted(_CATALOG)
