"""Performance models of message-passing multicomputers.

The paper's measurements were taken on 1990s machines (Intel Delta, IBM SP,
Intel Paragon, Cray T3D, Ethernet networks of Sun workstations).  We model
each as a Hockney-style machine: per-message latency ``alpha``, per-byte
transfer time ``beta``, per-flop compute time, and a simple node-memory
model that captures paging penalties (needed for the paper's Figure 18,
whose better-than-ideal small-P speedups the authors attribute to paging at
the base processor count).
"""

from repro.machines.model import MachineModel
from repro.machines.catalog import (
    CLOUD_25GBE,
    CRAY_T3D,
    ETHERNET_SUNS,
    GPU_NODE,
    IBM_SP,
    IDEAL,
    INTEL_DELTA,
    INTEL_PARAGON,
    MODERN_MACHINES,
    NUMA_EPYC,
    get_machine,
    list_machines,
)

__all__ = [
    "MachineModel",
    "IDEAL",
    "INTEL_DELTA",
    "INTEL_PARAGON",
    "IBM_SP",
    "CRAY_T3D",
    "ETHERNET_SUNS",
    "NUMA_EPYC",
    "CLOUD_25GBE",
    "GPU_NODE",
    "MODERN_MACHINES",
    "get_machine",
    "list_machines",
]
