"""The backend registry: one mapping from names to scheduling backends.

Every entry point that lets a caller pick a backend — :func:`repro.runtime.
spmd.spmd_run`, :meth:`Archetype.run <repro.core.archetype.Archetype.run>`,
``python -m repro.bench``, ``python -m repro.verify``, and the job
server's wire protocol (:mod:`repro.serve`) — resolves the name here
instead of wiring constructors ad hoc.  The registry also owns
the ``REPRO_BACKEND`` environment default: passing ``backend=None`` (or
``mode=None``) to a runner means "whatever ``REPRO_BACKEND`` says, else
deterministic", which is how a whole bench sweep or test run is switched
onto another backend without touching call sites.

Backends come in two execution styles:

- *in-process* backends (deterministic, fuzzed, threads) construct a
  :class:`~repro.runtime.scheduler.Backend` and drive rank bodies as
  threads of the calling process;
- the *process-parallel* backend (``parallel``) runs one OS process per
  rank and is orchestrated by :func:`repro.runtime.parallel.run_parallel`
  — it cannot execute arbitrary closures built around shared state, so
  :func:`spmd_run` dispatches on :attr:`BackendSpec.in_process`.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ReproError

#: environment variable naming the default backend
BACKEND_ENV = "REPRO_BACKEND"


@dataclass(frozen=True)
class BackendSpec:
    """One registered backend."""

    name: str
    description: str
    #: True when the backend runs rank bodies as threads of this process
    #: (constructed via :attr:`factory`); False for the process-parallel
    #: backend, which :func:`spmd_run` hands off to ``run_parallel``.
    in_process: bool
    #: ``factory(nprocs, **options) -> Backend`` for in-process backends
    factory: Callable | None = None
    #: alternative names accepted by :func:`resolve`
    aliases: tuple[str, ...] = field(default=())
    #: the :class:`~repro.core.archetype.ExecutionMode` string that drives
    #: this backend through ``Archetype.run(mode=...)``.  The fuzzed
    #: backend shares ``"sequential"`` with the deterministic one — it is
    #: the same run-to-block engine, selected by wrapping the run in
    #: :func:`repro.verify.fuzzed_schedule` (or via ``REPRO_BACKEND``);
    #: the job server's executor relies on exactly that combination.
    mode: str = "sequential"


def _make_deterministic(nprocs: int, **options) -> "object":
    from repro.runtime.scheduler import DeterministicBackend

    return DeterministicBackend(nprocs)


def _make_fuzzed(nprocs: int, **options) -> "object":
    from repro.runtime.scheduler import FuzzedBackend

    return FuzzedBackend(
        nprocs,
        seed=options.get("seed", 0),
        perturb_matching=options.get("perturb_matching", True),
        faults=options.get("faults"),
    )


def _make_threads(nprocs: int, **options) -> "object":
    from repro.runtime.scheduler import ThreadedBackend

    return ThreadedBackend(
        nprocs, deadlock_timeout=options.get("deadlock_timeout", 30.0)
    )


_REGISTRY: dict[str, BackendSpec] = {}
_ALIASES: dict[str, str] = {}


def register(spec: BackendSpec) -> None:
    """Add *spec* to the registry (idempotent for an identical re-register)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ReproError(f"backend {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name


register(
    BackendSpec(
        name="deterministic",
        description="run-to-block, one rank at a time, virtual-time order "
        "(reproducible; the reference for digests and clocks)",
        in_process=True,
        factory=_make_deterministic,
    )
)
register(
    BackendSpec(
        name="fuzzed",
        description="seeded-PRNG run-to-block scheduling with legal wildcard "
        "perturbation and fault injection (the verification backend)",
        in_process=True,
        factory=_make_fuzzed,
    )
)
register(
    BackendSpec(
        name="threads",
        description="free-running OS threads, condition-variable mailboxes "
        "(concurrent, GIL-serialised)",
        in_process=True,
        factory=_make_threads,
        aliases=("threaded",),
        mode="threads",
    )
)
register(
    BackendSpec(
        name="parallel",
        description="one OS process per rank with shared-memory payload "
        "transport (real multi-core execution)",
        in_process=False,
        aliases=("processes",),
        mode="parallel",
    )
)


def names() -> tuple[str, ...]:
    """Canonical backend names, registration order."""
    return tuple(_REGISTRY)


def resolve(name: str | None) -> str:
    """Canonicalise *name* (``None`` → the ``REPRO_BACKEND`` default).

    Raises :class:`~repro.errors.ReproError` for unknown names, listing
    the registered choices.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or "deterministic"
    name = _ALIASES.get(name, name)
    if name not in _REGISTRY:
        raise ReproError(f"unknown backend {name!r}; choose from {names()}")
    return name


def get(name: str | None) -> BackendSpec:
    """The :class:`BackendSpec` registered under *name* (aliases resolved)."""
    return _REGISTRY[resolve(name)]


def create(name: str | None, nprocs: int, **options) -> "object":
    """Construct an in-process backend by name.

    *options* are the union of every backend's knobs (``seed``,
    ``perturb_matching``, ``faults``, ``deadlock_timeout``); each factory
    picks what it understands.  The process-parallel backend has no
    in-process factory — callers must dispatch on
    :attr:`BackendSpec.in_process` first.
    """
    spec = get(name)
    if spec.factory is None:
        raise ReproError(
            f"backend {spec.name!r} is process-parallel; it is driven by "
            "repro.runtime.parallel.run_parallel, not an in-process factory"
        )
    return spec.factory(nprocs, **options)
