"""Request handles for nonblocking point-to-point communication.

A :class:`Request` is what ``isend``/``irecv`` return: a handle on an
in-flight transfer that the owning rank later completes with ``wait``,
``waitall``, or ``waitany``.  The handle records everything the virtual
clock needs to charge the overlap-aware cost path:

- a *send* request charged only the post overhead at ``isend`` time and
  carries ``complete_at``, the virtual time the wire transfer finishes;
  waiting on it advances the clock to at least that time (so an isend
  followed immediately by a wait costs exactly one blocking send, and
  compute performed in between is absorbed by the ``max``);
- a *recv* request carries the mailbox post id; waiting on it advances
  the clock to at least the message's arrival plus the receiver ingest
  overhead — again, compute performed between post and wait shrinks the
  idle portion.

Requests belong to the context that created them; completing one from a
different rank raises.  ``request.wait()`` is shorthand for
``ctx.wait(request)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import CommError
from repro.runtime.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import RankContext


class Request:
    """Handle on one in-flight nonblocking send or receive."""

    __slots__ = (
        "kind",
        "owner",
        "req_id",
        "peer",
        "tag",
        "nbytes",
        "posted_at",
        "complete_at",
        "post_id",
        "done",
        "message",
    )

    def __init__(
        self,
        kind: str,
        owner: "RankContext",
        req_id: int,
        peer: int,
        tag: int,
        nbytes: int,
        posted_at: float,
        complete_at: float = 0.0,
        post_id: int = -1,
    ):
        #: ``"send"`` or ``"recv"``
        self.kind = kind
        #: the context that created (and must complete) this request
        self.owner = owner
        #: rank-unique id tying the post/complete trace markers together
        self.req_id = req_id
        #: peer rank in the owner communicator's numbering (or ANY_SOURCE)
        self.peer = peer
        self.tag = tag
        #: payload size; for receives, filled in at completion
        self.nbytes = nbytes
        #: owner's virtual clock when the request was posted
        self.posted_at = posted_at
        #: sends only: virtual time the wire transfer completes
        self.complete_at = complete_at
        #: receives only: the mailbox post id
        self.post_id = post_id
        self.done = False
        #: receives only: the matched envelope, after completion (source
        #: expressed in the owner communicator's local numbering)
        self.message: Message | None = None

    @property
    def payload(self) -> Any:
        """The received payload (completed receive requests only)."""
        if self.kind != "recv":
            raise CommError("send requests carry no payload")
        if not self.done or self.message is None:
            raise CommError("request not yet completed; wait on it first")
        return self.message.payload

    def wait(self) -> Any:
        """Complete this request on its owning rank (see ``ctx.wait``)."""
        return self.owner.wait(self)

    def test(self) -> bool:
        """Non-blocking completion probe (see ``ctx.test``)."""
        return self.owner.test(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "in-flight"
        return (
            f"<Request {self.kind} #{self.req_id} peer={self.peer} "
            f"tag={self.tag} {state}>"
        )
