"""Per-rank execution context: point-to-point messaging and the virtual clock.

A :class:`RankContext` is what each rank's program body receives.  It knows
the rank/size, the machine model, and maintains the rank's virtual clock:

- ``charge(flops)`` advances the clock by the machine's compute time;
- ``send`` advances the sender's clock by the Hockney message cost
  ``alpha + beta * nbytes`` and stamps the message with its arrival time;
- ``recv`` advances the receiver's clock to at least the arrival time
  (waiting in virtual time exactly when the message was not yet there).

Clocks are pure functions of the communication pattern and the charged
work, so deterministic programs report identical virtual times regardless
of scheduling backend or host machine speed.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro import fastpath
from repro.errors import CommError
from repro.machines.model import MachineModel
from repro.obs.metrics import TIME_BUCKETS, counter_handle, histogram_handle
from repro.runtime.message import ANY_SOURCE, ANY_TAG, Message
from repro.runtime.request import Request
from repro.runtime.scheduler import Backend
from repro.trace.tracer import Tracer
from repro.util.nbytes import _OVERHEAD_BYTES, _SCALAR_BYTES, _nbytes, nbytes_of

_REQ_POSTED = counter_handle(
    "comm.requests.posted", help="nonblocking requests posted"
)
_REQ_COMPLETED = counter_handle(
    "comm.requests.completed", help="nonblocking requests completed"
)
_REQ_WAIT = histogram_handle(
    "comm.requests.wait_seconds",
    buckets=TIME_BUCKETS,
    help="virtual time spent blocked completing a request",
)


def _copy_payload(payload: Any) -> Any:
    """Deep-copy a message payload (send-by-value semantics).

    Common cases are handled without the generic ``copy.deepcopy``
    machinery: immutable scalars pass through, ndarrays are copied
    contiguously, and containers recurse.
    """
    if payload is None or isinstance(
        payload, (bool, int, float, complex, str, bytes, frozenset)
    ):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, np.generic):
        return payload
    if isinstance(payload, tuple):
        return tuple(_copy_payload(item) for item in payload)
    if isinstance(payload, list):
        return [_copy_payload(item) for item in payload]
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return copy.deepcopy(payload)


def _array_frozen(array: np.ndarray) -> bool:
    """True when *array* (and everything it views) is read-only.

    A read-only view over a writeable base is *not* frozen: the owner of
    the base could still mutate the shared memory, so it must be copied
    like any writeable buffer.
    """
    base: Any = array
    while isinstance(base, np.ndarray):
        if base.flags.writeable:
            return False
        base = base.base
    return base is None or isinstance(base, bytes)


def _freeze_payload(payload: Any) -> Any:
    """Produce an immutable equivalent of *payload*, sharing what it can.

    The fast-path replacement for :func:`_copy_payload`: ndarrays are
    copied **once** and marked read-only at first injection; a payload
    that is already frozen (every forwarded hop of a ``bcast``, the
    ring-passed slabs of an ``allgather``) is shared zero-copy, because
    neither sender nor receiver can mutate it.  Mutable containers are
    rebuilt (cheap — pointers only) so a sender appending to a sent list
    cannot reach the receiver; their array leaves are shared frozen.
    """
    if payload is None or isinstance(
        payload, (bool, int, float, complex, str, bytes, frozenset, np.generic)
    ):
        return payload
    if isinstance(payload, np.ndarray):
        if _array_frozen(payload):
            return payload
        frozen = payload.copy()
        frozen.flags.writeable = False
        return frozen
    if isinstance(payload, tuple):
        return tuple(_freeze_payload(item) for item in payload)
    if isinstance(payload, list):
        return [_freeze_payload(item) for item in payload]
    if isinstance(payload, dict):
        return {k: _freeze_payload(v) for k, v in payload.items()}
    return copy.deepcopy(payload)


def _transfer_payload(payload: Any) -> Any:
    """Detach *payload* from the sender for delivery.

    Fast path on: copy-on-write — freeze once, then share (received
    arrays are read-only; ``np.asarray(x).copy()`` to mutate).  Fast path
    off: the historical eager deep copy.
    """
    if fastpath._enabled:
        return _freeze_payload(payload)
    return _copy_payload(payload)


def _freeze_measure(payload: Any) -> tuple[Any, int]:
    """Freeze *payload* and measure its wire size in one traversal.

    Returns ``(frozen, nbytes)`` where ``frozen`` is exactly
    :func:`_freeze_payload`'s result and ``nbytes`` exactly
    ``repro.util.nbytes._nbytes``'s (the envelope overhead is added by
    the caller).  Fusing the two walks matters for nested payloads (a
    redistribution parcel is a list of (rect, block) tuples): the
    structure is visited once instead of twice.  Types outside the hot
    set delegate to the reference implementations.
    """
    # Exact-type dispatch first: the hot payloads are plain
    # tuples/lists/ints/floats/ndarrays (a parcel is mostly small-int
    # rectangle tuples), and ``type() is`` beats isinstance chains.
    # Subclasses fall through to the isinstance chain below, which
    # computes the identical result.
    t = type(payload)
    if t is tuple or t is list:
        items = []
        total = 0
        for item in payload:
            ti = type(item)
            if ti is int or ti is float:
                items.append(item)
                total += _SCALAR_BYTES + 2
            else:
                frozen, nbytes = _freeze_measure(item)
                items.append(frozen)
                total += nbytes + 2
        return (tuple(items) if t is tuple else items), total
    if t is np.ndarray:
        nbytes = int(payload.nbytes)
        if _array_frozen(payload):
            return payload, nbytes
        frozen = payload.copy()
        frozen.flags.writeable = False
        return frozen, nbytes
    if payload is None:
        return payload, 0
    if isinstance(payload, np.ndarray):
        nbytes = int(payload.nbytes)
        if _array_frozen(payload):
            return payload, nbytes
        frozen = payload.copy()
        frozen.flags.writeable = False
        return frozen, nbytes
    if isinstance(payload, (bool, int, float, complex)):
        return payload, _SCALAR_BYTES
    if isinstance(payload, (tuple, list)):
        items = []
        total = 0
        for item in payload:
            frozen, nbytes = _freeze_measure(item)
            items.append(frozen)
            total += nbytes + 2
        return (tuple(items), total) if isinstance(payload, tuple) else (items, total)
    if isinstance(payload, dict):
        out = {}
        total = 0
        for key, value in payload.items():
            frozen, nbytes = _freeze_measure(value)
            out[key] = frozen
            total += _nbytes(key) + nbytes + 2
        return out, total
    return _freeze_payload(payload), _nbytes(payload)


@dataclass
class _Endpoint:
    """Per-rank state shared by every communicator view of the rank."""

    clock: float = 0.0
    send_seq: int = 0
    next_ctx: int = field(default=1)
    next_req: int = 0


class RankContext:
    """One rank's view of the virtual machine (possibly a group view)."""

    #: per-(machine, size) constants for the fused fast paths; instances
    #: populate their own cache on first use (group views built by
    #: ``split`` bypass ``__init__`` and inherit this class default)
    _cost_cache: tuple | None = None

    def __init__(
        self,
        rank: int,
        size: int,
        backend: Backend,
        machine: MachineModel,
        tracer: Tracer | None = None,
    ):
        #: this rank's id within this communicator, in ``[0, size)``
        self.rank = rank
        #: number of ranks in this communicator
        self.size = size
        self.machine = machine
        self._backend = backend
        self._tracer = tracer
        # Endpoint state shared by every communicator view of this rank
        # (sub-communicators created by split() alias the same node, so
        # virtual time and send ordering are per-rank, not per-group).
        self._endpoint = _Endpoint()
        #: communication context id; messages only match within a context
        self._ctx = 0
        #: member global ranks, or None for the world communicator
        self._group: list[int] | None = None

    # -- group plumbing -------------------------------------------------------
    @property
    def clock(self) -> float:
        """Virtual time on this rank, in seconds (shared across groups)."""
        return self._endpoint.clock

    @clock.setter
    def clock(self, value: float) -> None:
        self._endpoint.clock = value

    @property
    def global_rank(self) -> int:
        """This rank's id in the world communicator."""
        return self.rank if self._group is None else self._group[self.rank]

    def _to_global(self, rank: int) -> int:
        return rank if self._group is None else self._group[rank]

    def _to_local(self, global_rank: int) -> int:
        return global_rank if self._group is None else self._group.index(global_rank)

    # -- queries -----------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankContext rank={self.rank}/{self.size} t={self.clock:.6g}s>"

    @property
    def is_root(self) -> bool:
        """True on rank 0 (the conventional master for degenerate phases)."""
        return self.rank == 0

    def check_peer(self, peer: int) -> None:
        """Validate a peer rank id."""
        if not 0 <= peer < self.size:
            raise CommError(
                f"rank {peer} out of range for a {self.size}-rank computation"
            )

    def _validate_send_tag(self, tag: int) -> None:
        """Reject an invalid send tag.  Subclasses that restrict the tag
        space (the communicator's user-tag window) override this so fused
        fast paths raise exactly what their ``send``/``isend`` would."""
        if tag < 0:
            raise CommError(f"tags must be >= 0 (got {tag}); negatives are wildcards")

    def _machine_costs(self) -> tuple:
        """Constants of the machine's per-message cost formulas for this
        (machine, size) pair, cached on the instance.

        The fused fast paths inline :meth:`MachineModel.message_time` /
        ``send_overhead`` / ``recv_overhead`` to skip three method calls
        per exchange.  Each product below groups terms exactly as the
        model's own expressions associate them, so the inlined arithmetic
        is bitwise identical to calling the model.
        """
        m = self.machine
        congestion = 1.0 + m.congestion_per_node * max(self.size - 2, 0)
        cache = (
            m,
            self.size,
            congestion,
            m.alpha,
            m.beta,
            m.SEND_ALPHA_FRACTION * m.alpha,
            m.SEND_BETA_FRACTION * m.beta,
            m.RECV_ALPHA_FRACTION * m.alpha,
            m.RECV_BETA_FRACTION * m.beta,
        )
        self._cost_cache = cache
        return cache

    # -- compute accounting --------------------------------------------------
    def charge(
        self,
        flops: float,
        label: str = "",
        working_set_bytes: float | None = None,
    ) -> None:
        """Account *flops* of useful work to this rank's virtual clock.

        Applications call this with analytic work terms (e.g. ``n * log2(n)``
        comparisons for a sort); the machine model converts work to time,
        applying a paging penalty when ``working_set_bytes`` exceeds node
        memory.
        """
        start = self.clock
        self.clock += self.machine.compute_time(flops, working_set_bytes)
        if self._tracer is not None:
            self._tracer.compute(self.rank, flops, label, start, self.clock)

    def advance(self, seconds: float) -> None:
        """Advance the virtual clock by a raw time amount (rarely needed)."""
        if seconds < 0:
            raise CommError(f"cannot advance clock by negative time {seconds}")
        self.clock += seconds

    # -- point-to-point ------------------------------------------------------
    def send(
        self, dest: int, payload: Any, tag: int = 0, *, nbytes: int | None = None
    ) -> None:
        """Send *payload* to rank *dest* with the given *tag*.

        Buffered semantics: the call deposits the message and returns; the
        sender's clock pays the full transfer cost (store-and-forward
        model) and the message becomes visible to the receiver at the
        sender's post-send clock.

        The payload is detached from the sender at send time.  Ranks
        share one address space here, but the modelled machine has
        distributed memory: a sender mutating its buffer after the send
        must never affect the receiver (nor may a receiver's mutation
        reach back).  NumPy views are especially hazardous without this —
        a contiguous slab of a local array "sent" by reference would
        deliver whatever the array holds when the receiver is finally
        scheduled.  With the fast path on, detachment is copy-on-write:
        arrays are copied once and frozen read-only, and already-frozen
        payloads (collective forwards) are shared zero-copy.

        ``nbytes`` overrides the payload-size traversal when the caller
        already knows the size — collectives forwarding a received
        message reuse its envelope's ``nbytes`` instead of re-measuring
        the same buffer at every tree hop.  It must equal
        ``nbytes_of(payload)``; virtual costs depend on it.
        """
        self.check_peer(dest)
        if tag < 0:
            raise CommError(f"tags must be >= 0 (got {tag}); negatives are wildcards")
        if fastpath._enabled:
            if nbytes is None:
                payload, nbytes = _freeze_measure(payload)
                nbytes += _OVERHEAD_BYTES
            else:
                payload = _freeze_payload(payload)
        else:
            payload = _copy_payload(payload)
            if nbytes is None:
                nbytes = nbytes_of(payload)
        start = self.clock
        self.clock += self.machine.message_time(nbytes, nodes=self.size)
        self._endpoint.send_seq += 1
        msg = Message(
            source=self.global_rank,
            dest=self._to_global(dest),
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            arrival=self.clock,
            seq=self._endpoint.send_seq,
            ctx=self._ctx,
        )
        self._backend.deliver(msg)
        if self._tracer is not None:
            self._tracer.comm(
                self.global_rank, "send", msg.dest, tag, nbytes, start, self.clock
            )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Receive and return the payload of a matching message (blocking)."""
        return self.recv_msg(source, tag).payload

    def recv_msg(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message:
        """Receive a matching message, returning the full envelope.

        The returned envelope's ``source`` is expressed in this
        communicator's (local) rank numbering.
        """
        if source != ANY_SOURCE:
            self.check_peer(source)
        start = self.clock
        describe = (
            f"recv(source={'ANY' if source == ANY_SOURCE else source}, "
            f"tag={'ANY' if tag == ANY_TAG else tag}, ctx={self._ctx})"
        )
        global_source = source if source == ANY_SOURCE else self._to_global(source)
        msg = self._backend.wait_for_match(
            self.global_rank, global_source, tag, self._ctx, describe
        )
        self.clock = max(self.clock, msg.arrival)
        self.clock += self.machine.recv_overhead(msg.nbytes, nodes=self.size)
        if self._tracer is not None:
            self._tracer.comm(
                self.global_rank,
                "recv",
                msg.source,
                msg.tag,
                msg.nbytes,
                start,
                self.clock,
            )
        if self._group is not None:
            msg = replace(msg, source=self._to_local(msg.source))
        return msg

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is already waiting (non-blocking)."""
        global_source = source if source == ANY_SOURCE else self._to_global(source)
        return self._backend.probe_match(self.global_rank, global_source, tag, self._ctx)

    # -- nonblocking point-to-point -----------------------------------------
    #
    # Cost model: ``isend`` charges only the sender-side post overhead and
    # records the wire-completion time on the request; ``irecv`` is free to
    # post.  Completion (``wait``/``waitall``) advances the clock to at
    # least the transfer's finish time, so compute performed between post
    # and wait is absorbed into ``max(compute, transfer)`` — the
    # compute/communication overlap the archetypes exploit.  An isend (or
    # irecv) followed immediately by its wait costs exactly the blocking
    # call, by construction.
    #
    # ``waitall`` observes completions in whatever order the backend
    # reports (the fuzzer perturbs this) but *charges* them in a canonical
    # order, so virtual clocks stay schedule-independent.  ``waitany`` is
    # inherently order-sensitive, like a wildcard receive, and is charged
    # at the observed completion.

    def _new_req_id(self) -> int:
        rid = self._endpoint.next_req
        self._endpoint.next_req += 1
        return rid

    def isend(
        self, dest: int, payload: Any, tag: int = 0, *, nbytes: int | None = None
    ) -> Request:
        """Post a nonblocking send; complete it with ``wait``/``waitall``.

        The payload is detached at post time (send-by-value, as for
        :meth:`send`, copy-on-write with the fast path on) and delivered
        with the same arrival stamp a blocking send would produce; only
        the post overhead is charged here.  ``nbytes`` as for
        :meth:`send`.
        """
        self.check_peer(dest)
        if tag < 0:
            raise CommError(f"tags must be >= 0 (got {tag}); negatives are wildcards")
        if fastpath._enabled:
            if nbytes is None:
                payload, nbytes = _freeze_measure(payload)
                nbytes += _OVERHEAD_BYTES
            else:
                payload = _freeze_payload(payload)
        else:
            payload = _copy_payload(payload)
            if nbytes is None:
                nbytes = nbytes_of(payload)
        start = self.clock
        if fastpath._enabled:
            costs = self._cost_cache
            if costs is None or costs[0] is not self.machine or costs[1] != self.size:
                costs = self._machine_costs()
            arrival = start + (costs[3] + costs[4] * nbytes) * costs[2]
            self.clock = start + (costs[5] + costs[6] * nbytes) * costs[2]
        else:
            arrival = start + self.machine.message_time(nbytes, nodes=self.size)
            self.clock += self.machine.send_overhead(nbytes, nodes=self.size)
        self._endpoint.send_seq += 1
        msg = Message(
            source=self.global_rank,
            dest=self._to_global(dest),
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            arrival=arrival,
            seq=self._endpoint.send_seq,
            ctx=self._ctx,
        )
        self._backend.deliver(msg)
        req = Request(
            "send",
            self,
            self._new_req_id(),
            dest,
            tag,
            nbytes,
            posted_at=start,
            complete_at=arrival,
        )
        _REQ_POSTED.inc()
        if self._tracer is not None:
            self._tracer.comm(
                self.global_rank,
                "send",
                msg.dest,
                tag,
                nbytes,
                start,
                self.clock,
                arrival=arrival,
            )
            self._tracer.request(
                self.global_rank, self.clock, "isend", "post", req.req_id,
                msg.dest, tag, nbytes,
            )
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Post a nonblocking receive pattern; costs nothing until waited.

        Posting pins the match: the pattern binds to the earliest pending
        match now (or the next matching delivery), and a bound message can
        no longer be stolen by other receives — MPI posted-receive
        semantics.
        """
        if source != ANY_SOURCE:
            self.check_peer(source)
        global_source = source if source == ANY_SOURCE else self._to_global(source)
        post_id = self._backend.post_receive(
            self.global_rank, global_source, tag, self._ctx
        )
        req = Request(
            "recv",
            self,
            self._new_req_id(),
            source,
            tag,
            0,
            posted_at=self.clock,
            post_id=post_id,
        )
        _REQ_POSTED.inc()
        if self._tracer is not None:
            self._tracer.request(
                self.global_rank, self.clock, "irecv", "post", req.req_id,
                global_source, tag, 0,
            )
        return req

    def _check_request(self, request: Request) -> None:
        if request.owner._endpoint is not self._endpoint:
            raise CommError(
                f"request #{request.req_id} belongs to rank "
                f"{request.owner.global_rank}, not rank {self.global_rank}"
            )

    def _complete_send(self, request: Request) -> None:
        """Charge a send completion: wait out the wire if it hasn't drained."""
        owner = request.owner
        pre = owner.clock
        owner.clock = max(owner.clock, request.complete_at)
        request.done = True
        _REQ_COMPLETED.inc()
        _REQ_WAIT.observe(max(0.0, request.complete_at - pre))
        if owner._tracer is not None:
            owner._tracer.request(
                owner.global_rank, owner.clock, "isend", "complete",
                request.req_id, owner._to_global(request.peer), request.tag,
                request.nbytes,
            )

    def _complete_recv(self, request: Request, msg: Message) -> None:
        """Charge a receive completion and store the matched envelope."""
        owner = request.owner
        pre = owner.clock
        owner.clock = max(owner.clock, msg.arrival)
        owner.clock += owner.machine.recv_overhead(msg.nbytes, nodes=owner.size)
        request.nbytes = msg.nbytes
        _REQ_COMPLETED.inc()
        _REQ_WAIT.observe(max(0.0, msg.arrival - pre))
        if owner._tracer is not None:
            owner._tracer.comm(
                owner.global_rank,
                "recv",
                msg.source,
                msg.tag,
                msg.nbytes,
                pre,
                owner.clock,
                arrival=msg.arrival,
            )
            owner._tracer.request(
                owner.global_rank, owner.clock, "irecv", "complete",
                request.req_id, msg.source, msg.tag, msg.nbytes,
            )
        if owner._group is not None:
            msg = replace(msg, source=owner._to_local(msg.source))
        request.message = msg
        request.done = True

    def wait(self, request: Request) -> Any:
        """Complete one request; returns the payload for receives."""
        self._check_request(request)
        if request.done:
            return request.payload if request.kind == "recv" else None
        if request.kind == "send":
            self._complete_send(request)
            return None
        rank = self.global_rank
        if not self._backend.post_ready(rank, request.post_id):
            describe = (
                f"wait(recv #{request.req_id}, "
                f"source={'ANY' if request.peer == ANY_SOURCE else request.peer}, "
                f"tag={'ANY' if request.tag == ANY_TAG else request.tag}, "
                f"ctx={self._ctx})"
            )
            self._backend.wait_any_post(rank, [request.post_id], describe)
        msg = self._backend.take_post(rank, request.post_id)
        self._complete_recv(request, msg)
        return request.payload

    def waitall(self, requests: list[Request]) -> list[Any]:
        """Complete every request; returns payloads (None at send slots).

        Completions are *observed* in backend order — the schedule fuzzer
        perturbs which fulfilled receive is drained first — but *charged*
        canonically (sends in list order, then receives sorted by arrival),
        so the virtual clock is independent of the observation order.
        """
        if fastpath._enabled:
            return self._waitall_fast(requests)
        for request in requests:
            self._check_request(request)
        rank = self.global_rank
        pending = {
            r.post_id: r for r in requests if r.kind == "recv" and not r.done
        }
        describe = f"waitall({len(requests)} requests, ctx={self._ctx})"
        fulfilled: list[tuple[Request, Message]] = []
        while pending:
            ready = self._backend.wait_any_post(rank, list(pending), describe)
            candidates = [
                (m.source, m.tag)
                for m in (self._backend.peek_post(rank, pid) for pid in ready)
            ]
            pos = self._backend.choose_completion(rank, candidates)
            post_id = ready[pos]
            msg = self._backend.take_post(rank, post_id)
            fulfilled.append((pending.pop(post_id), msg))
        for request in requests:
            if request.kind == "send" and not request.done:
                self._complete_send(request)
        fulfilled.sort(key=lambda pair: (pair[1].arrival, pair[1].source, pair[1].seq))
        for request, msg in fulfilled:
            self._complete_recv(request, msg)
        return [r.payload if r.kind == "recv" else None for r in requests]

    def _waitall_fast(self, requests: list[Request]) -> list[Any]:
        """The fast-path ``waitall`` body: same backend call sequence and
        charges, with the per-request bookkeeping of the historical loop
        (request dicts, completion helpers) flattened into locals.

        ``choose_completion`` is elided when exactly one receive is
        fulfillable: with a single candidate every backend returns
        position 0 without consuming randomness or tracing, so the elision
        is unobservable.
        """
        ep = self._endpoint
        backend = self._backend
        rank = self.global_rank
        pending: dict[int, Request] = {}
        for r in requests:
            if r.owner._endpoint is not ep:
                self._check_request(r)
            if r.kind == "recv" and not r.done:
                pending[r.post_id] = r
        fulfilled: list[tuple[Request, Message]] = []
        if pending:
            describe = f"waitall({len(requests)} requests, ctx={self._ctx})"
            while pending:
                ready = backend.wait_any_post(rank, list(pending), describe)
                if len(ready) == 1:
                    post_id = ready[0]
                else:
                    candidates = [
                        (m.source, m.tag)
                        for m in (backend.peek_post(rank, pid) for pid in ready)
                    ]
                    post_id = ready[backend.choose_completion(rank, candidates)]
                fulfilled.append((pending.pop(post_id), backend.take_post(rank, post_id)))
        completed = 0
        observe_wait = _REQ_WAIT.observe
        for r in requests:
            if r.kind == "send" and not r.done:
                owner = r.owner
                oep = owner._endpoint
                pre = oep.clock
                finish = r.complete_at
                if finish > pre:
                    oep.clock = finish
                r.done = True
                completed += 1
                observe_wait(finish - pre if finish > pre else 0.0)
                if owner._tracer is not None:
                    owner._tracer.request(
                        owner.global_rank, oep.clock, "isend", "complete",
                        r.req_id, owner._to_global(r.peer), r.tag, r.nbytes,
                    )
        if len(fulfilled) > 1:
            fulfilled.sort(
                key=lambda pair: (pair[1].arrival, pair[1].source, pair[1].seq)
            )
        for r, msg in fulfilled:
            owner = r.owner
            oep = owner._endpoint
            pre = oep.clock
            arrival = msg.arrival
            costs = owner._cost_cache
            if costs is None or costs[0] is not owner.machine or costs[1] != owner.size:
                costs = owner._machine_costs()
            oep.clock = (arrival if arrival > pre else pre) + (
                costs[7] + costs[8] * msg.nbytes
            ) * costs[2]
            r.nbytes = msg.nbytes
            completed += 1
            observe_wait(arrival - pre if arrival > pre else 0.0)
            if owner._tracer is not None:
                owner._tracer.comm(
                    owner.global_rank, "recv", msg.source, msg.tag, msg.nbytes,
                    pre, oep.clock, arrival=arrival,
                )
                owner._tracer.request(
                    owner.global_rank, oep.clock, "irecv", "complete",
                    r.req_id, msg.source, msg.tag, msg.nbytes,
                )
            if owner._group is not None:
                msg = replace(msg, source=owner._to_local(msg.source))
            r.message = msg
            r.done = True
        if completed:
            _REQ_COMPLETED.inc(completed)
        return [r.payload if r.kind == "recv" else None for r in requests]

    def waitany(self, requests: list[Request]) -> tuple[int, Any]:
        """Complete exactly one incomplete request; returns (index, payload).

        Which request completes first is schedule-dependent (the fuzzer
        perturbs it), so — like a wildcard receive — the charge is applied
        at the observed completion rather than canonically.
        """
        for request in requests:
            self._check_request(request)
        incomplete = [(i, r) for i, r in enumerate(requests) if not r.done]
        if not incomplete:
            raise CommError("waitany requires at least one incomplete request")
        rank = self.global_rank
        ready = [
            (i, r)
            for i, r in incomplete
            if r.kind == "send" or self._backend.post_ready(rank, r.post_id)
        ]
        if not ready:
            describe = f"waitany({len(incomplete)} requests, ctx={self._ctx})"
            got = set(
                self._backend.wait_any_post(
                    rank, [r.post_id for _, r in incomplete], describe
                )
            )
            ready = [(i, r) for i, r in incomplete if r.post_id in got]
        candidates = []
        for _, r in ready:
            if r.kind == "send":
                candidates.append((self._to_global(r.peer), r.tag))
            else:
                m = self._backend.peek_post(rank, r.post_id)
                candidates.append((m.source, m.tag))
        pos = self._backend.choose_completion(rank, candidates)
        index, request = ready[pos]
        if request.kind == "send":
            self._complete_send(request)
            return index, None
        self._complete_recv(request, self._backend.take_post(rank, request.post_id))
        return index, request.payload

    def test(self, request: Request) -> bool:
        """True when *request* can complete without blocking the schedule.

        A true result means ``wait`` would not suspend the rank; it may
        still advance the virtual clock (the transfer finishing later in
        virtual time than "now" models post/wire pipelining).
        """
        self._check_request(request)
        if request.done:
            return True
        if request.kind == "send":
            return self.clock >= request.complete_at
        return self._backend.post_ready(self.global_rank, request.post_id)

    # -- exchange helper -------------------------------------------------------
    def sendrecv(
        self,
        dest: int | None,
        payload: Any,
        source: int | None,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any:
        """Send to *dest* and receive from *source* as one deadlock-free,
        overlapped exchange; returns the received payload.

        Either peer may be ``None`` to skip that direction (the boundary
        of a non-periodic shifted exchange), in which case a skipped
        receive returns ``None``.
        """
        recv_tag = send_tag if recv_tag is None else recv_tag
        if fastpath._enabled:
            return self._sendrecv_fast(dest, payload, source, send_tag, recv_tag)
        requests: list[Request] = []
        recv_req: Request | None = None
        if source is not None:
            recv_req = self.irecv(source, tag=recv_tag)
            requests.append(recv_req)
        if dest is not None:
            requests.append(self.isend(dest, payload, tag=send_tag))
        self.waitall(requests)
        return None if recv_req is None else recv_req.payload

    def _sendrecv_fast(
        self,
        dest: int | None,
        payload: Any,
        source: int | None,
        send_tag: int,
        recv_tag: int,
    ) -> Any:
        """The fast-path ``sendrecv`` body: ``irecv``/``isend``/``waitall``
        fused into one frame, with no :class:`Request` objects.

        Everything observable is reproduced bit-for-bit — validation
        order, payload detachment, clock charges (send completion first,
        then the receive), request-id allocation, metric totals, trace
        events, and the exact backend call sequence (post, deliver, one
        ``wait_any_post``).  ``choose_completion`` is skipped as in
        :meth:`_waitall_fast`: a single candidate always yields position
        0 with no side effects.
        """
        ep = self._endpoint
        backend = self._backend
        machine = self.machine
        rank = self.global_rank
        tracer = self._tracer
        costs = self._cost_cache
        if costs is None or costs[0] is not machine or costs[1] != self.size:
            costs = self._machine_costs()
        _, _, congestion, alpha, beta, send_a, send_b, recv_a, recv_b = costs
        nreq = 0
        post_id = None
        if source is not None:
            if source != ANY_SOURCE:
                self.check_peer(source)
            global_source = source if source == ANY_SOURCE else self._to_global(source)
            post_id = backend.post_receive(rank, global_source, recv_tag, self._ctx)
            recv_req_id = ep.next_req
            ep.next_req += 1
            nreq += 1
            if tracer is not None:
                tracer.request(
                    rank, ep.clock, "irecv", "post", recv_req_id,
                    global_source, recv_tag, 0,
                )
        send_arrival = None
        if dest is not None:
            self.check_peer(dest)
            self._validate_send_tag(send_tag)
            payload, nbytes = _freeze_measure(payload)
            nbytes += _OVERHEAD_BYTES
            start = ep.clock
            send_arrival = start + (alpha + beta * nbytes) * congestion
            ep.clock = start + (send_a + send_b * nbytes) * congestion
            ep.send_seq += 1
            global_dest = self._to_global(dest)
            backend.deliver(
                Message(
                    source=rank,
                    dest=global_dest,
                    tag=send_tag,
                    payload=payload,
                    nbytes=nbytes,
                    arrival=send_arrival,
                    seq=ep.send_seq,
                    ctx=self._ctx,
                )
            )
            send_req_id = ep.next_req
            ep.next_req += 1
            nreq += 1
            if tracer is not None:
                tracer.comm(
                    rank, "send", global_dest, send_tag, nbytes,
                    start, ep.clock, arrival=send_arrival,
                )
                tracer.request(
                    rank, ep.clock, "isend", "post", send_req_id,
                    global_dest, send_tag, nbytes,
                )
        _REQ_POSTED.inc(nreq)
        got = None
        if post_id is not None:
            ready = backend.wait_any_post(
                rank, [post_id], f"waitall({nreq} requests, ctx={self._ctx})"
            )
            got = backend.take_post(rank, ready[0])
        completed = 0
        if send_arrival is not None:
            pre = ep.clock
            if send_arrival > pre:
                ep.clock = send_arrival
            completed += 1
            _REQ_WAIT.observe(send_arrival - pre if send_arrival > pre else 0.0)
            if tracer is not None:
                tracer.request(
                    rank, ep.clock, "isend", "complete", send_req_id,
                    global_dest, send_tag, nbytes,
                )
        if got is not None:
            pre = ep.clock
            arrival = got.arrival
            ep.clock = (arrival if arrival > pre else pre) + (
                recv_a + recv_b * got.nbytes
            ) * congestion
            completed += 1
            _REQ_WAIT.observe(arrival - pre if arrival > pre else 0.0)
            if tracer is not None:
                tracer.comm(
                    rank, "recv", got.source, got.tag, got.nbytes,
                    pre, ep.clock, arrival=arrival,
                )
                tracer.request(
                    rank, ep.clock, "irecv", "complete", recv_req_id,
                    got.source, got.tag, got.nbytes,
                )
        _REQ_COMPLETED.inc(completed)
        return None if got is None else got.payload
