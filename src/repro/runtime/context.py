"""Per-rank execution context: point-to-point messaging and the virtual clock.

A :class:`RankContext` is what each rank's program body receives.  It knows
the rank/size, the machine model, and maintains the rank's virtual clock:

- ``charge(flops)`` advances the clock by the machine's compute time;
- ``send`` advances the sender's clock by the Hockney message cost
  ``alpha + beta * nbytes`` and stamps the message with its arrival time;
- ``recv`` advances the receiver's clock to at least the arrival time
  (waiting in virtual time exactly when the message was not yet there).

Clocks are pure functions of the communication pattern and the charged
work, so deterministic programs report identical virtual times regardless
of scheduling backend or host machine speed.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.errors import CommError
from repro.machines.model import MachineModel
from repro.runtime.message import ANY_SOURCE, ANY_TAG, Message
from repro.runtime.scheduler import Backend
from repro.trace.tracer import Tracer
from repro.util.nbytes import nbytes_of


def _copy_payload(payload: Any) -> Any:
    """Deep-copy a message payload (send-by-value semantics).

    Common cases are handled without the generic ``copy.deepcopy``
    machinery: immutable scalars pass through, ndarrays are copied
    contiguously, and containers recurse.
    """
    if payload is None or isinstance(
        payload, (bool, int, float, complex, str, bytes, frozenset)
    ):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, np.generic):
        return payload
    if isinstance(payload, tuple):
        return tuple(_copy_payload(item) for item in payload)
    if isinstance(payload, list):
        return [_copy_payload(item) for item in payload]
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return copy.deepcopy(payload)


@dataclass
class _Endpoint:
    """Per-rank state shared by every communicator view of the rank."""

    clock: float = 0.0
    send_seq: int = 0
    next_ctx: int = field(default=1)


class RankContext:
    """One rank's view of the virtual machine (possibly a group view)."""

    def __init__(
        self,
        rank: int,
        size: int,
        backend: Backend,
        machine: MachineModel,
        tracer: Tracer | None = None,
    ):
        #: this rank's id within this communicator, in ``[0, size)``
        self.rank = rank
        #: number of ranks in this communicator
        self.size = size
        self.machine = machine
        self._backend = backend
        self._tracer = tracer
        # Endpoint state shared by every communicator view of this rank
        # (sub-communicators created by split() alias the same node, so
        # virtual time and send ordering are per-rank, not per-group).
        self._endpoint = _Endpoint()
        #: communication context id; messages only match within a context
        self._ctx = 0
        #: member global ranks, or None for the world communicator
        self._group: list[int] | None = None

    # -- group plumbing -------------------------------------------------------
    @property
    def clock(self) -> float:
        """Virtual time on this rank, in seconds (shared across groups)."""
        return self._endpoint.clock

    @clock.setter
    def clock(self, value: float) -> None:
        self._endpoint.clock = value

    @property
    def global_rank(self) -> int:
        """This rank's id in the world communicator."""
        return self.rank if self._group is None else self._group[self.rank]

    def _to_global(self, rank: int) -> int:
        return rank if self._group is None else self._group[rank]

    def _to_local(self, global_rank: int) -> int:
        return global_rank if self._group is None else self._group.index(global_rank)

    # -- queries -----------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankContext rank={self.rank}/{self.size} t={self.clock:.6g}s>"

    @property
    def is_root(self) -> bool:
        """True on rank 0 (the conventional master for degenerate phases)."""
        return self.rank == 0

    def check_peer(self, peer: int) -> None:
        """Validate a peer rank id."""
        if not 0 <= peer < self.size:
            raise CommError(
                f"rank {peer} out of range for a {self.size}-rank computation"
            )

    # -- compute accounting --------------------------------------------------
    def charge(
        self,
        flops: float,
        label: str = "",
        working_set_bytes: float | None = None,
    ) -> None:
        """Account *flops* of useful work to this rank's virtual clock.

        Applications call this with analytic work terms (e.g. ``n * log2(n)``
        comparisons for a sort); the machine model converts work to time,
        applying a paging penalty when ``working_set_bytes`` exceeds node
        memory.
        """
        start = self.clock
        self.clock += self.machine.compute_time(flops, working_set_bytes)
        if self._tracer is not None:
            self._tracer.compute(self.rank, flops, label, start, self.clock)

    def advance(self, seconds: float) -> None:
        """Advance the virtual clock by a raw time amount (rarely needed)."""
        if seconds < 0:
            raise CommError(f"cannot advance clock by negative time {seconds}")
        self.clock += seconds

    # -- point-to-point ------------------------------------------------------
    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Send *payload* to rank *dest* with the given *tag*.

        Buffered semantics: the call deposits the message and returns; the
        sender's clock pays the full transfer cost (store-and-forward
        model) and the message becomes visible to the receiver at the
        sender's post-send clock.

        The payload is copied at send time.  Ranks share one address
        space here, but the modelled machine has distributed memory: a
        sender mutating its buffer after the send must never affect the
        receiver (nor may a receiver's mutation reach back).  NumPy views
        are especially hazardous without this — a contiguous slab of a
        local array "sent" by reference would deliver whatever the array
        holds when the receiver is finally scheduled.
        """
        self.check_peer(dest)
        if tag < 0:
            raise CommError(f"tags must be >= 0 (got {tag}); negatives are wildcards")
        payload = _copy_payload(payload)
        nbytes = nbytes_of(payload)
        start = self.clock
        self.clock += self.machine.message_time(nbytes, nodes=self.size)
        self._endpoint.send_seq += 1
        msg = Message(
            source=self.global_rank,
            dest=self._to_global(dest),
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            arrival=self.clock,
            seq=self._endpoint.send_seq,
            ctx=self._ctx,
        )
        self._backend.deliver(msg)
        if self._tracer is not None:
            self._tracer.comm(
                self.global_rank, "send", msg.dest, tag, nbytes, start, self.clock
            )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Receive and return the payload of a matching message (blocking)."""
        return self.recv_msg(source, tag).payload

    def recv_msg(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message:
        """Receive a matching message, returning the full envelope.

        The returned envelope's ``source`` is expressed in this
        communicator's (local) rank numbering.
        """
        if source != ANY_SOURCE:
            self.check_peer(source)
        start = self.clock
        describe = (
            f"recv(source={'ANY' if source == ANY_SOURCE else source}, "
            f"tag={'ANY' if tag == ANY_TAG else tag}, ctx={self._ctx})"
        )
        global_source = source if source == ANY_SOURCE else self._to_global(source)
        msg = self._backend.wait_for_match(
            self.global_rank, global_source, tag, self._ctx, describe
        )
        self.clock = max(self.clock, msg.arrival)
        self.clock += self.machine.recv_overhead(msg.nbytes, nodes=self.size)
        if self._tracer is not None:
            self._tracer.comm(
                self.global_rank,
                "recv",
                msg.source,
                msg.tag,
                msg.nbytes,
                start,
                self.clock,
            )
        if self._group is not None:
            msg = replace(msg, source=self._to_local(msg.source))
        return msg

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is already waiting (non-blocking)."""
        global_source = source if source == ANY_SOURCE else self._to_global(source)
        return self._backend.mailboxes[self.global_rank].has_match(
            global_source, tag, self._ctx
        )

    # -- exchange helper -------------------------------------------------------
    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: int,
        send_tag: int = 0,
        recv_tag: int | None = None,
    ) -> Any:
        """Send to *dest* and receive from *source* (deadlock-free because
        sends are buffered)."""
        self.send(dest, payload, tag=send_tag)
        return self.recv(source, tag=send_tag if recv_tag is None else recv_tag)
