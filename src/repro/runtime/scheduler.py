"""Backends: deterministic run-to-block scheduling and free-running threads.

Both backends expose the same two operations to the communication layer:

- ``deliver(msg)`` — place a message in the destination rank's mailbox and
  wake anyone waiting for it;
- ``wait_for_match(rank, source, tag, describe)`` — block the calling rank
  until a matching message is available, then remove and return it.

The deterministic backend runs exactly one rank at a time and always picks
the lowest-numbered runnable rank, so executions are reproducible and a
global block is detected immediately and reported as a
:class:`~repro.errors.DeadlockError` naming what each rank was waiting for.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from enum import Enum

from repro.errors import DeadlockError, RankFailedError
from repro.runtime.mailbox import Mailbox
from repro.runtime.message import Message


class _Aborted(BaseException):
    """Internal: unwind a rank thread after another rank failed.

    Derives from BaseException so application-level ``except Exception``
    handlers cannot swallow the unwind.
    """


class _Status(Enum):
    READY = "ready"  # thread created, body not yet started
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class Backend:
    """Interface shared by the two scheduling backends."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.mailboxes = [Mailbox() for _ in range(nprocs)]
        self._clock_of: Callable[[int], float] = lambda rank: 0.0

    def set_clock_source(self, clock_of: Callable[[int], float]) -> None:
        """Install the per-rank virtual-clock accessor (used by the
        deterministic backend to schedule in virtual-time order)."""
        self._clock_of = clock_of

    def deliver(self, msg: Message) -> None:
        raise NotImplementedError

    def wait_for_match(
        self, rank: int, source: int, tag: int, ctx: int, describe: str
    ) -> Message:
        raise NotImplementedError

    def run(self, bodies: list[Callable[[], None]]) -> None:
        """Execute one body per rank to completion; raise on failure."""
        raise NotImplementedError


class DeterministicBackend(Backend):
    """Run-to-block scheduling: one rank at a time, lowest runnable first."""

    def __init__(self, nprocs: int):
        super().__init__(nprocs)
        self._status = [_Status.READY] * nprocs
        self._predicate: list[Callable[[], bool] | None] = [None] * nprocs
        self._describe = [""] * nprocs
        self._resume = [threading.Event() for _ in range(nprocs)]
        self._to_scheduler = threading.Event()
        self._abort = False
        self._failures: dict[int, BaseException] = {}

    # -- transport --------------------------------------------------------
    def deliver(self, msg: Message) -> None:
        # Only the single running rank mutates mailboxes, so no locking.
        self.mailboxes[msg.dest].put(msg)

    def wait_for_match(
        self, rank: int, source: int, tag: int, ctx: int, describe: str
    ) -> Message:
        mailbox = self.mailboxes[rank]
        msg = mailbox.take_match(source, tag, ctx)
        if msg is not None:
            return msg
        self._block(rank, lambda: mailbox.has_match(source, tag, ctx), describe)
        msg = mailbox.take_match(source, tag, ctx)
        assert msg is not None, "scheduler resumed rank without a matching message"
        return msg

    def _block(self, rank: int, predicate: Callable[[], bool], describe: str) -> None:
        if self._abort:
            raise _Aborted()
        self._predicate[rank] = predicate
        self._describe[rank] = describe
        self._status[rank] = _Status.BLOCKED
        self._to_scheduler.set()
        self._resume[rank].wait()
        self._resume[rank].clear()
        if self._abort:
            raise _Aborted()

    # -- scheduling loop ---------------------------------------------------
    def run(self, bodies: list[Callable[[], None]]) -> None:
        threads = [
            threading.Thread(
                target=self._rank_main,
                args=(rank, bodies[rank]),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(self.nprocs)
        ]
        for t in threads:
            t.start()
        try:
            while True:
                nxt = self._pick_next()
                if nxt is None:
                    if all(s in (_Status.DONE, _Status.FAILED) for s in self._status):
                        break
                    if self._failures:
                        break
                    self._abort_all(threads)
                    waiting = {
                        r: self._describe[r]
                        for r in range(self.nprocs)
                        if self._status[r] == _Status.BLOCKED
                    }
                    detail = "; ".join(f"rank {r}: {d}" for r, d in waiting.items())
                    raise DeadlockError(
                        f"no rank can make progress ({detail})", waiting=waiting
                    )
                self._status[nxt] = _Status.RUNNING
                self._to_scheduler.clear()
                self._resume[nxt].set()
                self._to_scheduler.wait()
        finally:
            if self._failures or any(s == _Status.BLOCKED for s in self._status):
                self._abort_all(threads)
            for t in threads:
                t.join(timeout=10.0)
        if self._failures:
            rank = min(self._failures)
            raise RankFailedError(rank, self._failures[rank]) from self._failures[rank]

    def _pick_next(self) -> int | None:
        """The runnable rank furthest behind in virtual time.

        Scheduling in virtual-time order makes the backend a conservative
        discrete-event simulation: wall-clock interleaving tracks the
        modelled machine's timeline, so wildcard receives observe the
        message population a real run would have had.  Ties break by
        rank, keeping execution fully deterministic.
        """
        best: int | None = None
        best_clock = 0.0
        for rank in range(self.nprocs):
            status = self._status[rank]
            runnable = status == _Status.READY
            if status == _Status.BLOCKED:
                predicate = self._predicate[rank]
                runnable = predicate is not None and predicate()
            if runnable:
                clock = self._clock_of(rank)
                if best is None or clock < best_clock:
                    best, best_clock = rank, clock
        return best

    def _rank_main(self, rank: int, body: Callable[[], None]) -> None:
        self._resume[rank].wait()
        self._resume[rank].clear()
        try:
            if not self._abort:
                body()
            self._status[rank] = _Status.DONE
        except _Aborted:
            self._status[rank] = _Status.DONE
        except BaseException as exc:  # noqa: BLE001 - reported via RankFailedError
            self._failures[rank] = exc
            self._status[rank] = _Status.FAILED
        finally:
            self._to_scheduler.set()

    def _abort_all(self, threads: list[threading.Thread]) -> None:
        self._abort = True
        for event in self._resume:
            event.set()


class ThreadedBackend(Backend):
    """Free-running threads with condition-variable mailboxes.

    ``deadlock_timeout`` bounds how long a receive may wait without any
    message arriving for it before the run is declared deadlocked.
    """

    def __init__(self, nprocs: int, deadlock_timeout: float = 30.0):
        super().__init__(nprocs)
        self.deadlock_timeout = deadlock_timeout
        self._locks = [threading.Lock() for _ in range(nprocs)]
        self._conds = [threading.Condition(self._locks[i]) for i in range(nprocs)]
        self._failed = threading.Event()
        self._failures: dict[int, BaseException] = {}

    def deliver(self, msg: Message) -> None:
        cond = self._conds[msg.dest]
        with cond:
            self.mailboxes[msg.dest].put(msg)
            cond.notify_all()

    def wait_for_match(
        self, rank: int, source: int, tag: int, ctx: int, describe: str
    ) -> Message:
        cond = self._conds[rank]
        mailbox = self.mailboxes[rank]
        with cond:
            waited = 0.0
            step = 0.1
            while True:
                msg = mailbox.take_match(source, tag, ctx)
                if msg is not None:
                    return msg
                if self._failed.is_set():
                    raise _Aborted()
                if waited >= self.deadlock_timeout:
                    raise DeadlockError(
                        f"rank {rank} waited {waited:.1f}s for {describe}; "
                        "presumed deadlock",
                        waiting={rank: describe},
                    )
                cond.wait(step)
                waited += step

    def run(self, bodies: list[Callable[[], None]]) -> None:
        threads = [
            threading.Thread(
                target=self._rank_main,
                args=(rank, bodies[rank]),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(self.nprocs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if self._failures:
            rank = min(self._failures)
            exc = self._failures[rank]
            if isinstance(exc, DeadlockError):
                raise exc
            raise RankFailedError(rank, exc) from exc

    def _rank_main(self, rank: int, body: Callable[[], None]) -> None:
        try:
            body()
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported via RankFailedError
            self._failures[rank] = exc
            self._failed.set()
            # Wake every waiting rank so the run can unwind.
            for cond in self._conds:
                with cond:
                    cond.notify_all()
