"""Backends: deterministic, fuzzed, and free-running thread scheduling.

All backends expose the same two operations to the communication layer:

- ``deliver(msg)`` — place a message in the destination rank's mailbox and
  wake anyone waiting for it;
- ``wait_for_match(rank, source, tag, describe)`` — block the calling rank
  until a matching message is available, then remove and return it.

The deterministic backend runs exactly one rank at a time and always picks
the runnable rank furthest behind in virtual time (ties by rank id), so
executions are reproducible and a global block is detected immediately and
reported as a :class:`~repro.errors.DeadlockError` naming what each rank
was waiting for.

The fuzzed backend (:class:`FuzzedBackend`) keeps the run-to-block
machinery but drives every scheduling decision from a seeded PRNG, so each
seed is a distinct — yet fully reproducible — legal interleaving.  It can
also perturb which message a *wildcard* receive matches and inject faults
(message delay/reordering, rank crashes) from a :class:`FaultPlan`.  The
verification layer (:mod:`repro.verify`) builds on it.
"""

from __future__ import annotations

import heapq
import random
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from enum import Enum

from repro import fastpath
from repro.errors import DeadlockError, InjectedFaultError, RankFailedError
from repro.obs.metrics import counter_handle
from repro.runtime.mailbox import Mailbox
from repro.runtime.message import ANY_SOURCE, ANY_TAG, Message

_STEPS = counter_handle(
    "runtime.scheduler.steps", help="run-to-block scheduling decisions"
)
_BLOCKS = counter_handle(
    "runtime.scheduler.blocks", help="ranks suspended awaiting a message"
)
_DEADLOCKS = counter_handle(
    "runtime.scheduler.deadlocks", help="runs aborted as deadlocked"
)


class _Aborted(BaseException):
    """Internal: unwind a rank thread after another rank failed.

    Derives from BaseException so application-level ``except Exception``
    handlers cannot swallow the unwind.
    """


class _Status(Enum):
    READY = "ready"  # thread created, body not yet started
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


@dataclass(frozen=True)
class FaultPlan:
    """Faults for a :class:`FuzzedBackend` to inject, seeded by its PRNG.

    Attributes
    ----------
    delay_prob:
        Probability that a delivered message is held back for a random
        number of scheduler steps before it reaches the destination
        mailbox.  Delays are per-(source, dest) FIFO, so MPI's
        non-overtaking guarantee is preserved: a delayed message also
        delays every later message on the same channel.  Cross-channel
        delivery *is* reordered, which is exactly the legal nondeterminism
        wildcard receives are exposed to.
    max_delay_steps:
        Upper bound (inclusive lower bound is 1) on the number of
        scheduler steps a delayed message is held.
    crash_rank:
        Rank to crash, or ``None`` for no crash.
    crash_at_step:
        Scheduler step count at (or after) which the crash fires.  The
        rank raises :class:`~repro.errors.InjectedFaultError` at its next
        communication point, which surfaces as a
        :class:`~repro.errors.RankFailedError` naming the rank — never as
        a hang.
    """

    delay_prob: float = 0.0
    max_delay_steps: int = 4
    crash_rank: int | None = None
    crash_at_step: int = 0


class Backend:
    """Interface shared by the scheduling backends."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.mailboxes = [Mailbox() for _ in range(nprocs)]
        self._clock_of: Callable[[int], float] = lambda rank: 0.0
        #: optional tracer installed by the runner; backends that make
        #: scheduling-relevant matching decisions (the fuzzed backend's
        #: wildcard perturbation) record them here when present
        self.tracer = None

    def set_clock_source(self, clock_of: Callable[[int], float]) -> None:
        """Install the per-rank virtual-clock accessor.

        Contract: only the run-to-block backends consult this accessor.
        :class:`DeterministicBackend` reads it on every scheduling decision
        to run ranks in virtual-time order, and :class:`FuzzedBackend`
        reads it to timestamp its schedule log and match events.
        :class:`ThreadedBackend` **ignores it entirely** — free-running OS
        threads interleave in wall-clock order, so virtual-time ordering
        applies only to deterministic/fuzzed executions.  (Virtual clocks
        themselves are still maintained by the contexts and remain correct
        on every backend; only *scheduling* order is affected.)
        """
        self._clock_of = clock_of

    def deliver(self, msg: Message) -> None:
        raise NotImplementedError

    def wait_for_match(
        self, rank: int, source: int, tag: int, ctx: int, describe: str
    ) -> Message:
        raise NotImplementedError

    def probe_match(self, rank: int, source: int, tag: int, ctx: int) -> bool:
        """Non-blocking: is a matching message available to *rank* now?

        Backends with out-of-band transport (the process-parallel backend's
        delivery queues) override this to ingest pending deliveries before
        consulting the mailbox.
        """
        return self.mailboxes[rank].has_match(source, tag, ctx)

    # -- posted receives (the nonblocking layer) --------------------------
    # The run-to-block backends mutate mailboxes only from the single
    # running rank, so the base implementations need no locking; the
    # threaded backend overrides them to serialise under the destination
    # rank's condition lock.
    def post_receive(self, rank: int, source: int, tag: int, ctx: int) -> int:
        """Post a receive pattern on *rank*'s mailbox; returns a post id."""
        return self.mailboxes[rank].post(source, tag, ctx)

    def post_ready(self, rank: int, post_id: int) -> bool:
        """True when the posted receive has a message bound (non-blocking)."""
        return self.mailboxes[rank].post_ready(post_id)

    def take_post(self, rank: int, post_id: int) -> Message:
        """Remove a fulfilled posted receive and return its message."""
        return self.mailboxes[rank].take_post(post_id)

    def peek_post(self, rank: int, post_id: int) -> Message:
        """The message bound to a fulfilled posted receive (not removed)."""
        return self.mailboxes[rank].peek_post(post_id)

    def wait_any_post(self, rank: int, post_ids: list[int], describe: str) -> list[int]:
        """Block *rank* until at least one of its posted receives is
        fulfilled; returns the fulfilled subset in post order."""
        raise NotImplementedError

    def choose_completion(self, rank: int, candidates: list[tuple[int, int]]) -> int:
        """Pick which of several simultaneously-completable requests a
        ``waitany``/``waitall`` observes first.

        *candidates* is the canonical-order list of ``(source, tag)``
        pairs; the return value is a position in it.  The default (and
        the deterministic/threaded behaviour) is the first — virtual
        clocks are charged canonically regardless, so this choice only
        affects observation order.  The fuzzed backend randomises it and
        records a completion :class:`~repro.trace.events.MatchEvent`.
        """
        return 0

    def run(self, bodies: list[Callable[[], None]]) -> None:
        """Execute one body per rank to completion; raise on failure."""
        raise NotImplementedError


class DeterministicBackend(Backend):
    """Run-to-block scheduling: one rank at a time, lowest runnable first.

    With the fast path on (:mod:`repro.fastpath`, captured at
    construction), scheduling decisions come from a clock-keyed heap of
    *wakeable* ranks maintained at the moments runnability can actually
    change — a rank blocking, or a delivery fulfilling a blocked rank's
    predicate — so a pick is O(log P) instead of the naive O(P) scan
    that re-evaluated every blocked rank's predicate on every step.
    Runnability is monotone while a rank is blocked (only the owner
    removes messages from its mailbox), so deferring predicate
    evaluation to delivery time selects exactly the same rank sequence.
    """

    def __init__(self, nprocs: int):
        super().__init__(nprocs)
        self._status = [_Status.READY] * nprocs
        self._predicate: list[Callable[[], bool] | None] = [None] * nprocs
        self._describe = [""] * nprocs
        self._resume = [threading.Event() for _ in range(nprocs)]
        self._to_scheduler = threading.Event()
        self._abort = False
        self._failures: dict[int, BaseException] = {}
        self._fast = fastpath.enabled()
        #: ranks currently believed runnable (fast path bookkeeping)
        self._wakeable: set[int] = set()
        #: (clock, rank) entries for wakeable ranks; lazily invalidated
        self._heap: list[tuple[float, int]] = []

    # -- fast-path wake bookkeeping ---------------------------------------
    def _wake(self, rank: int) -> None:
        """Mark *rank* runnable (it is READY, or its predicate holds)."""
        if rank in self._wakeable:
            return
        self._wakeable.add(rank)
        heapq.heappush(self._heap, (self._clock_of(rank), rank))

    def _wake_if_unblocked(self, rank: int) -> None:
        """Wake a blocked rank whose wait was just satisfied by a delivery."""
        if self._status[rank] == _Status.BLOCKED and rank not in self._wakeable:
            predicate = self._predicate[rank]
            if predicate is not None and predicate():
                self._wake(rank)

    def _deposit(self, msg: Message) -> None:
        """Put *msg* in its destination mailbox and update wakeability."""
        self.mailboxes[msg.dest].put(msg)
        if self._fast:
            self._wake_if_unblocked(msg.dest)

    def _handoff(self, rank: int | None) -> bool:
        """Hand the CPU directly to the next runnable rank (fast path).

        Run-to-block has exactly one active thread, so the thread giving
        up the CPU can run the pick itself and resume its successor in
        one context switch, instead of two via the scheduler thread.
        The pick logic is byte-identical; only which thread executes it
        changes.  Returns True when *rank* picked itself (wait already
        satisfiable): the caller keeps running, zero switches.  With no
        runnable rank, wakes the scheduler thread, which owns run
        completion, failure unwinding, and deadlock reporting.
        """
        if self._abort:
            # Unwinding: several aborted rank threads reach here at once;
            # nothing is runnable, so don't touch the shared heap.
            self._to_scheduler.set()
            return False
        nxt = self._pick_next()
        if nxt is None:
            self._to_scheduler.set()
            return False
        _STEPS.inc()
        self._status[nxt] = _Status.RUNNING
        if nxt == rank:
            return True
        self._resume[nxt].set()
        return False

    # -- transport --------------------------------------------------------
    def deliver(self, msg: Message) -> None:
        # Only the single running rank mutates mailboxes, so no locking.
        self._deposit(msg)

    def wait_for_match(
        self, rank: int, source: int, tag: int, ctx: int, describe: str
    ) -> Message:
        mailbox = self.mailboxes[rank]
        msg = mailbox.take_match(source, tag, ctx)
        if msg is not None:
            return msg
        self._block(rank, lambda: mailbox.has_match(source, tag, ctx), describe)
        msg = mailbox.take_match(source, tag, ctx)
        assert msg is not None, "scheduler resumed rank without a matching message"
        return msg

    def wait_any_post(self, rank: int, post_ids: list[int], describe: str) -> list[int]:
        mailbox = self.mailboxes[rank]
        ready = [p for p in post_ids if mailbox.post_ready(p)]
        if ready:
            return ready
        if len(post_ids) == 1:
            # One post: the predicate needs no any()/generator machinery.
            # It is re-evaluated on every delivery to this rank while
            # blocked, so the flat closure is worth having.
            post_id = post_ids[0]
            self._block(rank, lambda: mailbox.post_ready(post_id), describe)
        else:
            self._block(
                rank, lambda: any(mailbox.post_ready(p) for p in post_ids), describe
            )
        ready = [p for p in post_ids if mailbox.post_ready(p)]
        assert ready, "scheduler resumed rank without a fulfilled posted receive"
        return ready

    def _block(self, rank: int, predicate: Callable[[], bool], describe: str) -> None:
        if self._abort:
            raise _Aborted()
        _BLOCKS.inc()
        self._predicate[rank] = predicate
        self._describe[rank] = describe
        self._status[rank] = _Status.BLOCKED
        # Callers only block after failing to satisfy the wait directly,
        # so the predicate is false here; re-checking before handing
        # control back keeps the wakeable invariant robust even if a
        # future caller blocks with an already-satisfiable wait.  Must
        # happen before the handoff: picking reads the heap.
        if self._fast:
            if predicate():
                self._wake(rank)
            if self._handoff(rank):
                return  # picked ourselves again: no switch needed
        else:
            self._to_scheduler.set()
        self._resume[rank].wait()
        self._resume[rank].clear()
        if self._abort:
            raise _Aborted()

    # -- scheduling loop ---------------------------------------------------
    def run(self, bodies: list[Callable[[], None]]) -> None:
        threads = [
            threading.Thread(
                target=self._rank_main,
                args=(rank, bodies[rank]),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(self.nprocs)
        ]
        for t in threads:
            t.start()
        try:
            if self._fast:
                self._run_fast(threads)
            else:
                self._run_scan(threads)
        finally:
            if self._failures or any(s == _Status.BLOCKED for s in self._status):
                self._abort_all(threads)
            for t in threads:
                t.join(timeout=10.0)
        if self._failures:
            rank = min(self._failures)
            raise RankFailedError(rank, self._failures[rank]) from self._failures[rank]

    def _run_scan(self, threads: list[threading.Thread]) -> None:
        """The historical scheduling loop: every pick runs on the
        scheduler thread, two context switches per handoff."""
        while True:
            nxt = self._pick_next()
            if nxt is None:
                if all(s in (_Status.DONE, _Status.FAILED) for s in self._status):
                    return
                if self._failures:
                    return
                self._raise_deadlock(threads)
            _STEPS.inc()
            self._status[nxt] = _Status.RUNNING
            self._to_scheduler.clear()
            self._resume[nxt].set()
            self._to_scheduler.wait()

    def _run_fast(self, threads: list[threading.Thread]) -> None:
        """Fast scheduling loop: ranks hand off to each other directly
        (:meth:`_handoff`); this thread sleeps until a handoff finds no
        runnable rank, then decides completion / failure / deadlock.
        The pick sequence is identical to :meth:`_run_scan`'s."""
        for rank in range(self.nprocs):
            self._wake(rank)
        self._handoff(None)  # kick the first rank
        while True:
            self._to_scheduler.wait()
            self._to_scheduler.clear()
            nxt = self._pick_next()
            if nxt is not None:
                # A terminal signal raced a wake; resume and keep going.
                _STEPS.inc()
                self._status[nxt] = _Status.RUNNING
                self._resume[nxt].set()
                continue
            if all(s in (_Status.DONE, _Status.FAILED) for s in self._status):
                return
            if self._failures:
                return
            self._raise_deadlock(threads)

    def _raise_deadlock(self, threads: list[threading.Thread]) -> None:
        self._abort_all(threads)
        waiting = {
            r: self._describe[r]
            for r in range(self.nprocs)
            if self._status[r] == _Status.BLOCKED
        }
        detail = "; ".join(f"rank {r}: {d}" for r, d in waiting.items())
        _DEADLOCKS.inc()
        raise DeadlockError(f"no rank can make progress ({detail})", waiting=waiting)

    def _pick_next(self) -> int | None:
        """The runnable rank furthest behind in virtual time.

        Scheduling in virtual-time order makes the backend a conservative
        discrete-event simulation: wall-clock interleaving tracks the
        modelled machine's timeline, so wildcard receives observe the
        message population a real run would have had.  Ties break by
        rank, keeping execution fully deterministic.

        Fast path: pop the heap of wakeable ranks.  A wakeable rank's
        clock cannot have moved since it was pushed (blocked ranks do not
        advance their clocks), so the heap's (clock, rank) order is the
        same min-clock lowest-rank selection the O(P) scan makes.
        """
        if not self._fast:
            best: int | None = None
            best_clock = 0.0
            for rank in range(self.nprocs):
                if self._is_runnable(rank):
                    clock = self._clock_of(rank)
                    if best is None or clock < best_clock:
                        best, best_clock = rank, clock
            return best
        heap = self._heap
        while heap:
            _, rank = heapq.heappop(heap)
            if rank not in self._wakeable:
                continue  # lazily invalidated entry
            self._wakeable.discard(rank)
            if self._is_runnable(rank):
                return rank
        return None

    def _is_runnable(self, rank: int) -> bool:
        status = self._status[rank]
        if status == _Status.READY:
            return True
        if status == _Status.BLOCKED:
            predicate = self._predicate[rank]
            return predicate is not None and predicate()
        return False

    def _rank_main(self, rank: int, body: Callable[[], None]) -> None:
        self._resume[rank].wait()
        self._resume[rank].clear()
        try:
            if not self._abort:
                body()
            self._status[rank] = _Status.DONE
        except _Aborted:
            self._status[rank] = _Status.DONE
        except BaseException as exc:  # noqa: BLE001 - reported via RankFailedError
            self._failures[rank] = exc
            self._status[rank] = _Status.FAILED
        finally:
            if self._fast:
                # Hand off to the next rank directly (or wake the
                # scheduler thread for terminal handling).
                self._handoff(None)
            else:
                self._to_scheduler.set()

    def _abort_all(self, threads: list[threading.Thread]) -> None:
        self._abort = True
        for event in self._resume:
            event.set()


class FuzzedBackend(DeterministicBackend):
    """Schedule fuzzing: seeded-PRNG run-to-block scheduling.

    Every scheduling step picks a *uniformly random* runnable rank from a
    ``random.Random(seed)`` stream instead of the virtual-time-ordered
    choice, so each seed explores a distinct legal interleaving while the
    whole execution stays exactly reproducible: same seed ⇒ same
    scheduling decisions ⇒ same mailbox states ⇒ same results and traces.

    With ``perturb_matching`` (default on), a *wildcard* receive that has
    several legal candidate messages pending takes a random one instead of
    the earliest-arriving one.  Only choices a real machine could make are
    explored: per-source candidates are restricted to the oldest matching
    message from that source, preserving the non-overtaking guarantee.
    Each perturbed match is recorded as a
    :class:`~repro.trace.events.MatchEvent` when a tracer is installed,
    which is what the wildcard-race detector consumes.

    A :class:`FaultPlan` adds message delay/reordering and rank crashes on
    top of the random schedule.  Delayed messages are invisible to the
    destination until released; the scheduler releases them eagerly when
    no rank could otherwise run, so fault injection never manufactures a
    false deadlock.
    """

    def __init__(
        self,
        nprocs: int,
        seed: int = 0,
        perturb_matching: bool = True,
        faults: FaultPlan | None = None,
    ):
        super().__init__(nprocs)
        self.seed = seed
        self.perturb_matching = perturb_matching
        self.faults = faults
        self._rng = random.Random(seed)
        #: scheduling decisions: one (rank, virtual clock at pick time)
        #: pair per step — the replay/reproducibility log
        self.schedule_log: list[tuple[int, float]] = []
        self._step = 0
        # (source, dest) -> FIFO of (release_step, msg) still in flight
        self._delayed: dict[tuple[int, int], list[tuple[int, Message]]] = {}
        self._crashed: set[int] = set()

    def _wake(self, rank: int) -> None:
        # The fuzzed pick draws from the wakeable *set*; the heap the
        # deterministic pick pops is never consulted, so skip pushing it.
        self._wakeable.add(rank)

    # -- transport --------------------------------------------------------
    def deliver(self, msg: Message) -> None:
        plan = self.faults
        if plan is not None and plan.delay_prob > 0.0:
            key = (msg.source, msg.dest)
            queue = self._delayed.get(key)
            # A later message on a channel with a delayed predecessor must
            # queue behind it (non-overtaking), even if it rolled "no delay".
            if queue or self._rng.random() < plan.delay_prob:
                release = self._step + 1 + self._rng.randrange(
                    max(1, plan.max_delay_steps)
                )
                if queue:
                    release = max(release, queue[-1][0])
                self._delayed.setdefault(key, []).append((release, msg))
                return
        self._deposit(msg)

    def wait_for_match(
        self, rank: int, source: int, tag: int, ctx: int, describe: str
    ) -> Message:
        self._check_crash(rank)
        mailbox = self.mailboxes[rank]
        msg = self._take_match(rank, source, tag, ctx)
        if msg is not None:
            return msg
        self._block(rank, lambda: mailbox.has_match(source, tag, ctx), describe)
        msg = self._take_match(rank, source, tag, ctx)
        assert msg is not None, "scheduler resumed rank without a matching message"
        return msg

    def _take_match(self, rank: int, source: int, tag: int, ctx: int) -> Message | None:
        """Take a matching message, randomising *legal* wildcard choices.

        For a wildcard receive, any source's oldest matching message is a
        legal match; picking among them at random is exactly the freedom a
        real network's arrival order has.  Non-wildcard receives (and the
        per-source ordering inside a wildcard) stay canonical.
        """
        mailbox = self.mailboxes[rank]
        indices = mailbox.match_indices(source, tag, ctx)
        if not indices:
            return None
        wildcard = source == ANY_SOURCE or tag == ANY_TAG
        # Oldest legal candidate per source (non-overtaking).
        per_source: dict[int, int] = {}
        for i in indices:
            m = mailbox.peek_at(i)
            best = per_source.get(m.source)
            if best is None or m.seq < mailbox.peek_at(best).seq:
                per_source[m.source] = i
        candidates = sorted(per_source)
        if wildcard and self.perturb_matching and len(candidates) > 1:
            chosen = mailbox.take_at(per_source[self._rng.choice(candidates)])
        else:
            chosen = mailbox.take_match(source, tag, ctx)
        if wildcard and self.tracer is not None:
            clock = self._clock_of(rank)
            self.tracer.match(
                rank=rank,
                clock=clock,
                source=chosen.source,
                tag=chosen.tag,
                wildcard_source=source == ANY_SOURCE,
                wildcard_tag=tag == ANY_TAG,
                candidates=tuple(candidates),
            )
        return chosen

    def wait_any_post(self, rank: int, post_ids: list[int], describe: str) -> list[int]:
        self._check_crash(rank)
        return super().wait_any_post(rank, post_ids, describe)

    def choose_completion(self, rank: int, candidates: list[tuple[int, int]]) -> int:
        """Randomise which fulfilled request a wait observes first.

        Any completion order among simultaneously-fulfilled requests is
        legal on a real machine; exploring them perturbs the scheduler
        interleaving that follows (the rank re-blocks on the remaining
        requests after each observation).  Each perturbed choice is
        recorded as a completion :class:`~repro.trace.events.MatchEvent`
        so the verification layer can report completion-order
        nondeterminism alongside wildcard races.
        """
        if len(candidates) <= 1 or not self.perturb_matching:
            return 0
        pos = self._rng.randrange(len(candidates))
        if self.tracer is not None:
            source, tag = candidates[pos]
            self.tracer.match(
                rank=rank,
                clock=self._clock_of(rank),
                source=source,
                tag=tag,
                wildcard_source=False,
                wildcard_tag=False,
                candidates=tuple(sorted({src for src, _ in candidates})),
                completion=True,
            )
        return pos

    # -- scheduling -------------------------------------------------------
    def _pick_next(self) -> int | None:
        self._step += 1
        self._flush_delayed()
        runnable = self._runnable_ranks()
        while not runnable and self._force_release_delayed():
            runnable = self._runnable_ranks()
        if not runnable and self._crash_scheduled():
            # Everyone is blocked but a crash is still due in the future:
            # let the idle time pass so the fault (not a spurious deadlock)
            # resolves the wait.
            self._step = max(self._step, self.faults.crash_at_step)
            runnable = self._runnable_ranks()
        if not runnable:
            return None
        choice = self._rng.choice(runnable)
        self._wakeable.discard(choice)
        self.schedule_log.append((choice, self._clock_of(choice)))
        return choice

    def _runnable_ranks(self) -> list[int]:
        # A blocked rank whose crash is due counts as runnable so it can be
        # scheduled once more and raise, instead of hanging forever on a
        # receive that will never be satisfied.
        if self._fast:
            # The wakeable set is exactly {READY or predicate-true BLOCKED}
            # (monotone runnability, maintained at deposit/block time), so
            # sorting it reproduces the ascending list the O(P) scan
            # builds — the rng.choice stream is bit-identical.
            ranks = set(self._wakeable)
            plan = self.faults
            if plan is not None and plan.crash_rank is not None:
                crash_rank = plan.crash_rank
                if self._status[crash_rank] == _Status.BLOCKED and self._crash_due(
                    crash_rank
                ):
                    ranks.add(crash_rank)
            return sorted(ranks)
        return [
            rank
            for rank in range(self.nprocs)
            if self._is_runnable(rank)
            or (self._status[rank] == _Status.BLOCKED and self._crash_due(rank))
        ]

    def _flush_delayed(self) -> None:
        for key in list(self._delayed):
            queue = self._delayed[key]
            while queue and queue[0][0] <= self._step:
                self._deposit(queue.pop(0)[1])
            if not queue:
                del self._delayed[key]

    def _force_release_delayed(self) -> bool:
        """Release the earliest in-flight delayed message (avoids declaring
        a deadlock while injected delays still hold messages)."""
        best_key = None
        for key, queue in self._delayed.items():
            if best_key is None or queue[0][0] < self._delayed[best_key][0][0]:
                best_key = key
        if best_key is None:
            return False
        queue = self._delayed[best_key]
        self._deposit(queue.pop(0)[1])
        if not queue:
            del self._delayed[best_key]
        return True

    # -- fault injection --------------------------------------------------
    def _crash_scheduled(self) -> bool:
        """A crash is planned and has not fired yet, and its target rank is
        still alive (so fast-forwarding to the crash step can unblock)."""
        plan = self.faults
        return (
            plan is not None
            and plan.crash_rank is not None
            and plan.crash_rank not in self._crashed
            and self._status[plan.crash_rank]
            not in (_Status.DONE, _Status.FAILED)
        )

    def _crash_due(self, rank: int) -> bool:
        plan = self.faults
        return (
            plan is not None
            and plan.crash_rank == rank
            and self._step >= plan.crash_at_step
            and rank not in self._crashed
        )

    def _check_crash(self, rank: int) -> None:
        if self._crash_due(rank):
            self._crashed.add(rank)
            raise InjectedFaultError(
                f"injected crash of rank {rank} at scheduler step {self._step}"
            )

    def _block(self, rank: int, predicate: Callable[[], bool], describe: str) -> None:
        super()._block(rank, predicate, describe)
        # Resumed either because the predicate holds or because the crash
        # came due while blocked; the crash wins.
        self._check_crash(rank)


class ThreadedBackend(Backend):
    """Free-running threads with condition-variable mailboxes.

    ``deadlock_timeout`` bounds how long a receive may wait without any
    message arriving for it before the run is declared deadlocked.

    This backend ignores :meth:`Backend.set_clock_source`: ranks
    interleave in host wall-clock order, not virtual-time order (see the
    contract on that method).
    """

    def __init__(self, nprocs: int, deadlock_timeout: float = 30.0):
        super().__init__(nprocs)
        self.deadlock_timeout = deadlock_timeout
        self._locks = [threading.Lock() for _ in range(nprocs)]
        self._conds = [threading.Condition(self._locks[i]) for i in range(nprocs)]
        self._failed = threading.Event()
        self._failures: dict[int, BaseException] = {}

    def deliver(self, msg: Message) -> None:
        cond = self._conds[msg.dest]
        with cond:
            self.mailboxes[msg.dest].put(msg)
            cond.notify_all()

    def wait_for_match(
        self, rank: int, source: int, tag: int, ctx: int, describe: str
    ) -> Message:
        cond = self._conds[rank]
        mailbox = self.mailboxes[rank]
        with cond:
            start = time.monotonic()
            while True:
                msg = mailbox.take_match(source, tag, ctx)
                if msg is not None:
                    return msg
                if self._failed.is_set():
                    raise _Aborted()
                # Wait out the full remaining budget on the condition
                # variable: a delivery or failure notifies, so idle waits
                # burn no wake cycles, and the timeout is measured from
                # the monotonic clock instead of accumulated in coarse
                # polling steps that could overshoot by up to 100 ms.
                waited = time.monotonic() - start
                remaining = self.deadlock_timeout - waited
                if remaining <= 0.0:
                    _DEADLOCKS.inc()
                    raise DeadlockError(
                        f"rank {rank} waited {waited:.1f}s for {describe}; "
                        "presumed deadlock",
                        waiting={rank: describe},
                    )
                cond.wait(remaining)

    # Posted-receive operations serialise with deliveries under the
    # destination rank's condition lock (the mailbox itself is unlocked).
    def post_receive(self, rank: int, source: int, tag: int, ctx: int) -> int:
        with self._conds[rank]:
            return self.mailboxes[rank].post(source, tag, ctx)

    def post_ready(self, rank: int, post_id: int) -> bool:
        with self._conds[rank]:
            return self.mailboxes[rank].post_ready(post_id)

    def take_post(self, rank: int, post_id: int) -> Message:
        with self._conds[rank]:
            return self.mailboxes[rank].take_post(post_id)

    def peek_post(self, rank: int, post_id: int) -> Message:
        with self._conds[rank]:
            return self.mailboxes[rank].peek_post(post_id)

    def probe_match(self, rank: int, source: int, tag: int, ctx: int) -> bool:
        with self._conds[rank]:
            return self.mailboxes[rank].has_match(source, tag, ctx)

    def wait_any_post(self, rank: int, post_ids: list[int], describe: str) -> list[int]:
        cond = self._conds[rank]
        mailbox = self.mailboxes[rank]
        with cond:
            start = time.monotonic()
            while True:
                ready = [p for p in post_ids if mailbox.post_ready(p)]
                if ready:
                    return ready
                if self._failed.is_set():
                    raise _Aborted()
                waited = time.monotonic() - start
                remaining = self.deadlock_timeout - waited
                if remaining <= 0.0:
                    _DEADLOCKS.inc()
                    raise DeadlockError(
                        f"rank {rank} waited {waited:.1f}s for {describe}; "
                        "presumed deadlock",
                        waiting={rank: describe},
                    )
                cond.wait(remaining)

    def run(self, bodies: list[Callable[[], None]]) -> None:
        threads = [
            threading.Thread(
                target=self._rank_main,
                args=(rank, bodies[rank]),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(self.nprocs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if self._failures:
            rank = min(self._failures)
            exc = self._failures[rank]
            if isinstance(exc, DeadlockError):
                raise exc
            raise RankFailedError(rank, exc) from exc

    def _rank_main(self, rank: int, body: Callable[[], None]) -> None:
        try:
            body()
        except _Aborted:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported via RankFailedError
            self._failures[rank] = exc
            self._failed.set()
            # Wake every waiting rank so the run can unwind.
            for cond in self._conds:
                with cond:
                    cond.notify_all()
