"""Message envelope and matching wildcards."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Wildcard: match a message from any source rank.
ANY_SOURCE = -1
#: Wildcard: match a message with any tag.
ANY_TAG = -1


@dataclass
class Message:
    """A message in flight or waiting in a mailbox.

    ``arrival`` is the virtual time at which the message becomes visible
    to the receiver (the sender's clock after paying the transfer cost).
    ``seq`` is a per-sender sequence number preserving the non-overtaking
    guarantee: two messages from the same source with the same tag are
    received in send order.  ``ctx`` is the communication context of the
    sending communicator: receives only match messages of their own
    context, isolating sub-communicators (MPI-style groups) from the
    world communicator and from each other even under wildcard receives.
    """

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    arrival: float
    seq: int = field(default=0)
    ctx: int = field(default=0)

    def matches(self, source: int, tag: int, ctx: int = 0) -> bool:
        """Does this message satisfy a receive for (source, tag) in *ctx*?"""
        return (
            ctx == self.ctx
            and (source == ANY_SOURCE or source == self.source)
            and (tag == ANY_TAG or tag == self.tag)
        )
