"""Per-rank mailboxes with MPI-style (source, tag) matching.

Matching returns the pending message with the earliest *virtual arrival
time* (ties broken by source then per-source sequence number), which is
what a receive on the modelled machine would see.  Same-source same-tag
messages have monotonically increasing arrivals, so MPI's non-overtaking
guarantee holds.  Synchronisation is the backend's job; the mailbox
itself is a plain data structure.

Posted receives (the nonblocking layer's half of matching): a rank may
*post* a (source, tag, ctx) pattern ahead of time with :meth:`post`.  A
post binds immediately to the best pending match if one exists;
otherwise the next delivered matching message binds to the oldest
matching unposted record — MPI's posted-receive-queue semantics.  Bound
messages leave the pending queue, so a concurrent blocking receive can
never steal a message already claimed by a posted request.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import deque

from repro.errors import ReproError
from repro.obs.metrics import COUNT_BUCKETS, get_registry
from repro.runtime.message import Message


@dataclass
class _PostedRecv:
    """One posted (nonblocking) receive awaiting or holding its message."""

    post_id: int
    source: int
    tag: int
    ctx: int
    msg: Message | None = None


class Mailbox:
    """Pending-message store for one rank."""

    def __init__(self) -> None:
        self._pending: deque[Message] = deque()
        # Posted receives in post order (dicts preserve insertion order);
        # delivery binds to the oldest matching unfulfilled post first.
        self._posts: dict[int, _PostedRecv] = {}
        self._next_post_id = 0

    def __len__(self) -> int:
        return len(self._pending)

    def put(self, msg: Message) -> None:
        """Deliver a message: bind it to the oldest matching unfulfilled
        posted receive, else append to the pending queue (delivery order
        == matching order)."""
        registry = get_registry()
        registry.counter(
            "runtime.mailbox.enqueued", help="messages delivered to mailboxes"
        ).inc()
        for post in self._posts.values():
            if post.msg is None and msg.matches(post.source, post.tag, post.ctx):
                post.msg = msg
                registry.counter(
                    "runtime.mailbox.matched",
                    help="messages removed by a matching receive",
                ).inc()
                return
        self._pending.append(msg)
        registry.histogram(
            "runtime.mailbox.depth",
            buckets=COUNT_BUCKETS,
            help="pending-queue depth observed at each delivery",
        ).observe(len(self._pending))

    def has_match(self, source: int, tag: int, ctx: int = 0) -> bool:
        """True when a pending message matches the (source, tag, ctx) pattern."""
        return any(m.matches(source, tag, ctx) for m in self._pending)

    def take_match(self, source: int, tag: int, ctx: int = 0) -> Message | None:
        """Remove and return the earliest-*arriving* matching message
        (virtual time; deterministic tie-break), or ``None``."""
        best_i = -1
        best_key: tuple[float, int, int] | None = None
        for i, m in enumerate(self._pending):
            if m.matches(source, tag, ctx):
                key = (m.arrival, m.source, m.seq)
                if best_key is None or key < best_key:
                    best_i, best_key = i, key
        if best_i < 0:
            return None
        msg = self._pending[best_i]
        del self._pending[best_i]
        get_registry().counter(
            "runtime.mailbox.matched", help="messages removed by a matching receive"
        ).inc()
        return msg

    def match_indices(self, source: int, tag: int, ctx: int = 0) -> list[int]:
        """Indices (in delivery order) of all pending messages matching the
        (source, tag, ctx) pattern.  Backends with non-default matching
        policies (e.g. the fuzzed backend's wildcard perturbation) use this
        to enumerate the legal choices before taking one with
        :meth:`take_at`."""
        return [i for i, m in enumerate(self._pending) if m.matches(source, tag, ctx)]

    def peek_at(self, index: int) -> Message:
        """The pending message at *index* without removing it."""
        return self._pending[index]

    def take_at(self, index: int) -> Message:
        """Remove and return the pending message at *index*."""
        msg = self._pending[index]
        del self._pending[index]
        get_registry().counter(
            "runtime.mailbox.matched", help="messages removed by a matching receive"
        ).inc()
        return msg

    # -- posted receives ---------------------------------------------------
    def post(self, source: int, tag: int, ctx: int = 0) -> int:
        """Post a receive pattern; returns its post id.

        If a matching message is already pending, the post binds to the
        earliest-arriving one immediately (the same selection a blocking
        receive would make); otherwise it binds to the next matching
        delivery, in post order.
        """
        post = _PostedRecv(self._next_post_id, source, tag, ctx)
        self._next_post_id += 1
        msg = self.take_match(source, tag, ctx)
        if msg is not None:
            post.msg = msg
        self._posts[post.post_id] = post
        get_registry().counter(
            "runtime.mailbox.posted", help="receive patterns posted (irecv)"
        ).inc()
        return post.post_id

    def post_ready(self, post_id: int) -> bool:
        """True when the posted receive has its message bound."""
        return self._posts[post_id].msg is not None

    def peek_post(self, post_id: int) -> Message:
        """The message bound to a fulfilled posted receive, not removed."""
        post = self._posts[post_id]
        if post.msg is None:
            raise ReproError(f"posted receive {post_id} peeked before fulfilment")
        return post.msg

    def take_post(self, post_id: int) -> Message:
        """Remove a fulfilled posted receive and return its message."""
        post = self._posts.pop(post_id)
        if post.msg is None:
            raise ReproError(f"posted receive {post_id} taken before fulfilment")
        return post.msg

    def posts_pending(self) -> int:
        """How many posted receives are still unfulfilled (diagnostics)."""
        return sum(1 for post in self._posts.values() if post.msg is None)

    def snapshot(self) -> list[Message]:
        """Copy of the pending queue (diagnostics only)."""
        return list(self._pending)
