"""Per-rank mailboxes with MPI-style (source, tag) matching.

Matching returns the pending message with the earliest *virtual arrival
time* (ties broken by source then per-source sequence number), which is
what a receive on the modelled machine would see.  Same-source same-tag
messages have monotonically increasing arrivals, so MPI's non-overtaking
guarantee holds.  Synchronisation is the backend's job; the mailbox
itself is a plain data structure.

Posted receives (the nonblocking layer's half of matching): a rank may
*post* a (source, tag, ctx) pattern ahead of time with :meth:`post`.  A
post binds immediately to the best pending match if one exists;
otherwise the next delivered matching message binds to the oldest
matching unposted record — MPI's posted-receive-queue semantics.  Bound
messages leave the pending queue, so a concurrent blocking receive can
never steal a message already claimed by a posted request.

Two implementations share the interface:

- :class:`Mailbox` (the default, fast path on) keeps, next to the
  delivery-order slot list, one queue per exact ``(source, tag, ctx)``
  channel.  The exact-match operations the scheduler polls every step —
  ``has_match``/``take_match`` with no wildcard — are O(1) (amortised)
  instead of a linear scan, and removal tombstones a slot instead of
  paying the old O(n) ``del deque[i]``.  Wildcard matching and the
  fuzzed backend's ``match_indices`` keep the linear path over the
  delivery-order view.
- :class:`_LinearMailbox` is the historical single-deque linear-scan
  implementation, byte-for-byte in behaviour.  It serves as the fast
  path *off* ablation baseline and as the reference implementation the
  property tests pit the indexed mailbox against.

``Mailbox()`` transparently constructs a :class:`_LinearMailbox` when
the fast path is disabled (:mod:`repro.fastpath`), so backends and
tests need no dispatch of their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import deque

from repro import fastpath
from repro.errors import ReproError
from repro.obs.metrics import (
    COUNT_BUCKETS,
    counter_handle,
    histogram_handle,
)
from repro.runtime.message import ANY_SOURCE, ANY_TAG, Message

_ENQUEUED = counter_handle(
    "runtime.mailbox.enqueued", help="messages delivered to mailboxes"
)
_MATCHED = counter_handle(
    "runtime.mailbox.matched", help="messages removed by a matching receive"
)
_DEPTH = histogram_handle(
    "runtime.mailbox.depth",
    buckets=COUNT_BUCKETS,
    help="pending-queue depth observed at each delivery",
)
_POSTED = counter_handle(
    "runtime.mailbox.posted", help="receive patterns posted (irecv)"
)


@dataclass
class _PostedRecv:
    """One posted (nonblocking) receive awaiting or holding its message."""

    post_id: int
    source: int
    tag: int
    ctx: int
    msg: Message | None = None


class _Channel:
    """Slot indices of one exact (source, tag, ctx) channel.

    ``indices`` holds positions into the mailbox's slot list, in
    delivery order.  ``sorted`` records whether the channel's
    ``(arrival, seq)`` keys have stayed nondecreasing in delivery order —
    true for every message a monotone virtual clock can produce — in
    which case the head is the earliest-arriving candidate and a take is
    O(1).  Out-of-order arrivals (possible only through hand-built
    messages) drop the flag and fall back to a scan of this channel
    alone.
    """

    __slots__ = ("indices", "sorted", "last_key")

    def __init__(self) -> None:
        self.indices: deque[int] = deque()
        self.sorted = True
        self.last_key = (float("-inf"), -1)

    def append(self, index: int, msg: Message) -> None:
        self.indices.append(index)
        key = (msg.arrival, msg.seq)
        if key < self.last_key:
            self.sorted = False
        else:
            self.last_key = key


class Mailbox:
    """Pending-message store for one rank (channel-indexed fast path)."""

    def __new__(cls) -> "Mailbox":
        if cls is Mailbox and not fastpath.enabled():
            return super().__new__(_LinearMailbox)
        return super().__new__(cls)

    def __init__(self) -> None:
        #: delivery-order message slots; a taken message leaves a ``None``
        #: tombstone so sibling indices stay stable (no O(n) deletes)
        self._slots: list[Message | None] = []
        self._live = 0
        self._dead = 0
        self._channels: dict[tuple[int, int, int], _Channel] = {}
        # Posted receives in post order (dicts preserve insertion order);
        # delivery binds to the oldest matching unfulfilled post first.
        self._posts: dict[int, _PostedRecv] = {}
        self._next_post_id = 0

    def __len__(self) -> int:
        return self._live

    # -- delivery ----------------------------------------------------------
    def put(self, msg: Message) -> None:
        """Deliver a message: bind it to the oldest matching unfulfilled
        posted receive, else append to the pending queue (delivery order
        == matching order)."""
        _ENQUEUED.inc()
        for post in self._posts.values():
            if post.msg is None and msg.matches(post.source, post.tag, post.ctx):
                post.msg = msg
                _MATCHED.inc()
                return
        index = len(self._slots)
        self._slots.append(msg)
        self._live += 1
        key = (msg.source, msg.tag, msg.ctx)
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channels[key] = _Channel()
        channel.append(index, msg)
        _DEPTH.observe(self._live)

    # -- matching ----------------------------------------------------------
    def _channel_head(self, channel: _Channel) -> int | None:
        """Index of the channel's oldest live entry (drops tombstones)."""
        indices = channel.indices
        while indices:
            index = indices[0]
            if self._slots[index] is not None:
                return index
            indices.popleft()
        return None

    def _channel_best(self, channel: _Channel) -> int | None:
        """Index of the channel's earliest-arriving live entry."""
        head = self._channel_head(channel)
        if head is None or channel.sorted:
            return head
        best, best_key = None, None
        for index in channel.indices:
            msg = self._slots[index]
            if msg is None:
                continue
            key = (msg.arrival, msg.seq)
            if best_key is None or key < best_key:
                best, best_key = index, key
        return best

    def has_match(self, source: int, tag: int, ctx: int = 0) -> bool:
        """True when a pending message matches the (source, tag, ctx) pattern."""
        if source != ANY_SOURCE and tag != ANY_TAG:
            channel = self._channels.get((source, tag, ctx))
            return channel is not None and self._channel_head(channel) is not None
        return any(
            m is not None and m.matches(source, tag, ctx) for m in self._slots
        )

    def take_match(self, source: int, tag: int, ctx: int = 0) -> Message | None:
        """Remove and return the earliest-*arriving* matching message
        (virtual time; deterministic tie-break), or ``None``."""
        if source != ANY_SOURCE and tag != ANY_TAG:
            channel = self._channels.get((source, tag, ctx))
            if channel is None:
                return None
            best = self._channel_best(channel)
            if best is None:
                return None
            return self._take_slot(best, channel)
        best, best_key = None, None
        for index, m in enumerate(self._slots):
            if m is not None and m.matches(source, tag, ctx):
                key = (m.arrival, m.source, m.seq)
                if best_key is None or key < best_key:
                    best, best_key = index, key
        if best is None:
            return None
        return self._take_slot(best)

    def match_indices(self, source: int, tag: int, ctx: int = 0) -> list[int]:
        """Indices (in delivery order) of all pending messages matching the
        (source, tag, ctx) pattern.  Backends with non-default matching
        policies (e.g. the fuzzed backend's wildcard perturbation) use this
        to enumerate the legal choices before taking one with
        :meth:`take_at`.  Indices stay valid until the next take."""
        return [
            i
            for i, m in enumerate(self._slots)
            if m is not None and m.matches(source, tag, ctx)
        ]

    def peek_at(self, index: int) -> Message:
        """The pending message at *index* without removing it."""
        msg = self._slots[index]
        if msg is None:
            raise ReproError(f"mailbox slot {index} already taken")
        return msg

    def take_at(self, index: int) -> Message:
        """Remove and return the pending message at *index*."""
        msg = self._slots[index]
        if msg is None:
            raise ReproError(f"mailbox slot {index} already taken")
        return self._take_slot(index)

    def _take_slot(self, index: int, channel: _Channel | None = None) -> Message:
        msg = self._slots[index]
        self._slots[index] = None
        self._live -= 1
        self._dead += 1
        if channel is not None and channel.indices and channel.indices[0] == index:
            channel.indices.popleft()
        _MATCHED.inc()
        if self._dead > 64 and self._dead > self._live:
            self._compact()
        return msg

    def _compact(self) -> None:
        """Drop tombstones and rebuild the channel index (amortised O(1))."""
        self._slots = [m for m in self._slots if m is not None]
        self._dead = 0
        self._channels = {}
        for index, msg in enumerate(self._slots):
            key = (msg.source, msg.tag, msg.ctx)
            channel = self._channels.get(key)
            if channel is None:
                channel = self._channels[key] = _Channel()
            channel.append(index, msg)

    # -- posted receives ---------------------------------------------------
    def post(self, source: int, tag: int, ctx: int = 0) -> int:
        """Post a receive pattern; returns its post id.

        If a matching message is already pending, the post binds to the
        earliest-arriving one immediately (the same selection a blocking
        receive would make); otherwise it binds to the next matching
        delivery, in post order.
        """
        post = _PostedRecv(self._next_post_id, source, tag, ctx)
        self._next_post_id += 1
        msg = self.take_match(source, tag, ctx)
        if msg is not None:
            post.msg = msg
        self._posts[post.post_id] = post
        _POSTED.inc()
        return post.post_id

    def post_ready(self, post_id: int) -> bool:
        """True when the posted receive has its message bound."""
        return self._posts[post_id].msg is not None

    def peek_post(self, post_id: int) -> Message:
        """The message bound to a fulfilled posted receive, not removed."""
        post = self._posts[post_id]
        if post.msg is None:
            raise ReproError(f"posted receive {post_id} peeked before fulfilment")
        return post.msg

    def take_post(self, post_id: int) -> Message:
        """Remove a fulfilled posted receive and return its message."""
        post = self._posts.pop(post_id)
        if post.msg is None:
            raise ReproError(f"posted receive {post_id} taken before fulfilment")
        return post.msg

    def posts_pending(self) -> int:
        """How many posted receives are still unfulfilled (diagnostics)."""
        return sum(1 for post in self._posts.values() if post.msg is None)

    def snapshot(self) -> list[Message]:
        """Copy of the pending queue (diagnostics only)."""
        return [m for m in self._slots if m is not None]


class _LinearMailbox(Mailbox):
    """The historical linear-scan mailbox (single delivery-order deque).

    Selected automatically by ``Mailbox()`` when the fast path is off;
    also the reference implementation the indexed mailbox's property
    tests compare selections against.
    """

    def __init__(self) -> None:
        self._pending: deque[Message] = deque()
        self._posts: dict[int, _PostedRecv] = {}
        self._next_post_id = 0

    def __len__(self) -> int:
        return len(self._pending)

    def put(self, msg: Message) -> None:
        _ENQUEUED.inc()
        for post in self._posts.values():
            if post.msg is None and msg.matches(post.source, post.tag, post.ctx):
                post.msg = msg
                _MATCHED.inc()
                return
        self._pending.append(msg)
        _DEPTH.observe(len(self._pending))

    def has_match(self, source: int, tag: int, ctx: int = 0) -> bool:
        return any(m.matches(source, tag, ctx) for m in self._pending)

    def take_match(self, source: int, tag: int, ctx: int = 0) -> Message | None:
        best_i = -1
        best_key: tuple[float, int, int] | None = None
        for i, m in enumerate(self._pending):
            if m.matches(source, tag, ctx):
                key = (m.arrival, m.source, m.seq)
                if best_key is None or key < best_key:
                    best_i, best_key = i, key
        if best_i < 0:
            return None
        msg = self._pending[best_i]
        del self._pending[best_i]
        _MATCHED.inc()
        return msg

    def match_indices(self, source: int, tag: int, ctx: int = 0) -> list[int]:
        return [i for i, m in enumerate(self._pending) if m.matches(source, tag, ctx)]

    def peek_at(self, index: int) -> Message:
        return self._pending[index]

    def take_at(self, index: int) -> Message:
        msg = self._pending[index]
        del self._pending[index]
        _MATCHED.inc()
        return msg

    def snapshot(self) -> list[Message]:
        return list(self._pending)
