"""Per-rank mailboxes with MPI-style (source, tag) matching.

Matching returns the pending message with the earliest *virtual arrival
time* (ties broken by source then per-source sequence number), which is
what a receive on the modelled machine would see.  Same-source same-tag
messages have monotonically increasing arrivals, so MPI's non-overtaking
guarantee holds.  Synchronisation is the backend's job; the mailbox
itself is a plain data structure.
"""

from __future__ import annotations

from collections import deque

from repro.obs.metrics import COUNT_BUCKETS, get_registry
from repro.runtime.message import Message


class Mailbox:
    """Pending-message store for one rank."""

    def __init__(self) -> None:
        self._pending: deque[Message] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def put(self, msg: Message) -> None:
        """Append a delivered message (delivery order == matching order)."""
        self._pending.append(msg)
        registry = get_registry()
        registry.counter(
            "runtime.mailbox.enqueued", help="messages delivered to mailboxes"
        ).inc()
        registry.histogram(
            "runtime.mailbox.depth",
            buckets=COUNT_BUCKETS,
            help="pending-queue depth observed at each delivery",
        ).observe(len(self._pending))

    def has_match(self, source: int, tag: int, ctx: int = 0) -> bool:
        """True when a pending message matches the (source, tag, ctx) pattern."""
        return any(m.matches(source, tag, ctx) for m in self._pending)

    def take_match(self, source: int, tag: int, ctx: int = 0) -> Message | None:
        """Remove and return the earliest-*arriving* matching message
        (virtual time; deterministic tie-break), or ``None``."""
        best_i = -1
        best_key: tuple[float, int, int] | None = None
        for i, m in enumerate(self._pending):
            if m.matches(source, tag, ctx):
                key = (m.arrival, m.source, m.seq)
                if best_key is None or key < best_key:
                    best_i, best_key = i, key
        if best_i < 0:
            return None
        msg = self._pending[best_i]
        del self._pending[best_i]
        get_registry().counter(
            "runtime.mailbox.matched", help="messages removed by a matching receive"
        ).inc()
        return msg

    def match_indices(self, source: int, tag: int, ctx: int = 0) -> list[int]:
        """Indices (in delivery order) of all pending messages matching the
        (source, tag, ctx) pattern.  Backends with non-default matching
        policies (e.g. the fuzzed backend's wildcard perturbation) use this
        to enumerate the legal choices before taking one with
        :meth:`take_at`."""
        return [i for i, m in enumerate(self._pending) if m.matches(source, tag, ctx)]

    def peek_at(self, index: int) -> Message:
        """The pending message at *index* without removing it."""
        return self._pending[index]

    def take_at(self, index: int) -> Message:
        """Remove and return the pending message at *index*."""
        msg = self._pending[index]
        del self._pending[index]
        get_registry().counter(
            "runtime.mailbox.matched", help="messages removed by a matching receive"
        ).inc()
        return msg

    def snapshot(self) -> list[Message]:
        """Copy of the pending queue (diagnostics only)."""
        return list(self._pending)
