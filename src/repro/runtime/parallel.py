"""Process-parallel execution: one OS process per rank.

Every other backend runs rank bodies as threads of the calling process,
so all pure-Python simulator overhead is serialised behind the GIL (and
the run-to-block backends are one-rank-at-a-time *by design*).  This
module runs each rank in its own OS process, which is real multi-core
execution: on a P-core host, P ranks' numpy work and simulator
bookkeeping proceed concurrently.

Correctness rests on work the earlier layers already did.  Virtual
clocks are charged canonically (schedule-independent) by the contexts,
and the shipped applications are certified race-free by the schedule
fuzzer — so *any* legal interleaving, including a free-running
multi-process one, must produce bitwise-identical per-rank digests and
final clocks to :class:`~repro.runtime.scheduler.DeterministicBackend`.
The cross-backend tests and the bench ablation assert exactly that.

Transport
---------
Each rank owns one delivery queue; a send encodes the payload and
enqueues the envelope on the destination's queue, and the receiving
worker drains its queue into its (indexed) :class:`~repro.runtime.
mailbox.Mailbox`, where the usual (source, tag, ctx) matching applies.
Large ndarray payloads do not travel through the pipe: they are staged
in :mod:`multiprocessing.shared_memory` segments — the copy-on-write
freeze contract of the fast path maps directly onto shared *read-only*
segments (the receiver maps the segment and never writes it; neither
does anyone else, the sender staged a private copy).  Small and
non-array payloads fall back to pickle, controlled by a size threshold
(``REPRO_SHM_THRESHOLD`` bytes, default 32768).

Segment lifecycle: the sender creates, fills, and closes its mapping;
the receiver attaches and immediately *unlinks* the name (POSIX keeps
the mapping alive until unmapped), so a normally-received segment can
never outlive the run.  Both sides unregister from the stdlib resource
tracker — ownership is managed here, not by per-process trackers that
would double-unlink.  As a backstop for crashed or deadlocked runs, the
parent sweeps ``/dev/shm`` for the run's unique name prefix at teardown,
so no path leaks segments.

Failure detection
-----------------
The run-to-block schedulers detect deadlock by evaluating blocked-rank
predicates in-process; no such global view exists across processes.
Instead, workers publish heartbeat state through shared memory: a
per-rank progress counter (bumped on every send, delivery, and
completion) plus a blocked/running/done flag and the blocked wait's
description.  The parent declares deadlock only when every unfinished
rank reports *blocked* and the global progress sum has not moved for
``deadlock_timeout`` seconds — long computations never trip it, because
a computing rank reports *running*.  A worker that dies without
reporting a result (hard crash, ``os._exit``) is noticed by process
liveness and surfaced as :class:`~repro.errors.RankFailedError`, never
as a hang.

Use ``backend="parallel"`` on :func:`~repro.runtime.spmd.spmd_run` /
``mode="parallel"`` on :meth:`Archetype.run`, or set
``REPRO_BACKEND=parallel``.  The start method defaults to ``fork``
(closures and lambdas work unchanged); set ``REPRO_PARALLEL_START`` to
``forkserver`` or ``spawn`` for the stricter methods, under which the
program body and its arguments must be picklable/importable.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
import traceback
from dataclasses import dataclass
from multiprocessing import shared_memory
from queue import Empty
from typing import Any

import numpy as np

from repro import fastpath
from repro.errors import DeadlockError, RankFailedError, ReproError
from repro.machines.model import MachineModel
from repro.obs.metrics import counter_handle, get_registry, scoped_registry
from repro.runtime.message import Message
from repro.runtime.scheduler import Backend, _Aborted
from repro.trace.tracer import Tracer

_DEADLOCKS = counter_handle(
    "runtime.scheduler.deadlocks", help="runs aborted as deadlocked"
)
_SHM_SENT = counter_handle(
    "runtime.parallel.shm_segments", help="payload arrays staged in shared memory"
)
_PICKLED = counter_handle(
    "runtime.parallel.pickled_payloads", help="payloads sent via the pickle fallback"
)

#: default payload-size threshold (bytes) above which an ndarray travels
#: via a shared-memory segment instead of the pickle fallback
DEFAULT_SHM_THRESHOLD = 32768
#: seconds between heartbeat wake-ups while a worker is blocked (also the
#: parent's monitoring granularity)
_TICK = 0.05
#: bytes reserved per rank for the blocked-wait description
_DESC_BYTES = 192

# worker states published through the shared state array
_RUNNING, _BLOCKED, _DONE = 0, 1, 2

_RUN_IDS = itertools.count()


def default_start_method() -> str:
    """The start method used when none is requested: ``REPRO_PARALLEL_START``
    if set, else ``fork`` where available (closures work unchanged), else
    ``spawn``."""
    import multiprocessing as mp

    env = os.environ.get("REPRO_PARALLEL_START")
    if env:
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def shm_threshold() -> int:
    """The ndarray size (bytes) at which payloads switch to shared memory."""
    try:
        return int(os.environ.get("REPRO_SHM_THRESHOLD", DEFAULT_SHM_THRESHOLD))
    except ValueError:
        return DEFAULT_SHM_THRESHOLD


def _untrack(name: str) -> None:
    """Remove *name* from this process's stdlib resource tracker.

    The tracker assumes whoever registered a segment owns its cleanup and
    unlinks leftovers at process exit; here ownership is transferred from
    sender to receiver (and backstopped by the parent's sweep), so both
    sides must opt out or the tracker double-unlinks and warns.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker differences are non-fatal
        pass


@dataclass(frozen=True)
class _ShmRef:
    """Wire marker for an ndarray staged in a shared-memory segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]


class _SegmentStager:
    """Creates this worker's outgoing shared-memory segments."""

    def __init__(self, prefix: str, rank: int):
        self._prefix = prefix
        self._rank = rank
        self._seq = 0

    def stage(self, array: np.ndarray) -> _ShmRef:
        data = np.ascontiguousarray(array)
        name = f"{self._prefix}.{self._rank}.{self._seq}"
        self._seq += 1
        seg = shared_memory.SharedMemory(name=name, create=True, size=data.nbytes)
        np.frombuffer(seg.buf, dtype=data.dtype).reshape(data.shape)[...] = data
        tracked = seg._name  # the registered name (leading slash included)
        seg.close()
        _untrack(tracked)
        _SHM_SENT.inc()
        return _ShmRef(name, data.dtype.str, data.shape)


def _encode_payload(payload: Any, threshold: int, stager: _SegmentStager) -> Any:
    """Replace large ndarrays inside *payload* with :class:`_ShmRef` markers.

    Mirrors the container walk of the copy-on-write freeze: tuples, lists
    and dicts are rebuilt around the markers; anything else rides the
    pickle fallback untouched.  Object-dtype and empty arrays cannot be
    mapped raw and always fall back.
    """
    if isinstance(payload, np.ndarray):
        if payload.nbytes >= threshold and payload.nbytes > 0 and not payload.dtype.hasobject:
            return stager.stage(payload)
        return payload
    if isinstance(payload, tuple):
        return tuple(_encode_payload(item, threshold, stager) for item in payload)
    if isinstance(payload, list):
        return [_encode_payload(item, threshold, stager) for item in payload]
    if isinstance(payload, dict):
        return {k: _encode_payload(v, threshold, stager) for k, v in payload.items()}
    return payload


def _attach_segment(ref: _ShmRef, attached: list) -> np.ndarray:
    """Map a staged segment as a read-only ndarray (zero-copy).

    The name is unlinked immediately — the mapping stays valid until the
    process unmaps it, and an unlinked segment cannot leak.  The fd is
    released right away (the mapping does not need it) so long runs never
    accumulate one descriptor per received array; the
    :class:`~multiprocessing.shared_memory.SharedMemory` object itself is
    parked on *attached* to keep the mapping's lifetime simple.
    """
    seg = shared_memory.SharedMemory(name=ref.name)
    try:
        seg.unlink()
    except FileNotFoundError:
        _untrack(seg._name)
    flat = np.frombuffer(seg.buf, dtype=np.dtype(ref.dtype))
    flat.flags.writeable = False
    fd = getattr(seg, "_fd", -1)
    if fd >= 0:
        os.close(fd)
        seg._fd = -1
    attached.append(seg)
    return flat.reshape(ref.shape)


def _decode_payload(payload: Any, attached: list) -> Any:
    """Resolve :class:`_ShmRef` markers and freeze pickled arrays read-only,
    reproducing the copy-on-write contract receivers see on the in-process
    backends."""
    if isinstance(payload, _ShmRef):
        return _attach_segment(payload, attached)
    if isinstance(payload, np.ndarray):
        payload.flags.writeable = False
        return payload
    if isinstance(payload, tuple):
        return tuple(_decode_payload(item, attached) for item in payload)
    if isinstance(payload, list):
        return [_decode_payload(item, attached) for item in payload]
    if isinstance(payload, dict):
        return {k: _decode_payload(v, attached) for k, v in payload.items()}
    return payload


class _ResultChannel:
    """Multi-producer, single-consumer result pipe.

    Each worker sends exactly one terminal record; sends are serialised
    by a lock and pickled in the calling thread (unlike ``mp.Queue``'s
    feeder thread, a pickling failure surfaces synchronously where it can
    be reported).
    """

    def __init__(self, ctx):
        self._reader, self._writer = ctx.Pipe(duplex=False)
        self._lock = ctx.Lock()

    def put(self, item) -> None:
        with self._lock:
            self._writer.send(item)

    def poll(self, timeout: float) -> bool:
        return self._reader.poll(timeout)

    def get(self):
        return self._reader.recv()


class _Wiring:
    """Everything a worker process needs, bundled for the spawn pickle."""

    def __init__(self, ctx, nprocs: int, prefix: str, threshold: int):
        #: per-rank delivery queues (unbounded: senders never block, so a
        #: full pipe can never weave a false send-side deadlock)
        self.inboxes = [ctx.Queue() for _ in range(nprocs)]
        self.results = _ResultChannel(ctx)
        self.abort = ctx.Event()
        self.states = ctx.Array("b", nprocs, lock=False)
        self.progress = ctx.Array("L", nprocs, lock=False)
        self.describes = ctx.Array("c", nprocs * _DESC_BYTES, lock=False)
        self.prefix = prefix
        self.shm_threshold = threshold
        self.fastpath = fastpath.enabled()

    def describe_of(self, rank: int) -> str:
        raw = bytes(self.describes[rank * _DESC_BYTES : (rank + 1) * _DESC_BYTES])
        return raw.split(b"\x00", 1)[0].decode(errors="replace")


class ParallelBackend(Backend):
    """The worker-side transport: one instance per rank, in its own process.

    Only this rank's mailbox is populated; ``deliver`` routes cross-rank
    messages through the destination's delivery queue (payloads encoded
    per the module contract), and the wait operations drain the local
    queue into the indexed mailbox before applying the ordinary matching
    predicates.  There is exactly one thread per process, so mailbox
    access needs no locking at all.
    """

    def __init__(self, rank: int, nprocs: int, wiring: _Wiring):
        super().__init__(nprocs)
        self.rank = rank
        self._wiring = wiring
        self._inbox = wiring.inboxes[rank]
        self._stager = _SegmentStager(wiring.prefix, rank)
        self._threshold = wiring.shm_threshold
        #: received segments, parked to pin their mappings for the run
        self._attached: list = []

    # -- transport ---------------------------------------------------------
    def deliver(self, msg: Message) -> None:
        self._wiring.progress[self.rank] += 1
        if msg.dest == self.rank:
            self.mailboxes[self.rank].put(msg)
            return
        msg.payload = _encode_payload(msg.payload, self._threshold, self._stager)
        if not isinstance(msg.payload, _ShmRef):
            _PICKLED.inc()
        self._wiring.inboxes[msg.dest].put(msg)

    def _deposit(self, msg: Message) -> None:
        msg.payload = _decode_payload(msg.payload, self._attached)
        self.mailboxes[self.rank].put(msg)
        self._wiring.progress[self.rank] += 1

    def _drain_nowait(self) -> None:
        while True:
            try:
                msg = self._inbox.get_nowait()
            except Empty:
                return
            self._deposit(msg)

    def _await(self, ready, describe: str):
        """Drain deliveries until ``ready()`` yields a non-None result.

        While waiting, the worker publishes *blocked* state (and the
        wait's description) through the shared heartbeat arrays and wakes
        every :data:`_TICK` seconds to notice an abort.
        """
        self._drain_nowait()
        got = ready()
        if got is not None:
            return got
        self._set_blocked(describe)
        try:
            while True:
                try:
                    msg = self._inbox.get(timeout=_TICK)
                except Empty:
                    msg = None
                if self._wiring.abort.is_set():
                    raise _Aborted()
                if msg is not None:
                    self._deposit(msg)
                    self._drain_nowait()
                    got = ready()
                    if got is not None:
                        return got
        finally:
            self._wiring.states[self.rank] = _RUNNING

    def _set_blocked(self, describe: str) -> None:
        data = describe.encode(errors="replace")[: _DESC_BYTES - 1]
        base = self.rank * _DESC_BYTES
        self._wiring.describes[base : base + len(data)] = data
        self._wiring.describes[base + len(data)] = b"\x00"
        self._wiring.states[self.rank] = _BLOCKED

    # -- blocking operations ----------------------------------------------
    def wait_for_match(
        self, rank: int, source: int, tag: int, ctx: int, describe: str
    ) -> Message:
        mailbox = self.mailboxes[rank]
        return self._await(lambda: mailbox.take_match(source, tag, ctx), describe)

    def wait_any_post(self, rank: int, post_ids: list[int], describe: str) -> list[int]:
        mailbox = self.mailboxes[rank]

        def ready():
            fulfilled = [p for p in post_ids if mailbox.post_ready(p)]
            return fulfilled or None

        return self._await(ready, describe)

    def probe_match(self, rank: int, source: int, tag: int, ctx: int) -> bool:
        self._drain_nowait()
        return self.mailboxes[rank].has_match(source, tag, ctx)

    def post_ready(self, rank: int, post_id: int) -> bool:
        # Non-blocking test(): ingest pending deliveries so a completion
        # already sitting in the queue is observable.
        self._drain_nowait()
        return self.mailboxes[rank].post_ready(post_id)

    def run(self, bodies) -> None:
        raise ReproError(
            "ParallelBackend is driven by repro.runtime.parallel.run_parallel, "
            "not Backend.run"
        )


def _portable_error(exc: BaseException) -> BaseException:
    """An exception safe to ship through a pipe (pickle fallback to repr)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - anything unpicklable gets wrapped
        return ReproError(f"{type(exc).__name__}: {exc}")


def _worker_main(
    rank: int,
    nprocs: int,
    fn,
    args: tuple,
    kwargs: dict,
    machine: MachineModel,
    trace: bool,
    wiring: _Wiring,
) -> None:
    """One rank's process: build the transport and a communicator, run the
    body, report the terminal record."""
    fastpath.set_enabled(wiring.fastpath)
    backend = ParallelBackend(rank, nprocs, wiring)
    tracer = Tracer(nprocs) if trace else None
    backend.tracer = tracer

    from repro.comm.communicator import Comm

    # A fresh registry for the run: with the fork start method the child
    # inherits the parent's counters, and merging those back would
    # double-count everything recorded before the run.
    with scoped_registry() as registry:
        comm = Comm(
            rank=rank, size=nprocs, backend=backend, machine=machine, tracer=tracer
        )
        backend.set_clock_source(lambda r: comm.clock if r == rank else 0.0)
        try:
            value = fn(comm, *args, **kwargs)
        except _Aborted:
            wiring.states[rank] = _DONE
            wiring.results.put(("aborted", rank, None))
            return
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            wiring.states[rank] = _DONE
            wiring.results.put(
                ("error", rank, (_portable_error(exc), traceback.format_exc()))
            )
            return
        snapshot = registry.snapshot()
    events = tracer.events[rank] if tracer is not None else None
    wiring.states[rank] = _DONE
    wiring.progress[rank] += 1
    record = ("done", rank, (value, comm.clock, events, snapshot))
    try:
        wiring.results.put(record)
    except Exception as exc:  # noqa: BLE001 - e.g. an unpicklable return value
        wiring.results.put(("error", rank, (_portable_error(exc), traceback.format_exc())))


def _sweep_segments(prefix: str) -> list[str]:
    """Unlink any of the run's segments still present (Linux tmpfs view).

    Normally none exist: receivers unlink on attach.  Segments left by a
    crashed/deadlocked run — or by messages that were sent but never
    received — are reclaimed here, which is the no-leak guarantee the
    lifecycle tests assert on every exit path.
    """
    swept = []
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-tmpfs platforms
        return swept
    for entry in os.listdir(shm_dir):
        if entry.startswith(prefix):
            try:
                os.unlink(os.path.join(shm_dir, entry))
                swept.append(entry)
            except FileNotFoundError:
                pass
    return swept


def _shutdown(procs, wiring: _Wiring, grace: float = 2.0) -> None:
    """Abort, give workers *grace* seconds to unwind, then terminate."""
    wiring.abort.set()
    deadline = time.monotonic() + grace
    for proc in procs:
        proc.join(max(0.0, deadline - time.monotonic()))
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(5.0)


def run_parallel(
    nprocs: int,
    fn,
    args=(),
    kwargs=None,
    machine: MachineModel | None = None,
    trace: bool = False,
    deadlock_timeout: float = 30.0,
    start_method: str | None = None,
    threshold: int | None = None,
):
    """Run ``fn(comm, *args, **kwargs)`` on *nprocs* rank processes.

    The process-parallel counterpart of the in-process branch of
    :func:`~repro.runtime.spmd.spmd_run` (which is the intended caller —
    use ``spmd_run(..., backend="parallel")``).  Returns the same
    :class:`~repro.runtime.spmd.RunResult`: per-rank values and final
    virtual clocks, a merged tracer when *trace* is set, and every
    worker's metrics folded into the parent's registry.
    """
    import multiprocessing as mp

    from repro.machines.catalog import IDEAL
    from repro.runtime.spmd import RunResult

    machine = IDEAL if machine is None else machine
    ctx = mp.get_context(start_method or default_start_method())
    prefix = f"repro-{os.getpid()}-{next(_RUN_IDS)}"
    wiring = _Wiring(ctx, nprocs, prefix, shm_threshold() if threshold is None else threshold)
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(rank, nprocs, fn, tuple(args), dict(kwargs or {}), machine, trace, wiring),
            name=f"repro-rank-{rank}",
            daemon=True,
        )
        for rank in range(nprocs)
    ]

    done: dict[int, tuple] = {}
    failure: tuple[int, BaseException, str] | None = None
    deadlock: dict[int, str] | None = None

    def handle(record) -> None:
        nonlocal failure
        kind, rank, payload = record
        if kind == "done":
            done[rank] = payload
        elif kind == "error" and failure is None:
            failure = (rank, payload[0], payload[1])
        # "aborted" records only appear after the parent already decided
        # to unwind; nothing to do with them.

    try:
        for proc in procs:
            proc.start()
        stall_progress: int | None = None
        stall_since = 0.0
        while len(done) < nprocs and failure is None:
            if wiring.results.poll(_TICK):
                handle(wiring.results.get())
                stall_progress = None
                continue
            # Crash detection: a worker gone without a terminal record.
            for rank, proc in enumerate(procs):
                if rank in done or proc.is_alive():
                    continue
                while wiring.results.poll(0.2):  # drain anything it managed to send
                    handle(wiring.results.get())
                if rank not in done and failure is None:
                    failure = (
                        rank,
                        ReproError(
                            f"rank {rank} process died without reporting "
                            f"(exit code {proc.exitcode})"
                        ),
                        "",
                    )
            if failure is not None:
                break
            # Heartbeat deadlock detection: every unfinished rank blocked
            # and the global progress sum frozen for deadlock_timeout.
            pending = [r for r in range(nprocs) if r not in done]
            if pending and all(wiring.states[r] == _BLOCKED for r in pending):
                snapshot = sum(wiring.progress)
                now = time.monotonic()
                if stall_progress != snapshot:
                    stall_progress, stall_since = snapshot, now
                elif now - stall_since >= deadlock_timeout:
                    deadlock = {r: wiring.describe_of(r) for r in pending}
                    break
            else:
                stall_progress = None
        if failure is not None or deadlock is not None:
            _shutdown(procs, wiring)
            if deadlock is not None:
                detail = "; ".join(f"rank {r}: {d}" for r, d in deadlock.items())
                _DEADLOCKS.inc()
                raise DeadlockError(
                    f"no rank can make progress ({detail})", waiting=deadlock
                )
            rank, original, remote_tb = failure
            if isinstance(original, DeadlockError):
                raise original
            error = RankFailedError(rank, original)
            error.remote_traceback = remote_tb
            raise error from original
        for proc in procs:
            proc.join(10.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(5.0)
    finally:
        for queue in wiring.inboxes:
            try:
                queue.close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        _sweep_segments(prefix)

    values: list[Any] = [None] * nprocs
    times = [0.0] * nprocs
    tracer = Tracer(nprocs) if trace else None
    registry = get_registry()
    for rank, (value, clock, events, snapshot) in done.items():
        values[rank] = value
        times[rank] = clock
        if tracer is not None and events is not None:
            tracer.adopt(rank, events)
        registry.merge_snapshot(snapshot)
    return RunResult(
        values=values,
        times=times,
        machine=machine,
        tracer=tracer,
        schedule=None,
        backend="parallel",
    )
