"""The SPMD virtual machine.

This package simulates a distributed-memory message-passing multicomputer
inside one Python process: each *rank* runs the same program body in its
own thread with a private mailbox, and a per-rank *virtual clock* accrues
time according to a :class:`~repro.machines.MachineModel`.

Two backends are provided:

``deterministic`` (default)
    Exactly one rank executes at a time; a scheduler always resumes the
    lowest-numbered runnable rank.  Execution is fully reproducible and a
    blocked cycle is reported as a :class:`~repro.errors.DeadlockError`
    with per-rank diagnostics.  This realises the paper's "execute the
    archetype program sequentially" debugging methodology.

``threads``
    All ranks run concurrently as OS threads with condition-variable
    mailboxes.  Virtual clocks are computed from the same deterministic
    quantities, so deterministic programs produce identical results and
    identical virtual times under both backends (a property the test
    suite checks).
"""

from repro.runtime.message import ANY_SOURCE, ANY_TAG, Message
from repro.runtime.context import RankContext
from repro.runtime.spmd import RunResult, spmd_run

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "RankContext",
    "RunResult",
    "spmd_run",
]
