"""The SPMD virtual machine.

This package simulates a distributed-memory message-passing multicomputer
inside one Python process: each *rank* runs the same program body in its
own thread with a private mailbox, and a per-rank *virtual clock* accrues
time according to a :class:`~repro.machines.MachineModel`.

Four backends are provided (registered in :mod:`repro.runtime.backends`;
select one with ``spmd_run(..., backend=...)`` or the ``REPRO_BACKEND``
environment variable):

``deterministic`` (default)
    Exactly one rank executes at a time; the scheduler always resumes the
    runnable rank furthest behind in virtual time (ties by rank id).
    Execution is fully reproducible and a blocked cycle is reported as a
    :class:`~repro.errors.DeadlockError` with per-rank diagnostics.  This
    realises the paper's "execute the archetype program sequentially"
    debugging methodology.

``fuzzed``
    Run-to-block like ``deterministic``, but every scheduling decision is
    drawn from a seeded PRNG and wildcard-receive matching may be
    perturbed among legal candidates: each seed is a distinct,
    reproducible legal interleaving.  A
    :class:`~repro.runtime.scheduler.FaultPlan` can additionally inject
    message delays and rank crashes.  This is the substrate of the
    :mod:`repro.verify` schedule-verification layer.

``threads``
    All ranks run concurrently as OS threads with condition-variable
    mailboxes.  Virtual clocks are computed from the same deterministic
    quantities, so deterministic programs produce identical results and
    identical virtual times under every backend (a property the test
    suite checks).
"""

from repro.runtime.message import ANY_SOURCE, ANY_TAG, Message
from repro.runtime.context import RankContext
from repro.runtime.scheduler import FaultPlan
from repro.runtime.spmd import RunResult, fuzzed_schedule, spmd_run

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "FaultPlan",
    "Message",
    "RankContext",
    "RunResult",
    "fuzzed_schedule",
    "spmd_run",
]
