"""The SPMD entry point: run one function body on every rank.

``spmd_run(nprocs, fn, args=...)`` executes ``fn(comm, *args, **kwargs)``
on every rank of a virtual machine and returns a :class:`RunResult` with
the per-rank return values and virtual times.  ``comm`` is a full
:class:`repro.comm.Comm` (point-to-point plus collectives plus the
archetype communication operations).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.machines.catalog import IDEAL
from repro.machines.model import MachineModel
from repro.runtime.scheduler import Backend, DeterministicBackend, ThreadedBackend
from repro.trace.tracer import Tracer

#: registered backend names -> constructor
_BACKENDS = ("deterministic", "threads")


@dataclass
class RunResult:
    """Outcome of an SPMD run.

    Attributes
    ----------
    values:
        Per-rank return values of the program body, indexed by rank.
    times:
        Per-rank final virtual clocks (seconds on the modelled machine).
    machine:
        The machine model the run was charged against.
    tracer:
        Event trace when tracing was requested, else ``None``.
    """

    values: list[Any]
    times: list[float]
    machine: MachineModel
    tracer: Tracer | None = field(default=None, repr=False)

    @property
    def nprocs(self) -> int:
        return len(self.values)

    @property
    def elapsed(self) -> float:
        """Virtual makespan: the slowest rank's final clock."""
        return max(self.times, default=0.0)

    def speedup_over(self, sequential_time: float) -> float:
        """Speedup of this run relative to a sequential virtual time."""
        if self.elapsed <= 0:
            raise ReproError("run has zero elapsed virtual time")
        return sequential_time / self.elapsed


def spmd_run(
    nprocs: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: Mapping[str, Any] | None = None,
    machine: MachineModel = IDEAL,
    backend: str = "deterministic",
    trace: bool = False,
    deadlock_timeout: float = 30.0,
) -> RunResult:
    """Run ``fn(comm, *args, **kwargs)`` on *nprocs* ranks.

    Parameters
    ----------
    nprocs:
        Number of ranks (>= 1).
    fn:
        The program body.  Its first argument is the rank's
        :class:`repro.comm.Comm`; remaining arguments are shared by all
        ranks (treat them as read-only: ranks live in one address space
        here, whereas the modelled machine has distributed memory).
    machine:
        Performance model used to charge virtual time (default: the
        cost-free ``IDEAL`` machine).
    backend:
        ``"deterministic"`` (reproducible run-to-block scheduling) or
        ``"threads"`` (free-running OS threads).
    trace:
        When true, record per-rank event traces on ``RunResult.tracer``.
    deadlock_timeout:
        For the threaded backend, seconds a receive may starve before the
        run is declared deadlocked.
    """
    if nprocs < 1:
        raise ReproError(f"nprocs must be >= 1, got {nprocs}")
    if nprocs > machine.max_nodes:
        raise ReproError(
            f"machine {machine.name!r} has at most {machine.max_nodes} nodes; "
            f"requested {nprocs}"
        )
    if backend not in _BACKENDS:
        raise ReproError(f"unknown backend {backend!r}; choose from {_BACKENDS}")

    # Imported here (not at module top) to keep the layering acyclic:
    # repro.comm builds on repro.runtime primitives, while this entry
    # point hands applications the full communicator.
    from repro.comm.communicator import Comm

    engine: Backend
    if backend == "deterministic":
        engine = DeterministicBackend(nprocs)
    else:
        engine = ThreadedBackend(nprocs, deadlock_timeout=deadlock_timeout)

    tracer = Tracer(nprocs) if trace else None
    comms = [
        Comm(rank=rank, size=nprocs, backend=engine, machine=machine, tracer=tracer)
        for rank in range(nprocs)
    ]
    engine.set_clock_source(lambda rank: comms[rank].clock)
    values: list[Any] = [None] * nprocs
    kwargs = dict(kwargs or {})

    def make_body(rank: int) -> Callable[[], None]:
        def body() -> None:
            values[rank] = fn(comms[rank], *args, **kwargs)

        return body

    engine.run([make_body(rank) for rank in range(nprocs)])
    return RunResult(
        values=values,
        times=[c.clock for c in comms],
        machine=machine,
        tracer=tracer,
    )
