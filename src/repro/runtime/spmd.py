"""The SPMD entry point: run one function body on every rank.

``spmd_run(nprocs, fn, args=...)`` executes ``fn(comm, *args, **kwargs)``
on every rank of a virtual machine and returns a :class:`RunResult` with
the per-rank return values and virtual times.  ``comm`` is a full
:class:`repro.comm.Comm` (point-to-point plus collectives plus the
archetype communication operations).
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.machines.catalog import IDEAL
from repro.machines.model import MachineModel
from repro.runtime import backends
from repro.runtime.scheduler import FaultPlan, FuzzedBackend
from repro.trace.tracer import Tracer


@dataclass(frozen=True)
class _ScheduleOverride:
    """Active :func:`fuzzed_schedule` directive."""

    seed: int
    perturb_matching: bool
    faults: FaultPlan | None


_override: _ScheduleOverride | None = None


@contextlib.contextmanager
def fuzzed_schedule(
    seed: int,
    perturb_matching: bool = True,
    faults: FaultPlan | None = None,
) -> Iterator[None]:
    """Force ``backend="deterministic"`` runs inside the block onto a
    :class:`~repro.runtime.scheduler.FuzzedBackend` with *seed*.

    This is how existing programs and tests are promoted to schedule
    fuzzing without changing their call sites: any :func:`spmd_run` (or
    :meth:`Archetype.run <repro.core.archetype.Archetype.run>` in
    sequential mode) executed under the context manager explores the
    seed's interleaving instead of the canonical one.  Runs that
    explicitly request ``backend="threads"`` or ``backend="fuzzed"`` are
    left alone.  Not reentrant and not thread-safe at the driver level —
    one exploration at a time.
    """
    global _override
    previous = _override
    _override = _ScheduleOverride(seed, perturb_matching, faults)
    try:
        yield
    finally:
        _override = previous


@dataclass
class RunResult:
    """Outcome of an SPMD run.

    Attributes
    ----------
    values:
        Per-rank return values of the program body, indexed by rank.
    times:
        Per-rank final virtual clocks (seconds on the modelled machine).
    machine:
        The machine model the run was charged against.
    tracer:
        Event trace when tracing was requested, else ``None``.
    """

    values: list[Any]
    times: list[float]
    machine: MachineModel
    tracer: Tracer | None = field(default=None, repr=False)
    #: for fuzzed runs, the backend's (rank, clock) scheduling log —
    #: identical across runs with the same seed (else ``None``)
    schedule: list[tuple[int, float]] | None = field(default=None, repr=False)
    #: canonical name of the backend that produced this result
    backend: str = "deterministic"

    @property
    def nprocs(self) -> int:
        return len(self.values)

    @property
    def elapsed(self) -> float:
        """Virtual makespan: the slowest rank's final clock."""
        return max(self.times, default=0.0)

    def speedup_over(self, sequential_time: float) -> float:
        """Speedup of this run relative to a sequential virtual time."""
        if self.elapsed <= 0:
            raise ReproError("run has zero elapsed virtual time")
        return sequential_time / self.elapsed


def spmd_run(
    nprocs: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: Mapping[str, Any] | None = None,
    machine: MachineModel = IDEAL,
    backend: str | None = None,
    trace: bool = False,
    deadlock_timeout: float = 30.0,
    seed: int = 0,
    perturb_matching: bool = True,
    faults: FaultPlan | None = None,
) -> RunResult:
    """Run ``fn(comm, *args, **kwargs)`` on *nprocs* ranks.

    Parameters
    ----------
    nprocs:
        Number of ranks (>= 1).
    fn:
        The program body.  Its first argument is the rank's
        :class:`repro.comm.Comm`; remaining arguments are shared by all
        ranks (treat them as read-only: ranks live in one address space
        here, whereas the modelled machine has distributed memory).
    machine:
        Performance model used to charge virtual time (default: the
        cost-free ``IDEAL`` machine).
    backend:
        A name registered in :mod:`repro.runtime.backends`:
        ``"deterministic"`` (reproducible run-to-block scheduling),
        ``"fuzzed"`` (seeded random run-to-block scheduling — see
        :class:`~repro.runtime.scheduler.FuzzedBackend`), ``"threads"``
        (free-running OS threads), or ``"parallel"`` (one OS process per
        rank — :mod:`repro.runtime.parallel`).  ``None`` (the default)
        resolves the ``REPRO_BACKEND`` environment variable, falling back
        to deterministic.
    trace:
        When true, record per-rank event traces on ``RunResult.tracer``.
    deadlock_timeout:
        For the threaded and parallel backends, seconds a receive may
        starve (parallel: seconds of global no-progress with every rank
        blocked) before the run is declared deadlocked.
    seed, perturb_matching, faults:
        Fuzzed-backend knobs (ignored by the other backends): the PRNG
        seed selecting the interleaving, whether wildcard-receive matching
        is randomised among legal candidates, and an optional
        :class:`~repro.runtime.scheduler.FaultPlan` to inject.

    A surrounding :func:`fuzzed_schedule` context overrides
    ``backend="deterministic"`` requests onto the fuzzed backend.
    """
    if nprocs < 1:
        raise ReproError(f"nprocs must be >= 1, got {nprocs}")
    if nprocs > machine.max_nodes:
        raise ReproError(
            f"machine {machine.name!r} has at most {machine.max_nodes} nodes; "
            f"requested {nprocs}"
        )
    backend = backends.resolve(backend)
    if backend == "deterministic" and _override is not None:
        backend = "fuzzed"
        seed = _override.seed
        perturb_matching = _override.perturb_matching
        faults = _override.faults

    if not backends.get(backend).in_process:
        from repro.runtime.parallel import run_parallel

        return run_parallel(
            nprocs,
            fn,
            args=args,
            kwargs=kwargs,
            machine=machine,
            trace=trace,
            deadlock_timeout=deadlock_timeout,
        )

    # Imported here (not at module top) to keep the layering acyclic:
    # repro.comm builds on repro.runtime primitives, while this entry
    # point hands applications the full communicator.
    from repro.comm.communicator import Comm

    engine = backends.create(
        backend,
        nprocs,
        seed=seed,
        perturb_matching=perturb_matching,
        faults=faults,
        deadlock_timeout=deadlock_timeout,
    )

    tracer = Tracer(nprocs) if trace else None
    engine.tracer = tracer
    comms = [
        Comm(rank=rank, size=nprocs, backend=engine, machine=machine, tracer=tracer)
        for rank in range(nprocs)
    ]
    engine.set_clock_source(lambda rank: comms[rank].clock)
    values: list[Any] = [None] * nprocs
    kwargs = dict(kwargs or {})

    def make_body(rank: int) -> Callable[[], None]:
        def body() -> None:
            values[rank] = fn(comms[rank], *args, **kwargs)

        return body

    engine.run([make_body(rank) for rank in range(nprocs)])
    return RunResult(
        values=values,
        times=[c.clock for c in comms],
        machine=machine,
        tracer=tracer,
        schedule=list(engine.schedule_log) if isinstance(engine, FuzzedBackend) else None,
        backend=backend,
    )
