"""Block-distributed N-dimensional grids with ghost boundaries.

A :class:`DistGrid` is the mesh-spectral archetype's data object: a global
N-d array distributed in regular contiguous blocks over a Cartesian
process grid (paper §3.2), each local section surrounded by an optional
*ghost boundary* of shadow copies refreshed by
:func:`repro.comm.boundary.exchange_ghosts`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import DistributionError
from repro.comm.boundary import GhostExchange, exchange_ghosts, exchange_ghosts_start
from repro.comm.cart import CartGrid, choose_proc_grid, override_for
from repro.comm.communicator import Comm
from repro.comm.layout import Layout, block_layout
from repro.comm.redistribute import gather_to_root, redistribute, scatter_from_root


def _resolve_proc_grid(
    comm: Comm, ndim: int, dist: str | tuple[int, ...]
) -> tuple[int, ...]:
    """Turn a distribution spec into explicit process-grid dims."""
    if isinstance(dist, tuple):
        grid = dist
    elif dist == "blocks":
        # Only the *default* factorisation is overridable: explicit dims
        # and the rows/cols spectral distributions mean what they say.
        grid = override_for(comm.size, ndim) or choose_proc_grid(comm.size, ndim)
    elif dist == "rows":
        grid = (comm.size, *([1] * (ndim - 1)))
    elif dist == "cols":
        if ndim < 2:
            raise DistributionError("'cols' distribution needs >= 2 dimensions")
        grid = (1, comm.size, *([1] * (ndim - 2)))
    else:
        raise DistributionError(
            f"unknown distribution {dist!r}; use 'blocks', 'rows', 'cols' or dims"
        )
    if len(grid) != ndim:
        raise DistributionError(f"process grid {grid} does not match ndim {ndim}")
    n = 1
    for d in grid:
        n *= d
    if n != comm.size:
        raise DistributionError(
            f"process grid {grid} needs {n} ranks, communicator has {comm.size}"
        )
    return grid


class DistGrid:
    """One rank's handle on a block-distributed global grid.

    Attributes
    ----------
    local:
        This rank's section *including* ghost layers; mutate freely, then
        call :meth:`exchange` before any stencil read of neighbours.
    """

    def __init__(
        self,
        comm: Comm,
        global_shape: tuple[int, ...],
        dist: str | tuple[int, ...] = "blocks",
        ghost: int = 0,
        dtype: Any = np.float64,
        fill: float = 0.0,
    ):
        if ghost < 0:
            raise DistributionError(f"ghost width must be >= 0, got {ghost}")
        self.comm = comm
        self.global_shape = tuple(int(n) for n in global_shape)
        proc_grid = _resolve_proc_grid(comm, len(self.global_shape), dist)
        self.cart = CartGrid(proc_grid)
        self.layout: Layout = block_layout(self.global_shape, proc_grid)
        self.ghost = ghost
        self.dtype = np.dtype(dtype)
        shape = tuple(n + 2 * ghost for n in self.layout.shape(comm.rank))
        self.local = np.full(shape, fill, dtype=self.dtype)

    # -- construction helpers ------------------------------------------------
    @classmethod
    def from_global(
        cls,
        comm: Comm,
        full: np.ndarray | None,
        dist: str | tuple[int, ...] = "blocks",
        ghost: int = 0,
        root: int = 0,
    ) -> "DistGrid":
        """Scatter an array held on *root* into a distributed grid."""
        shape = full.shape if comm.rank == root else None
        dtype = full.dtype if comm.rank == root else None
        shape = comm.bcast(shape, root=root)
        dtype = comm.bcast(dtype, root=root)
        grid = cls(comm, shape, dist=dist, ghost=ghost, dtype=dtype)
        section = scatter_from_root(comm, full, grid.layout, root=root, dtype=dtype)
        grid.interior[...] = section
        return grid

    def like(self, fill: float = 0.0, dtype: Any = None) -> "DistGrid":
        """A new grid with this grid's shape/distribution/ghosts."""
        out = DistGrid.__new__(DistGrid)
        out.comm = self.comm
        out.global_shape = self.global_shape
        out.cart = self.cart
        out.layout = self.layout
        out.ghost = self.ghost
        out.dtype = np.dtype(dtype) if dtype is not None else self.dtype
        out.local = np.full(self.local.shape, fill, dtype=out.dtype)
        return out

    # -- geometry ----------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.global_shape)

    @property
    def rect(self) -> tuple[tuple[int, int], ...]:
        """Global (lo, hi) bounds of this rank's owned section."""
        return self.layout.rect(self.comm.rank)

    @property
    def interior(self) -> np.ndarray:
        """View of the owned section (ghost layers excluded)."""
        if self.ghost == 0:
            return self.local
        g = self.ghost
        return self.local[tuple(slice(g, n - g) for n in self.local.shape)]

    def owned_shape(self) -> tuple[int, ...]:
        return self.layout.shape(self.comm.rank)

    def axis_coords(self, axis: int) -> np.ndarray:
        """Global indices of the owned cells along *axis*."""
        lo, hi = self.rect[axis]
        return np.arange(lo, hi)

    def coord_arrays(self) -> tuple[np.ndarray, ...]:
        """Broadcastable global-index arrays for the owned section.

        ``xs, ys = grid.coord_arrays()`` lets vectorised initialisation
        write ``grid.interior[...] = f(xs, ys)``.
        """
        return np.ix_(*(self.axis_coords(d) for d in range(self.ndim)))

    def interior_intersection(
        self, margin: int | tuple[int, ...] = 1
    ) -> tuple[slice, ...]:
        """Local slices (into :attr:`interior`) of owned cells at least
        *margin* away from the *global* domain edge.

        This is the paper's ``x_intersect``/``y_intersect`` computation
        (Figure 14): grid operations that must skip the physical boundary
        update only this region.  *margin* may be per-axis (use 0 on
        periodic axes).  Empty slices result when a rank owns only
        boundary cells.
        """
        if isinstance(margin, int):
            margin = tuple(margin for _ in range(self.ndim))
        if len(margin) != self.ndim:
            raise DistributionError(
                f"margin {margin} does not match grid rank {self.ndim}"
            )
        out = []
        for d in range(self.ndim):
            lo, hi = self.rect[d]
            glo = max(lo, margin[d])
            ghi = min(hi, self.global_shape[d] - margin[d])
            out.append(slice(glo - lo, max(ghi - lo, glo - lo)))
        return tuple(out)

    # -- communication -------------------------------------------------------------
    def exchange(self, periodic: tuple[bool, ...] | bool = False) -> None:
        """Refresh ghost layers from neighbouring ranks' edge values."""
        if self.ghost == 0:
            raise DistributionError("grid has no ghost layers to exchange")
        exchange_ghosts(self.comm, self.local, self.cart, self.ghost, periodic)

    def exchange_start(
        self, periodic: tuple[bool, ...] | bool = False
    ) -> GhostExchange:
        """Begin an overlapped ghost refresh; compute on interior cells,
        then ``handle.wait()`` before reading ghosts.  Corner/edge ghost
        cells are stale afterwards (see :class:`GhostExchange`)."""
        if self.ghost == 0:
            raise DistributionError("grid has no ghost layers to exchange")
        return exchange_ghosts_start(
            self.comm, self.local, self.cart, self.ghost, periodic
        )

    def fill_edge_ghosts(self, mode: str = "copy") -> None:
        """Fill ghost cells on *physical* domain edges from own edge values.

        ``"copy"`` imposes a zero-gradient (outflow) condition; ``"zero"``
        clears them.  Interior-facing ghosts are owned by :meth:`exchange`
        and are not touched here.
        """
        if self.ghost == 0:
            raise DistributionError("grid has no ghost layers to fill")
        g = self.ghost
        for axis in range(self.ndim):
            lo, hi = self.rect[axis]
            n = self.local.shape[axis]
            if lo == 0:
                dst = tuple(
                    slice(0, g) if d == axis else slice(None) for d in range(self.ndim)
                )
                src = tuple(
                    slice(g, g + 1) if d == axis else slice(None)
                    for d in range(self.ndim)
                )
                self.local[dst] = self.local[src] if mode == "copy" else 0.0
            if hi == self.global_shape[axis]:
                dst = tuple(
                    slice(n - g, n) if d == axis else slice(None)
                    for d in range(self.ndim)
                )
                src = tuple(
                    slice(n - g - 1, n - g) if d == axis else slice(None)
                    for d in range(self.ndim)
                )
                self.local[dst] = self.local[src] if mode == "copy" else 0.0

    def redistributed(self, dist: str | tuple[int, ...], ghost: int | None = None) -> "DistGrid":
        """A copy of the grid under a different distribution (paper Fig. 7)."""
        new = DistGrid(
            self.comm,
            self.global_shape,
            dist=dist,
            ghost=self.ghost if ghost is None else ghost,
            dtype=self.dtype,
        )
        new.interior[...] = redistribute(
            self.comm, np.ascontiguousarray(self.interior), self.layout, new.layout
        )
        return new

    def gather(self, root: int = 0) -> np.ndarray | None:
        """The full global array on *root* (``None`` elsewhere)."""
        return gather_to_root(
            self.comm, np.ascontiguousarray(self.interior), self.layout, root=root
        )

    def allgather(self) -> np.ndarray:
        """The full global array on every rank (small grids only)."""
        full = self.gather(root=0)
        return self.comm.bcast(full, root=0)

    # -- convenience -----------------------------------------------------------------
    def fill_from(self, fn: Callable[..., np.ndarray]) -> None:
        """Initialise the owned section from global indices:
        ``grid.fill_from(lambda i, j: np.sin(i) * j)``."""
        self.interior[...] = fn(*self.coord_arrays())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DistGrid {self.global_shape} over {self.cart.dims} "
            f"ghost={self.ghost} rank={self.comm.rank}>"
        )
