"""Base archetype abstraction.

The program-development strategy of paper §1.2:

1. start with a sequential algorithm;
2. identify an archetype;
3. write the archetype-structured version (executable sequentially);
4. transform it for the target architecture guided by the archetype;
5. implement on the target's message-passing substrate.

Here steps 3–5 collapse into one artifact: an :class:`Archetype` subclass
holds the application-specific "blanks" (callbacks) and its ``run`` method
executes the filled-in skeleton on the virtual machine, either with the
deterministic scheduler (the sequentially-executable version) or with free
threads.  The skeleton supplies all process interaction, so applications
contain only sequential code — the paper's central promise.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import ArchetypeError
from repro.machines.catalog import IDEAL
from repro.machines.model import MachineModel
from repro.runtime.spmd import RunResult, spmd_run


class ExecutionMode(str, enum.Enum):
    """How the archetype program's ranks are scheduled.

    ``SEQUENTIAL`` is the paper's debuggable execution: logical processes
    interleave one at a time in rank order.  ``THREADS`` runs ranks
    concurrently as threads of this process; ``PARALLEL`` runs one OS
    process per rank (real multi-core execution).  Deterministic archetype
    programs must produce the same results under all three.
    """

    SEQUENTIAL = "sequential"
    THREADS = "threads"
    PARALLEL = "parallel"

    @property
    def backend(self) -> str:
        if self is ExecutionMode.SEQUENTIAL:
            return "deterministic"
        return "threads" if self is ExecutionMode.THREADS else "parallel"


class Archetype:
    """Common driver for archetype-structured programs.

    Subclasses implement :meth:`body`, the per-rank SPMD program, and may
    override :meth:`prepare` to stage the global problem input before the
    ranks start (e.g. pre-split it into initial local sections).
    """

    #: archetype name used in diagnostics
    name: str = "archetype"

    #: registered application name for tuned-config lookup; ``None`` means
    #: the instance never consults the tuned catalog
    app_name: str | None = None

    def body(self, comm: Any, *args: Any, **kwargs: Any) -> Any:
        """The per-rank program.  Subclasses must override."""
        raise NotImplementedError

    def prepare(self, nprocs: int, *args: Any, **kwargs: Any) -> tuple[tuple, dict]:
        """Stage inputs for a run of *nprocs* ranks.

        Returns the (args, kwargs) actually passed to :meth:`body` on every
        rank.  Default: pass through unchanged.
        """
        return args, kwargs

    def run(
        self,
        nprocs: int,
        *args: Any,
        mode: ExecutionMode | str | None = None,
        machine: MachineModel = IDEAL,
        trace: bool = False,
        proc_grid: tuple[int, ...] | None = None,
        **kwargs: Any,
    ) -> RunResult:
        """Execute the archetype program on *nprocs* ranks.

        Keyword-only parameters select the execution mode, machine model,
        and tracing; everything else is forwarded to the program body.
        ``mode=None`` (the default) defers to the ``REPRO_BACKEND``
        environment default via the backend registry, falling back to
        sequential execution.

        *proc_grid* pins the default ("blocks") process-grid factorisation
        for the run.  When it is left unset and the instance carries an
        :attr:`app_name`, the tuned-config catalog is consulted for a
        winner recorded for this (app, machine, nprocs) — explicit
        parameters always beat the catalog, and ``REPRO_TUNE=0`` disables
        the lookup entirely.
        """
        if nprocs < 1:
            raise ArchetypeError(f"{self.name}: nprocs must be >= 1, got {nprocs}")
        backend = None if mode is None else ExecutionMode(mode).backend
        body_args, body_kwargs = self.prepare(nprocs, *args, **kwargs)
        with self._runtime_config(nprocs, machine, proc_grid):
            return spmd_run(
                nprocs,
                self.body,
                args=body_args,
                kwargs=body_kwargs,
                machine=machine,
                backend=backend,
                trace=trace,
            )

    def _runtime_config(self, nprocs: int, machine: MachineModel, proc_grid):
        """Context scoping the run's grid/knob configuration."""
        from repro.comm.cart import proc_grid_override

        if proc_grid is not None:
            return proc_grid_override(tuple(int(d) for d in proc_grid))
        if self.app_name is not None:
            from repro.tune.catalog import consulting

            return consulting(self.app_name, machine.name, nprocs)
        import contextlib

        return contextlib.nullcontext()
