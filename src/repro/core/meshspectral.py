"""The mesh-spectral archetype (paper §3).

A mesh-spectral program is a composition of the operation classes of
§3.1 over distributed N-dimensional grids:

- **grid operations** — the same pointwise (or stencil) update at every
  point; when neighbouring points are read, the outputs must be disjoint
  from the inputs (enforced here), and a ghost-boundary exchange precedes
  the update;
- **row / column operations** — independent per-row (per-column)
  transforms, requiring by-rows (by-columns) distribution; composing
  operations with different requirements forces a redistribution
  (Figure 7), available as :meth:`MeshContext.redistribute`;
- **reduction operations** — associative combinations of all grid values
  with the postcondition that *all* ranks hold the result (recursive
  doubling, Figure 8);
- **file input/output** — modelled as gather-to-root / scatter-from-root
  around sequential I/O.

Programs are written against a :class:`MeshContext`; the
:class:`MeshProgram` archetype runs them sequentially or SPMD.

Since the kernel-layer refactor every grid operation is *declared* as a
par-loop (:mod:`repro.kernels`) and executed by the context's
:class:`~repro.kernels.runtime.KernelEngine`: ``point_op``,
``stencil_op``, and ``overlapped_update`` keep their signatures as thin
shims over :meth:`MeshContext.parloop`, and programs that declare
access modes directly gain loop fusion and ghost-exchange hoisting (see
``docs/kernel_layer.md``).
"""

from __future__ import annotations

import functools
from collections.abc import Callable
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ArchetypeError
from repro.comm.communicator import Comm
from repro.comm.reductions import MAX, MIN, SUM, Op
from repro.core.archetype import Archetype
from repro.core.globals import GlobalVar
from repro.core.grid import DistGrid
from repro.kernels.ir import (
    READ,
    WRITE,
    Arg,
    Kernel,
    ParLoop,
    RegionKernel,
    StencilView,
    dat_of,
    split_deep_shell,
)
from repro.kernels.runtime import KernelEngine
from repro.obs.metrics import counter_handle, histogram_handle

__all__ = [
    "MeshContext",
    "MeshProgram",
    "StencilView",
    "split_deep_shell",
    "MESH_SUM",
    "MESH_MAX",
    "MESH_MIN",
]

_OP_SECONDS = histogram_handle(
    "core.mesh.op_seconds", help="per-rank virtual time inside a mesh op"
)


def _instrumented(method):
    """Record one ``core.mesh.<op>`` count and the op's virtual duration."""
    name = method.__name__
    counter = counter_handle(
        f"core.mesh.{name}", help=f"mesh-spectral {name} operations"
    )

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        entry = self.comm.clock
        result = method(self, *args, **kwargs)
        counter.inc()
        _OP_SECONDS.observe(self.comm.clock - entry)
        return result

    return wrapper


class MeshContext:
    """The operations a mesh-spectral program is written against."""

    def __init__(self, comm: Comm, overlap: bool = True):
        self.comm = comm
        #: per-rank working-set size (bytes) used by the machine's memory
        #: model; set via :meth:`set_working_set`
        self.working_set: float | None = None
        #: default for the ``overlap=`` argument of stencil operations:
        #: when True, ghost exchanges run nonblocking and interior cells
        #: are updated while boundary slabs are in flight
        self.overlap = overlap
        #: the per-rank par-loop engine (queue, fusion, exchange hoisting)
        self.kernels = KernelEngine(self)

    def set_working_set(self, nbytes: float | None) -> None:
        """Declare this rank's resident working-set size.

        All subsequent compute charges pass it to the machine model,
        which applies a paging penalty when it exceeds node memory —
        the mechanism behind the paper's Figure 18 anomaly (the 5-node
        base configuration paged; larger configurations did not).
        """
        self.working_set = nbytes

    # -- data creation --------------------------------------------------------
    def grid(
        self,
        global_shape: tuple[int, ...],
        dist: str | tuple[int, ...] = "blocks",
        ghost: int = 0,
        dtype: Any = np.float64,
        fill: float = 0.0,
    ) -> DistGrid:
        """Create a distributed grid (see :class:`DistGrid`)."""
        return DistGrid(self.comm, global_shape, dist=dist, ghost=ghost, dtype=dtype, fill=fill)

    def global_var(self, value: Any = None, sync: bool = False) -> GlobalVar:
        """Create a copy-consistent global variable."""
        return GlobalVar(self.comm, value, sync=sync)

    # -- grid operations --------------------------------------------------------
    def parloop(
        self,
        kernel: Kernel | Callable[..., None],
        *args: Arg,
        margin: int | tuple[int, ...] = 0,
        flops_per_point: float = 0.0,
        label: str | None = None,
        overlap: bool | None = None,
    ) -> None:
        """Declare one par-loop (the kernel-layer front door).

        *kernel* is a :class:`~repro.kernels.ir.Kernel` (or a bare
        callable, wrapped as one) applied over the owned interior of the
        first argument's grid intersected with *margin*; *args* bind
        grids with access modes (``Arg(grid, READ, halo=1)``, or the
        :class:`~repro.kernels.ir.Dat` helpers).  Outside a
        :meth:`fuse` block the loop runs immediately; inside one, loops
        queue so adjacent compatible loops fuse and ghost exchanges
        dedup across them.  Exchanges for declared halo reads are
        hoisted automatically when the dat's ghosts are still valid.
        """
        if not isinstance(kernel, Kernel):
            kernel = Kernel(kernel, name=label or "parloop")
        loop = ParLoop(
            kernel,
            list(args),
            margin=margin,
            flops_per_point=flops_per_point,
            label=label,
            overlap=self.overlap if overlap is None else overlap,
        )
        self.kernels.submit(loop)

    def fuse(self):
        """Context manager batching the par-loops declared inside into
        one planner flush: ``with mesh.fuse(): ...``."""
        return self.kernels.fuse()

    @_instrumented
    def point_op(
        self,
        fn: Callable[..., None],
        out: DistGrid,
        *ins: DistGrid,
        flops_per_point: float = 0.0,
        label: str = "point_op",
    ) -> None:
        """Pointwise grid operation: ``fn(out_view, *in_views)``.

        All views are aligned owned-interior views; *fn* must write its
        result into ``out_view`` (e.g. ``out_view[...] = a + b``).  No
        neighbour data is read, so no exchange happens and ``out`` may
        alias an input.  (Shim: declares a pointwise par-loop.)
        """
        self._check_compatible(out, ins)
        args = [Arg(dat_of(out), WRITE)] + [Arg(dat_of(g), READ) for g in ins]
        self.kernels.submit(
            ParLoop(
                Kernel(fn, name=label),
                args,
                margin=0,
                flops_per_point=flops_per_point,
                label=label,
            )
        )

    @_instrumented
    def stencil_op(
        self,
        fn: Callable[..., None],
        out: DistGrid,
        *ins: DistGrid,
        margin: int | tuple[int, ...] = 1,
        periodic: tuple[bool, ...] | bool = False,
        exchange: bool = True,
        overlap: bool | None = None,
        flops_per_point: float = 0.0,
        label: str = "stencil_op",
    ) -> None:
        """Stencil grid operation: ``fn(out_view, *in_stencils)``.

        Each input is wrapped in a :class:`StencilView`; the output view
        covers the owned cells at least *margin* from the global edge
        (Dirichlet-style boundaries stay untouched; pass ``margin=0`` with
        ``periodic=True`` for fully periodic updates).  Per the paper's
        §3.1 restriction, ``out`` must be disjoint from every input; this
        is checked and violations raise :class:`ArchetypeError`.

        With *overlap* (defaulting to the context's :attr:`overlap`), the
        ghost exchange runs nonblocking: cells deep enough that their
        stencil reads stay within owned data are updated while boundary
        slabs travel, then the exchange completes and the shell cells are
        updated.  Numerically identical to the blocking path for star
        stencils (the update is the same elementwise expression applied
        region by region); corner ghosts are stale in overlap mode, so
        box stencils reading diagonal offsets must pass ``overlap=False``.
        (Shim: declares a par-loop whose inputs read at the full ghost
        width; blocking mode requests corner-correct serialised
        exchanges, matching the historical semantics exactly.)
        """
        self._check_compatible(out, ins)
        for g in ins:
            if g.local is out.local:
                raise ArchetypeError(
                    "grid operations reading neighbours require output "
                    "disjoint from inputs (paper §3.1)"
                )
            if g.ghost < 1:
                raise ArchetypeError(
                    f"stencil input grid has ghost width {g.ghost}; need >= 1"
                )
        use_overlap = (self.overlap if overlap is None else overlap) and exchange
        args = [Arg(dat_of(out), WRITE)]
        for g in ins:
            args.append(
                Arg(
                    dat_of(g),
                    READ,
                    halo=g.ghost,
                    periodic=periodic,
                    exchange=exchange,
                    # the old API declares no writes, so ghost validity
                    # cannot be tracked across calls: always refresh
                    fresh=True,
                    # blocking mode historically serialised axes per
                    # grid, leaving corner ghosts correct (box stencils)
                    corners=not use_overlap,
                )
            )
        self.kernels.submit(
            ParLoop(
                Kernel(fn, name=label),
                args,
                margin=margin,
                flops_per_point=flops_per_point,
                label=label,
                overlap=use_overlap,
            )
        )

    @_instrumented
    def overlapped_update(
        self,
        ins: list[DistGrid],
        apply: Callable[[tuple[slice, ...]], None],
        periodic: tuple[bool, ...] | bool = False,
        fill_edges: str | None = None,
        flops_per_point: float = 0.0,
        overlap: bool | None = None,
        label: str = "overlapped_update",
        writes: list[DistGrid] | None = None,
    ) -> None:
        """Packed ghost refresh of *ins* followed by a regionised update.

        The workhorse of multi-grid stencil codes (FDTD, CFD): all *ins*
        are exchanged in one message per neighbour per direction, and
        *apply* is called with slice tuples (in owned-interior
        coordinates) covering every owned cell exactly once.  *apply*
        must compute the update restricted to the given region — any
        composition of elementwise expressions over ghost-shifted reads
        qualifies, and produces bitwise-identical results however the
        region is tiled.

        Blocking mode exchanges, optionally fills physical-edge ghosts
        (*fill_edges* as in :meth:`DistGrid.fill_edge_ghosts`), and calls
        *apply* once on the full owned region.  Overlap mode posts the
        packed exchange, fills edges, updates the deep cells while slabs
        travel, completes the exchange, and updates the shell tiles.
        Corner/edge ghosts are stale in overlap mode (star stencils only).

        *writes* declares the grids *apply* writes (its access set).  A
        declared write set lets the kernel layer keep ghost-validity
        tracking sound across the call; without it, the engine must
        conservatively invalidate every grid's halo (any grid could have
        been written), and the loop fuses with nothing.
        """
        if not ins:
            raise ArchetypeError("overlapped_update needs at least one grid")
        first = ins[0]
        self._check_compatible(first, tuple(ins[1:]))
        ghost = first.ghost
        for g in ins:
            if g.ghost != ghost:
                raise ArchetypeError(
                    "overlapped_update grids must share one ghost width; got "
                    f"{g.ghost} vs {ghost}"
                )
        if ghost < 1:
            raise ArchetypeError("overlapped_update needs ghost width >= 1")
        use_overlap = self.overlap if overlap is None else overlap
        args = [
            Arg(
                dat_of(g),
                READ,
                halo=g.ghost,
                periodic=periodic,
                edges=fill_edges,
                fresh=True,
            )
            for g in ins
        ]
        if writes is not None:
            args.extend(Arg(dat_of(g), WRITE) for g in writes)
        self.kernels.submit(
            ParLoop(
                RegionKernel(apply, name=label),
                args,
                margin=0,
                flops_per_point=flops_per_point,
                label=label,
                overlap=use_overlap,
                writes_undeclared=writes is None,
            )
        )

    # -- row / column operations ---------------------------------------------------
    def _require_whole_axis(self, grid: DistGrid, axis: int, what: str) -> None:
        lo, hi = grid.rect[axis]
        if (lo, hi) != (0, grid.global_shape[axis]):
            raise ArchetypeError(
                f"{what} requires data distributed so each rank holds whole "
                f"extents along axis {axis}; redistribute first (the paper's "
                "Figure 7 pattern) via MeshContext.redistribute"
            )

    @_instrumented
    def row_op(
        self,
        fn: Callable[[np.ndarray], np.ndarray | None],
        grid: DistGrid,
        flops_per_row: float = 0.0,
        label: str = "row_op",
    ) -> None:
        """Apply an independent transform to every row (axis-1 vectors).

        Requires by-rows distribution (each rank owns whole rows).  *fn*
        receives the local ``(nrows_local, ncols)`` block and either
        mutates it in place (returning ``None``) or returns a same-shape
        replacement.
        """
        self.kernels.flush()
        self._require_whole_axis(grid, 1, "a row operation")
        self.kernels.note_write(grid)
        block = grid.interior
        if flops_per_row:
            self.comm.charge(flops_per_row * block.shape[0], label=label, working_set_bytes=self.working_set)
        result = fn(block)
        if result is not None:
            block[...] = result

    @_instrumented
    def col_op(
        self,
        fn: Callable[[np.ndarray], np.ndarray | None],
        grid: DistGrid,
        flops_per_col: float = 0.0,
        label: str = "col_op",
    ) -> None:
        """Apply an independent transform to every column (axis-0 vectors).

        Requires by-columns distribution.  *fn* receives the local block
        transposed to ``(ncols_local, nrows)`` so each *row* of its input
        is one column vector, matching ``row_op``'s calling convention.
        """
        self.kernels.flush()
        self._require_whole_axis(grid, 0, "a column operation")
        self.kernels.note_write(grid)
        block = grid.interior
        if flops_per_col:
            self.comm.charge(flops_per_col * block.shape[1], label=label, working_set_bytes=self.working_set)
        result = fn(np.ascontiguousarray(block.T))
        if result is None:
            raise ArchetypeError(
                "col_op callbacks receive a transposed copy and must return "
                "the transformed block (in-place mutation would be lost)"
            )
        block[...] = result.T

    @_instrumented
    def axis_op(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        grid: DistGrid,
        axis: int,
        flops_per_vector: float = 0.0,
        label: str = "axis_op",
    ) -> None:
        """Apply an independent transform to every vector along *axis*.

        The N-dimensional generalisation of row/column operations (paper
        §3.1: "analogous operations can be defined on subsets of grids
        with more than 2 dimensions").  Requires the grid distributed so
        each rank holds whole extents along *axis*.  *fn* receives the
        local block with *axis* moved last — each row of its input is one
        vector — and must return the transformed block in that layout.
        """
        if not 0 <= axis < grid.ndim:
            raise ArchetypeError(f"axis {axis} out of range for {grid.ndim}-D grid")
        self.kernels.flush()
        self._require_whole_axis(grid, axis, f"an axis-{axis} operation")
        self.kernels.note_write(grid)
        block = grid.interior
        nvectors = block.size // max(block.shape[axis], 1)
        if flops_per_vector:
            self.comm.charge(
                flops_per_vector * nvectors, label=label, working_set_bytes=self.working_set
            )
        moved = np.ascontiguousarray(np.moveaxis(block, axis, -1))
        result = fn(moved)
        if result is None or result.shape != moved.shape:
            raise ArchetypeError(
                "axis_op callbacks receive an axis-last copy and must return "
                "a same-shaped transformed block"
            )
        block[...] = np.moveaxis(result, -1, axis)

    @_instrumented
    def redistribute(self, grid: DistGrid, dist: str | tuple[int, ...]) -> DistGrid:
        """Move a grid to a different distribution (paper Figure 7)."""
        self.kernels.flush()
        return grid.redistributed(dist)

    # -- reductions -------------------------------------------------------------
    def reduce(self, local: Any, op: Op) -> Any:
        """Combine per-rank values; postcondition (paper §3.2): every rank
        holds the identical result."""
        self.kernels.flush()
        return self.comm.allreduce(local, op)

    @_instrumented
    def grid_reduce(
        self,
        grid: DistGrid,
        local_fn: Callable[[np.ndarray], Any],
        op: Op,
        identity: Any = None,
        flops_per_point: float = 1.0,
        label: str = "reduce",
    ) -> Any:
        """Reduce over all grid points: ``local_fn`` reduces the owned
        section, ``op`` combines across ranks.

        ``identity`` is used for ranks owning zero points (possible when
        P exceeds an axis extent).
        """
        self.kernels.flush()
        section = grid.interior
        if flops_per_point:
            self.comm.charge(flops_per_point * section.size, label=label, working_set_bytes=self.working_set)
        local = local_fn(section) if section.size else identity
        if section.size == 0 and identity is None:
            raise ArchetypeError(
                "grid_reduce on an empty section needs an identity value"
            )
        return self.reduce(local, op)

    @_instrumented
    def max_abs_diff(self, a: DistGrid, b: DistGrid) -> float:
        """Convergence helper: global max |a - b| over owned interiors."""
        self.kernels.flush()
        self._check_compatible(a, (b,))
        sec_a, sec_b = a.interior, b.interior
        self.comm.charge(2.0 * sec_a.size, label="max_abs_diff", working_set_bytes=self.working_set)
        local = float(np.max(np.abs(sec_a - sec_b))) if sec_a.size else float("-inf")
        return self.reduce(local, MAX)

    # -- file input/output ----------------------------------------------------------
    def write_grid(self, grid: DistGrid, path: str | Path) -> None:
        """Sequential file output: gather to rank 0, write one .npy file."""
        self.kernels.flush()
        full = grid.gather(root=0)
        if self.comm.rank == 0:
            np.save(Path(path), full)
        self.comm.barrier()

    def read_grid(
        self,
        path: str | Path,
        dist: str | tuple[int, ...] = "blocks",
        ghost: int = 0,
    ) -> DistGrid:
        """Sequential file input: rank 0 reads one .npy file, scatters it."""
        self.kernels.flush()
        full = np.load(Path(path)) if self.comm.rank == 0 else None
        return DistGrid.from_global(self.comm, full, dist=dist, ghost=ghost)

    def write_grid_partitioned(self, grid: DistGrid, directory: str | Path) -> None:
        """Concurrent file output (paper §3.2's second I/O pattern):
        every rank writes its own section file, plus a manifest.

        No data redistribution is needed; actual disk concurrency is the
        host filesystem's business, exactly as the paper notes.
        """
        self.kernels.flush()
        directory = Path(directory)
        if self.comm.rank == 0:
            directory.mkdir(parents=True, exist_ok=True)
            manifest = {
                "global_shape": grid.global_shape,
                "nranks": self.comm.size,
                "rects": [grid.layout.rect(r) for r in range(self.comm.size)],
            }
            np.save(directory / "manifest.npy", np.array([manifest], dtype=object))
        self.comm.barrier()  # manifest/directory exists before section writes
        np.save(
            directory / f"section{self.comm.rank:05d}.npy",
            np.ascontiguousarray(grid.interior),
        )
        self.comm.barrier()

    def read_grid_partitioned(
        self,
        directory: str | Path,
        dist: str | tuple[int, ...] = "blocks",
        ghost: int = 0,
    ) -> DistGrid:
        """Concurrent file input: each rank reads exactly the section
        files intersecting its target rectangle.

        The reading configuration is independent of the writing one —
        any process count and distribution can read any partitioned
        grid, because the manifest records each file's rectangle.
        """
        self.kernels.flush()
        directory = Path(directory)
        manifest = np.load(directory / "manifest.npy", allow_pickle=True)[0]
        global_shape = tuple(manifest["global_shape"])
        grid = DistGrid(self.comm, global_shape, dist=dist, ghost=ghost)
        my = grid.rect
        for stored_rank, rect in enumerate(manifest["rects"]):
            overlap = []
            empty = False
            for (alo, ahi), (blo, bhi) in zip(my, rect):
                lo, hi = max(alo, blo), min(ahi, bhi)
                if lo >= hi:
                    empty = True
                    break
                overlap.append((lo, hi))
            if empty or any(hi - lo == 0 for lo, hi in rect):
                continue
            section = np.load(directory / f"section{stored_rank:05d}.npy")
            src = tuple(
                slice(lo - blo, hi - blo)
                for (lo, hi), (blo, _) in zip(overlap, rect)
            )
            dst = tuple(
                slice(lo - alo, hi - alo)
                for (lo, hi), (alo, _) in zip(overlap, my)
            )
            grid.interior[dst] = section[src]
        self.comm.barrier()
        return grid

    # -- misc -----------------------------------------------------------------------
    def charge(self, flops: float, label: str = "") -> None:
        """Charge extra analytic work to this rank's virtual clock."""
        self.kernels.flush()
        self.comm.charge(flops, label=label, working_set_bytes=self.working_set)

    def _check_compatible(self, out: DistGrid, ins: tuple[DistGrid, ...]) -> None:
        for g in ins:
            if g.layout.rects != out.layout.rects:
                raise ArchetypeError(
                    "grids in one operation must share a distribution; "
                    "redistribute first"
                )


class MeshProgram(Archetype):
    """Archetype driver for mesh-spectral programs.

    The user's *program* is a function ``program(mesh, *args, **kwargs)``
    written against a :class:`MeshContext`.  ``MeshProgram(program).run(P)``
    executes it on P ranks; running with ``mode="sequential"`` gives the
    paper's debuggable sequential execution of the same code.
    """

    name = "mesh-spectral"

    def __init__(self, program: Callable[..., Any], app_name: str | None = None):
        self.program = program
        self.app_name = app_name

    def body(self, comm: Comm, *args: Any, **kwargs: Any) -> Any:
        return self.program(MeshContext(comm), *args, **kwargs)


# Re-exported reduction ops so mesh programs rarely need repro.comm imports.
MESH_SUM = SUM
MESH_MAX = MAX
MESH_MIN = MIN
