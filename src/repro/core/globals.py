"""Global variables with copy consistency (paper §3.2).

On a distributed-memory machine every rank keeps a duplicate copy of each
"global" variable, and the archetype must guarantee the copies stay
synchronised: a global may only change through operations that establish
the same value on every rank (deterministic initialisation, broadcast,
or the result of a reduction, whose postcondition is exactly that).

:class:`GlobalVar` encodes the discipline: :meth:`set_from_reduction` and
:meth:`set_from_root` perform the communication themselves, and bare
assignment is funnelled through :meth:`assign`, which documents the
caller's obligation.  :meth:`check_consistent` verifies the invariant at
runtime (used in tests and debug runs).
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.errors import ArchetypeError
from repro.comm.communicator import Comm
from repro.comm.reductions import MIN, Op


def _fingerprint(value: Any) -> bytes:
    """A deterministic digest of a global's value for consistency checks."""
    h = hashlib.sha256()
    if isinstance(value, np.ndarray):
        h.update(str(value.dtype).encode())
        h.update(str(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    else:
        h.update(repr(value).encode())
    return h.digest()


class GlobalVar:
    """A per-rank copy of a logically global variable."""

    def __init__(self, comm: Comm, value: Any = None, sync: bool = False):
        """Create the variable; with ``sync=True`` the initial value is
        broadcast from rank 0 so construction itself establishes
        consistency (use when the initialiser is not deterministic)."""
        self._comm = comm
        self._value = comm.bcast(value, root=0) if sync else value

    @property
    def value(self) -> Any:
        return self._value

    def assign(self, value: Any) -> None:
        """Assign a value the caller guarantees is identical on all ranks
        (e.g. a pure function of already-consistent globals)."""
        self._value = value

    def set_from_root(self, value: Any = None, root: int = 0) -> Any:
        """Broadcast *value* from *root* into every copy; returns it."""
        self._value = self._comm.bcast(value, root=root)
        return self._value

    def set_from_reduction(self, local: Any, op: Op) -> Any:
        """Combine per-rank *local* contributions; every copy gets the
        (rank-order canonical, hence identical) result."""
        self._value = self._comm.allreduce(local, op)
        return self._value

    def check_consistent(self) -> None:
        """Raise :class:`ArchetypeError` if copies have diverged.

        Collective: all ranks must call it together.  Compares value
        fingerprints with a MIN/MAX pair of reductions.
        """
        fp = _fingerprint(self._value)
        lowest = self._comm.allreduce(fp, MIN)
        if lowest != fp:
            raise ArchetypeError(
                f"global variable copies diverged on rank {self._comm.rank}"
            )
        # A second reduction direction catches divergence on the rank
        # holding the minimum fingerprint as well.
        from repro.comm.reductions import MAX

        highest = self._comm.allreduce(fp, MAX)
        if highest != fp:
            raise ArchetypeError(
                f"global variable copies diverged on rank {self._comm.rank}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalVar({self._value!r})"
