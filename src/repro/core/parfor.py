"""The paper's "version 1" notation: ``parfor`` / ``forall``.

The initial archetype-based version of an algorithm (paper §1.2 step 3)
is written with exploitable-concurrency constructs — CC++'s ``parfor``
(Figure 4) or HPF's ``forall`` (Figures 10/13) — whose iterations must
be independent.  Such a program "can be executed sequentially by
replacing the parfor loops with for loops", and for deterministic
programs gives the same result as parallel execution.

This module makes that notation executable in one address space:

- :func:`parfor` runs the iteration body over the index range in a
  *deterministically shuffled* order.  Independence means order cannot
  matter, so a program whose iterations secretly depend on each other
  fails loudly when its results change — the shuffle is a built-in
  independence check, not an optimisation.
- :func:`forall` evaluates the element expression for every index
  against a snapshot of the arrays it reads, then assigns — HPF's
  "all right-hand sides before any left-hand side" semantics, which is
  what makes ``forall`` safe for in-place array updates.

The version-1 applications in :mod:`repro.apps.version1` are written
with these constructs and tested for equality against both the plain
sequential algorithms and the SPMD (version 2) archetype programs —
the paper's semantics-preservation chain, end to end.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

import numpy as np

from repro.errors import ArchetypeError


def _shuffled(n: int, seed: int) -> list[int]:
    order = list(range(n))
    rng = np.random.default_rng(seed)
    rng.shuffle(order)
    return order


def parfor(
    n: int,
    body: Callable[[int], Any],
    check_independence: bool = True,
    seed: int = 0x5EED,
) -> list[Any]:
    """Execute ``body(i)`` for ``i in range(n)``; iterations must be
    independent.

    Returns the per-iteration results in index order.  With
    ``check_independence`` (the default) the iterations run in a
    deterministically shuffled order — any hidden inter-iteration
    dependence changes the program's behaviour and is caught by the
    version-equality tests rather than silently serialised.
    """
    if n < 0:
        raise ArchetypeError(f"parfor needs a non-negative count, got {n}")
    results: list[Any] = [None] * n
    order = _shuffled(n, seed) if check_independence else range(n)
    for i in order:
        results[i] = body(i)
    return results


def forall(
    out: np.ndarray,
    indices: Iterable[tuple[int, ...]] | None,
    expr: Callable[..., Any],
    *reads: np.ndarray,
) -> None:
    """HPF-style ``forall``: evaluate *expr* for every index against a
    snapshot of *reads*, then assign into *out*.

    ``indices=None`` means every index of *out*.  ``expr`` receives the
    index components followed by the snapshot arrays:
    ``forall(u_new, None, lambda i, j, u: 0.5 * u[i, j], u)``.

    Snapshotting gives the standard forall guarantee: the right-hand
    side sees pre-update values even when *out* is among the inputs.
    """
    snapshots = tuple(np.array(r, copy=True) for r in reads)
    if indices is None:
        indices = np.ndindex(*out.shape)
    updates = [(idx, expr(*idx, *snapshots)) for idx in indices]
    for idx, value in updates:
        out[idx] = value
