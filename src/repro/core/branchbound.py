"""The branch-and-bound archetype — a *nondeterministic* archetype.

Paper §6 (future work): "some problems are better suited to
nondeterministic archetypes — for example branch and bound — so our
library of archetypes should include such archetypes as well."

Computational pattern: explore a tree of partial solutions, expanding a
node into children (*branch*), pruning any child whose optimistic
*bound* cannot beat the best complete solution found so far (the
*incumbent*).  Parallelization strategy: a manager owns the global open
list and the incumbent; workers repeatedly receive a node (plus the
current incumbent), expand it locally for a bounded number of steps, and
return the surviving frontier and any complete solutions.

The nondeterminism is in the *dataflow*: which worker expands which node
depends on scheduling, so traced message patterns and node counts vary
between runs under the threaded backend.  The archetype still guarantees
a deterministic *result* — the optimal value (and a canonical optimal
solution under deterministic scheduling), which is what the tests pin
down.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import ArchetypeError
from repro.comm.communicator import Comm
from repro.core.archetype import Archetype

_TAG_TO_MANAGER = 401
_TAG_TO_WORKER = 402


@dataclass
class BnBProblem:
    """Application callbacks for a (minimising) branch-and-bound search.

    Parameters
    ----------
    root:
        ``root() -> node`` — the initial partial solution.
    branch:
        ``branch(node) -> children`` — expand a partial solution.  An
        empty list means the node is a dead end.
    bound:
        ``bound(node) -> float`` — an optimistic (lower) bound on the
        best complete solution reachable from *node*.  Must never exceed
        the true value (admissibility), or optimality is lost.
    is_complete:
        ``is_complete(node) -> bool`` — is this a complete solution?
    value:
        ``value(node) -> float`` — objective of a complete solution.
    branch_cost, bound_cost:
        Optional analytic work models (flops) charged per call.
    """

    root: Callable[[], Any]
    branch: Callable[[Any], Sequence[Any]]
    bound: Callable[[Any], float]
    is_complete: Callable[[Any], bool]
    value: Callable[[Any], float]
    branch_cost: float | None = None
    bound_cost: float | None = None


@dataclass
class BnBResult:
    """Outcome of a branch-and-bound run (identical on every rank)."""

    #: objective of the optimal solution (+inf when none exists)
    value: float
    #: an optimal complete solution node (None when none exists)
    solution: Any
    #: total nodes expanded across all ranks
    expanded: int


class BranchAndBound(Archetype):
    """Manager–worker branch and bound.

    Rank 0 manages the global open list (a best-first priority queue) and
    the incumbent; other ranks are workers.  ``chunk`` controls the
    work-grain: a worker expands up to *chunk* nodes best-first before
    reporting back, trading manager traffic against pruning quality
    (workers prune against a possibly stale incumbent).

    With one rank the search runs sequentially — the archetype's
    "sequential execution" is simply the P=1 instantiation here, since a
    nondeterministic archetype has no canonical interleaved sequential
    form (paper §6).
    """

    name = "branch-and-bound"

    def __init__(self, problem: BnBProblem, chunk: int = 16):
        if chunk < 1:
            raise ArchetypeError(f"chunk must be >= 1, got {chunk}")
        self.problem = problem
        self.chunk = chunk

    # -- shared machinery -------------------------------------------------------
    def _expand_once(
        self,
        comm: Comm,
        node: Any,
        incumbent: float,
        counter: itertools.count,
    ) -> tuple[list[tuple[float, int, Any]], list[tuple[float, Any]]]:
        """Branch one node: returns surviving (bound, tiebreak, child)
        frontier entries and (value, node) complete solutions."""
        p = self.problem
        if p.branch_cost is not None:
            comm.charge(p.branch_cost, label="branch")
        frontier: list[tuple[float, int, Any]] = []
        solutions: list[tuple[float, Any]] = []
        for child in p.branch(node):
            if p.is_complete(child):
                solutions.append((p.value(child), child))
                continue
            if p.bound_cost is not None:
                comm.charge(p.bound_cost, label="bound")
            b = p.bound(child)
            if b < incumbent:
                frontier.append((b, next(counter), child))
        return frontier, solutions

    def _local_search(
        self, comm: Comm, node: Any, incumbent: float, counter: itertools.count
    ) -> tuple[list[tuple[float, int, Any]], float, Any, int]:
        """Best-first expansion of up to ``chunk`` nodes starting at *node*.

        Returns (surviving frontier, best value found, best node found,
        nodes expanded).
        """
        heap: list[tuple[float, int, Any]] = [(self.problem.bound(node), next(counter), node)]
        best_value, best_node = float("inf"), None
        expanded = 0
        while heap and expanded < self.chunk:
            bound, _, current = heapq.heappop(heap)
            if bound >= min(incumbent, best_value):
                continue
            expanded += 1
            frontier, solutions = self._expand_once(
                comm, current, min(incumbent, best_value), counter
            )
            for value, solution in solutions:
                if value < best_value:
                    best_value, best_node = value, solution
            for entry in frontier:
                heapq.heappush(heap, entry)
        survivors = [e for e in heap if e[0] < min(incumbent, best_value)]
        return survivors, best_value, best_node, expanded

    # -- roles -------------------------------------------------------------------
    def _sequential(self, comm: Comm) -> BnBResult:
        counter = itertools.count()
        root = self.problem.root()
        if self.problem.is_complete(root):
            return BnBResult(self.problem.value(root), root, 0)
        heap = [(self.problem.bound(root), next(counter), root)]
        best_value, best_node = float("inf"), None
        expanded = 0
        while heap:
            bound, _, node = heapq.heappop(heap)
            if bound >= best_value:
                continue
            expanded += 1
            frontier, solutions = self._expand_once(comm, node, best_value, counter)
            for value, solution in solutions:
                if value < best_value:
                    best_value, best_node = value, solution
            for entry in frontier:
                heapq.heappush(heap, entry)
        return BnBResult(best_value, best_node, expanded)

    def _manager(self, comm: Comm) -> BnBResult:
        counter = itertools.count()
        root = self.problem.root()
        best_value, best_node = float("inf"), None
        if self.problem.is_complete(root):
            best_value, best_node = self.problem.value(root), root
            heap: list[tuple[float, int, Any]] = []
        else:
            heap = [(self.problem.bound(root), next(counter), root)]
        idle = set(range(1, comm.size))
        busy: set[int] = set()
        expanded_total = 0

        def dispatch() -> None:
            while idle and heap:
                bound, _, node = heapq.heappop(heap)
                if bound >= best_value:
                    continue
                worker = min(idle)
                idle.discard(worker)
                busy.add(worker)
                comm.send(worker, ("work", node, best_value), tag=_TAG_TO_WORKER)

        dispatch()
        while busy:
            msg = comm.recv_msg(tag=_TAG_TO_MANAGER)
            worker = msg.source
            survivors, value, solution, expanded = msg.payload
            busy.discard(worker)
            idle.add(worker)
            expanded_total += expanded
            if value < best_value:
                best_value, best_node = value, solution
            for bound, _, child in survivors:
                if bound < best_value:
                    heapq.heappush(heap, (bound, next(counter), child))
            dispatch()
        for worker in range(1, comm.size):
            comm.send(worker, ("stop", None, None), tag=_TAG_TO_WORKER)
        return BnBResult(best_value, best_node, expanded_total)

    def _worker(self, comm: Comm) -> None:
        counter = itertools.count()
        while True:
            kind, node, incumbent = comm.recv(source=0, tag=_TAG_TO_WORKER)
            if kind == "stop":
                return
            result = self._local_search(comm, node, incumbent, counter)
            comm.send(0, result, tag=_TAG_TO_MANAGER)

    # -- entry -------------------------------------------------------------------
    def body(self, comm: Comm) -> BnBResult:
        if comm.size == 1:
            return self._sequential(comm)
        if comm.rank == 0:
            result = self._manager(comm)
        else:
            self._worker(comm)
            result = None
        # Postcondition: every rank holds the result (like a reduction).
        return comm.bcast(result, root=0)
