"""The archetypes: the paper's primary contribution.

An *archetype* combines a computational pattern with a parallelization
strategy, yielding a dataflow/communication structure (paper §1).  Two
archetypes are provided, as in the paper:

- :class:`~repro.core.onedeep.OneDeepDC` — one-deep divide and conquer
  (§2): a single level of N-way split / solve / merge, with either phase
  optionally degenerate;
- :class:`~repro.core.meshspectral.MeshProgram` — mesh-spectral (§3):
  computations over block-distributed N-dimensional grids built from grid
  operations, row/column operations, reductions, and file I/O, with
  enforced copy-consistency for global variables.

The recursive :class:`~repro.core.traditional.TraditionalDC` baseline
(paper Figure 1) is included for the Figure 6 comparison.

Beyond the paper, the library grows the same machinery into further
archetypes (ROADMAP): :class:`~repro.core.branchbound.BranchAndBound`
(manager/worker task farm) and
:class:`~repro.core.pipeline.PipelineArchetype` (pipeline/farm streaming
with explicit state-access modes and credit-window back-pressure).

Every archetype program can run in ``sequential`` mode (deterministic
run-to-block scheduling — the paper's "execute the parallel structure
sequentially and debug with familiar tools") or ``threads`` mode; for
deterministic programs the two produce identical results, a property the
test suite enforces.
"""

from repro.core.archetype import Archetype, ExecutionMode
from repro.core.onedeep import OneDeepDC, PhaseSpec, SplitterStrategy
from repro.core.traditional import TraditionalDC
from repro.core.grid import DistGrid
from repro.core.globals import GlobalVar
from repro.core.meshspectral import MeshProgram
from repro.core.branchbound import BnBProblem, BnBResult, BranchAndBound
from repro.core.pipeline import (
    FarmStage,
    PipelineArchetype,
    Stage,
    StageContext,
    StageReport,
    StateAccess,
)

__all__ = [
    "Archetype",
    "ExecutionMode",
    "OneDeepDC",
    "PhaseSpec",
    "SplitterStrategy",
    "TraditionalDC",
    "DistGrid",
    "GlobalVar",
    "MeshProgram",
    "BnBProblem",
    "BnBResult",
    "BranchAndBound",
    "PipelineArchetype",
    "FarmStage",
    "Stage",
    "StageContext",
    "StageReport",
    "StateAccess",
]
