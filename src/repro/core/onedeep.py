"""The one-deep divide-and-conquer archetype (paper §2).

The computational pattern: split the problem into exactly N subproblems in
*one* level, solve them independently, and merge the N subsolutions —
avoiding the deep process tree (and its poor average concurrency) of
traditional divide and conquer, and working on data that is distributed
before the computation starts.

Both the split and the merge phase follow the same shape (paper Figure 2):

1. compute phase *parameters* from a small sample of all parts' data
   (e.g. splitters);
2. independently partition each local part into N pieces according to the
   parameters;
3. redistribute the pieces all-to-all so rank *j* receives every part's
   *j*-th piece;
4. locally combine the received pieces.

Either phase may be *degenerate* (paper §2.1.2): a degenerate split means
the initial data distribution is taken as the split (mergesort, skyline);
a degenerate merge means the result is simply the concatenation of the
local subsolutions (quicksort).

The parameters may be computed by a single master and broadcast, or
replicated on all ranks from an allgathered sample — the two strategies
of paper §2.2, selectable per phase via :class:`SplitterStrategy`.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import ArchetypeError
from repro.comm.communicator import Comm
from repro.core.archetype import Archetype
from repro.obs.metrics import CounterHandle, counter_handle, histogram_handle
from repro.util.partition import split_evenly

_PHASE_SECONDS = histogram_handle(
    "core.onedeep.phase_seconds", help="per-rank virtual time inside a phase"
)
_PHASE_BY_LABEL: dict[str, CounterHandle] = {}


def _record_phase(comm: Comm, label: str, entry_clock: float) -> None:
    """Metrics for one completed phase on one rank (counter + duration)."""
    handle = _PHASE_BY_LABEL.get(label)
    if handle is None:
        handle = _PHASE_BY_LABEL[label] = counter_handle(
            f"core.onedeep.phase.{label}", help=f"one-deep {label} phases completed"
        )
    handle.inc()
    _PHASE_SECONDS.observe(comm.clock - entry_clock)


class SplitterStrategy(str, enum.Enum):
    """How phase parameters (splitters) are computed (paper §2.2)."""

    #: rank 0 gathers all samples, computes the parameters, broadcasts them
    MASTER = "master"
    #: every rank allgathers the samples and computes identical parameters
    REPLICATED = "replicated"


@dataclass
class PhaseSpec:
    """Application callbacks for one split or merge phase.

    All callbacks are pure sequential code; the skeleton supplies every
    process interaction.

    Parameters
    ----------
    sample:
        ``sample(local) -> s`` — extract the small local sample used to
        compute phase parameters.
    params:
        ``params(samples, nparts) -> p`` — compute the phase parameters
        from the rank-ordered list of all samples.
    partition:
        ``partition(p, local, nparts) -> pieces`` — cut the local data
        into ``nparts`` pieces; piece ``j`` is shipped to rank ``j``.
    combine:
        ``combine(pieces) -> new_local`` — combine the rank-ordered pieces
        received from all ranks into the new local data.
    sample_cost, params_cost, partition_cost, combine_cost:
        Optional analytic work models (flops), each a function of the data
        its callback processes; used to charge the virtual clock.
    """

    sample: Callable[[Any], Any]
    params: Callable[[Sequence[Any], int], Any]
    partition: Callable[[Any, Any, int], Sequence[Any]]
    combine: Callable[[Sequence[Any]], Any]
    sample_cost: Callable[[Any], float] | None = None
    params_cost: Callable[[Sequence[Any]], float] | None = None
    partition_cost: Callable[[Any], float] | None = None
    combine_cost: Callable[[Any], float] | None = None


class OneDeepDC(Archetype):
    """The one-deep divide-and-conquer skeleton.

    Parameters
    ----------
    solve:
        ``solve(local) -> subsolution`` — the sequential solver applied to
        each part independently (the paper's "local solve").
    split:
        The split :class:`PhaseSpec`, or ``None`` for a degenerate split
        (the initial distribution *is* the split).
    merge:
        The merge :class:`PhaseSpec`, or ``None`` for a degenerate merge
        (the answer is the concatenation of the local subsolutions, which
        the caller assembles from the per-rank return values).
    solve_cost:
        Optional analytic work model for the local solve.
    distribute:
        ``distribute(problem, nparts) -> sections`` used by :meth:`run` to
        stage the initial data distribution (default: contiguous block
        split of a sequence).
    strategy:
        How both phases compute their parameters (paper §2.2).
    """

    name = "one-deep-dc"

    def __init__(
        self,
        solve: Callable[[Any], Any],
        split: PhaseSpec | None = None,
        merge: PhaseSpec | None = None,
        solve_cost: Callable[[Any], float] | None = None,
        distribute: Callable[[Any, int], Sequence[Any]] | None = None,
        strategy: SplitterStrategy | str = SplitterStrategy.REPLICATED,
    ):
        if split is None and merge is None:
            raise ArchetypeError(
                "one-deep D&C with both phases degenerate is embarrassingly "
                "parallel; at least one phase must be supplied"
            )
        self.solve = solve
        self.split = split
        self.merge = merge
        self.solve_cost = solve_cost
        self.distribute = distribute or split_evenly
        self.strategy = SplitterStrategy(strategy)

    # -- staging -------------------------------------------------------------
    def prepare(self, nprocs: int, problem: Any) -> tuple[tuple, dict]:
        """Stage the initial distribution of *problem* over *nprocs* parts."""
        sections = list(self.distribute(problem, nprocs))
        if len(sections) != nprocs:
            raise ArchetypeError(
                f"distribute produced {len(sections)} sections for {nprocs} ranks"
            )
        return (sections,), {}

    # -- skeleton -------------------------------------------------------------
    def body(self, comm: Comm, sections: Sequence[Any]) -> Any:
        """Per-rank skeleton: [split] -> solve -> [merge]."""
        local = sections[comm.rank]
        if self.split is not None:
            entry = comm.clock
            local = self._phase(comm, self.split, local, label="split")
            _record_phase(comm, "split", entry)
        entry = comm.clock
        if self.solve_cost is not None:
            comm.charge(self.solve_cost(local), label="solve")
        sub = self.solve(local)
        _record_phase(comm, "solve", entry)
        if self.merge is not None:
            entry = comm.clock
            sub = self._phase(comm, self.merge, sub, label="merge")
            _record_phase(comm, "merge", entry)
        return sub

    def _phase(self, comm: Comm, spec: PhaseSpec, local: Any, label: str) -> Any:
        """One split/merge phase: params -> partition -> all-to-all -> combine."""
        if spec.sample_cost is not None:
            comm.charge(spec.sample_cost(local), label=f"{label}:sample")
        sample = spec.sample(local)

        if self.strategy is SplitterStrategy.MASTER:
            samples = comm.gather(sample, root=0)
            if comm.rank == 0:
                if spec.params_cost is not None:
                    comm.charge(spec.params_cost(samples), label=f"{label}:params")
                params = spec.params(samples, comm.size)
            else:
                params = None
            params = comm.bcast(params, root=0)
        else:
            samples = comm.allgather(sample)
            if spec.params_cost is not None:
                comm.charge(spec.params_cost(samples), label=f"{label}:params")
            params = spec.params(samples, comm.size)

        if spec.partition_cost is not None:
            comm.charge(spec.partition_cost(local), label=f"{label}:partition")
        pieces = list(spec.partition(params, local, comm.size))
        if len(pieces) != comm.size:
            raise ArchetypeError(
                f"{label} partition produced {len(pieces)} pieces for "
                f"{comm.size} ranks"
            )
        received = comm.alltoall(pieces)
        combined = spec.combine(received)
        if spec.combine_cost is not None:
            comm.charge(spec.combine_cost(combined), label=f"{label}:combine")
        return combined
