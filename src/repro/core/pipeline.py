"""The pipeline/farm archetype: staged streaming with bounded credit windows.

The third archetype of the library (ROADMAP "new archetypes"), following
the FastFlow skeleton shape — an *emitter* streams items into an ordered
list of *stages*, each stage optionally replicated into a *farm* of
workers, and a *collector* gathers the results — combined with the
state-access taxonomy of Danelutto & Torquati ("State access patterns in
embarrassingly parallel computations"): every stage declares how its
per-stage state is accessed (:class:`StateAccess`), and the skeleton
enforces the declared discipline.

Computational pattern
---------------------
A stream of items ``0 .. N-1`` flows through ``nstages`` stages.  Stage
``s`` with ``w_s`` workers processes item ``k`` on worker ``k mod w_s``
(deterministic round-robin ownership), so the mapping of items to
workers — and therefore every message's source, destination, and payload
— is a pure function of the stream and the stage widths, independent of
scheduling.  Each stage transforms one item into exactly one output item
(the mapping is 1:1; filtering/expansion would decouple the index
spaces).

Rank layout: rank 0 is the emitter, the next ``sum(w_s)`` ranks are the
stage workers in stage order, and the last rank is the collector —
``nprocs == 2 + sum(w_s)`` (see :attr:`PipelineArchetype.nprocs`).

Back-pressure
-------------
Every producer→consumer link carries a bounded *credit window*: a
producer may have at most ``window`` unacknowledged items in flight to
any single consumer.  The consumer returns one credit (an empty message)
after fully processing each item; a producer whose window is exhausted
blocks on that credit *by receiving from the specific consumer*, so the
wait is an ordinary specific-source receive charged canonically on the
virtual clock — back-pressure stalls are modelled time, identical on
every backend, and mailbox depth stays bounded by the window instead of
growing with the stream (asserted via the ``runtime.mailbox.depth``
metric in the tests).

End-of-stream
-------------
After its last item, a producer sends one EOS marker to *every* consumer
of its output link.  Because items are owned round-robin by global
index, a consumer that sees EOS where it expected its next item knows
the whole stream has ended (the item it was waiting for would have been
sent, before EOS, by exactly that producer); it then drains the
remaining producers' EOS markers and shuts down, forwarding EOS
downstream.  Producers finally drain their outstanding credits so no
message is left undelivered.

Determinism contract
--------------------
With ordered collection every receive names its source and the receive
order is a pure function of the stream, so per-rank results *and* final
virtual clocks are bitwise identical across the deterministic, fuzzed,
threaded, and process-parallel backends — the same contract the other
archetypes honour, checked by ``tests/test_archetype_contract.py`` and
``python -m repro.verify --cross-backend``.  Unordered collection uses a
wildcard receive at the collector only: the collected *multiset* is
schedule-independent but its order (and the collector's clock) is not,
exactly like any wildcard receive.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import ArchetypeError
from repro.comm.communicator import MAX_USER_TAG, Comm
from repro.core.archetype import Archetype
from repro.obs.metrics import TIME_BUCKETS, counter_handle, histogram_handle
from repro.runtime.message import ANY_SOURCE
from repro.runtime.spmd import RunResult

#: data messages entering stage ``s`` use tag ``_TAG_DATA_BASE + s``
_TAG_DATA_BASE = 500_000
#: credits returned by the consumers of stage ``s`` use this base
_TAG_CREDIT_BASE = 600_000
assert _TAG_CREDIT_BASE < MAX_USER_TAG

_ITEMS = counter_handle(
    "core.pipeline.items", help="items processed by pipeline stage workers"
)
_CREDIT_WAITS = counter_handle(
    "core.pipeline.credit_waits",
    help="sends that blocked on an exhausted credit window",
)
_STAGE_SECONDS = histogram_handle(
    "core.pipeline.stage_seconds",
    buckets=TIME_BUCKETS,
    help="per-worker virtual time from first receive to shutdown",
)


class StateAccess(str, enum.Enum):
    """How a stage's workers access the stage state (Danelutto/Torquati).

    - ``SERIAL``: one logical state updated by consecutive items; the
      stage cannot be farmed (``workers == 1`` is enforced), and items
      are processed strictly in stream order.
    - ``PARTITIONED``: each worker owns a private partition of the
      state, initialised per worker; items only touch their owner's
      partition (the round-robin ownership *is* the partitioning).
    - ``READONLY``: state is immutable after initialisation; the
      callback must return the output item only, and replication across
      workers is free.
    - ``ACCUMULATOR``: each worker folds items into a private
      accumulator; the per-worker finals are combined with the stage's
      ``combine`` in canonical worker order.  For the combined result to
      be width-independent the operation must be associative and
      commutative — that is the application's promise, and the property
      tests fuzz it.
    """

    SERIAL = "serial"
    PARTITIONED = "partitioned"
    READONLY = "readonly"
    ACCUMULATOR = "accumulator"


@dataclass
class Stage:
    """One pipeline stage.

    Parameters
    ----------
    name:
        Unique stage name (diagnostics, report lookup).
    fn:
        The per-item callback, pure sequential code.  Signature depends
        on the state mode: ``fn(ctx, item, state) -> out`` for
        ``READONLY``; ``fn(ctx, item, state) -> (out, new_state)`` for
        ``SERIAL``/``PARTITIONED``/``ACCUMULATOR``.  ``ctx`` is a
        :class:`StageContext` (virtual-clock charging, identity).
    state_access:
        The declared :class:`StateAccess` mode.
    workers:
        Farm width (1 = a plain stage; see :class:`FarmStage`).
    init_state:
        ``init_state(worker) -> state`` — per-worker initial state
        (``None`` ⇒ state starts as ``None``).
    combine:
        ``combine(a, b) -> merged`` — required for ``ACCUMULATOR``
        stages; merges per-worker finals in worker order.
    work_cost:
        Analytic flops charged per item before the callback runs: a
        constant, or ``work_cost(item) -> flops``.
    window:
        Per-stage credit-window override for this stage's *input* link
        (``None`` ⇒ the pipeline default).
    """

    name: str
    fn: Callable[..., Any]
    state_access: StateAccess | str = StateAccess.READONLY
    workers: int = 1
    init_state: Callable[[int], Any] | None = None
    combine: Callable[[Any, Any], Any] | None = None
    work_cost: float | Callable[[Any], float] | None = None
    window: int | None = None

    def __post_init__(self) -> None:
        self.state_access = StateAccess(self.state_access)


@dataclass
class FarmStage(Stage):
    """A worker-replicated stage: a :class:`Stage` whose ``workers``
    defaults to more than one.  Purely declarative sugar — any stage
    with ``workers > 1`` is a farm."""

    workers: int = 2


@dataclass
class StageReport:
    """A stage worker's return value: what it did and its final state."""

    stage: str
    worker: int
    processed: int
    state: Any


class StageContext:
    """What a stage callback sees of the machine: identity plus the
    virtual clock.  Duck-type-compatible with the ``charge`` surface of
    :class:`~repro.comm.communicator.Comm`, so sequential solvers written
    against a communicator (e.g. the branch-and-bound local search) run
    unchanged inside a stage."""

    __slots__ = ("stage", "worker", "_comm")

    def __init__(self, stage: str, worker: int, comm: Comm):
        self.stage = stage
        self.worker = worker
        self._comm = comm

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def clock(self) -> float:
        """This worker's virtual time, in seconds."""
        return self._comm.clock

    def charge(
        self, flops: float, label: str = "", working_set_bytes: float | None = None
    ) -> None:
        """Account *flops* of stage work to the worker's virtual clock."""
        self._comm.charge(
            flops, label=label or f"pipeline:{self.stage}",
            working_set_bytes=working_set_bytes,
        )


class _Downstream:
    """A producer's credit-window bookkeeping for one output link.

    ``push`` routes item *k* to its owner and blocks on a credit from
    that specific consumer when the window is exhausted; ``close`` sends
    EOS to every consumer and then drains the credits still in flight,
    so a finished run leaves no message undelivered.
    """

    __slots__ = ("comm", "ranks", "width", "window", "outstanding", "tag_data", "tag_credit")

    def __init__(self, comm: Comm, ranks: list[int], window: int):
        self.comm = comm
        self.ranks = ranks
        self.width = len(ranks)
        self.window = window
        self.outstanding = [0] * self.width
        # consumers of link s receive data on tag base+s and return
        # credits on the matching credit tag; both are functions of the
        # consumer stage, recovered from the rank list by the caller
        self.tag_data = 0
        self.tag_credit = 0

    def push(self, k: int, value: Any) -> None:
        w = k % self.width
        dest = self.ranks[w]
        if self.outstanding[w] >= self.window:
            _CREDIT_WAITS.inc()
            self.comm.recv(source=dest, tag=self.tag_credit)
            self.outstanding[w] -= 1
        self.comm.send(dest, ("item", value), tag=self.tag_data)
        self.outstanding[w] += 1

    def close(self) -> None:
        for dest in self.ranks:
            self.comm.send(dest, ("eos", None), tag=self.tag_data)
        for w, dest in enumerate(self.ranks):
            for _ in range(self.outstanding[w]):
                self.comm.recv(source=dest, tag=self.tag_credit)
            self.outstanding[w] = 0


class _Upstream:
    """A consumer's deterministic receive schedule for one input link.

    The consumer owns items ``k ≡ worker (mod width)``; for each owned
    item the producer is ``k mod producer_width``, so every receive
    names its source.  ``pull`` returns ``(k, value)`` or ``None`` at
    end of stream (after draining every producer's EOS); ``ack``
    returns one credit to the producer of item *k*.
    """

    __slots__ = ("comm", "ranks", "width", "k", "step", "tag_data", "tag_credit")

    def __init__(
        self, comm: Comm, ranks: list[int], worker: int, step: int,
        tag_data: int, tag_credit: int,
    ):
        self.comm = comm
        self.ranks = ranks
        self.width = len(ranks)
        self.k = worker
        self.step = step
        self.tag_data = tag_data
        self.tag_credit = tag_credit

    def pull(self) -> tuple[int, Any] | None:
        src = self.ranks[self.k % self.width]
        kind, value = self.comm.recv(source=src, tag=self.tag_data)
        if kind == "eos":
            # The stream ended before this consumer's next item: every
            # producer is out of items for it (items are owned by global
            # index), so the others' EOS markers are next in their FIFO
            # channels.  Drain them in rank order — deterministic.
            for other in self.ranks:
                if other != src:
                    okind, _ = self.comm.recv(source=other, tag=self.tag_data)
                    if okind != "eos":  # pragma: no cover - protocol invariant
                        raise ArchetypeError(
                            f"pipeline protocol violation: expected EOS from "
                            f"rank {other}, got {okind!r}"
                        )
            return None
        k, self.k = self.k, self.k + self.step
        return k, value

    def ack(self, k: int) -> None:
        self.comm.send(self.ranks[k % self.width], None, tag=self.tag_credit)


class PipelineArchetype(Archetype):
    """The pipeline/farm skeleton.

    Parameters
    ----------
    stages:
        Ordered :class:`Stage`/:class:`FarmStage` list (at least one).
    window:
        Default credit window per producer→consumer link (≥ 1).  Small
        windows bound memory and propagate back-pressure promptly; large
        windows decouple stages at the price of buffering.  Stages can
        override their input link's window individually.
    ordered:
        Collection mode: ``True`` (default) delivers the collector's
        output list in stream order with fully deterministic receives;
        ``False`` collects in completion order via a wildcard receive
        (multiset-deterministic only — see the module docstring).
    emit_cost:
        Analytic flops charged by the emitter per item (constant or
        ``emit_cost(item)``), e.g. decode/IO work.
    collect_cost:
        Analytic flops charged by the collector per item.

    ``run(pipeline.nprocs, items)`` executes the stream; see
    :meth:`output`, :meth:`reports`, and :meth:`accumulated_state` for
    pulling results out of the :class:`~repro.runtime.spmd.RunResult`.
    """

    name = "pipeline-farm"

    def __init__(
        self,
        stages: Sequence[Stage],
        window: int = 4,
        ordered: bool = True,
        emit_cost: float | Callable[[Any], float] | None = None,
        collect_cost: float | Callable[[Any], float] | None = None,
    ):
        stages = list(stages)
        if not stages:
            raise ArchetypeError("a pipeline needs at least one stage")
        if window < 1:
            raise ArchetypeError(f"credit window must be >= 1, got {window}")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ArchetypeError(f"stage names must be unique, got {names}")
        for stage in stages:
            if stage.workers < 1:
                raise ArchetypeError(
                    f"stage {stage.name!r}: workers must be >= 1, got {stage.workers}"
                )
            if stage.state_access is StateAccess.SERIAL and stage.workers != 1:
                raise ArchetypeError(
                    f"stage {stage.name!r}: serial state cannot be farmed "
                    f"(workers={stage.workers}); use partitioned or accumulator "
                    "state, or workers=1"
                )
            if stage.state_access is StateAccess.ACCUMULATOR and stage.combine is None:
                raise ArchetypeError(
                    f"stage {stage.name!r}: accumulator state requires a "
                    "combine(a, b) operation"
                )
            if stage.window is not None and stage.window < 1:
                raise ArchetypeError(
                    f"stage {stage.name!r}: window must be >= 1, got {stage.window}"
                )
        self.stages = stages
        self.window = window
        self.ordered = ordered
        self.emit_cost = emit_cost
        self.collect_cost = collect_cost
        widths = [stage.workers for stage in stages]
        bases = []
        base = 1
        for w in widths:
            bases.append(base)
            base += w
        self._widths = widths
        self._bases = bases

    # -- geometry -----------------------------------------------------------
    @property
    def nstages(self) -> int:
        return len(self.stages)

    @property
    def nprocs(self) -> int:
        """Ranks this pipeline occupies: emitter + workers + collector."""
        return 2 + sum(self._widths)

    def _window_of(self, s: int) -> int:
        """Credit window of link *s* (the consumer stage's override)."""
        if s < self.nstages and self.stages[s].window is not None:
            return self.stages[s].window
        return self.window

    def _consumer_ranks(self, s: int) -> list[int]:
        """Ranks consuming link *s* (stage *s* workers, or the collector)."""
        if s == self.nstages:
            return [self.nprocs - 1]
        return [self._bases[s] + w for w in range(self._widths[s])]

    def _producer_ranks(self, s: int) -> list[int]:
        """Ranks producing link *s* (stage *s-1* workers, or the emitter)."""
        if s == 0:
            return [0]
        return [self._bases[s - 1] + w for w in range(self._widths[s - 1])]

    def _role(self, rank: int) -> tuple[str, int, int]:
        """``(role, stage_index, worker_index)`` for *rank*."""
        if rank == 0:
            return ("emit", -1, 0)
        if rank == self.nprocs - 1:
            return ("collect", self.nstages, 0)
        for s, (base, width) in enumerate(zip(self._bases, self._widths)):
            if base <= rank < base + width:
                return ("work", s, rank - base)
        raise ArchetypeError(f"rank {rank} outside pipeline layout")  # pragma: no cover

    def _downstream(self, comm: Comm, s: int) -> _Downstream:
        down = _Downstream(comm, self._consumer_ranks(s), self._window_of(s))
        down.tag_data = _TAG_DATA_BASE + s
        down.tag_credit = _TAG_CREDIT_BASE + s
        return down

    def _upstream(self, comm: Comm, s: int, worker: int, step: int) -> _Upstream:
        return _Upstream(
            comm,
            self._producer_ranks(s),
            worker,
            step,
            _TAG_DATA_BASE + s,
            _TAG_CREDIT_BASE + s,
        )

    # -- staging ------------------------------------------------------------
    def prepare(self, nprocs: int, items: Iterable[Any]) -> tuple[tuple, dict]:
        if nprocs != self.nprocs:
            raise ArchetypeError(
                f"{self.name}: this pipeline needs exactly {self.nprocs} ranks "
                f"(emitter + {'+'.join(str(w) for w in self._widths)} workers "
                f"+ collector), got {nprocs}"
            )
        return (list(items),), {}

    # -- skeleton -----------------------------------------------------------
    def body(self, comm: Comm, items: Sequence[Any]) -> Any:
        role, s, w = self._role(comm.rank)
        if role == "emit":
            return self._emit(comm, items)
        if role == "collect":
            return self._collect(comm)
        return self._work(comm, s, w)

    def _emit(self, comm: Comm, items: Sequence[Any]) -> StageReport:
        down = self._downstream(comm, 0)
        emitted = 0
        for k, value in enumerate(items):
            if self.emit_cost is not None:
                cost = self.emit_cost(value) if callable(self.emit_cost) else self.emit_cost
                comm.charge(cost, label="pipeline:emit")
            down.push(k, value)
            emitted += 1
        down.close()
        return StageReport(stage="<emitter>", worker=0, processed=emitted, state=None)

    def _work(self, comm: Comm, s: int, w: int) -> StageReport:
        stage = self.stages[s]
        mode = stage.state_access
        state = stage.init_state(w) if stage.init_state is not None else None
        ctx = StageContext(stage.name, w, comm)
        up = self._upstream(comm, s, w, stage.workers)
        down = self._downstream(comm, s + 1)
        processed = 0
        entry = comm.clock
        while True:
            pulled = up.pull()
            if pulled is None:
                break
            k, value = pulled
            if stage.work_cost is not None:
                cost = (
                    stage.work_cost(value) if callable(stage.work_cost) else stage.work_cost
                )
                comm.charge(cost, label=f"{stage.name}[{k}]")
            if mode is StateAccess.READONLY:
                out = stage.fn(ctx, value, state)
            else:
                out, state = stage.fn(ctx, value, state)
            down.push(k, out)
            up.ack(k)
            processed += 1
            _ITEMS.inc()
        down.close()
        _STAGE_SECONDS.observe(comm.clock - entry)
        return StageReport(stage=stage.name, worker=w, processed=processed, state=state)

    def _collect(self, comm: Comm) -> list[Any]:
        s = self.nstages
        out: list[Any] = []
        if self.ordered:
            up = self._upstream(comm, s, 0, 1)
            while True:
                pulled = up.pull()
                if pulled is None:
                    break
                k, value = pulled
                if self.collect_cost is not None:
                    cost = (
                        self.collect_cost(value)
                        if callable(self.collect_cost)
                        else self.collect_cost
                    )
                    comm.charge(cost, label="pipeline:collect")
                out.append(value)
                up.ack(k)
            return out
        producers = set(self._producer_ranks(s))
        tag_data = _TAG_DATA_BASE + s
        tag_credit = _TAG_CREDIT_BASE + s
        eos = 0
        while eos < len(producers):
            msg = comm.recv_msg(source=ANY_SOURCE, tag=tag_data)
            kind, value = msg.payload
            if kind == "eos":
                eos += 1
                continue
            if self.collect_cost is not None:
                cost = (
                    self.collect_cost(value)
                    if callable(self.collect_cost)
                    else self.collect_cost
                )
                comm.charge(cost, label="pipeline:collect")
            out.append(value)
            comm.send(msg.source, None, tag=tag_credit)
        return out

    # -- result access ------------------------------------------------------
    def output(self, result: RunResult) -> list[Any]:
        """The collector's output list (stream order when ``ordered``)."""
        return result.values[-1]

    def reports(self, result: RunResult) -> dict[str, list[StageReport]]:
        """Per-stage worker reports, worker-ordered, keyed by stage name."""
        out: dict[str, list[StageReport]] = {stage.name: [] for stage in self.stages}
        for value in result.values[1:-1]:
            out[value.stage].append(value)
        for stage_reports in out.values():
            stage_reports.sort(key=lambda r: r.worker)
        return out

    def accumulated_state(self, result: RunResult, stage_name: str) -> Any:
        """The combined final state of an ``ACCUMULATOR`` stage.

        Per-worker finals merge via the stage's ``combine`` in canonical
        worker order, so the value is identical on every backend.
        """
        for stage in self.stages:
            if stage.name == stage_name:
                break
        else:
            raise ArchetypeError(f"no stage named {stage_name!r}")
        if stage.state_access is not StateAccess.ACCUMULATOR:
            raise ArchetypeError(
                f"stage {stage_name!r} has {stage.state_access.value} state, "
                "not accumulator"
            )
        states = [r.state for r in self.reports(result)[stage_name]]
        acc = states[0]
        for state in states[1:]:
            acc = stage.combine(acc, state)
        return acc
