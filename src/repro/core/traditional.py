"""Traditional (deep) parallel divide and conquer — the paper's Figure 1.

The baseline the one-deep archetype improves on: the problem starts whole
on one rank, is recursively split in two with the second half shipped to
an idle rank, solved at the leaves, and merged pairwise up the tree.  Its
two inefficiencies (paper §2.1.1) emerge naturally here:

1. the top-level split inspects *all* the data on a single rank and ships
   half of it — heavy data transfer and single-node memory pressure;
2. full concurrency exists only during the leaf solve phase; the split
   and merge levels use progressively fewer ranks.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import ArchetypeError
from repro.comm.communicator import Comm
from repro.core.archetype import Archetype

_TAG_DOWN = 101  # problem halves travelling down the tree
_TAG_UP = 102  # subsolutions travelling back up


class TraditionalDC(Archetype):
    """Recursive parallel divide and conquer over the rank tree.

    Parameters
    ----------
    divide:
        ``divide(data) -> (left, right)`` — split a problem in two.
    leaf_solve:
        ``leaf_solve(data) -> solution`` — sequential solve at a leaf
        (typically the sequential divide-and-conquer algorithm itself).
    merge2:
        ``merge2(a, b) -> solution`` — combine two subsolutions.
    divide_cost, leaf_cost, merge_cost:
        Optional analytic work models (flops) as functions of the data the
        respective callback processes (for ``merge_cost``, of the merged
        result).
    """

    name = "traditional-dc"

    def __init__(
        self,
        divide: Callable[[Any], tuple[Any, Any]],
        leaf_solve: Callable[[Any], Any],
        merge2: Callable[[Any, Any], Any],
        divide_cost: Callable[[Any], float] | None = None,
        leaf_cost: Callable[[Any], float] | None = None,
        merge_cost: Callable[[Any], float] | None = None,
    ):
        self.divide = divide
        self.leaf_solve = leaf_solve
        self.merge2 = merge2
        self.divide_cost = divide_cost
        self.leaf_cost = leaf_cost
        self.merge_cost = merge_cost

    def prepare(self, nprocs: int, problem: Any) -> tuple[tuple, dict]:
        """The whole problem starts on rank 0 (the pattern's weakness)."""
        return (problem,), {}

    def body(self, comm: Comm, problem: Any) -> Any:
        """Per-rank tree walk; the final solution lands on rank 0."""
        lo, size = 0, comm.size
        local: Any = problem if comm.rank == 0 else None
        # Each descent records the action owed on the way back up:
        # group leaders merge a right-subtree result received from `mid`;
        # each `mid` sends its subtree's result back to its group leader.
        pending: list[tuple[str, int]] = []

        while size > 1:
            left_size = (size + 1) // 2
            mid = lo + left_size
            if comm.rank < mid:
                if comm.rank == lo:
                    if self.divide_cost is not None:
                        comm.charge(self.divide_cost(local), label="divide")
                    left, right = self.divide(local)
                    comm.send(mid, right, tag=_TAG_DOWN)
                    local = left
                    pending.append(("merge_from", mid))
                size = left_size
            else:
                if comm.rank == mid:
                    local = comm.recv(lo, tag=_TAG_DOWN)
                    pending.append(("send_to", lo))
                lo, size = mid, size - left_size

        if local is None:
            raise ArchetypeError(
                f"rank {comm.rank} reached a leaf with no data; "
                "tree routing is inconsistent"
            )
        if self.leaf_cost is not None:
            comm.charge(self.leaf_cost(local), label="leaf-solve")
        result = self.leaf_solve(local)

        for action, peer in reversed(pending):
            if action == "merge_from":
                other = comm.recv(peer, tag=_TAG_UP)
                result = self.merge2(result, other)
                if self.merge_cost is not None:
                    comm.charge(self.merge_cost(result), label="merge")
            else:  # send_to
                comm.send(peer, result, tag=_TAG_UP)
        return result if comm.rank == 0 else None
