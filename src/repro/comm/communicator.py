"""The communicator: collectives over point-to-point messaging.

:class:`Comm` extends the runtime's :class:`~repro.runtime.context.RankContext`
with the collective operations the archetypes need.  Every collective is
built from point-to-point sends/receives using the classical algorithms,
so the virtual-time cost of a collective is the cost of its actual message
pattern on the modelled machine.

SPMD contract: all ranks must call the same collectives in the same order.
Each collective call consumes one slot of a reserved tag space; mismatched
call sequences therefore show up as a :class:`~repro.errors.DeadlockError`
rather than silent data corruption.
"""

from __future__ import annotations

from typing import Any

from repro.errors import CommError
from repro.comm.reductions import Op
from repro.runtime.context import RankContext
from repro.util.nbytes import nbytes_of

#: user tags must stay below this value
MAX_USER_TAG = 1 << 20
#: collective tags occupy [_COLL_TAG_BASE, _COLL_TAG_BASE + _COLL_TAG_SPAN)
_COLL_TAG_BASE = 1 << 24
_COLL_TAG_SPAN = 1 << 20


class Comm(RankContext):
    """A rank's communicator: point-to-point plus collectives."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._coll_seq = 0

    # -- internal helpers ---------------------------------------------------
    def _coll_tag(self) -> int:
        """Next tag in the collective tag space (same on all ranks when the
        SPMD contract is respected)."""
        tag = _COLL_TAG_BASE + (self._coll_seq % _COLL_TAG_SPAN)
        self._coll_seq += 1
        return tag

    def send(
        self, dest: int, payload: Any, tag: int = 0, *, nbytes: int | None = None
    ) -> None:
        if 0 <= tag < MAX_USER_TAG or tag >= _COLL_TAG_BASE:
            super().send(dest, payload, tag, nbytes=nbytes)
        else:
            raise CommError(f"user tags must be < {MAX_USER_TAG} (got {tag})")

    def isend(
        self, dest: int, payload: Any, tag: int = 0, *, nbytes: int | None = None
    ):
        if 0 <= tag < MAX_USER_TAG or tag >= _COLL_TAG_BASE:
            return super().isend(dest, payload, tag, nbytes=nbytes)
        raise CommError(f"user tags must be < {MAX_USER_TAG} (got {tag})")

    def _validate_send_tag(self, tag: int) -> None:
        # Mirror of send/isend's user-tag window, for the fused sendrecv
        # fast path (which bypasses those wrappers).
        if not (0 <= tag < MAX_USER_TAG or tag >= _COLL_TAG_BASE):
            raise CommError(f"user tags must be < {MAX_USER_TAG} (got {tag})")

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CommError(f"root {root} out of range for size {self.size}")

    # -- sub-communicators ------------------------------------------------------
    def split(self, color: Any, key: int | None = None) -> "Comm | None":
        """Partition this communicator into sub-communicators (MPI-style).

        Collective: every rank calls it with a *color*; ranks sharing a
        color form a new communicator, ordered by *key* (default: current
        rank).  Ranks passing ``color=None`` receive ``None`` back.

        Sub-communicators are the substrate for *archetype composition*
        (paper §6: "task-parallel compositions of data-parallel
        computations"): disjoint groups can each run a different archetype
        program concurrently, exchanging results through the parent
        communicator.  Each group gets a fresh communication context, so
        its traffic — including wildcard receives — never matches another
        group's or the parent's.

        Virtual time is per *rank*, not per group: a sub-communicator
        shares its parent's clock.
        """
        my_entry = (color, self.rank if key is None else key, self.rank)
        entries = self.allgather(my_entry)
        ctx = self._endpoint.next_ctx
        self._endpoint.next_ctx += 1
        if color is None:
            return None
        members = sorted((k, r) for c, k, r in entries if c == color)
        member_ranks = [r for _, r in members]
        group = type(self).__new__(type(self))
        group.rank = member_ranks.index(self.rank)
        group.size = len(member_ranks)
        group.machine = self.machine
        group._backend = self._backend
        group._tracer = self._tracer
        group._endpoint = self._endpoint
        group._ctx = ctx
        group._group = [self._to_global(r) for r in member_ranks]
        group._coll_seq = 0
        return group

    # -- barrier --------------------------------------------------------------
    def barrier(self) -> None:
        """Dissemination barrier: ceil(log2 P) rounds of shifted exchanges."""
        tag = self._coll_tag()
        k = 1
        while k < self.size:
            self.sendrecv(
                (self.rank + k) % self.size,
                None,
                (self.rank - k) % self.size,
                send_tag=tag,
            )
            k <<= 1

    # -- broadcast --------------------------------------------------------------
    def bcast(self, value: Any = None, root: int = 0) -> Any:
        """Binomial-tree broadcast of *value* from *root*; returns it on
        every rank.  Non-root ranks may pass anything (ignored)."""
        self._check_root(root)
        tag = self._coll_tag()
        if self.size == 1:
            return value
        relrank = (self.rank - root) % self.size
        nbytes: int | None = None
        mask = 1
        while mask < self.size:
            if relrank & mask:
                src = (relrank - mask + root) % self.size
                msg = self.recv_msg(src, tag=tag)
                value, nbytes = msg.payload, msg.nbytes
                break
            mask <<= 1
        # Forward to children: relrank + mask/2, mask/4, ..., 1.  On break,
        # mask is this rank's lowest set bit (its parent link); for the
        # root the loop ended with the first power of two >= size.  Either
        # way the children start one bit below.
        mask >>= 1
        if mask > 0 and nbytes is None:
            # The root measures its buffer once; every other hop reuses
            # the received envelope's size instead of re-traversing the
            # same payload per child.
            nbytes = nbytes_of(value)
        while mask > 0:
            if relrank + mask < self.size:
                dst = (relrank + mask + root) % self.size
                self.send(dst, value, tag=tag, nbytes=nbytes)
            mask >>= 1
        return value

    # -- reduce -----------------------------------------------------------------
    def reduce(self, value: Any, op: Op, root: int = 0) -> Any:
        """Binomial-tree reduction to *root*; returns the result on root and
        ``None`` elsewhere.  Operands combine in canonical rank order."""
        self._check_root(root)
        tag = self._coll_tag()
        relrank = (self.rank - root) % self.size
        acc = value
        # Known size of acc's payload, when an envelope already measured
        # it (ops like min/max return an operand, so the accumulator is
        # often exactly a received buffer).  None ⇒ send re-measures.
        acc_nbytes: int | None = None
        mask = 1
        while mask < self.size:
            if relrank & mask:
                dst = (((relrank & ~mask)) + root) % self.size
                self.send(dst, acc, tag=tag, nbytes=acc_nbytes)
                break
            src_rel = relrank | mask
            if src_rel < self.size:
                msg = self.recv_msg((src_rel + root) % self.size, tag=tag)
                received = msg.payload
                # The child's subtree covers higher relative ranks, so the
                # canonical (rank-ordered) combination is acc `op` received.
                combined = op(acc, received)
                if combined is received:
                    acc_nbytes = msg.nbytes
                elif combined is not acc:
                    acc_nbytes = None
                acc = combined
            mask <<= 1
        return acc if self.rank == root else None

    def allreduce(self, value: Any, op: Op) -> Any:
        """Recursive-doubling allreduce (the paper's Figure 8 pattern).

        Returns the reduction of all ranks' values on every rank, combined
        in canonical rank order so results are bitwise identical on all
        ranks even for floating-point operands.
        """
        tag = self._coll_tag()
        size = self.size
        if size == 1:
            return value
        pof2 = 1
        while pof2 * 2 <= size:
            pof2 *= 2
        rem = size - pof2

        # Fold the surplus ranks into the power-of-two core.
        if self.rank < 2 * rem:
            if self.rank % 2 == 0:
                self.send(self.rank + 1, value, tag=tag)
                newrank = -1
            else:
                received = self.recv(self.rank - 1, tag=tag)
                value = op(received, value)
                newrank = self.rank // 2
        else:
            newrank = self.rank - rem

        if newrank != -1:
            mask = 1
            while mask < pof2:
                partner_new = newrank ^ mask
                partner = (
                    partner_new * 2 + 1 if partner_new < rem else partner_new + rem
                )
                other = self.sendrecv(partner, value, partner, send_tag=tag)
                value = op(other, value) if partner_new < newrank else op(value, other)
                mask <<= 1

        # Unfold: surviving odd ranks push the result back to their pair.
        if self.rank < 2 * rem:
            if self.rank % 2 == 1:
                self.send(self.rank - 1, value, tag=tag)
            else:
                value = self.recv(self.rank + 1, tag=tag)
        return value

    # -- gather / scatter ----------------------------------------------------------
    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank to *root* (rank-ordered list on root,
        ``None`` elsewhere)."""
        self._check_root(root)
        tag = self._coll_tag()
        if self.rank != root:
            self.send(root, value, tag=tag)
            return None
        out: list[Any] = [None] * self.size
        out[root] = value
        for src in range(self.size):
            if src != root:
                out[src] = self.recv(src, tag=tag)
        return out

    def scatter(self, values: list[Any] | None, root: int = 0) -> Any:
        """Scatter ``values[i]`` from *root* to rank ``i``; returns the local
        item on every rank."""
        self._check_root(root)
        tag = self._coll_tag()
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise CommError(
                    f"scatter on root needs exactly {self.size} values, got "
                    f"{None if values is None else len(values)}"
                )
            for dst in range(self.size):
                if dst != root:
                    self.send(dst, values[dst], tag=tag)
            return values[root]
        return self.recv(root, tag=tag)

    def allgather(self, value: Any) -> list[Any]:
        """Ring allgather: P-1 rounds of neighbour shifts; returns the
        rank-ordered list of all values on every rank."""
        tag = self._coll_tag()
        out: list[Any] = [None] * self.size
        out[self.rank] = value
        if self.size == 1:
            return out
        right = (self.rank + 1) % self.size
        left = (self.rank - 1) % self.size
        idx, cur = self.rank, value
        for _ in range(self.size - 1):
            idx, cur = self.sendrecv(right, (idx, cur), left, send_tag=tag)
            out[idx] = cur
        return out

    # -- all-to-all -------------------------------------------------------------
    def alltoall(self, values: list[Any]) -> list[Any]:
        """Personalised all-to-all: send ``values[j]`` to rank ``j``; returns
        the list whose ``i``-th entry came from rank ``i``.

        Payload sizes may differ per destination (the MPI ``alltoallv``
        case).  Pairwise-exchange schedule: P-1 rounds of rotated partners.
        """
        if len(values) != self.size:
            raise CommError(
                f"alltoall needs exactly {self.size} values, got {len(values)}"
            )
        tag = self._coll_tag()
        out: list[Any] = [None] * self.size
        out[self.rank] = values[self.rank]
        for k in range(1, self.size):
            dst = (self.rank + k) % self.size
            src = (self.rank - k) % self.size
            out[src] = self.sendrecv(dst, values[dst], src, send_tag=tag)
        return out

    # -- scan ------------------------------------------------------------------
    def scan(self, value: Any, op: Op) -> Any:
        """Inclusive prefix reduction (Hillis–Steele, ceil(log2 P) rounds):
        rank ``i`` receives ``op(v_0, ..., v_i)``."""
        rounds = 0
        d = 1
        while d < self.size:
            rounds += 1
            d <<= 1
        tags = [self._coll_tag() for _ in range(rounds)]
        acc = value
        d = 1
        for tag in tags:
            dest = self.rank + d if self.rank + d < self.size else None
            source = self.rank - d if self.rank - d >= 0 else None
            received = self.sendrecv(dest, acc, source, send_tag=tag)
            if source is not None:
                acc = op(received, acc)
            d <<= 1
        return acc
