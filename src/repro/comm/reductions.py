"""Reduction operations.

The paper requires reductions whose combining operation is associative
("or can be so treated ... if some degree of nondeterminism is
acceptable").  Our collectives additionally combine operands in a
canonical rank order, so even floating-point reductions are bitwise
deterministic across backends and process counts *for a fixed P*.

Operations work elementwise on NumPy arrays and on scalars.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.obs.metrics import CounterHandle, counter_handle

_APPLIES = counter_handle(
    "comm.reductions.applies", help="binary reduction-operator applications"
)
#: one cached handle per operator name — applies are per-element-free but
#: per-call hot, and the old f-string + registry lookup dominated them
_APPLIES_BY_NAME: dict[str, CounterHandle] = {}


def _applies_handle(name: str) -> CounterHandle:
    handle = _APPLIES_BY_NAME.get(name)
    if handle is None:
        handle = _APPLIES_BY_NAME[name] = counter_handle(
            f"comm.reductions.applies.{name}",
            help=f"applications of the {name!r} operator",
        )
    return handle


@dataclass(frozen=True)
class Op:
    """A binary reduction operator.

    ``fn(a, b)`` must be associative.  ``commutative`` is informational;
    the collectives preserve rank order regardless.
    """

    name: str
    fn: Callable[[Any, Any], Any]
    commutative: bool = True

    def __call__(self, a: Any, b: Any) -> Any:
        _APPLIES.inc()
        _applies_handle(self.name).inc()
        return self.fn(a, b)


def make_op(name: str, fn: Callable[[Any, Any], Any], commutative: bool = True) -> Op:
    """Create a user-defined reduction operator."""
    return Op(name=name, fn=fn, commutative=commutative)


def _add(a, b):
    return np.add(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else a + b


def _mul(a, b):
    return (
        np.multiply(a, b)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
        else a * b
    )


def _max(a, b):
    return (
        np.maximum(a, b)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
        else max(a, b)
    )


def _min(a, b):
    return (
        np.minimum(a, b)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
        else min(a, b)
    )


def _land(a, b):
    return (
        np.logical_and(a, b)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
        else bool(a) and bool(b)
    )


def _lor(a, b):
    return (
        np.logical_or(a, b)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
        else bool(a) or bool(b)
    )


def _band(a, b):
    return np.bitwise_and(a, b) if isinstance(a, np.ndarray) else a & b


def _bor(a, b):
    return np.bitwise_or(a, b) if isinstance(a, np.ndarray) else a | b


#: elementwise sum
SUM = Op("sum", _add)
#: elementwise product
PROD = Op("prod", _mul)
#: elementwise maximum
MAX = Op("max", _max)
#: elementwise minimum
MIN = Op("min", _min)
#: logical and
LAND = Op("land", _land)
#: logical or
LOR = Op("lor", _lor)
#: bitwise and
BAND = Op("band", _band)
#: bitwise or
BOR = Op("bor", _bor)
