"""Data layouts: which rectangle of a global array each rank owns.

A :class:`Layout` assigns every rank a (possibly empty) axis-aligned
rectangle of a global index space.  The standard layouts of the paper are
provided as factories: by rows, by columns, by N-dimensional blocks over a
process grid, and single-owner (all data on one rank, used around
sequential file I/O).  Redistribution between any two layouts of the same
global shape is a pure function of their rectangle intersections
(:mod:`repro.comm.redistribute`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import prod

from repro.errors import DistributionError
from repro.util.partition import block_bounds

#: a rectangle: per-dimension half-open (lo, hi) bounds
Rect = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class Layout:
    """Assignment of global-array rectangles to ranks.

    ``rects[r]`` is rank r's rectangle as per-dimension ``(lo, hi)``
    half-open bounds.  Rectangles of a valid distribution tile the global
    shape (disjoint cover); *replicated* layouts break disjointness
    deliberately and say so via ``replicated=True``.
    """

    global_shape: tuple[int, ...]
    rects: tuple[Rect, ...]
    name: str = "custom"
    replicated: bool = False

    @property
    def nranks(self) -> int:
        return len(self.rects)

    @property
    def ndim(self) -> int:
        return len(self.global_shape)

    def rect(self, rank: int) -> Rect:
        return self.rects[rank]

    def shape(self, rank: int) -> tuple[int, ...]:
        """Local array shape on *rank*."""
        return tuple(hi - lo for lo, hi in self.rects[rank])

    def size(self, rank: int) -> int:
        """Number of elements owned by *rank*."""
        return prod(self.shape(rank))

    def slices(self, rank: int) -> tuple[slice, ...]:
        """Global-array slices selecting *rank*'s rectangle."""
        return tuple(slice(lo, hi) for lo, hi in self.rects[rank])

    def owner_of(self, index: tuple[int, ...]) -> int:
        """Rank owning a global index (first owner for replicated layouts)."""
        if len(index) != self.ndim:
            raise DistributionError(
                f"index has {len(index)} dims, layout has {self.ndim}"
            )
        for rank, rect in enumerate(self.rects):
            if all(lo <= i < hi for i, (lo, hi) in zip(index, rect)):
                return rank
        raise DistributionError(f"global index {index} owned by no rank")

    def validate_tiling(self) -> None:
        """Check that rectangles disjointly cover the global shape.

        Raises :class:`DistributionError` on gaps or overlaps.  Skipped
        for replicated layouts (which overlap by design).
        """
        if self.replicated:
            return
        total = sum(self.size(r) for r in range(self.nranks))
        expected = prod(self.global_shape)
        if total != expected:
            raise DistributionError(
                f"layout {self.name!r} covers {total} elements of {expected}"
            )
        # Pairwise disjointness: with the count matching, any overlap
        # implies a gap, so the count check plus one overlap scan suffices.
        for a in range(self.nranks):
            ra = self.rects[a]
            if self.size(a) == 0:
                continue
            for b in range(a + 1, self.nranks):
                rb = self.rects[b]
                if self.size(b) == 0:
                    continue
                if all(
                    max(la, lb) < min(ha, hb)
                    for (la, ha), (lb, hb) in zip(ra, rb)
                ):
                    raise DistributionError(
                        f"layout {self.name!r}: ranks {a} and {b} overlap"
                    )


def _check_shape(global_shape: tuple[int, ...]) -> None:
    if any(n < 0 for n in global_shape):
        raise DistributionError(f"negative extent in global shape {global_shape}")


def row_layout(global_shape: tuple[int, ...], nranks: int) -> Layout:
    """Distribute axis 0 in blocks; all other axes whole on every rank."""
    _check_shape(global_shape)
    rects = []
    for r in range(nranks):
        lo, hi = block_bounds(global_shape[0], nranks, r)
        rects.append(((lo, hi), *((0, n) for n in global_shape[1:])))
    return Layout(tuple(global_shape), tuple(rects), name="rows")


def col_layout(global_shape: tuple[int, ...], nranks: int) -> Layout:
    """Distribute axis 1 in blocks; all other axes whole on every rank."""
    _check_shape(global_shape)
    if len(global_shape) < 2:
        raise DistributionError("col_layout needs a >= 2-dimensional shape")
    rects = []
    for r in range(nranks):
        lo, hi = block_bounds(global_shape[1], nranks, r)
        rect = [(0, global_shape[0]), (lo, hi)]
        rect.extend((0, n) for n in global_shape[2:])
        rects.append(tuple(rect))
    return Layout(tuple(global_shape), tuple(rects), name="cols")


def block_layout(global_shape: tuple[int, ...], proc_grid: tuple[int, ...]) -> Layout:
    """Distribute each axis ``d`` in blocks over ``proc_grid[d]`` parts.

    Ranks map to process-grid coordinates in row-major order, matching
    :class:`repro.comm.cart.CartGrid`.

    Layouts are immutable, so repeated requests for the same
    (shape, grid) pair — every redistribution rebuilds its target
    layout — return one shared cached instance.
    """
    return _block_layout(tuple(global_shape), tuple(proc_grid))


@lru_cache(maxsize=256)
def _block_layout(global_shape: tuple[int, ...], proc_grid: tuple[int, ...]) -> Layout:
    _check_shape(global_shape)
    if len(proc_grid) != len(global_shape):
        raise DistributionError(
            f"process grid {proc_grid} rank does not match shape {global_shape}"
        )
    if any(p < 1 for p in proc_grid):
        raise DistributionError(f"process grid dims must be >= 1: {proc_grid}")
    nranks = prod(proc_grid)
    rects = []
    for rank in range(nranks):
        coords = []
        rem = rank
        for p in reversed(proc_grid):
            coords.append(rem % p)
            rem //= p
        coords.reverse()
        rects.append(
            tuple(
                block_bounds(n, p, c)
                for n, p, c in zip(global_shape, proc_grid, coords)
            )
        )
    return Layout(tuple(global_shape), tuple(rects), name=f"blocks{proc_grid}")


def single_owner_layout(
    global_shape: tuple[int, ...], nranks: int, owner: int = 0
) -> Layout:
    """All data on one rank; every other rank owns an empty rectangle."""
    return _single_owner_layout(tuple(global_shape), nranks, owner)


@lru_cache(maxsize=256)
def _single_owner_layout(
    global_shape: tuple[int, ...], nranks: int, owner: int
) -> Layout:
    _check_shape(global_shape)
    if not 0 <= owner < nranks:
        raise DistributionError(f"owner {owner} out of range [0, {nranks})")
    empty = tuple((0, 0) for _ in global_shape)
    full = tuple((0, n) for n in global_shape)
    rects = tuple(full if r == owner else empty for r in range(nranks))
    return Layout(tuple(global_shape), rects, name=f"single_owner({owner})")


def replicated_layout(global_shape: tuple[int, ...], nranks: int) -> Layout:
    """Every rank holds the whole array (global variables, small tables)."""
    _check_shape(global_shape)
    full = tuple((0, n) for n in global_shape)
    return Layout(
        tuple(global_shape),
        tuple(full for _ in range(nranks)),
        name="replicated",
        replicated=True,
    )
