"""General data redistribution between layouts (paper §4.3, Figure 7).

``redistribute(comm, local, old, new)`` moves a distributed array from one
:class:`~repro.comm.layout.Layout` to another.  Every rank intersects its
old rectangle with every rank's new rectangle, ships each non-empty
intersection with a pairwise all-to-all, and pastes received pieces into
its new local array.  Rows-to-columns redistribution (Figure 7), gathering
to a single owner (file output), and scattering from one (file input) are
all instances.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DistributionError
from repro.comm.communicator import Comm
from repro.comm.layout import Layout, Rect
from repro.obs.metrics import COUNT_BUCKETS, counter_handle, histogram_handle

_CALLS = counter_handle(
    "comm.redistribute.calls", help="layout redistributions performed"
)
_BYTES = counter_handle(
    "comm.redistribute.bytes", help="payload bytes shipped by redistributions"
)
_PARCELS = histogram_handle(
    "comm.redistribute.parcels",
    buckets=COUNT_BUCKETS,
    help="non-empty parcels sent per rank per redistribution",
)
_VIRTUAL_SECONDS = histogram_handle(
    "comm.redistribute.virtual_seconds",
    help="per-rank virtual time inside the redistribution exchange",
)


def _intersect(a: Rect, b: Rect) -> Rect | None:
    """Intersection of two rectangles, or ``None`` when empty."""
    if len(a) == 2:
        # Unrolled 2-D case: the dominant shape (every rows<->cols
        # redistribution), called P times per rank per redistribution.
        (al0, ah0), (al1, ah1) = a
        (bl0, bh0), (bl1, bh1) = b
        lo0 = al0 if al0 > bl0 else bl0
        hi0 = ah0 if ah0 < bh0 else bh0
        if lo0 >= hi0:
            return None
        lo1 = al1 if al1 > bl1 else bl1
        hi1 = ah1 if ah1 < bh1 else bh1
        if lo1 >= hi1:
            return None
        return ((lo0, hi0), (lo1, hi1))
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if lo >= hi:
            return None
        out.append((lo, hi))
    return tuple(out)


def _local_slices(rect: Rect, base: Rect) -> tuple[slice, ...]:
    """Slices selecting global rectangle *rect* inside a local array whose
    origin is *base*'s low corner."""
    if len(rect) == 2:
        (lo0, hi0), (lo1, hi1) = rect
        (b0, _), (b1, _) = base
        return slice(lo0 - b0, hi0 - b0), slice(lo1 - b1, hi1 - b1)
    return tuple(slice(lo - blo, hi - blo) for (lo, hi), (blo, _) in zip(rect, base))


def redistribute(
    comm: Comm,
    local: np.ndarray,
    old: Layout,
    new: Layout,
) -> np.ndarray:
    """Return this rank's local section under layout *new*.

    *local* must be this rank's section under layout *old* (shape
    ``old.shape(comm.rank)``).  Both layouts must describe the same global
    shape and the same number of ranks.  Works for any dimensionality.
    """
    if old.global_shape != new.global_shape:
        raise DistributionError(
            f"layout shapes differ: {old.global_shape} vs {new.global_shape}"
        )
    if old.nranks != comm.size or new.nranks != comm.size:
        raise DistributionError(
            f"layouts sized for {old.nranks}/{new.nranks} ranks on a "
            f"{comm.size}-rank communicator"
        )
    local = np.asarray(local)
    my_old = old.rect(comm.rank)
    if local.shape != old.shape(comm.rank):
        raise DistributionError(
            f"rank {comm.rank}: local shape {local.shape} does not match "
            f"old layout section {old.shape(comm.rank)}"
        )

    entry_clock = comm.clock
    # Build one parcel per destination: list of (global_rect, block) pieces.
    outgoing: list[list[tuple[Rect, np.ndarray]] | None] = []
    parcels = 0
    parcel_bytes = 0
    for dest in range(comm.size):
        overlap = _intersect(my_old, new.rect(dest))
        if overlap is None:
            outgoing.append(None)
        else:
            piece = np.ascontiguousarray(local[_local_slices(overlap, my_old)])
            outgoing.append([(overlap, piece)])
            parcels += 1
            parcel_bytes += piece.nbytes

    incoming = comm.alltoall(outgoing)

    _CALLS.inc()
    _BYTES.inc(parcel_bytes)
    _PARCELS.observe(parcels)
    _VIRTUAL_SECONDS.observe(comm.clock - entry_clock)

    my_new = new.rect(comm.rank)
    out = np.empty(new.shape(comm.rank), dtype=local.dtype)
    filled = 0
    for parcel in incoming:
        if parcel is None:
            continue
        for rect, piece in parcel:
            out[_local_slices(rect, my_new)] = piece
            filled += piece.size
    if filled != out.size:
        raise DistributionError(
            f"rank {comm.rank}: redistribution filled {filled} of {out.size} "
            "elements; source layout does not cover the target section"
        )
    return out


def gather_to_root(
    comm: Comm, local: np.ndarray, layout: Layout, root: int = 0
) -> np.ndarray | None:
    """Collect a distributed array onto *root* (returns ``None`` elsewhere).

    Convenience wrapper: redistribution to a single-owner layout.  Used by
    the archetypes' sequential file-output pattern.
    """
    from repro.comm.layout import single_owner_layout

    target = single_owner_layout(layout.global_shape, comm.size, owner=root)
    assembled = redistribute(comm, local, layout, target)
    return assembled if comm.rank == root else None


def scatter_from_root(
    comm: Comm,
    full: np.ndarray | None,
    layout: Layout,
    root: int = 0,
    dtype: np.dtype | None = None,
) -> np.ndarray:
    """Distribute an array held on *root* according to *layout*.

    Non-root ranks pass ``full=None``; ``dtype`` must then be supplied (or
    it is broadcast from root).  Inverse of :func:`gather_to_root`.
    """
    from repro.comm.layout import single_owner_layout

    if comm.rank == root:
        if full is None:
            raise DistributionError("root must supply the full array")
        full = np.asarray(full)
        if full.shape != layout.global_shape:
            raise DistributionError(
                f"full array shape {full.shape} does not match layout "
                f"{layout.global_shape}"
            )
        dtype = full.dtype
    dtype = comm.bcast(dtype, root=root)
    source = single_owner_layout(layout.global_shape, comm.size, owner=root)
    local = (
        full
        if comm.rank == root
        else np.empty(tuple(0 for _ in layout.global_shape), dtype=dtype)
    )
    return redistribute(comm, local, source, layout)
