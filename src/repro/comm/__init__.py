"""MPI-like communication library plus the archetype operations.

All collectives are implemented *on top of* point-to-point messaging with
the classical algorithms (binomial broadcast/reduce, recursive-doubling
allreduce — the paper's Figure 8 — dissemination barrier, ring allgather,
pairwise all-to-all), so the virtual-time cost of a collective emerges
from its real message pattern, exactly as on the paper's testbeds.

The archetype-specific operations the paper calls for — general data
redistribution (§4.3), ghost-boundary exchange (§4.3), and reductions —
live in :mod:`repro.comm.redistribute`, :mod:`repro.comm.boundary`, and
:mod:`repro.comm.reductions`.
"""

from repro.comm.communicator import Comm
from repro.comm.reductions import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM, Op, make_op
from repro.comm.layout import (
    Layout,
    block_layout,
    col_layout,
    replicated_layout,
    row_layout,
    single_owner_layout,
)
from repro.comm.cart import CartGrid, choose_proc_grid
from repro.comm.redistribute import redistribute
from repro.comm.boundary import (
    GhostExchange,
    exchange_ghosts,
    exchange_ghosts_many,
    exchange_ghosts_many_start,
    exchange_ghosts_start,
)
from repro.runtime.request import Request

__all__ = [
    "Comm",
    "Request",
    "Op",
    "make_op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "Layout",
    "row_layout",
    "col_layout",
    "block_layout",
    "single_owner_layout",
    "replicated_layout",
    "CartGrid",
    "choose_proc_grid",
    "redistribute",
    "GhostExchange",
    "exchange_ghosts",
    "exchange_ghosts_many",
    "exchange_ghosts_many_start",
    "exchange_ghosts_start",
]
