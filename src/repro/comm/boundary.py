"""Ghost-boundary exchange (paper §4.3, Figure 8's companion operation).

Grid operations that read neighbouring points need each local section
surrounded by a *ghost boundary* holding shadow copies of the neighbours'
edge values.  ``exchange_ghosts`` refreshes those shadows: for every grid
axis, each rank swaps a ``ghost``-deep slab with its face neighbours.

Axes are processed in order and each slab spans the *full* extent of the
other axes (ghost layers included), so after the final axis corner and
edge ghost cells are correct too — the standard trick that makes one
face-exchange pass sufficient for 9-point/27-point stencils.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DistributionError
from repro.comm.cart import CartGrid
from repro.comm.communicator import Comm, MAX_USER_TAG

#: tag space reserved for boundary exchange (below the user-tag cap)
_BOUNDARY_TAG_BASE = MAX_USER_TAG - 64


def _slab(
    arr: np.ndarray, axis: int, start: int, stop: int
) -> tuple[slice, ...]:
    """Full-extent slices except ``start:stop`` along *axis*."""
    return tuple(
        slice(start, stop) if d == axis else slice(None) for d in range(arr.ndim)
    )


def exchange_ghosts(
    comm: Comm,
    local: np.ndarray,
    grid: CartGrid,
    ghost: int = 1,
    periodic: tuple[bool, ...] | bool = False,
) -> None:
    """Refresh the ghost layers of *local* in place.

    Parameters
    ----------
    local:
        This rank's section *including* ghost layers: ``ghost`` cells on
        each side of every axis.
    grid:
        The Cartesian process grid (``grid.nranks == comm.size``).
    ghost:
        Ghost width (>= 1).
    periodic:
        Per-axis periodicity (or one bool for all axes).  On non-periodic
        physical edges the ghost cells are left untouched (they hold
        boundary conditions maintained by the application).
    """
    if ghost < 1:
        raise DistributionError(f"ghost width must be >= 1, got {ghost}")
    if grid.nranks != comm.size:
        raise DistributionError(
            f"process grid has {grid.nranks} ranks, communicator {comm.size}"
        )
    if local.ndim != grid.ndim:
        raise DistributionError(
            f"local array is {local.ndim}-D but process grid is {grid.ndim}-D"
        )
    if any(n < 2 * ghost for n in local.shape):
        raise DistributionError(
            f"local shape {local.shape} too small for ghost width {ghost}"
        )
    if isinstance(periodic, bool):
        periodic = tuple(periodic for _ in range(grid.ndim))
    if len(periodic) != grid.ndim:
        raise DistributionError(
            f"periodic flags {periodic} do not match grid rank {grid.ndim}"
        )

    n = local.shape
    for axis in range(grid.ndim):
        lo_nbr = grid.shift(comm.rank, axis, -1, periodic[axis])
        hi_nbr = grid.shift(comm.rank, axis, +1, periodic[axis])
        tag_lo = _BOUNDARY_TAG_BASE + 2 * axis  # travelling toward lower coords
        tag_hi = _BOUNDARY_TAG_BASE + 2 * axis + 1  # travelling toward higher

        # Post both sends first (sends are buffered), then receive.
        if lo_nbr is not None:
            piece = np.ascontiguousarray(local[_slab(local, axis, ghost, 2 * ghost)])
            comm.send(lo_nbr, piece, tag=tag_lo)
        if hi_nbr is not None:
            piece = np.ascontiguousarray(
                local[_slab(local, axis, n[axis] - 2 * ghost, n[axis] - ghost)]
            )
            comm.send(hi_nbr, piece, tag=tag_hi)
        if hi_nbr is not None:
            local[_slab(local, axis, n[axis] - ghost, n[axis])] = comm.recv(
                hi_nbr, tag=tag_lo
            )
        if lo_nbr is not None:
            local[_slab(local, axis, 0, ghost)] = comm.recv(lo_nbr, tag=tag_hi)


def exchange_ghosts_many(
    comm: Comm,
    locals_: list[np.ndarray],
    grid: CartGrid,
    ghost: int = 1,
    periodic: tuple[bool, ...] | bool = False,
) -> None:
    """Refresh ghost layers of several same-shaped arrays in one message
    per neighbour per direction.

    Production stencil codes pack all state components into a single
    boundary message to amortise the per-message latency; this is the
    packed variant of :func:`exchange_ghosts` (and the subject of the
    message-packing ablation benchmark).
    """
    if not locals_:
        return
    first = locals_[0]
    for arr in locals_[1:]:
        if arr.shape != first.shape:
            raise DistributionError(
                "exchange_ghosts_many needs same-shaped arrays; got "
                f"{arr.shape} vs {first.shape}"
            )
    if ghost < 1:
        raise DistributionError(f"ghost width must be >= 1, got {ghost}")
    if grid.nranks != comm.size:
        raise DistributionError(
            f"process grid has {grid.nranks} ranks, communicator {comm.size}"
        )
    if isinstance(periodic, bool):
        periodic = tuple(periodic for _ in range(grid.ndim))

    n = first.shape
    for axis in range(grid.ndim):
        lo_nbr = grid.shift(comm.rank, axis, -1, periodic[axis])
        hi_nbr = grid.shift(comm.rank, axis, +1, periodic[axis])
        tag_lo = _BOUNDARY_TAG_BASE + 32 + 2 * axis
        tag_hi = _BOUNDARY_TAG_BASE + 32 + 2 * axis + 1
        if lo_nbr is not None:
            sel = _slab(first, axis, ghost, 2 * ghost)
            comm.send(lo_nbr, np.stack([a[sel] for a in locals_]), tag=tag_lo)
        if hi_nbr is not None:
            sel = _slab(first, axis, n[axis] - 2 * ghost, n[axis] - ghost)
            comm.send(hi_nbr, np.stack([a[sel] for a in locals_]), tag=tag_hi)
        if hi_nbr is not None:
            packed = comm.recv(hi_nbr, tag=tag_lo)
            sel = _slab(first, axis, n[axis] - ghost, n[axis])
            for a, piece in zip(locals_, packed):
                a[sel] = piece
        if lo_nbr is not None:
            packed = comm.recv(lo_nbr, tag=tag_hi)
            sel = _slab(first, axis, 0, ghost)
            for a, piece in zip(locals_, packed):
                a[sel] = piece


def add_ghosts(section: np.ndarray, ghost: int, fill: float = 0.0) -> np.ndarray:
    """Return a copy of *section* padded with *ghost* cells per side."""
    if ghost < 0:
        raise DistributionError(f"ghost width must be >= 0, got {ghost}")
    padded = np.full(
        tuple(n + 2 * ghost for n in section.shape), fill, dtype=section.dtype
    )
    padded[interior(padded, ghost)] = section
    return padded


def interior(arr_with_ghosts: np.ndarray, ghost: int) -> tuple[slice, ...]:
    """Slices selecting the owned interior of a ghosted array."""
    return tuple(slice(ghost, n - ghost) for n in arr_with_ghosts.shape)


def strip_ghosts(arr_with_ghosts: np.ndarray, ghost: int) -> np.ndarray:
    """Copy of the owned interior (ghost layers removed)."""
    return arr_with_ghosts[interior(arr_with_ghosts, ghost)].copy()
