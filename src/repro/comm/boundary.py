"""Ghost-boundary exchange (paper §4.3, Figure 8's companion operation).

Grid operations that read neighbouring points need each local section
surrounded by a *ghost boundary* holding shadow copies of the neighbours'
edge values.  ``exchange_ghosts`` refreshes those shadows: for every grid
axis, each rank swaps a ``ghost``-deep slab with its face neighbours.

Two variants are provided:

- the **blocking** exchange processes axes in order, each slab spanning
  the *full* extent of the other axes (ghost layers included), so after
  the final axis corner and edge ghost cells are correct too — the
  standard trick that makes one face-exchange pass sufficient for
  9-point/27-point stencils;
- the **overlapped** exchange (``exchange_ghosts_start``) posts every
  face transfer at once and returns a :class:`GhostExchange` handle, so
  the caller can compute on interior cells while the slabs are in
  flight.  Because all slabs are extracted before any ghost is written,
  corner/edge ghost cells (which would need a second pass) are *stale*
  after the overlapped exchange — correct for star stencils, which read
  only axis-aligned neighbours, but not for box stencils.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DistributionError
from repro.comm.cart import CartGrid
from repro.comm.communicator import Comm, MAX_USER_TAG
from repro.runtime.request import Request

#: tag space reserved for boundary exchange (below the user-tag cap):
#: blocking single at +0, overlapped single at +16, blocking packed at
#: +32, overlapped packed at +48 — 2 tags per axis, up to 8 axes each.
_BOUNDARY_TAG_BASE = MAX_USER_TAG - 64
_OVERLAP_OFFSET = 16
_PACKED_OFFSET = 32


def _slab(
    arr: np.ndarray, axis: int, start: int, stop: int
) -> tuple[slice, ...]:
    """Full-extent slices except ``start:stop`` along *axis*."""
    return tuple(
        slice(start, stop) if d == axis else slice(None) for d in range(arr.ndim)
    )


def _check_exchange_args(
    comm: Comm,
    shape: tuple[int, ...],
    ndim: int,
    grid: CartGrid,
    ghost: int,
    periodic: tuple[bool, ...] | bool,
) -> tuple[bool, ...]:
    if ghost < 1:
        raise DistributionError(f"ghost width must be >= 1, got {ghost}")
    if grid.nranks != comm.size:
        raise DistributionError(
            f"process grid has {grid.nranks} ranks, communicator {comm.size}"
        )
    if ndim != grid.ndim:
        raise DistributionError(
            f"local array is {ndim}-D but process grid is {grid.ndim}-D"
        )
    if any(n < 2 * ghost for n in shape):
        raise DistributionError(
            f"local shape {shape} too small for ghost width {ghost}"
        )
    if isinstance(periodic, bool):
        periodic = tuple(periodic for _ in range(grid.ndim))
    if len(periodic) != grid.ndim:
        raise DistributionError(
            f"periodic flags {periodic} do not match grid rank {grid.ndim}"
        )
    return periodic


def exchange_ghosts(
    comm: Comm,
    local: np.ndarray,
    grid: CartGrid,
    ghost: int = 1,
    periodic: tuple[bool, ...] | bool = False,
) -> None:
    """Refresh the ghost layers of *local* in place (blocking).

    Parameters
    ----------
    local:
        This rank's section *including* ghost layers: ``ghost`` cells on
        each side of every axis.
    grid:
        The Cartesian process grid (``grid.nranks == comm.size``).
    ghost:
        Ghost width (>= 1).
    periodic:
        Per-axis periodicity (or one bool for all axes).  On non-periodic
        physical edges the ghost cells are left untouched (they hold
        boundary conditions maintained by the application).
    """
    periodic = _check_exchange_args(
        comm, local.shape, local.ndim, grid, ghost, periodic
    )
    n = local.shape
    for axis in range(grid.ndim):
        lo_nbr = grid.shift(comm.rank, axis, -1, periodic[axis])
        hi_nbr = grid.shift(comm.rank, axis, +1, periodic[axis])
        tag_lo = _BOUNDARY_TAG_BASE + 2 * axis  # travelling toward lower coords
        tag_hi = _BOUNDARY_TAG_BASE + 2 * axis + 1  # travelling toward higher

        # Post all of this axis's transfers (receives first, so a
        # self-neighbouring periodic axis binds its own slabs) and
        # complete them with one waitall: the two directions' wires
        # overlap, but axes stay serialised so corner ghosts are built
        # up correctly.  Outgoing slabs are snapshotted by copy-on-send
        # before either ghost is written.
        recv_hi = comm.irecv(hi_nbr, tag=tag_lo) if hi_nbr is not None else None
        recv_lo = comm.irecv(lo_nbr, tag=tag_hi) if lo_nbr is not None else None
        requests = [r for r in (recv_hi, recv_lo) if r is not None]
        if lo_nbr is not None:
            piece = local[_slab(local, axis, ghost, 2 * ghost)]
            requests.append(comm.isend(lo_nbr, piece, tag=tag_lo))
        if hi_nbr is not None:
            piece = local[_slab(local, axis, n[axis] - 2 * ghost, n[axis] - ghost)]
            requests.append(comm.isend(hi_nbr, piece, tag=tag_hi))
        comm.waitall(requests)
        if recv_hi is not None:
            local[_slab(local, axis, n[axis] - ghost, n[axis])] = recv_hi.payload
        if recv_lo is not None:
            local[_slab(local, axis, 0, ghost)] = recv_lo.payload


def exchange_ghosts_many(
    comm: Comm,
    locals_: list[np.ndarray],
    grid: CartGrid,
    ghost: int = 1,
    periodic: tuple[bool, ...] | bool = False,
) -> None:
    """Refresh ghost layers of several same-shaped arrays in one message
    per neighbour per direction (blocking).

    Production stencil codes pack all state components into a single
    boundary message to amortise the per-message latency; this is the
    packed variant of :func:`exchange_ghosts` (and the subject of the
    message-packing ablation benchmark).
    """
    if not locals_:
        return
    first = locals_[0]
    for arr in locals_[1:]:
        if arr.shape != first.shape:
            raise DistributionError(
                "exchange_ghosts_many needs same-shaped arrays; got "
                f"{arr.shape} vs {first.shape}"
            )
    periodic = _check_exchange_args(
        comm, first.shape, first.ndim, grid, ghost, periodic
    )
    n = first.shape
    for axis in range(grid.ndim):
        lo_nbr = grid.shift(comm.rank, axis, -1, periodic[axis])
        hi_nbr = grid.shift(comm.rank, axis, +1, periodic[axis])
        tag_lo = _BOUNDARY_TAG_BASE + _PACKED_OFFSET + 2 * axis
        tag_hi = _BOUNDARY_TAG_BASE + _PACKED_OFFSET + 2 * axis + 1
        recv_hi = comm.irecv(hi_nbr, tag=tag_lo) if hi_nbr is not None else None
        recv_lo = comm.irecv(lo_nbr, tag=tag_hi) if lo_nbr is not None else None
        requests = [r for r in (recv_hi, recv_lo) if r is not None]
        if lo_nbr is not None:
            sel = _slab(first, axis, ghost, 2 * ghost)
            requests.append(
                comm.isend(lo_nbr, np.stack([a[sel] for a in locals_]), tag=tag_lo)
            )
        if hi_nbr is not None:
            sel = _slab(first, axis, n[axis] - 2 * ghost, n[axis] - ghost)
            requests.append(
                comm.isend(hi_nbr, np.stack([a[sel] for a in locals_]), tag=tag_hi)
            )
        comm.waitall(requests)
        if recv_hi is not None:
            sel = _slab(first, axis, n[axis] - ghost, n[axis])
            for a, piece in zip(locals_, recv_hi.payload):
                a[sel] = piece
        if recv_lo is not None:
            sel = _slab(first, axis, 0, ghost)
            for a, piece in zip(locals_, recv_lo.payload):
                a[sel] = piece


class GhostExchange:
    """An in-flight overlapped ghost exchange.

    Created by :func:`exchange_ghosts_start` /
    :func:`exchange_ghosts_many_start`: every face transfer (all axes,
    both directions) is posted nonblocking before the constructor
    returns, so the caller can compute on cells that do not read ghosts
    while the slabs travel.  :meth:`wait` completes the transfers and
    writes the received slabs into the ghost layers.

    Unlike the blocking exchange, axes are *not* serialised, so ghost
    cells in the corner/edge regions (offsets along more than one axis)
    hold stale values afterwards — fine for star stencils, which never
    read them.  Outgoing slabs are snapshotted at post time (messages
    copy-on-send), so the caller may update interior cells freely
    between start and wait.
    """

    def __init__(
        self,
        comm: Comm,
        locals_: list[np.ndarray],
        grid: CartGrid,
        ghost: int,
        periodic: tuple[bool, ...] | bool,
        packed: bool,
    ):
        if not locals_:
            self._comm = comm
            self._requests: list[Request] = []
            self._recvs: list[tuple[Request, int, str]] = []
            self._locals = locals_
            self._ghost = ghost
            self._packed = packed
            self._done = True
            return
        first = locals_[0]
        for arr in locals_[1:]:
            if arr.shape != first.shape:
                raise DistributionError(
                    "overlapped exchange needs same-shaped arrays; got "
                    f"{arr.shape} vs {first.shape}"
                )
        periodic = _check_exchange_args(
            comm, first.shape, first.ndim, grid, ghost, periodic
        )
        self._comm = comm
        self._locals = locals_
        self._ghost = ghost
        self._packed = packed
        self._done = False
        self._requests = []
        #: receive bookkeeping: (request, axis, side) with side "lo"/"hi"
        #: naming the ghost slab the payload fills
        self._recvs = []
        base = _BOUNDARY_TAG_BASE + _OVERLAP_OFFSET
        if packed:
            base += _PACKED_OFFSET
        n = first.shape
        neighbours = []
        for axis in range(grid.ndim):
            lo_nbr = grid.shift(comm.rank, axis, -1, periodic[axis])
            hi_nbr = grid.shift(comm.rank, axis, +1, periodic[axis])
            tag_lo = base + 2 * axis
            tag_hi = base + 2 * axis + 1
            neighbours.append((axis, lo_nbr, hi_nbr, tag_lo, tag_hi))
            # Post all receives before any send so a self-neighbouring
            # periodic axis (one rank along it) binds its own slabs to
            # the already-posted patterns.
            if hi_nbr is not None:
                req = comm.irecv(hi_nbr, tag=tag_lo)
                self._requests.append(req)
                self._recvs.append((req, axis, "hi"))
            if lo_nbr is not None:
                req = comm.irecv(lo_nbr, tag=tag_hi)
                self._requests.append(req)
                self._recvs.append((req, axis, "lo"))
        for axis, lo_nbr, hi_nbr, tag_lo, tag_hi in neighbours:
            if lo_nbr is not None:
                sel = _slab(first, axis, ghost, 2 * ghost)
                self._requests.append(comm.isend(lo_nbr, self._pack(sel), tag=tag_lo))
            if hi_nbr is not None:
                sel = _slab(first, axis, n[axis] - 2 * ghost, n[axis] - ghost)
                self._requests.append(comm.isend(hi_nbr, self._pack(sel), tag=tag_hi))

    def _pack(self, sel: tuple[slice, ...]) -> np.ndarray:
        if self._packed:
            return np.stack([a[sel] for a in self._locals])
        return self._locals[0][sel]

    def _unpack(self, sel: tuple[slice, ...], payload: np.ndarray) -> None:
        if self._packed:
            for a, piece in zip(self._locals, payload):
                a[sel] = piece
        else:
            self._locals[0][sel] = payload

    @property
    def done(self) -> bool:
        """True once :meth:`wait` has completed the exchange."""
        return self._done

    def wait(self) -> None:
        """Complete all transfers and fill the ghost layers (idempotent)."""
        if self._done:
            return
        self._comm.waitall(self._requests)
        n = self._locals[0].shape
        ghost = self._ghost
        for req, axis, side in self._recvs:
            if side == "hi":
                sel = _slab(self._locals[0], axis, n[axis] - ghost, n[axis])
            else:
                sel = _slab(self._locals[0], axis, 0, ghost)
            self._unpack(sel, req.payload)
        self._done = True


def exchange_ghosts_start(
    comm: Comm,
    local: np.ndarray,
    grid: CartGrid,
    ghost: int = 1,
    periodic: tuple[bool, ...] | bool = False,
) -> GhostExchange:
    """Begin an overlapped ghost exchange of one array; returns the
    in-flight handle.  Compute on non-ghost-reading cells, then
    ``handle.wait()`` before touching cells that read ghosts."""
    return GhostExchange(comm, [local], grid, ghost, periodic, packed=False)


def exchange_ghosts_many_start(
    comm: Comm,
    locals_: list[np.ndarray],
    grid: CartGrid,
    ghost: int = 1,
    periodic: tuple[bool, ...] | bool = False,
) -> GhostExchange:
    """Packed overlapped exchange of several same-shaped arrays (one
    message per neighbour per direction); returns the in-flight handle."""
    return GhostExchange(comm, locals_, grid, ghost, periodic, packed=True)


def add_ghosts(section: np.ndarray, ghost: int, fill: float = 0.0) -> np.ndarray:
    """Return a copy of *section* padded with *ghost* cells per side."""
    if ghost < 0:
        raise DistributionError(f"ghost width must be >= 0, got {ghost}")
    padded = np.full(
        tuple(n + 2 * ghost for n in section.shape), fill, dtype=section.dtype
    )
    padded[interior(padded, ghost)] = section
    return padded


def interior(arr_with_ghosts: np.ndarray, ghost: int) -> tuple[slice, ...]:
    """Slices selecting the owned interior of a ghosted array."""
    return tuple(slice(ghost, n - ghost) for n in arr_with_ghosts.shape)


def strip_ghosts(arr_with_ghosts: np.ndarray, ghost: int) -> np.ndarray:
    """Copy of the owned interior (ghost layers removed)."""
    return arr_with_ghosts[interior(arr_with_ghosts, ghost)].copy()


# -- exchange-plan dedup (the kernel layer's packing substrate) ---------------

def exchange_plan_key(
    local: np.ndarray,
    grid: CartGrid,
    ghost: int,
    periodic: tuple[bool, ...],
) -> tuple:
    """Geometry key under which two exchange requests are *packable*.

    Requests with equal keys extract identically-shaped slabs toward the
    same neighbours, so ``np.stack`` combines them losslessly into one
    message per neighbour per direction (``exchange_ghosts_many``).  The
    dtype is part of the key — stacking mixed dtypes would silently
    upcast the packed buffer and change the bytes on the wire.
    """
    return (
        tuple(local.shape),
        local.dtype.str,
        int(ghost),
        tuple(periodic),
        tuple(grid.dims),
    )


def dedup_exchange_requests(requests: list) -> list[list]:
    """Group exchange *requests* into packable runs.

    Each request is any object exposing ``local`` (the ghosted array),
    ``cart`` (its :class:`CartGrid`), ``ghost``, and ``periodic`` — the
    kernel layer passes its loop arguments directly.  Returns the
    requests partitioned by :func:`exchange_plan_key`, preserving
    first-seen order across groups and request order within one, so the
    resulting message schedule is deterministic.  Singleton groups
    should use the unpacked exchange (no stack/unstack copies).
    """
    groups: list[list] = []
    index: dict[tuple, int] = {}
    for req in requests:
        key = exchange_plan_key(req.local, req.cart, req.ghost, req.periodic)
        slot = index.get(key)
        if slot is None:
            index[key] = len(groups)
            groups.append([req])
        else:
            groups[slot].append(req)
    return groups
