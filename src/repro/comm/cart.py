"""Cartesian process grids (MPI_Cart-style helpers).

The mesh-spectral archetype arranges P processes as an ``NPX x NPY``
(or 3-D) grid; this module provides the rank <-> coordinates mapping,
neighbour shifts, and an ``MPI_Dims_create``-like factorisation that
chooses a near-square process grid for a given P.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from math import prod
from typing import Iterator

from repro.errors import DistributionError

#: Environment override for the default ("blocks") process grid, e.g. "4x1".
#: Env-backed rather than module state so forked parallel-backend workers
#: inherit it; :func:`choose_proc_grid` itself stays pure (and memoised) —
#: the override is consulted *upstream*, never folded into the cache.
PROC_GRID_ENV = "REPRO_PROC_GRID"


@dataclass(frozen=True)
class CartGrid:
    """A row-major Cartesian arrangement of ranks.

    ``dims`` gives the process count along each axis; rank 0 is at the
    origin and the *last* axis varies fastest (row-major), matching
    :func:`repro.comm.layout.block_layout`.
    """

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise DistributionError(f"invalid process grid dims {self.dims}")

    @property
    def nranks(self) -> int:
        return prod(self.dims)

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def coords(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of *rank*."""
        if not 0 <= rank < self.nranks:
            raise DistributionError(f"rank {rank} out of range for grid {self.dims}")
        out = []
        rem = rank
        for d in reversed(self.dims):
            out.append(rem % d)
            rem //= d
        out.reverse()
        return tuple(out)

    def rank_of(self, coords: tuple[int, ...]) -> int:
        """Rank at the given grid coordinates."""
        if len(coords) != self.ndim:
            raise DistributionError(
                f"coords {coords} rank does not match grid {self.dims}"
            )
        rank = 0
        for c, d in zip(coords, self.dims):
            if not 0 <= c < d:
                raise DistributionError(f"coords {coords} outside grid {self.dims}")
            rank = rank * d + c
        return rank

    def shift(self, rank: int, axis: int, disp: int, periodic: bool = False) -> int | None:
        """Neighbour of *rank* displaced by *disp* along *axis*.

        Returns ``None`` when the displacement falls off a non-periodic
        edge (matching ``MPI_PROC_NULL``).
        """
        if not 0 <= axis < self.ndim:
            raise DistributionError(f"axis {axis} out of range for grid {self.dims}")
        coords = list(self.coords(rank))
        c = coords[axis] + disp
        if periodic:
            c %= self.dims[axis]
        elif not 0 <= c < self.dims[axis]:
            return None
        coords[axis] = c
        return self.rank_of(tuple(coords))


@lru_cache(maxsize=256)
def choose_proc_grid(nprocs: int, ndim: int) -> tuple[int, ...]:
    """Factor *nprocs* into *ndim* near-equal dimensions (largest first).

    Mirrors ``MPI_Dims_create``: repeatedly assign the largest remaining
    prime factor to the currently smallest dimension, then sort
    descending so axis 0 (usually the longest data axis) gets the most
    processes.  Pure in its arguments, so results are memoised.
    """
    if nprocs < 1 or ndim < 1:
        raise DistributionError(f"need nprocs >= 1 and ndim >= 1, got {nprocs}, {ndim}")
    if ndim == 1:
        return (nprocs,)
    if ndim == 2:
        # Exact: the divisor pair closest to square.
        best = 1
        d = 1
        while d * d <= nprocs:
            if nprocs % d == 0:
                best = d
            d += 1
        return (nprocs // best, best)
    dims = [1] * ndim
    factors = _prime_factors(nprocs)
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    return tuple(sorted(dims, reverse=True))


def parse_proc_grid(spec: str) -> tuple[int, ...]:
    """Parse a grid spec like ``"4x2"`` (or ``"4,2"``) into dims."""
    parts = spec.replace(",", "x").split("x")
    try:
        dims = tuple(int(p) for p in parts)
    except ValueError:
        raise DistributionError(f"malformed process-grid spec {spec!r}") from None
    if not dims or any(d < 1 for d in dims):
        raise DistributionError(f"malformed process-grid spec {spec!r}")
    return dims


def override_for(nprocs: int, ndim: int) -> tuple[int, ...] | None:
    """The :data:`PROC_GRID_ENV` override, when one is set *and* applies.

    The override only takes effect when it matches both the rank count
    and the dimensionality of the grid being resolved — a "4x1" override
    silently steps aside for a 3-rank run or a 3-D grid, so one tuner
    candidate cannot corrupt unrelated grids created in the same run.
    """
    spec = os.environ.get(PROC_GRID_ENV)
    if not spec:
        return None
    dims = parse_proc_grid(spec)
    if len(dims) == ndim and prod(dims) == nprocs:
        return dims
    return None


@contextmanager
def proc_grid_override(dims: tuple[int, ...] | None) -> Iterator[None]:
    """Scope a process-grid override (``None`` is a no-op passthrough)."""
    if dims is None:
        yield
        return
    spec = "x".join(str(int(d)) for d in dims)
    prev = os.environ.get(PROC_GRID_ENV)
    os.environ[PROC_GRID_ENV] = spec
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(PROC_GRID_ENV, None)
        else:
            os.environ[PROC_GRID_ENV] = prev


def _prime_factors(n: int) -> list[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out
