"""Small shared utilities: block partitioning, sampling, payload sizing."""

from repro.util.partition import (
    block_bounds,
    block_count,
    block_owner,
    block_slice,
    split_evenly,
)
from repro.util.nbytes import nbytes_of

__all__ = [
    "block_bounds",
    "block_count",
    "block_owner",
    "block_slice",
    "split_evenly",
    "nbytes_of",
]
