"""Regular sampling used to choose splitters in one-deep merges/splits.

The paper leaves the splitter computation open ("there are several
approaches ... we do not give details"); the standard technique for the
sort applications is *regular sampling* (Shi & Schaeffer 1992, cited by
the paper): each part contributes ``s`` evenly spaced local samples, the
``p*s`` samples are sorted, and every ``s``-th sample becomes a splitter.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def regular_sample(sorted_local: np.ndarray, s: int) -> np.ndarray:
    """Return ``s`` evenly spaced samples from a locally sorted array.

    For an empty local array returns an empty sample.  Sample positions are
    ``floor(k * n / s)`` for ``k = 0..s-1``, i.e. include the minimum and
    spread towards (but exclude) the maximum.
    """
    arr = np.asarray(sorted_local)
    n = arr.shape[0]
    if n == 0 or s <= 0:
        return arr[:0]
    idx = (np.arange(s, dtype=np.int64) * n) // s
    return arr[idx]


def splitters_from_samples(samples: np.ndarray, p: int) -> np.ndarray:
    """Choose ``p - 1`` splitters from a pooled sample array.

    Sorts the pooled samples and picks evenly spaced order statistics.  With
    fewer samples than requested splitters, duplicates are allowed (some
    destination parts then receive no data, which is legal).
    """
    pooled = np.sort(np.asarray(samples).ravel(), kind="stable")
    m = pooled.shape[0]
    if p <= 1 or m == 0:
        return pooled[:0]
    idx = (np.arange(1, p, dtype=np.int64) * m) // p
    return pooled[idx]


def pad_partition(pieces: list[np.ndarray], nparts: int, like: np.ndarray) -> list[np.ndarray]:
    """Pad a piece list with empty arrays up to *nparts* entries.

    Needed when the pooled sample was empty (globally empty input) and
    fewer splitters than ``nparts - 1`` could be chosen.
    """
    empty = np.asarray(like)[:0]
    return list(pieces) + [empty] * (nparts - len(pieces))


def partition_by_splitters(sorted_local: np.ndarray, splitters: Sequence) -> list[np.ndarray]:
    """Split a locally sorted array into ``len(splitters) + 1`` sorted pieces.

    Piece ``i`` holds the elements ``x`` with ``splitters[i-1] <= x <
    splitters[i]`` (boundary elements equal to a splitter go to the piece on
    its right, matching ``np.searchsorted(..., side="left")``).  The
    concatenation of the pieces equals the input.
    """
    arr = np.asarray(sorted_local)
    cuts = np.searchsorted(arr, np.asarray(splitters), side="left")
    bounds = [0, *cuts.tolist(), arr.shape[0]]
    return [arr[bounds[i] : bounds[i + 1]] for i in range(len(bounds) - 1)]
