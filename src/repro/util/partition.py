"""Block-distribution index arithmetic.

The canonical block distribution of ``n`` items over ``p`` parts assigns
part ``i`` the half-open range ``[i*n//p, (i+1)*n//p)``.  Parts differ in
size by at most one element, earlier parts are never smaller than later
ones by more than one, and the mapping is monotone — properties the tests
and the redistribution code rely on.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import DistributionError


def block_bounds(n: int, p: int, i: int) -> tuple[int, int]:
    """Return the half-open global index range ``(lo, hi)`` owned by part *i*.

    Parameters
    ----------
    n : total number of items (>= 0)
    p : number of parts (>= 1)
    i : part index in ``[0, p)``
    """
    if p < 1:
        raise DistributionError(f"number of parts must be >= 1, got {p}")
    if n < 0:
        raise DistributionError(f"item count must be >= 0, got {n}")
    if not 0 <= i < p:
        raise DistributionError(f"part index {i} out of range [0, {p})")
    return (i * n) // p, ((i + 1) * n) // p


def block_count(n: int, p: int, i: int) -> int:
    """Return the number of items owned by part *i*."""
    lo, hi = block_bounds(n, p, i)
    return hi - lo


def block_slice(n: int, p: int, i: int) -> slice:
    """Return ``slice(lo, hi)`` for the range owned by part *i*."""
    lo, hi = block_bounds(n, p, i)
    return slice(lo, hi)


def block_owner(n: int, p: int, index: int) -> int:
    """Return the part that owns global index *index* under block layout.

    Inverse of :func:`block_bounds`: ``block_owner(n, p, g)`` is the unique
    ``i`` with ``block_bounds(n, p, i)[0] <= g < block_bounds(n, p, i)[1]``.
    """
    if not 0 <= index < n:
        raise DistributionError(f"global index {index} out of range [0, {n})")
    # Candidate from the continuous inverse; correct for rounding by at
    # most one step in either direction.
    i = min(p - 1, (index * p) // n)
    lo, hi = block_bounds(n, p, i)
    while index < lo:
        i -= 1
        lo, hi = block_bounds(n, p, i)
    while index >= hi:
        i += 1
        lo, hi = block_bounds(n, p, i)
    return i


def split_evenly(seq: Sequence, p: int) -> list:
    """Split *seq* into ``p`` contiguous blocks using the block layout.

    Works for any sliceable sequence (lists, numpy arrays, ...).  Returned
    blocks are views when the input supports view slicing.
    """
    n = len(seq)
    return [seq[block_slice(n, p, i)] for i in range(p)]
