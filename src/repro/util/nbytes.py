"""Estimate the wire size of a message payload.

The performance model charges ``alpha + beta * nbytes`` per message, so we
need a cheap, deterministic size estimate for arbitrary payloads.  NumPy
arrays report their exact buffer size; containers are summed recursively;
scalars use fixed costs matching typical wire encodings.
"""

from __future__ import annotations

import numpy as np

_SCALAR_BYTES = 8
_OVERHEAD_BYTES = 16  # envelope: source, tag, length


def nbytes_of(obj: object) -> int:
    """Return an estimate of the number of bytes *obj* occupies on the wire.

    Deterministic and cheap (no pickling).  Containers include a small
    per-element overhead so that many tiny messages are not modelled as
    free.
    """
    return _OVERHEAD_BYTES + _nbytes(obj)


def _nbytes(obj: object) -> int:
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, (bool, int, float, complex)):
        return _SCALAR_BYTES
    if isinstance(obj, dict):
        return sum(_nbytes(k) + _nbytes(v) + 2 for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(_nbytes(item) + 2 for item in obj)
    # Objects exposing nbytes (array-likes) are trusted.
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    # Fallback: treat unknown objects as a fixed-size record.
    return 64
