"""Terminal rendering of 2-D scalar fields.

The paper's Figures 19-21 are grayscale field images (density, vorticity,
azimuthal velocity); the examples regenerate the underlying data and
render it as ASCII art so results are inspectable without a plotting
stack.
"""

from __future__ import annotations

import numpy as np

#: luminance ramp from empty to full
DEFAULT_RAMP = " .:-=+*#%@"


def render_field(
    field: np.ndarray,
    width: int = 72,
    height: int = 24,
    ramp: str = DEFAULT_RAMP,
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Render a 2-D array as ASCII art (rows = axis 0, columns = axis 1).

    The field is resampled to (height, width) by nearest neighbour and
    mapped linearly onto the character ramp.
    """
    arr = np.asarray(field, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"render_field needs a 2-D array, got shape {arr.shape}")
    lo = float(np.nanmin(arr)) if vmin is None else vmin
    hi = float(np.nanmax(arr)) if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0
    rows = np.minimum((np.arange(height) * arr.shape[0]) // height, arr.shape[0] - 1)
    cols = np.minimum((np.arange(width) * arr.shape[1]) // width, arr.shape[1] - 1)
    sampled = arr[np.ix_(rows, cols)]
    levels = np.clip((sampled - lo) / span * (len(ramp) - 1), 0, len(ramp) - 1)
    chars = np.asarray(list(ramp))[levels.astype(int)]
    body = "\n".join("".join(row) for row in chars)
    return f"{body}\n[{lo:.3g} '{ramp[0]}' .. '{ramp[-1]}' {hi:.3g}]"
