"""The serve wire protocol: request schema, job states, and cache keys.

A job request is the 5-tuple the ROADMAP names — ``(app, params,
machine, seed, backend)`` — plus scheduling-only fields (priority,
timeout, weight) that never enter the cache key.  Everything is plain
JSON so requests round-trip over HTTP and into worker processes
unchanged.

Cache-key derivation
--------------------
:meth:`JobRequest.cache_key` digests the *canonical* request: the app
name, the fully-merged parameter dict (defaults overlaid with the
caller's overrides, so ``{}`` and an explicit restatement of the
defaults key identically), the machine name, the schedule seed, the
resolved backend name (aliases collapse), and the *pinned tuned
configuration*.  The digest reuses
:func:`repro.verify.digest.value_digest` — the same canonical encoding
that certifies cross-backend identity — so the key is stable across
processes and Python versions.  Because registered apps derive all of
their input from the params (see :mod:`repro.apps.registry`) and runs
are deterministic, two requests with equal keys provably produce equal
result digests; that is what makes serving a cached result sound.

Tuned configurations resolve at *admission*, not execution: a request
arriving without a ``tuned`` field gets the server's current
tuned-config catalog answer (possibly the empty config) pinned into it
by :meth:`JobRequest.validated` before the cache key is derived, and
the executor applies exactly the pinned config.  Tuned runtime knobs
change virtual clocks, so letting a worker's catalog state leak into a
run unrecorded would poison the cache; pinning makes the tuned state
part of the request's identity instead.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any

from repro.apps import registry
from repro.errors import ReproError
from repro.machines.catalog import list_machines
from repro.runtime import backends
from repro.verify.digest import value_digest

#: protocol version; bump on incompatible request-encoding changes so a
#: stale cache can never satisfy a request it does not actually match
#: (2: tuned-config pinning entered the request schema and cache key)
SCHEMA_VERSION = 2

#: default per-job timeout (seconds) when neither the request nor the
#: server configuration names one
DEFAULT_TIMEOUT = 120.0


class ServeError(ReproError):
    """Invalid request or protocol misuse."""


class JobState(str, enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass(frozen=True)
class JobRequest:
    """One archetype run request, as submitted over the wire.

    ``priority`` (higher runs earlier), ``timeout`` (per-job wall-clock
    seconds), and ``weight`` (admission cost hint: jobs at or below the
    server's small-job threshold are grouped into one worker dispatch)
    affect scheduling only — they are excluded from the cache key.
    """

    app: str
    params: dict[str, Any] = field(default_factory=dict)
    machine: str = "ideal"
    seed: int = 0
    backend: str = "deterministic"
    #: pinned tuned configuration (see :mod:`repro.tune.catalog`):
    #: ``None`` means "resolve from the server's catalog at admission",
    #: ``{}`` means "explicitly untuned"; after :meth:`validated` this is
    #: always a dict and part of the cache key
    tuned: dict[str, Any] | None = None
    priority: int = 0
    timeout: float | None = None
    weight: float = 1.0

    def validated(self) -> JobRequest:
        """Canonicalise and validate; raises :class:`ServeError` on bad input.

        Returns a request with the backend alias resolved and the params
        fully merged over the app's registered defaults (so equivalent
        requests are *equal* requests).
        """
        try:
            spec = registry.get(self.app)
        except ReproError as exc:
            raise ServeError(str(exc)) from None
        if not isinstance(self.params, dict):
            raise ServeError(f"params must be an object, got {type(self.params).__name__}")
        try:
            params = spec.params_with(self.params)
        except ReproError as exc:
            raise ServeError(str(exc)) from None
        if self.machine not in list_machines():
            raise ServeError(
                f"unknown machine {self.machine!r}; choose from {list_machines()}"
            )
        try:
            backend = backends.resolve(self.backend)
        except ReproError as exc:
            raise ServeError(str(exc)) from None
        if self.timeout is not None and self.timeout <= 0:
            raise ServeError(f"timeout must be positive, got {self.timeout}")
        if self.weight <= 0:
            raise ServeError(f"weight must be positive, got {self.weight}")
        tuned = self.tuned
        if tuned is None:
            from repro.tune import catalog as tune_catalog

            entry = tune_catalog.consult(
                self.app, self.machine, int(params.get("nprocs", 0))
            )
            # A default-config winner pins as {} so it cannot split the
            # cache between "untuned" and "tuned to the default".
            if entry is None or entry.config.is_default():
                tuned = {}
            else:
                tuned = entry.config.to_dict()
        elif not isinstance(tuned, dict):
            raise ServeError(
                f"tuned must be an object or null, got {type(tuned).__name__}"
            )
        if tuned:
            # Tuned parameter knobs fill only keys the caller left at the
            # app's defaults — explicit params always win.
            for key, value in (tuned.get("params") or {}).items():
                if key in spec.defaults and key not in self.params:
                    params[key] = value
        return replace(
            self,
            params=params,
            seed=int(self.seed),
            backend=backend,
            tuned=tuned,
            priority=int(self.priority),
        )

    def cache_key(self) -> str:
        """Content address of this request (validate first).

        Scheduling fields are deliberately absent: a high-priority
        request and a low-priority one for the same run share a result.
        """
        return value_digest(
            [
                "repro.serve.request",
                SCHEMA_VERSION,
                self.app,
                self.params,
                self.machine,
                self.seed,
                self.backend,
                self.tuned,
            ]
        )

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> JobRequest:
        if not isinstance(data, dict):
            raise ServeError("request body must be a JSON object")
        if "app" not in data:
            raise ServeError("request is missing the required 'app' field")
        unknown = sorted(set(data) - {f for f in cls.__dataclass_fields__})
        if unknown:
            raise ServeError(f"unknown request field(s) {unknown}")
        return cls(**data)


def dumps(data: Any) -> bytes:
    """Canonical JSON encoding used on both sides of the wire."""
    return json.dumps(data, sort_keys=True).encode()


def loads(raw: bytes) -> Any:
    try:
        return json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"invalid JSON body: {exc}") from None
